"""Tests for big/small bin classification."""

import math

import numpy as np
import pytest

from repro.bins import BinArray, big_small_split, bigness_threshold, uniform_bins


class TestThreshold:
    def test_value(self):
        assert bigness_threshold(100, r=2.0) == pytest.approx(2.0 * math.log(100))

    def test_n1_is_zero(self):
        assert bigness_threshold(1) == 0.0

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            bigness_threshold(0)

    def test_rejects_bad_r(self):
        with pytest.raises(ValueError):
            bigness_threshold(10, r=0)


class TestSplit:
    def test_partition_covers_all(self):
        b = BinArray([1, 2, 50, 100])
        s = big_small_split(b, r=1.0)
        assert s.n_big + s.n_small == b.n
        assert s.total_capacity == b.total_capacity

    def test_threshold_boundary_inclusive(self):
        """A bin exactly at r*ln(n) is big."""
        n = 100
        thr = math.log(n)  # r = 1
        cap = int(math.ceil(thr))
        b = BinArray([1] * (n - 1) + [cap])
        s = big_small_split(b)
        assert s.n_big == 1
        assert cap >= s.threshold

    def test_capacities_sum(self):
        b = BinArray([1, 1, 20, 30])
        s = big_small_split(b, r=1.0)
        assert s.big_capacity == 50
        assert s.small_capacity == 2

    def test_all_small(self):
        b = uniform_bins(1000, 1)
        s = big_small_split(b)
        assert s.n_big == 0
        assert s.small_capacity == 1000

    def test_all_big(self):
        b = uniform_bins(100, 100)
        s = big_small_split(b)
        assert s.n_small == 0

    def test_indices_disjoint(self):
        b = BinArray([1, 10, 1, 10, 100])
        s = big_small_split(b, r=0.5)
        assert set(s.big_indices).isdisjoint(set(s.small_indices))

    def test_r_scales_threshold(self):
        b = BinArray([1, 5, 10, 20])
        lo = big_small_split(b, r=0.1)
        hi = big_small_split(b, r=10.0)
        assert lo.n_big >= hi.n_big


class TestSmallBallProbability:
    def test_formula(self):
        b = BinArray([1] * 50 + [100] * 50)
        s = big_small_split(b)
        expected = (s.small_capacity / s.total_capacity) ** 2
        assert s.small_ball_probability(2) == pytest.approx(expected)

    def test_d_monotone(self):
        b = BinArray([1] * 10 + [50] * 10)
        s = big_small_split(b)
        assert s.small_ball_probability(3) < s.small_ball_probability(2)

    def test_rejects_bad_d(self):
        b = BinArray([1, 50])
        with pytest.raises(ValueError):
            big_small_split(b).small_ball_probability(0)
