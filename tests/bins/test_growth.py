"""Tests for disk-batch growth models (Section 4.3 settings)."""

import pytest

from repro.bins import (
    BaselineGrowthModel,
    ExponentialGrowthModel,
    LinearGrowthModel,
)


class TestLinear:
    def test_batch_capacities(self):
        m = LinearGrowthModel(offset=4, start_capacity=2)
        assert [m.batch_capacity(i) for i in range(4)] == [2, 6, 10, 14]

    def test_zero_offset_is_baseline(self):
        m = LinearGrowthModel(offset=0)
        assert m.batch_capacity(10) == m.batch_capacity(0)

    def test_rejects_negative_offset(self):
        with pytest.raises(ValueError):
            LinearGrowthModel(offset=-1)

    def test_rejects_negative_batch_index(self):
        with pytest.raises(ValueError):
            LinearGrowthModel(offset=1).batch_capacity(-1)


class TestExponential:
    def test_batch_capacities(self):
        m = ExponentialGrowthModel(factor=2.0, start_capacity=2)
        assert [m.batch_capacity(i) for i in range(4)] == [2, 4, 8, 16]

    def test_rounding(self):
        m = ExponentialGrowthModel(factor=1.4, start_capacity=2)
        assert m.batch_capacity(1) == 3  # 2.8 -> 3

    def test_floor_at_one(self):
        m = ExponentialGrowthModel(factor=1.0, start_capacity=1)
        assert m.batch_capacity(50) == 1

    def test_rejects_factor_below_one(self):
        with pytest.raises(ValueError):
            ExponentialGrowthModel(factor=0.9)


class TestBaseline:
    def test_constant(self):
        m = BaselineGrowthModel(start_capacity=2)
        assert m.batch_capacity(0) == m.batch_capacity(49) == 2


class TestStates:
    def test_paper_schedule(self):
        """2 -> 1000 disks in batches of 20 gives 2, 22, 42, ..., 982."""
        m = BaselineGrowthModel(initial_bins=2, batch_size=20)
        sizes = [s.n for s in m.states(1000)]
        assert sizes[0] == 2
        assert sizes[1] == 22
        assert sizes[-1] == 982
        assert all(b - a == 20 for a, b in zip(sizes, sizes[1:]))

    def test_capacities_by_generation(self):
        m = LinearGrowthModel(offset=1, initial_bins=2, batch_size=3, start_capacity=2)
        states = list(m.states(8))
        last = states[-1]
        assert list(last) == [2, 2, 3, 3, 3, 4, 4, 4]

    def test_labels_record_generation(self):
        m = LinearGrowthModel(offset=1, initial_bins=1, batch_size=2)
        final = m.final_state(5)
        assert final.labels == (0, 1, 1, 2, 2)

    def test_final_state_matches_last_yield(self):
        m = ExponentialGrowthModel(factor=1.2, initial_bins=2, batch_size=20)
        assert m.final_state(200) == list(m.states(200))[-1]

    def test_rejects_max_below_initial(self):
        m = BaselineGrowthModel(initial_bins=10)
        with pytest.raises(ValueError):
            list(m.states(5))

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            BaselineGrowthModel(initial_bins=0)
        with pytest.raises(ValueError):
            BaselineGrowthModel(batch_size=0)
        with pytest.raises(ValueError):
            BaselineGrowthModel(start_capacity=0)

    def test_total_capacity_grows(self):
        m = ExponentialGrowthModel(factor=1.4, initial_bins=2, batch_size=20)
        totals = [s.total_capacity for s in m.states(200)]
        assert all(b > a for a, b in zip(totals, totals[1:]))
