"""Tests for the bin-spec mini-language."""

import pytest

from repro.bins import BinSpecError, format_bin_spec, parse_bin_spec


class TestExplicitClasses:
    def test_single(self):
        bins = parse_bin_spec("3x7")
        assert bins.size_class_counts() == {3: 7}

    def test_multiple(self):
        bins = parse_bin_spec("1x500,10x500")
        assert bins.n == 1000
        assert bins.total_capacity == 5500

    def test_whitespace(self):
        assert parse_bin_spec(" 1x2 , 3x1 ").n == 3

    def test_order_preserved(self):
        bins = parse_bin_spec("5x2,1x2")
        assert list(bins) == [5, 5, 1, 1]

    def test_rejects_garbage(self):
        with pytest.raises(BinSpecError):
            parse_bin_spec("1-10")

    def test_rejects_zero_count(self):
        with pytest.raises(BinSpecError, match="positive"):
            parse_bin_spec("3x0")

    def test_rejects_empty(self):
        with pytest.raises(BinSpecError, match="empty"):
            parse_bin_spec(" , ")

    def test_rejects_non_string(self):
        with pytest.raises(BinSpecError):
            parse_bin_spec(42)


class TestGenerators:
    def test_uniform(self):
        bins = parse_bin_spec("uniform:n=10,c=3")
        assert bins.n == 10
        assert bins.is_uniform()
        assert bins[0] == 3

    def test_binom(self):
        bins = parse_bin_spec("binom:n=200,c=4,seed=1")
        assert bins.n == 200
        assert 1 <= bins.capacities.min()
        assert bins.capacities.max() <= 8

    def test_binom_deterministic(self):
        a = parse_bin_spec("binom:n=50,c=3,seed=9")
        b = parse_bin_spec("binom:n=50,c=3,seed=9")
        assert a == b

    def test_zipf(self):
        bins = parse_bin_spec("zipf:n=100,alpha=1.5,max=32,seed=2")
        assert bins.n == 100
        assert bins.capacities.max() <= 32

    def test_geom(self):
        bins = parse_bin_spec("geom:n=60,ratio=2,levels=3,seed=3")
        assert set(bins.size_classes()).issubset({1, 2, 4})

    def test_unknown_generator(self):
        with pytest.raises(BinSpecError, match="unknown generator"):
            parse_bin_spec("pareto:n=10,alpha=2")

    def test_missing_parameter(self):
        with pytest.raises(BinSpecError, match="missing"):
            parse_bin_spec("uniform:n=10")

    def test_non_numeric_parameter(self):
        with pytest.raises(BinSpecError, match="non-numeric"):
            parse_bin_spec("uniform:n=ten,c=1")

    def test_fractional_n_rejected(self):
        with pytest.raises(BinSpecError, match="integer"):
            parse_bin_spec("uniform:n=2.5,c=1")

    def test_mixed_explicit_and_generator(self):
        bins = parse_bin_spec("1x100,binom:n=50,c=4,seed=0")
        assert bins.n == 150
        assert (bins.capacities[:100] == 1).all()


class TestFormat:
    def test_round_trip_multiset(self):
        bins = parse_bin_spec("1x3,4x2,9x1")
        spec = format_bin_spec(bins)
        again = parse_bin_spec(spec)
        assert bins.size_class_counts() == again.size_class_counts()

    def test_sorted_output(self):
        bins = parse_bin_spec("9x1,1x1")
        assert format_bin_spec(bins) == "1x1,9x1"


class TestCliIntegration:
    def test_cli_generator_spec(self, capsys):
        from repro.cli import main

        assert main(["describe", "binom:n=200,c=3,seed=4"]) == 0
        assert "Theorem 3" in capsys.readouterr().out

    def test_cli_bad_spec_exits(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="bad bin spec"):
            main(["describe", "1-10"])
