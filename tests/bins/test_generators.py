"""Tests for bin-array generators."""

import numpy as np
import pytest

from repro.bins import (
    binomial_random_bins,
    geometric_bins,
    multi_class_bins,
    two_class_bins,
    uniform_bins,
    zipf_bins,
)


class TestUniform:
    def test_basic(self):
        b = uniform_bins(10, 3)
        assert b.n == 10
        assert b.is_uniform()
        assert b.total_capacity == 30

    def test_default_capacity(self):
        assert uniform_bins(5).total_capacity == 5

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            uniform_bins(0)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            uniform_bins(5, 0)


class TestTwoClass:
    def test_layout_small_first(self):
        b = two_class_bins(2, 3, 1, 10)
        assert list(b) == [1, 1, 10, 10, 10]

    def test_counts(self):
        b = two_class_bins(7, 3, 2, 5)
        assert b.size_class_counts() == {2: 7, 5: 3}

    def test_zero_small_allowed(self):
        assert two_class_bins(0, 4, 1, 2).n == 4

    def test_zero_large_allowed(self):
        assert two_class_bins(4, 0, 1, 2).n == 4

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError, match="at least one bin"):
            two_class_bins(0, 0, 1, 2)

    def test_rejects_inverted_sizes(self):
        with pytest.raises(ValueError, match="must be smaller"):
            two_class_bins(1, 1, 5, 3)

    def test_rejects_equal_sizes(self):
        with pytest.raises(ValueError, match="must be smaller"):
            two_class_bins(1, 1, 4, 4)

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError, match="non-negative"):
            two_class_bins(-1, 1, 1, 2)

    def test_interleave_permutes(self):
        a = two_class_bins(50, 50, 1, 2)
        b = two_class_bins(50, 50, 1, 2, interleave=True, rng=1)
        assert sorted(a) == sorted(b)
        assert list(a) != list(b)

    def test_figure6_array(self):
        """Paper's Figure 6 setting: 1000 bins of sizes 1 and 10."""
        b = two_class_bins(750, 250, 1, 10)
        assert b.n == 1000
        assert b.total_capacity == 750 + 2500


class TestMultiClass:
    def test_sorted_by_capacity(self):
        b = multi_class_bins({4: 1, 1: 2, 2: 1})
        assert list(b) == [1, 1, 2, 4]

    def test_skips_zero_counts(self):
        b = multi_class_bins({1: 2, 9: 0})
        assert list(b) == [1, 1]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            multi_class_bins({})

    def test_rejects_all_zero_counts(self):
        with pytest.raises(ValueError, match="zero"):
            multi_class_bins({3: 0})

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError, match="negative"):
            multi_class_bins({3: -1})

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="positive"):
            multi_class_bins({0: 3})


class TestBinomialRandom:
    def test_range(self):
        b = binomial_random_bins(1000, 4.0, rng=0)
        assert b.capacities.min() >= 1
        assert b.capacities.max() <= 8

    def test_mean_close_to_target(self):
        """E[capacity] = 1 + 7*(c-1)/7 = c."""
        b = binomial_random_bins(20_000, 5.0, rng=1)
        assert b.average_capacity() == pytest.approx(5.0, abs=0.1)

    def test_c1_degenerates_to_unit(self):
        b = binomial_random_bins(100, 1.0, rng=2)
        assert b.is_uniform()
        assert b[0] == 1

    def test_c8_degenerates_to_eight(self):
        b = binomial_random_bins(100, 8.0, rng=3)
        assert b.is_uniform()
        assert b[0] == 8

    def test_rejects_out_of_range_mean(self):
        with pytest.raises(ValueError, match=r"\[1, 8\]"):
            binomial_random_bins(10, 9.0)

    def test_reproducible(self):
        a = binomial_random_bins(50, 3.0, rng=7)
        b = binomial_random_bins(50, 3.0, rng=7)
        assert a == b


class TestGeometricAndZipf:
    def test_geometric_levels(self):
        b = geometric_bins(500, ratio=2.0, levels=3, rng=0)
        assert set(b.size_classes()).issubset({1, 2, 4})

    def test_geometric_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            geometric_bins(10, ratio=0.5)

    def test_zipf_truncation(self):
        b = zipf_bins(2000, alpha=1.5, max_capacity=16, rng=1)
        assert b.capacities.max() <= 16
        assert b.capacities.min() >= 1

    def test_zipf_heavy_tail_present(self):
        b = zipf_bins(5000, alpha=1.2, max_capacity=64, rng=2)
        assert (b.capacities >= 8).sum() > 0

    def test_zipf_rejects_alpha_at_most_one(self):
        with pytest.raises(ValueError):
            zipf_bins(10, alpha=1.0)
