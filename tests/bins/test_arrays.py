"""Tests for the BinArray value type."""

import numpy as np
import pytest

from repro.bins import BinArray


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one bin"):
            BinArray([])

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError, match="positive"):
            BinArray([1, 0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="positive"):
            BinArray([-3])

    def test_rejects_fractional(self):
        with pytest.raises(ValueError, match="integer"):
            BinArray([1.5, 2.0])

    def test_accepts_integral_floats(self):
        b = BinArray([1.0, 2.0])
        assert b.total_capacity == 3

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            BinArray(np.ones((2, 2)))

    def test_label_length_mismatch(self):
        with pytest.raises(ValueError, match="labels"):
            BinArray([1, 2], labels=["a"])


class TestProperties:
    def test_basic(self, small_mixed_bins):
        assert small_mixed_bins.n == 4
        assert small_mixed_bins.total_capacity == 8
        assert len(small_mixed_bins) == 4

    def test_capacities_read_only(self, small_mixed_bins):
        with pytest.raises(ValueError):
            small_mixed_bins.capacities[0] = 99

    def test_getitem(self, small_mixed_bins):
        assert small_mixed_bins[3] == 4

    def test_iteration(self, small_mixed_bins):
        assert list(small_mixed_bins) == [1, 1, 2, 4]

    def test_average_capacity(self, small_mixed_bins):
        assert small_mixed_bins.average_capacity() == 2.0

    def test_is_uniform(self):
        assert BinArray([3, 3, 3]).is_uniform()
        assert not BinArray([3, 4]).is_uniform()

    def test_size_classes(self, small_mixed_bins):
        np.testing.assert_array_equal(small_mixed_bins.size_classes(), [1, 2, 4])

    def test_size_class_counts(self, small_mixed_bins):
        assert small_mixed_bins.size_class_counts() == {1: 2, 2: 1, 4: 1}

    def test_indices_of_capacity(self, small_mixed_bins):
        np.testing.assert_array_equal(small_mixed_bins.indices_of_capacity(1), [0, 1])
        assert small_mixed_bins.indices_of_capacity(7).size == 0

    def test_repr_mentions_classes(self, small_mixed_bins):
        assert "2x1" in repr(small_mixed_bins)


class TestEqualityAndHash:
    def test_equal(self):
        assert BinArray([1, 2]) == BinArray([1, 2])

    def test_not_equal_capacities(self):
        assert BinArray([1, 2]) != BinArray([2, 1])

    def test_not_equal_labels(self):
        assert BinArray([1], labels=["a"]) != BinArray([1], labels=["b"])

    def test_non_binarray_comparison(self):
        assert BinArray([1]) != [1]

    def test_hash_consistent(self):
        assert hash(BinArray([1, 2])) == hash(BinArray([1, 2]))


class TestSlotOwner:
    def test_expansion(self, small_mixed_bins):
        np.testing.assert_array_equal(
            small_mixed_bins.slot_owner(), [0, 1, 2, 2, 3, 3, 3, 3]
        )

    def test_length_is_total_capacity(self):
        b = BinArray([5, 7])
        assert b.slot_owner().size == 12

    def test_slot_probabilities_match_capacity(self):
        """Uniform slot choice implies capacity-proportional bin choice."""
        b = BinArray([1, 3])
        owners = b.slot_owner()
        frac = np.mean(owners == 1)
        assert frac == 0.75


class TestWithAppended:
    def test_append_capacities(self):
        b = BinArray([1, 2]).with_appended([3, 4])
        assert list(b) == [1, 2, 3, 4]

    def test_append_scalar(self):
        b = BinArray([1]).with_appended(5)
        assert list(b) == [1, 5]

    def test_labels_preserved(self):
        b = BinArray([1], labels=("g0",)).with_appended([2], labels=("g1",))
        assert b.labels == ("g0", "g1")

    def test_labels_padded_when_missing(self):
        b = BinArray([1]).with_appended([2], labels=("g1",))
        assert b.labels == (None, "g1")

    def test_original_unchanged(self):
        a = BinArray([1, 2])
        a.with_appended([9])
        assert a.total_capacity == 3
