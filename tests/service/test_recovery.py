"""Crash-recovery tests: recover-at-k == uninterrupted, bit for bit."""

import pytest

from repro.service import (
    AllocationService,
    ChurnAction,
    StaleSequenceError,
    TraceSpec,
    WalError,
    WriteAheadLog,
    generate_trace,
)

PEERS = [f"peer-{i}" for i in range(6)]
SEED = 77
TRACE = generate_trace(
    TraceSpec(requests=24, users=200, objects=60, rate=100.0, seed=SEED)
)
KEYS = list(TRACE.keys())

#: The canonical event sequence: allocations with churn interleaved.
EVENTS = []
for _i, _key in enumerate(KEYS):
    if _i == 6:
        EVENTS.append(("churn", "join", None))
    if _i == 12:
        EVENTS.append(("churn", "leave", None))  # churn-stream victim draw
    if _i == 18:
        EVENTS.append(("churn", "leave", "peer-2"))
    EVENTS.append(("alloc", _key, None))


def fresh(wal=None, peers=PEERS, **kw):
    defaults = dict(d=2, refresh_every=8, seed=SEED)
    defaults.update(kw)
    return AllocationService(peers, wal=wal, **defaults)


def apply_events(service, events, seq_start=1, client="c"):
    """Drive events with monotonically increasing sequence ids."""
    seq = seq_start
    for event in events:
        if event[0] == "alloc":
            service.allocate(event[1], client=client, seq=seq)
        else:
            service.apply_churn(
                ChurnAction(time=0.0, kind=event[1], peer_id=event[2]),
                client=client, seq=seq)
        seq += 1
    return seq


def state_of(service):
    stats = service.stats()
    return (
        stats["placement_digest"],
        stats["load"]["per_peer"],
        stats["churn"],
        service.requests,
        tuple(sorted(service.peer_ids)),
    )


UNINTERRUPTED = fresh()
apply_events(UNINTERRUPTED, EVENTS)
REFERENCE = state_of(UNINTERRUPTED)


class TestRecoverAtEveryPrefix:
    @pytest.mark.parametrize("k", range(len(EVENTS) + 1))
    def test_crash_after_k_events_then_finish(self, tmp_path, k):
        """Recover at every prefix length, finish, match the reference.

        This is the crash-recovery clause in miniature: no matter where
        the process dies, replaying the WAL and continuing produces the
        same digest, per-peer counts, churn counters, and membership as
        the run that never died.
        """
        path = tmp_path / "svc.wal"
        before = fresh(wal=path)
        seq = apply_events(before, EVENTS[:k])
        before.close_wal()  # the "crash": abandon the first instance

        after = AllocationService.recover(path)
        assert after.recovered_records == len(EVENTS[:k])
        apply_events(after, EVENTS[k:], seq_start=seq)
        assert state_of(after) == REFERENCE

    def test_recovery_resumes_rng_streams_not_just_counts(self, tmp_path):
        # Same final loads can hide drifted RNG streams; drive extra
        # post-recovery traffic so a stream offset would surface.
        path = tmp_path / "svc.wal"
        svc = fresh(wal=path)
        apply_events(svc, EVENTS)
        svc.close_wal()
        recovered = AllocationService.recover(path)
        control = fresh()
        apply_events(control, EVENTS)
        for extra in range(40):
            assert (recovered.allocate(f"extra-{extra}")
                    == control.allocate(f"extra-{extra}"))
        extra_churn = recovered.apply_churn(ChurnAction(time=0.0, kind="leave"))
        assert extra_churn == control.apply_churn(
            ChurnAction(time=0.0, kind="leave"))


class TestRecoveredDedup:
    def test_dedup_table_survives_recovery(self, tmp_path):
        path = tmp_path / "svc.wal"
        svc = fresh(wal=path)
        last_seq = apply_events(svc, EVENTS) - 1
        digest = svc.placement_digest()
        svc.close_wal()

        recovered = AllocationService.recover(path)
        # Retrying the last applied request must hit the dedup table:
        # same reply, no new placement, no RNG consumption.
        last_alloc_key = EVENTS[-1][1]
        pid = recovered.allocate(last_alloc_key, client="c", seq=last_seq)
        assert pid in recovered.peer_ids
        assert recovered.placement_digest() == digest
        assert recovered.dedup_hits == 1
        with pytest.raises(StaleSequenceError):
            recovered.allocate(last_alloc_key, client="c", seq=last_seq - 1)


class TestTornAndCorrupt:
    def test_torn_tail_recovers_surviving_prefix(self, tmp_path):
        path = tmp_path / "svc.wal"
        svc = fresh(wal=path)
        apply_events(svc, EVENTS)
        svc.close_wal()
        blob = path.read_bytes()
        path.write_bytes(blob[:-9])  # tear the last frame mid-payload

        recovered = AllocationService.recover(path)
        assert recovered.recovered_records == len(EVENTS) - 1
        assert list(tmp_path.glob("svc.wal.corrupt-*"))
        # The client retries the lost final request (the reply never
        # arrived); the result matches the uninterrupted run exactly.
        seq = len(EVENTS)  # seqs started at 1, so the lost one is len(EVENTS)
        assert EVENTS[-1][0] == "alloc"
        recovered.allocate(EVENTS[-1][1], client="c", seq=seq)
        assert state_of(recovered) == REFERENCE

    def test_divergent_log_refused(self, tmp_path):
        path = tmp_path / "svc.wal"
        svc = fresh(wal=path)
        apply_events(svc, EVENTS[:8])
        svc.close_wal()
        scan = WriteAheadLog(path).scan()
        # Rewrite the log with one placement forged to a different peer:
        # recovery must detect that this build would not have made that
        # decision, not silently serve drifted state.
        forged_path = tmp_path / "forged.wal"
        forged = WriteAheadLog(forged_path)
        for rec in scan.records:
            rec = dict(rec)
            if rec["t"] == "alloc" and rec["s"] == 5:
                rec["p"] = "peer-0" if rec["p"] != "peer-0" else "peer-1"
            forged.append(rec)
        forged.close()
        with pytest.raises(WalError, match="does not match"):
            AllocationService.recover(forged_path)


class TestWalAttachment:
    def test_empty_log_has_nothing_to_recover(self, tmp_path):
        with pytest.raises(WalError, match="nothing to recover"):
            AllocationService.recover(tmp_path / "missing.wal")

    def test_fresh_constructor_refuses_populated_log(self, tmp_path):
        path = tmp_path / "svc.wal"
        fresh(wal=path).close_wal()
        with pytest.raises(WalError, match="recover"):
            fresh(wal=path)

    def test_wal_requires_integer_seed(self, tmp_path):
        with pytest.raises(WalError, match="integer seed"):
            fresh(wal=tmp_path / "svc.wal", seed=None)

    def test_log_without_meta_record_refused(self, tmp_path):
        path = tmp_path / "svc.wal"
        wal = WriteAheadLog(path)
        wal.append({"t": "alloc", "k": "obj-1", "p": "peer-0"})
        wal.close()
        with pytest.raises(WalError, match="meta record"):
            AllocationService.recover(path)

    def test_recovered_service_keeps_logging(self, tmp_path):
        path = tmp_path / "svc.wal"
        svc = fresh(wal=path)
        apply_events(svc, EVENTS[:4])
        svc.close_wal()
        recovered = AllocationService.recover(path)
        recovered.allocate("obj-next")
        recovered.close_wal()
        # The new decision is on disk: a second recovery includes it.
        again = AllocationService.recover(path)
        assert again.recovered_records == 5
        assert again.placement_digest() == recovered.placement_digest()

    def test_stats_surface_reports_wal(self, tmp_path):
        path = tmp_path / "svc.wal"
        svc = fresh(wal=path)
        svc.allocate("obj-1")
        info = svc.stats()["wal"]
        assert info["path"] == str(path)
        assert info["appended"] == 2  # meta + the alloc
        assert info["sync_every"] == 1
        assert info["fsyncs"] >= 2
        svc.close_wal()
        assert svc.stats()["wal"] is None

    def test_meta_pins_config_not_cli_flags(self, tmp_path):
        path = tmp_path / "svc.wal"
        svc = fresh(wal=path, d=1, refresh_every=3,
                    peers=["a", "b", "c"], virtual_nodes=2)
        svc.allocate("obj-1")
        svc.close_wal()
        recovered = AllocationService.recover(path)
        assert recovered.d == 1
        assert recovered.refresh_every == 3
        assert set(recovered.peer_ids) == {"a", "b", "c"}
        assert recovered._dht.virtual_nodes == 2


class TestChurnFloorRecords:
    def test_skip_events_recover_bit_identically(self, tmp_path):
        path = tmp_path / "svc.wal"
        svc = AllocationService(
            ["a", "b"], replication=2, d=2, seed=SEED, wal=path)
        svc.allocate("obj-1")
        resolved = svc.apply_churn(ChurnAction(time=0.0, kind="leave"))
        assert resolved["kind"] == "skip"
        svc.allocate("obj-2")
        svc.close_wal()
        recovered = AllocationService.recover(path)
        assert recovered.skips == 1
        assert recovered.placement_digest() == svc.placement_digest()
        # The skip consumed a churn-stream draw before the floor check;
        # recovery must have consumed it too, or the next victim differs.
        control = AllocationService(["a", "b"], replication=2, d=2, seed=SEED)
        control.allocate("obj-1")
        control.apply_churn(ChurnAction(time=0.0, kind="leave"))
        control.allocate("obj-2")
        recovered.apply_churn(ChurnAction(time=0.0, kind="join"))
        control.apply_churn(ChurnAction(time=0.0, kind="join"))
        assert (recovered.apply_churn(ChurnAction(time=0.0, kind="leave"))
                == control.apply_churn(ChurnAction(time=0.0, kind="leave")))
