"""Tests for the deterministic fault-injection harness."""

import json

import pytest

from repro.service import (
    AllocationService,
    FaultController,
    FaultDecision,
    FaultPlan,
    RetryingClient,
)

PEERS = [f"peer-{i}" for i in range(8)]


def fresh_service(**kw):
    defaults = dict(d=2, refresh_every=16, seed=9)
    defaults.update(kw)
    return AllocationService(PEERS, **defaults)


class TestFaultPlan:
    def test_generate_is_seed_deterministic(self):
        kw = dict(requests=200, drop_before_rate=0.05, drop_after_rate=0.05,
                  delay_rate=0.02, storm_count=2, kill_at=150)
        assert FaultPlan.generate(seed=4, **kw) == FaultPlan.generate(seed=4, **kw)
        assert FaultPlan.generate(seed=4, **kw) != FaultPlan.generate(seed=5, **kw)

    def test_json_round_trip(self):
        plan = FaultPlan(drop_before=(3, 1), drop_after=(7,),
                         delays=((2, 0.5),), kill_at=9, storms=((4, 6),))
        assert FaultPlan.from_json(plan.to_json()) == plan
        # Indices normalise to sorted unique tuples.
        assert plan.drop_before == (1, 3)

    def test_parse_inline_json_and_file(self, tmp_path):
        text = '{"drop_after": [5], "kill_at": 9}'
        inline = FaultPlan.parse(text)
        assert inline.drop_after == (5,) and inline.kill_at == 9
        path = tmp_path / "plan.json"
        path.write_text(text)
        assert FaultPlan.parse(str(path)) == inline

    def test_parse_rejects_garbage(self, tmp_path):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.parse("{nope")
        with pytest.raises(ValueError, match="cannot read"):
            FaultPlan.parse(str(tmp_path / "missing.json"))
        with pytest.raises(ValueError, match="unknown fault plan field"):
            FaultPlan.from_json('{"explode_at": 3}')
        with pytest.raises(ValueError, match="drop_before"):
            FaultPlan(drop_before=(-1,))
        with pytest.raises(ValueError, match="kill_at"):
            FaultPlan(kill_at=-2)


class TestFaultController:
    def test_decisions_follow_the_plan(self):
        plan = FaultPlan(drop_before=(1,), drop_after=(2,),
                         delays=((3, 0.25),), kill_at=4, storms=((5, 2),))
        controller = FaultController(plan)
        decisions = [controller.next_decision() for _ in range(6)]
        assert decisions[0] == FaultDecision(index=0)
        assert not decisions[0].any
        assert decisions[1].drop_before and decisions[1].any
        assert decisions[2].drop_after
        assert decisions[3].delay == 0.25
        assert decisions[4].kill
        assert decisions[5].storm == 2
        assert controller.counts == {
            "drop_before": 1, "drop_after": 1, "delay": 1, "kill": 1, "storm": 1,
        }
        assert controller.requests_seen == 6


class TestInjectedServer:
    def _drive(self, plan, requests=30):
        """One faulted wire run; returns (digest, retries, counts)."""
        controller = FaultController(plan)
        svc = fresh_service()
        addr = self._server_thread(svc, faults=controller)
        with RetryingClient(
            addr, client_id="t", timeout=2.0, max_attempts=20,
            backoff_base=0.01, backoff_cap=0.02, jitter_seed=5,
        ) as client:
            for i in range(requests):
                client.alloc(f"obj-{i}")
            stats = client.stats()
            retries = client.retries
        return stats["placement_digest"], retries, dict(controller.counts)

    @pytest.fixture(autouse=True)
    def _bind_server_thread(self, server_thread):
        self._server_thread = server_thread

    def test_drops_and_delays_leave_digest_unchanged(self):
        plan = FaultPlan(drop_before=(4,), drop_after=(11,), delays=((7, 0.03),))
        digest, retries, counts = self._drive(plan)
        ref = fresh_service()
        for i in range(30):
            ref.allocate(f"obj-{i}")
        assert digest == ref.placement_digest()
        assert retries == 2
        assert counts["drop_before"] == 1 and counts["drop_after"] == 1
        assert counts["delay"] == 1

    def test_same_plan_same_transcript(self):
        plan = FaultPlan.generate(
            seed=11, requests=40, drop_before_rate=0.08, drop_after_rate=0.08)
        assert self._drive(plan) == self._drive(plan)

    def test_churn_storm_applies_and_is_deterministic(self):
        plan = FaultPlan(storms=((5, 4),))
        runs = []
        for _ in range(2):
            controller = FaultController(plan)
            svc = fresh_service()
            addr = self._server_thread(svc, faults=controller)
            with RetryingClient(addr, client_id="t", jitter_seed=0) as client:
                for i in range(12):
                    client.alloc(f"obj-{i}")
                stats = client.stats()
            assert controller.counts["storm"] == 1
            runs.append((stats["placement_digest"], stats["churn"],
                         stats["load"]["per_peer"]))
        digest, churn, _ = runs[0]
        assert churn == {"joins": 2, "leaves": 2, "skips": 0}
        assert runs[0] == runs[1]

    def test_kill_decision_reported_not_tested_in_process(self):
        # kill_at actually SIGKILLs the hosting process, so in-process
        # tests only assert the decision; scripts/recovery_smoke.py kills
        # a real subprocess server.
        controller = FaultController(FaultPlan(kill_at=0))
        assert controller.next_decision().kill
