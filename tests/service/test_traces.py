"""Tests for open-loop trace and churn-schedule generation."""

import numpy as np
import pytest

from repro.service import (
    ChurnAction,
    TraceSpec,
    generate_churn_schedule,
    generate_trace,
)


class TestTraceSpecValidation:
    def test_rejects_negative_requests(self):
        with pytest.raises(ValueError, match="requests"):
            TraceSpec(requests=-1)

    def test_rejects_zero_users(self):
        with pytest.raises(ValueError, match="users"):
            TraceSpec(requests=1, users=0)

    def test_rejects_zero_objects(self):
        with pytest.raises(ValueError, match="objects"):
            TraceSpec(requests=1, objects=0)

    def test_rejects_nonpositive_zipf(self):
        with pytest.raises(ValueError, match="zipf_s"):
            TraceSpec(requests=1, zipf_s=0.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError, match="rate"):
            TraceSpec(requests=1, rate=0.0)

    def test_rejects_amplitude_of_one(self):
        with pytest.raises(ValueError, match="diurnal_amplitude"):
            TraceSpec(requests=1, diurnal_amplitude=1.0)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError, match="diurnal_period"):
            TraceSpec(requests=1, diurnal_period=0.0)


class TestGenerateTrace:
    SPEC = TraceSpec(requests=5000, users=1000, objects=500, rate=1000.0, seed=11)

    def test_shapes_and_ranges(self):
        tr = generate_trace(self.SPEC)
        assert tr.count == 5000
        assert tr.times.shape == tr.objects.shape == tr.users.shape == (5000,)
        assert np.all(np.diff(tr.times) >= 0)
        assert tr.times[0] > 0
        assert 0 <= tr.objects.min() and tr.objects.max() < 500
        assert 0 <= tr.users.min() and tr.users.max() < 1000

    def test_bit_identical_per_spec(self):
        a = generate_trace(self.SPEC)
        b = generate_trace(self.SPEC)
        np.testing.assert_array_equal(a.times, b.times)
        np.testing.assert_array_equal(a.objects, b.objects)
        np.testing.assert_array_equal(a.users, b.users)
        assert a.digest() == b.digest()

    def test_seed_changes_trace(self):
        other = generate_trace(
            TraceSpec(requests=5000, users=1000, objects=500, rate=1000.0, seed=12)
        )
        assert other.digest() != generate_trace(self.SPEC).digest()

    def test_empty_trace(self):
        tr = generate_trace(TraceSpec(requests=0))
        assert tr.count == 0
        assert tr.duration == 0.0
        assert list(tr.keys()) == []
        assert tr.digest() == generate_trace(TraceSpec(requests=0)).digest()

    def test_mean_rate_without_modulation(self):
        spec = TraceSpec(
            requests=20_000, rate=1000.0, diurnal_amplitude=0.0, seed=3
        )
        tr = generate_trace(spec)
        observed = tr.count / tr.duration
        assert observed == pytest.approx(1000.0, rel=0.05)

    def test_diurnal_modulation_shifts_density(self):
        # One full period; the rising half-sine [0, period/2] must carry
        # more arrivals than the falling half when the amplitude is high.
        spec = TraceSpec(
            requests=20_000,
            rate=1000.0,
            diurnal_amplitude=0.9,
            diurnal_period=20.0,
            seed=5,
        )
        tr = generate_trace(spec)
        half = tr.times[tr.times < 20.0]
        peak = np.sum((half >= 0.0) & (half < 10.0))
        trough = np.sum((half >= 10.0) & (half < 20.0))
        assert peak > 1.5 * trough

    def test_zipf_popularity_is_heavy_tailed(self):
        spec = TraceSpec(requests=20_000, objects=1000, zipf_s=1.2, seed=9)
        counts = np.bincount(generate_trace(spec).objects, minlength=1000)
        # The hottest object gets far more than the uniform share.
        assert counts.max() > 10 * (20_000 / 1000)

    def test_uniform_popularity_when_zipf_none(self):
        spec = TraceSpec(requests=20_000, objects=10, zipf_s=None, seed=9)
        counts = np.bincount(generate_trace(spec).objects, minlength=10)
        assert counts.max() < 1.2 * (20_000 / 10)

    def test_keys_are_object_addressed(self):
        tr = generate_trace(TraceSpec(requests=10, objects=5, seed=0))
        keys = list(tr.keys())
        assert keys == [f"obj-{int(o)}" for o in tr.objects]


class TestChurnSchedule:
    def test_sorted_within_duration(self):
        sched = generate_churn_schedule(50, 100.0, seed=2)
        times = [a.time for a in sched]
        assert times == sorted(times)
        assert all(0.0 <= t <= 100.0 for t in times)

    def test_join_probability_extremes(self):
        all_joins = generate_churn_schedule(20, 10.0, join_probability=1.0, seed=0)
        all_leaves = generate_churn_schedule(20, 10.0, join_probability=0.0, seed=0)
        assert {a.kind for a in all_joins} == {"join"}
        assert {a.kind for a in all_leaves} == {"leave"}

    def test_deterministic_per_seed(self):
        a = generate_churn_schedule(20, 10.0, seed=4)
        b = generate_churn_schedule(20, 10.0, seed=4)
        assert a == b

    def test_empty_schedule(self):
        assert generate_churn_schedule(0, 10.0, seed=0) == ()

    def test_validation(self):
        with pytest.raises(ValueError, match="events"):
            generate_churn_schedule(-1, 10.0)
        with pytest.raises(ValueError, match="duration"):
            generate_churn_schedule(1, -1.0)
        with pytest.raises(ValueError, match="join_probability"):
            generate_churn_schedule(1, 1.0, join_probability=1.5)

    def test_action_validation(self):
        with pytest.raises(ValueError, match="kind"):
            ChurnAction(time=0.0, kind="explode")
        with pytest.raises(ValueError, match="time"):
            ChurnAction(time=-1.0, kind="join")
