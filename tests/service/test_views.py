"""Tests for bounded-staleness views and the capacity-aware placer."""

import numpy as np
import pytest

from repro.p2p import ConsistentHashRing
from repro.p2p.hashing import point_sequence
from repro.service import DChoicePlacer, StaleLoadView


class TestStaleLoadView:
    def test_snapshot_is_frozen_until_refresh(self):
        live = {"a": 0, "b": 0}
        view = StaleLoadView(lambda: live, refresh_every=3)
        live["a"] = 7
        assert view.load_of("a") == 0  # decision sees the frozen copy
        view.tick()
        view.tick()
        assert view.load_of("a") == 0
        view.tick()  # third tick hits the bound
        assert view.load_of("a") == 7
        assert view.refreshes == 1
        assert view.age == 0

    def test_refresh_every_one_is_always_fresh(self):
        live = {"a": 0}
        view = StaleLoadView(lambda: live, refresh_every=1)
        live["a"] = 5
        view.tick()
        assert view.load_of("a") == 5

    def test_unseen_peer_reads_zero(self):
        view = StaleLoadView(lambda: {"a": 3}, refresh_every=10)
        assert view.load_of("joined-later") == 0

    def test_forced_refresh_resets_age(self):
        live = {"a": 0}
        view = StaleLoadView(lambda: live, refresh_every=10)
        view.tick()
        view.tick()
        assert view.age == 2
        live["a"] = 1
        view.refresh()
        assert view.age == 0
        assert view.load_of("a") == 1

    def test_rejects_bad_bound(self):
        with pytest.raises(ValueError, match="refresh_every"):
            StaleLoadView(lambda: {}, refresh_every=0)


class TestDChoicePlacer:
    def _ring(self):
        return ConsistentHashRing([f"peer-{i}" for i in range(6)])

    def test_candidates_match_point_sequence(self):
        ring = self._ring()
        placer = DChoicePlacer(ring, d=3)
        for key in ("obj-1", "obj-42", b"raw", 123):
            expected = [
                ring.peers[ring.lookup(p)].peer_id
                for p in point_sequence(key, 3)
            ]
            assert placer.candidates(key) == expected

    def test_prefers_less_loaded_candidate(self):
        ring = self._ring()
        placer = DChoicePlacer(ring, d=2)
        key = "obj-7"
        a, b = placer.candidates(key)
        if a == b:
            pytest.skip("both probes landed on one peer for this key")
        # Load peer `a` heavily relative to its capacity; `b` must win.
        loads = {a: 100 * placer.capacity_of(a), b: 0}
        view = StaleLoadView(lambda: loads, refresh_every=1)
        assert placer.place(key, view, tie_u=0.0) == b

    def test_capacity_awareness_not_raw_load(self):
        # Same raw load: the peer with more capacity has the smaller
        # (load+1)/capacity ratio and must win even though loads are equal.
        ring = self._ring()
        placer = DChoicePlacer(ring, d=2, resolution=10_000)
        key = next(
            k
            for k in (f"obj-{i}" for i in range(200))
            if len(set(placer.candidates(k))) == 2
            and placer.capacity_of(placer.candidates(k)[0])
            != placer.capacity_of(placer.candidates(k)[1])
        )
        a, b = placer.candidates(key)
        big = a if placer.capacity_of(a) > placer.capacity_of(b) else b
        loads = {a: 10, b: 10}
        view = StaleLoadView(lambda: loads, refresh_every=1)
        assert placer.place(key, view, tie_u=0.0) == big

    def test_d1_ignores_loads(self):
        ring = self._ring()
        placer = DChoicePlacer(ring, d=1)
        key = "obj-3"
        only = placer.candidates(key)[0]
        loads = {only: 10_000}
        view = StaleLoadView(lambda: loads, refresh_every=1)
        assert placer.place(key, view, tie_u=0.5) == only

    def test_tie_pick_is_positionally_aligned(self):
        # A duplicated candidate (both probes on one peer) is a singleton
        # after dedup: tie_u must not matter.
        ring = ConsistentHashRing(["solo"])
        placer = DChoicePlacer(ring, d=4, resolution=1000)
        view = StaleLoadView(lambda: {"solo": 5}, refresh_every=1)
        assert placer.place("k", view, 0.0) == placer.place("k", view, 0.999)

    def test_rejects_bad_d(self):
        with pytest.raises(ValueError, match="d must be"):
            DChoicePlacer(self._ring(), d=0)

    def test_resolution_floor_allows_many_peers(self):
        ring = ConsistentHashRing([f"p-{i}" for i in range(50)])
        placer = DChoicePlacer(ring, d=2, resolution=10)
        assert placer.resolution == 50
        caps = [placer.capacity_of(p.peer_id) for p in ring.peers]
        assert min(caps) >= 1
