"""Shared fixtures for the service tests: a stoppable threaded server."""

import asyncio
import threading

import pytest

from repro.service import run_server


class ServerThread:
    """`run_server` on a daemon thread with a clean cancel-based stop.

    Unlike the smoke scripts' fire-and-forget daemon threads, tests start
    many servers per session, so each one must release its socket: stop()
    cancels the serve task on its own loop and joins the thread.
    """

    def __init__(self, service, **server_kw):
        self.service = service
        self._started = threading.Event()
        self._error = None
        self.address = None
        self._loop = None
        self._task = None

        def runner():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop

            def announce(addr):
                self.address = addr
                self._started.set()

            async def serve():
                self._task = asyncio.current_task()
                await run_server(service, port=0, ready=announce, **server_kw)

            try:
                loop.run_until_complete(serve())
            except asyncio.CancelledError:
                pass
            except Exception as exc:  # pragma: no cover - surfaced via start()
                self._error = exc
                self._started.set()
            finally:
                loop.close()

        self._thread = threading.Thread(target=runner, daemon=True)
        self._thread.start()

    def start(self):
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("server did not start within 10s")
        if self._error is not None:
            raise RuntimeError(f"server failed to start: {self._error!r}")
        return self.address

    def stop(self):
        if self._loop is not None and self._task is not None:
            self._loop.call_soon_threadsafe(self._task.cancel)
        self._thread.join(timeout=10.0)


@pytest.fixture
def server_thread():
    """Factory: start a threaded server for a service, stop it at teardown."""
    servers = []

    def start(service, **server_kw):
        server = ServerThread(service, **server_kw)
        servers.append(server)
        return server.start()

    yield start
    for server in servers:
        server.stop()
