"""Tests for the CRC-framed write-ahead log: framing, torn tails, repair."""

import json
import struct
import zlib

import pytest

from repro.service.wal import (
    MAX_FRAME_BYTES,
    WAL_MAGIC,
    WalError,
    WalScan,
    WriteAheadLog,
)

RECORDS = [
    {"t": "meta", "format": "x", "seed": 1},
    {"t": "alloc", "k": "obj-1", "p": "peer-3"},
    {"t": "churn", "kind": "leave", "peer": "peer-0", "res": "leave"},
]


def write_log(path, records=RECORDS, **kw):
    with WriteAheadLog(path, **kw) as wal:
        for rec in records:
            wal.append(rec)
    return path


class TestRoundTrip:
    def test_append_scan_round_trip(self, tmp_path):
        path = write_log(tmp_path / "a.wal")
        scan = WriteAheadLog(path).scan()
        assert list(scan.records) == RECORDS
        assert scan.clean
        assert scan.torn_bytes == 0

    def test_reopen_and_continue(self, tmp_path):
        path = write_log(tmp_path / "a.wal")
        with WriteAheadLog(path) as wal:
            wal.append({"t": "alloc", "k": "obj-9", "p": "peer-1"})
        scan = WriteAheadLog(path).scan()
        assert len(scan.records) == len(RECORDS) + 1
        assert scan.records[-1]["k"] == "obj-9"

    def test_scan_sees_own_unflushed_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "a.wal", sync_every=100)
        wal.append({"x": 1})
        assert [dict(r) for r in wal.scan().records] == [{"x": 1}]
        wal.close()

    def test_missing_and_empty_files_scan_clean(self, tmp_path):
        assert WriteAheadLog(tmp_path / "nope.wal").scan() == WalScan((), 0, 0)
        (tmp_path / "empty.wal").write_bytes(b"")
        assert WriteAheadLog(tmp_path / "empty.wal").scan() == WalScan((), 0, 0)


class TestDurabilityBatching:
    def test_sync_every_one_fsyncs_per_append(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "a.wal", sync_every=1)
        for rec in RECORDS:
            wal.append(rec)
        assert wal.fsyncs == 3
        wal.close()
        assert wal.fsyncs == 3  # nothing left to sync

    def test_group_commit_batches_fsyncs(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "a.wal", sync_every=4)
        for i in range(10):
            wal.append({"i": i})
        assert wal.fsyncs == 2  # after records 4 and 8
        wal.flush()
        assert wal.fsyncs == 3
        wal.flush()  # idempotent: nothing unsynced
        assert wal.fsyncs == 3
        wal.close()

    def test_rejects_bad_sync_every(self, tmp_path):
        with pytest.raises(ValueError, match="sync_every"):
            WriteAheadLog(tmp_path / "a.wal", sync_every=0)


class TestTornTail:
    @pytest.mark.parametrize("cut", [1, 3, 5, 9, 14])
    def test_truncation_mid_frame_keeps_good_prefix(self, tmp_path, cut):
        path = write_log(tmp_path / "a.wal")
        blob = path.read_bytes()
        path.write_bytes(blob[:-cut])
        scan = WriteAheadLog(path).scan()
        assert not scan.clean
        # The last frame is torn; everything before it survives.
        assert list(scan.records) == RECORDS[:-1]
        assert scan.torn_bytes > 0

    def test_repair_quarantines_and_continues(self, tmp_path):
        path = write_log(tmp_path / "a.wal")
        blob = path.read_bytes()
        path.write_bytes(blob[:-5])
        wal = WriteAheadLog(path)
        scan = wal.repair()
        assert scan.clean
        assert list(scan.records) == RECORDS[:-1]
        sidecars = list(tmp_path.glob("a.wal.corrupt-*"))
        assert len(sidecars) == 1
        # The sidecar holds exactly the bytes that were cut out.
        assert sidecars[0].read_bytes() == blob[scan.good_bytes:-5]
        # Appending continues from the good prefix.
        wal.append({"t": "alloc", "k": "obj-2", "p": "peer-5"})
        wal.close()
        healed = WriteAheadLog(path).scan()
        assert healed.clean
        assert list(healed.records) == RECORDS[:-1] + [
            {"t": "alloc", "k": "obj-2", "p": "peer-5"}]

    def test_repair_of_clean_log_is_noop(self, tmp_path):
        path = write_log(tmp_path / "a.wal")
        scan = WriteAheadLog(path).repair()
        assert scan.clean
        assert not list(tmp_path.glob("*.corrupt-*"))

    def test_partial_magic_counts_as_torn(self, tmp_path):
        path = tmp_path / "a.wal"
        path.write_bytes(WAL_MAGIC[:4])
        wal = WriteAheadLog(path)
        scan = wal.scan()
        assert scan.records == () and not scan.clean
        assert wal.repair(scan).clean
        assert path.read_bytes() == b""

    def test_repair_refused_while_open(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "a.wal")
        wal.append({"x": 1})
        with pytest.raises(WalError, match="before the log is opened"):
            wal.repair()
        wal.close()


class TestCorruption:
    def test_crc_flip_quarantines_suffix(self, tmp_path):
        path = write_log(tmp_path / "a.wal")
        blob = bytearray(path.read_bytes())
        # Flip one payload byte inside the *second* frame.
        first_len = struct.unpack_from("<I", blob, len(WAL_MAGIC))[0]
        second_payload = len(WAL_MAGIC) + 8 + first_len + 8
        blob[second_payload] ^= 0xFF
        path.write_bytes(bytes(blob))
        scan = WriteAheadLog(path).scan()
        assert list(scan.records) == RECORDS[:1]
        assert not scan.clean
        repaired = WriteAheadLog(path).repair(scan)
        assert repaired.clean
        assert list(repaired.records) == RECORDS[:1]

    def test_absurd_length_field_is_corruption(self, tmp_path):
        path = tmp_path / "a.wal"
        payload = json.dumps({"x": 1}).encode()
        path.write_bytes(
            WAL_MAGIC
            + struct.pack("<II", MAX_FRAME_BYTES + 1, zlib.crc32(payload))
            + payload)
        scan = WriteAheadLog(path).scan()
        assert scan.records == () and not scan.clean

    def test_valid_frame_with_non_object_payload_is_corruption(self, tmp_path):
        path = tmp_path / "a.wal"
        payload = b"[1,2,3]"
        path.write_bytes(
            WAL_MAGIC + struct.pack("<II", len(payload), zlib.crc32(payload))
            + payload)
        scan = WriteAheadLog(path).scan()
        assert scan.records == () and not scan.clean

    def test_foreign_file_is_never_touched(self, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_text("precious user data, definitely not a WAL\n")
        before = path.read_bytes()
        wal = WriteAheadLog(path)
        with pytest.raises(WalError, match="bad magic"):
            wal.scan()
        with pytest.raises(WalError, match="bad magic"):
            wal.append({"x": 1})
        assert path.read_bytes() == before

    def test_oversized_record_rejected_at_append(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "a.wal")
        with pytest.raises(WalError, match="frame bound"):
            wal.append({"blob": "x" * (MAX_FRAME_BYTES + 1)})
        wal.close()
