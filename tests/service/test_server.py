"""Tests for the allocation service core and the asyncio front end."""

import asyncio
import json

import pytest

from repro.service import (
    AllocationService,
    ChurnAction,
    TraceSpec,
    generate_churn_schedule,
    generate_trace,
    run_server,
)

PEERS = [f"peer-{i}" for i in range(8)]
TRACE = generate_trace(
    TraceSpec(requests=3000, users=2000, objects=800, rate=500.0, seed=21)
)
SCHEDULE = generate_churn_schedule(6, TRACE.duration, seed=13)


def fresh_service(**kw):
    defaults = dict(d=2, refresh_every=32, seed=0)
    defaults.update(kw)
    return AllocationService(PEERS, **defaults)


class TestAllocate:
    def test_counts_and_digest_advance(self):
        svc = fresh_service()
        before = svc.placement_digest()
        pid = svc.allocate("obj-1")
        assert pid in svc.peer_ids
        assert svc.requests == 1
        assert svc.placement_digest() != before

    def test_loads_sum_to_requests_without_churn(self):
        svc = fresh_service()
        for i in range(200):
            svc.allocate(f"obj-{i}")
        assert sum(svc.stats()["load"]["per_peer"].values()) == 200


class TestDeterministicReplay:
    def test_bit_identical_across_runs(self):
        a = fresh_service().replay(TRACE, SCHEDULE, keep_placements=True)
        b = fresh_service().replay(TRACE, SCHEDULE, keep_placements=True)
        assert a.placement_digest == b.placement_digest
        assert a.placements == b.placements
        assert a.final_loads == b.final_loads
        assert a.trace_digest == TRACE.digest()

    def test_pace_does_not_change_decisions(self):
        fast = fresh_service().replay(TRACE, SCHEDULE)
        # Pace far above real time: finishes quickly but exercises the
        # throttled code path.
        paced = fresh_service().replay(TRACE, SCHEDULE, pace=1e6)
        assert paced.placement_digest == fast.placement_digest
        assert paced.final_loads == fast.final_loads

    def test_seed_changes_decisions(self):
        a = fresh_service(seed=0).replay(TRACE, SCHEDULE)
        b = fresh_service(seed=1).replay(TRACE, SCHEDULE)
        # Different tie/churn streams: the decision sequence must differ.
        assert a.placement_digest != b.placement_digest

    def test_staleness_bound_matters(self):
        fresh = fresh_service(refresh_every=1).replay(TRACE)
        stale = fresh_service(refresh_every=TRACE.count).replay(TRACE)
        assert fresh.placement_digest != stale.placement_digest
        # A fully stale view degenerates towards one-choice behaviour, so
        # the fresh view cannot be worse on this pinned trace.
        assert fresh.max_over_mean <= stale.max_over_mean

    def test_d2_beats_d1_on_pinned_trace(self):
        one = fresh_service(d=1).replay(TRACE)
        two = fresh_service(d=2).replay(TRACE)
        assert two.max_over_mean < one.max_over_mean

    def test_trailing_churn_applies(self):
        late = (ChurnAction(time=TRACE.duration + 100.0, kind="join"),)
        rep = fresh_service().replay(TRACE, late)
        assert rep.joins == 1

    def test_empty_trace_replay(self):
        rep = fresh_service().replay(
            generate_trace(TraceSpec(requests=0)), ()
        )
        assert rep.requests == 0
        assert rep.max_load == 0
        assert rep.placements == ()

    def test_rejects_negative_pace(self):
        with pytest.raises(ValueError, match="pace"):
            fresh_service().replay(TRACE, pace=-1.0)


class TestChurn:
    def test_join_starts_at_zero_load(self):
        svc = fresh_service()
        resolved = svc.apply_churn(ChurnAction(time=0.0, kind="join"))
        assert resolved["kind"] == "join"
        pid = resolved["peer_id"]
        assert pid in svc.peer_ids
        assert svc.stats()["load"]["per_peer"][pid] == 0

    def test_leave_drops_peer_and_counts(self):
        svc = fresh_service()
        for i in range(50):
            svc.allocate(f"obj-{i}")
        victim = svc.peer_ids[0]
        resolved = svc.apply_churn(
            ChurnAction(time=0.0, kind="leave", peer_id=victim)
        )
        assert resolved == {
            "kind": "leave",
            "peer_id": victim,
            "copies_moved": resolved["copies_moved"],
        }
        assert victim not in svc.peer_ids
        assert victim not in svc.stats()["load"]["per_peer"]

    def test_leave_at_floor_is_skip(self):
        svc = AllocationService(["a", "b"], replication=2, d=2, seed=0)
        resolved = svc.apply_churn(ChurnAction(time=0.0, kind="leave"))
        assert resolved["kind"] == "skip"
        assert resolved["copies_moved"] == 0
        assert set(svc.peer_ids) == {"a", "b"}
        assert svc.skips == 1

    def test_leave_unknown_peer_raises(self):
        with pytest.raises(KeyError):
            fresh_service().apply_churn(
                ChurnAction(time=0.0, kind="leave", peer_id="ghost")
            )

    def test_churn_forces_view_refresh(self):
        svc = fresh_service(refresh_every=1000)
        for i in range(10):
            svc.allocate(f"obj-{i}")
        assert svc.stats()["staleness"]["age"] == 10
        svc.apply_churn(ChurnAction(time=0.0, kind="join"))
        assert svc.stats()["staleness"]["age"] == 0


class TestStats:
    def test_shape(self):
        svc = fresh_service()
        for i in range(100):
            svc.allocate(f"obj-{i}")
        stats = svc.stats()
        assert stats["requests"] == 100
        assert stats["peers"] == len(PEERS)
        assert stats["d"] == 2
        assert stats["latency"]["samples"] == 100
        assert stats["latency"]["p99_ms"] >= stats["latency"]["p50_ms"] >= 0.0
        assert stats["load"]["max"] >= stats["load"]["mean"] > 0
        assert stats["load"]["max_over_mean"] >= 1.0
        assert len(stats["load"]["per_peer"]) == len(PEERS)
        assert stats["staleness"]["refresh_every"] == 32
        assert stats["churn"] == {"joins": 0, "leaves": 0, "skips": 0}
        assert stats["placement_digest"] == svc.placement_digest()

    def test_json_serialisable(self):
        svc = fresh_service()
        svc.allocate("obj-0")
        json.dumps(svc.stats())

    def test_empty_service(self):
        stats = fresh_service().stats()
        assert stats["requests"] == 0
        assert stats["load"]["max_over_mean"] == 0.0
        # An idle server has no latency distribution — None (JSON null),
        # not a fake 0 ms.
        assert stats["latency"]["p50_ms"] is None
        assert stats["latency"]["p99_ms"] is None
        assert stats["latency"]["samples"] == 0
        json.dumps(stats)  # null must serialise

    def test_error_and_dedup_counters_present(self):
        stats = fresh_service().stats()
        assert stats["errors"] == {
            "oversized": 0, "bad_json": 0, "handler": 0, "stale_seq": 0,
        }
        assert stats["dedup_hits"] == 0
        assert stats["wal"] is None


class TestAsyncServer:
    def _roundtrip(self, messages, svc=None, **server_kw):
        """Start a server, send each message, return the decoded replies.

        A message may be raw ``bytes`` (sent verbatim, newline included)
        instead of a dict — used to exercise the framing error paths.
        Pass ``svc`` to inspect service state after the exchange.
        """

        async def run():
            service = fresh_service() if svc is None else svc
            bound = {}
            server_task = asyncio.ensure_future(
                run_server(service, port=0,
                           ready=lambda addr: bound.update(addr=addr),
                           **server_kw)
            )
            try:
                for _ in range(100):
                    if bound:
                        break
                    await asyncio.sleep(0.01)
                assert bound, "server never published its address"
                host, port = bound["addr"]
                reader, writer = await asyncio.open_connection(host, port)
                replies = []
                for msg in messages:
                    if isinstance(msg, (bytes, bytearray)):
                        writer.write(bytes(msg))
                    else:
                        writer.write((json.dumps(msg) + "\n").encode())
                    await writer.drain()
                    replies.append(json.loads(await reader.readline()))
                writer.close()
                await writer.wait_closed()
                return replies
            finally:
                server_task.cancel()
                try:
                    await server_task
                except asyncio.CancelledError:
                    pass

        return asyncio.run(run())

    def test_ping_alloc_stats_churn(self):
        replies = self._roundtrip(
            [
                {"op": "ping"},
                {"op": "alloc", "key": "obj-1"},
                {"op": "churn", "kind": "join"},
                {"op": "stats"},
            ]
        )
        ping, alloc, churn, stats = replies
        assert ping == {"ok": True, "pong": True}
        assert alloc["ok"] and alloc["peer"] in PEERS
        assert churn["ok"] and churn["kind"] == "join"
        assert stats["ok"]
        assert stats["stats"]["requests"] == 1
        assert stats["stats"]["churn"]["joins"] == 1

    def test_error_paths(self):
        replies = self._roundtrip(
            [
                {"op": "alloc"},
                {"op": "churn", "kind": "explode"},
                {"op": "churn", "kind": "leave", "peer_id": "ghost"},
                {"op": "warp"},
            ]
        )
        assert all(not r["ok"] for r in replies)
        assert "key" in replies[0]["error"]
        assert "join" in replies[1]["error"]
        assert "ghost" in replies[2]["error"]
        assert "unknown op" in replies[3]["error"]

    def test_malformed_json_reports_error(self):
        async def run():
            svc = fresh_service()
            bound = {}
            task = asyncio.ensure_future(
                run_server(svc, port=0, ready=lambda a: bound.update(addr=a))
            )
            try:
                while not bound:
                    await asyncio.sleep(0.01)
                reader, writer = await asyncio.open_connection(*bound["addr"])
                writer.write(b"this is not json\n")
                await writer.drain()
                reply = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return reply
            finally:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass

        reply = asyncio.run(run())
        assert not reply["ok"]
        assert "bad json" in reply["error"]


class TestGracefulDegradation:
    """The connection must survive every malformed or failing request.

    These pin the PR-10 fixes: pre-fix, an oversized line tripped
    asyncio's 64 KiB readline limit and any ``_handle_request`` exception
    propagated — both killed the connection with no reply, so each of
    these tests would hang or fail on the old ``_serve_connection``.
    """

    _roundtrip = TestAsyncServer._roundtrip

    def test_oversized_line_gets_error_and_connection_survives(self):
        svc = fresh_service()
        big = b'{"op": "alloc", "key": "' + b"x" * 200_000 + b'"}\n'
        replies = self._roundtrip([big, {"op": "ping"}], svc=svc)
        assert not replies[0]["ok"]
        assert "exceeds" in replies[0]["error"]
        # The follow-up request on the same connection still works.
        assert replies[1] == {"ok": True, "pong": True}
        assert svc.errors["oversized"] == 1
        assert svc.requests == 0  # the oversized alloc never ran

    def test_oversized_bound_is_configurable(self):
        svc = fresh_service()
        line = b'{"op": "ping", "pad": "' + b"y" * 300 + b'"}\n'
        replies = self._roundtrip(
            [line, {"op": "ping"}], svc=svc, max_line_bytes=256)
        assert not replies[0]["ok"] and "256" in replies[0]["error"]
        assert replies[1]["ok"]

    def test_handler_exception_gets_error_and_connection_survives(self):
        svc = fresh_service()

        def explode(key, view, tie_u):
            raise RuntimeError("placer blew up")

        svc._placer.place = explode
        replies = self._roundtrip(
            [{"op": "alloc", "key": "obj-1"}, {"op": "ping"}], svc=svc)
        assert not replies[0]["ok"]
        assert "internal error" in replies[0]["error"]
        assert "placer blew up" in replies[0]["error"]
        assert replies[1] == {"ok": True, "pong": True}
        assert svc.errors["handler"] == 1

    def test_non_object_json_reports_error(self):
        replies = self._roundtrip([b"[1, 2, 3]\n", {"op": "ping"}])
        assert not replies[0]["ok"]
        assert "JSON object" in replies[0]["error"]
        assert replies[1]["ok"]

    def test_bad_json_counts_in_stats(self):
        svc = fresh_service()
        self._roundtrip([b"not json\n", b"[]\n"], svc=svc)
        assert svc.errors["bad_json"] == 2
        assert svc.stats()["errors"]["bad_json"] == 2


class TestIdempotentRequests:
    _roundtrip = TestAsyncServer._roundtrip

    def test_duplicate_seq_replays_reply_without_replacing(self):
        svc = fresh_service()
        replies = self._roundtrip(
            [
                {"op": "alloc", "key": "obj-1", "client": "c", "seq": 1},
                {"op": "alloc", "key": "obj-1", "client": "c", "seq": 1},
                {"op": "alloc", "key": "obj-2", "client": "c", "seq": 2},
            ],
            svc=svc,
        )
        first, dup, nxt = replies
        assert first["ok"] and first["dup"] is False
        assert dup["ok"] and dup["dup"] is True
        assert dup["peer"] == first["peer"]
        assert nxt["ok"] and nxt["dup"] is False
        # The duplicate placed nothing and consumed no tie draw.
        assert svc.requests == 2
        assert svc.dedup_hits == 1
        ref = fresh_service()
        ref.allocate("obj-1")
        ref.allocate("obj-2")
        assert svc.placement_digest() == ref.placement_digest()

    def test_stale_seq_is_structured_error(self):
        svc = fresh_service()
        replies = self._roundtrip(
            [
                {"op": "alloc", "key": "obj-1", "client": "c", "seq": 5},
                {"op": "alloc", "key": "obj-1", "client": "c", "seq": 3},
                {"op": "ping"},
            ],
            svc=svc,
        )
        assert replies[0]["ok"]
        assert not replies[1]["ok"]
        assert "below the last applied" in replies[1]["error"]
        assert replies[2]["ok"]
        assert svc.errors["stale_seq"] == 1

    def test_duplicate_churn_seq_replays_resolution(self):
        svc = fresh_service()
        replies = self._roundtrip(
            [
                {"op": "churn", "kind": "join", "client": "c", "seq": 1},
                {"op": "churn", "kind": "join", "client": "c", "seq": 1},
            ],
            svc=svc,
        )
        assert replies[0]["ok"] and replies[0]["dup"] is False
        assert replies[1]["ok"] and replies[1]["dup"] is True
        assert replies[1]["peer_id"] == replies[0]["peer_id"]
        assert svc.joins == 1

    def test_client_without_seq_rejected(self):
        replies = self._roundtrip(
            [
                {"op": "alloc", "key": "k", "client": "c"},
                {"op": "alloc", "key": "k", "client": "c", "seq": "seven"},
            ]
        )
        assert not replies[0]["ok"] and "both" in replies[0]["error"]
        assert not replies[1]["ok"] and "integer" in replies[1]["error"]
