"""Tests for the allocation service core and the asyncio front end."""

import asyncio
import json

import pytest

from repro.service import (
    AllocationService,
    ChurnAction,
    TraceSpec,
    generate_churn_schedule,
    generate_trace,
    run_server,
)

PEERS = [f"peer-{i}" for i in range(8)]
TRACE = generate_trace(
    TraceSpec(requests=3000, users=2000, objects=800, rate=500.0, seed=21)
)
SCHEDULE = generate_churn_schedule(6, TRACE.duration, seed=13)


def fresh_service(**kw):
    defaults = dict(d=2, refresh_every=32, seed=0)
    defaults.update(kw)
    return AllocationService(PEERS, **defaults)


class TestAllocate:
    def test_counts_and_digest_advance(self):
        svc = fresh_service()
        before = svc.placement_digest()
        pid = svc.allocate("obj-1")
        assert pid in svc.peer_ids
        assert svc.requests == 1
        assert svc.placement_digest() != before

    def test_loads_sum_to_requests_without_churn(self):
        svc = fresh_service()
        for i in range(200):
            svc.allocate(f"obj-{i}")
        assert sum(svc.stats()["load"]["per_peer"].values()) == 200


class TestDeterministicReplay:
    def test_bit_identical_across_runs(self):
        a = fresh_service().replay(TRACE, SCHEDULE, keep_placements=True)
        b = fresh_service().replay(TRACE, SCHEDULE, keep_placements=True)
        assert a.placement_digest == b.placement_digest
        assert a.placements == b.placements
        assert a.final_loads == b.final_loads
        assert a.trace_digest == TRACE.digest()

    def test_pace_does_not_change_decisions(self):
        fast = fresh_service().replay(TRACE, SCHEDULE)
        # Pace far above real time: finishes quickly but exercises the
        # throttled code path.
        paced = fresh_service().replay(TRACE, SCHEDULE, pace=1e6)
        assert paced.placement_digest == fast.placement_digest
        assert paced.final_loads == fast.final_loads

    def test_seed_changes_decisions(self):
        a = fresh_service(seed=0).replay(TRACE, SCHEDULE)
        b = fresh_service(seed=1).replay(TRACE, SCHEDULE)
        # Different tie/churn streams: the decision sequence must differ.
        assert a.placement_digest != b.placement_digest

    def test_staleness_bound_matters(self):
        fresh = fresh_service(refresh_every=1).replay(TRACE)
        stale = fresh_service(refresh_every=TRACE.count).replay(TRACE)
        assert fresh.placement_digest != stale.placement_digest
        # A fully stale view degenerates towards one-choice behaviour, so
        # the fresh view cannot be worse on this pinned trace.
        assert fresh.max_over_mean <= stale.max_over_mean

    def test_d2_beats_d1_on_pinned_trace(self):
        one = fresh_service(d=1).replay(TRACE)
        two = fresh_service(d=2).replay(TRACE)
        assert two.max_over_mean < one.max_over_mean

    def test_trailing_churn_applies(self):
        late = (ChurnAction(time=TRACE.duration + 100.0, kind="join"),)
        rep = fresh_service().replay(TRACE, late)
        assert rep.joins == 1

    def test_empty_trace_replay(self):
        rep = fresh_service().replay(
            generate_trace(TraceSpec(requests=0)), ()
        )
        assert rep.requests == 0
        assert rep.max_load == 0
        assert rep.placements == ()

    def test_rejects_negative_pace(self):
        with pytest.raises(ValueError, match="pace"):
            fresh_service().replay(TRACE, pace=-1.0)


class TestChurn:
    def test_join_starts_at_zero_load(self):
        svc = fresh_service()
        resolved = svc.apply_churn(ChurnAction(time=0.0, kind="join"))
        assert resolved["kind"] == "join"
        pid = resolved["peer_id"]
        assert pid in svc.peer_ids
        assert svc.stats()["load"]["per_peer"][pid] == 0

    def test_leave_drops_peer_and_counts(self):
        svc = fresh_service()
        for i in range(50):
            svc.allocate(f"obj-{i}")
        victim = svc.peer_ids[0]
        resolved = svc.apply_churn(
            ChurnAction(time=0.0, kind="leave", peer_id=victim)
        )
        assert resolved == {
            "kind": "leave",
            "peer_id": victim,
            "copies_moved": resolved["copies_moved"],
        }
        assert victim not in svc.peer_ids
        assert victim not in svc.stats()["load"]["per_peer"]

    def test_leave_at_floor_is_skip(self):
        svc = AllocationService(["a", "b"], replication=2, d=2, seed=0)
        resolved = svc.apply_churn(ChurnAction(time=0.0, kind="leave"))
        assert resolved["kind"] == "skip"
        assert resolved["copies_moved"] == 0
        assert set(svc.peer_ids) == {"a", "b"}
        assert svc.skips == 1

    def test_leave_unknown_peer_raises(self):
        with pytest.raises(KeyError):
            fresh_service().apply_churn(
                ChurnAction(time=0.0, kind="leave", peer_id="ghost")
            )

    def test_churn_forces_view_refresh(self):
        svc = fresh_service(refresh_every=1000)
        for i in range(10):
            svc.allocate(f"obj-{i}")
        assert svc.stats()["staleness"]["age"] == 10
        svc.apply_churn(ChurnAction(time=0.0, kind="join"))
        assert svc.stats()["staleness"]["age"] == 0


class TestStats:
    def test_shape(self):
        svc = fresh_service()
        for i in range(100):
            svc.allocate(f"obj-{i}")
        stats = svc.stats()
        assert stats["requests"] == 100
        assert stats["peers"] == len(PEERS)
        assert stats["d"] == 2
        assert stats["latency"]["samples"] == 100
        assert stats["latency"]["p99_ms"] >= stats["latency"]["p50_ms"] >= 0.0
        assert stats["load"]["max"] >= stats["load"]["mean"] > 0
        assert stats["load"]["max_over_mean"] >= 1.0
        assert len(stats["load"]["per_peer"]) == len(PEERS)
        assert stats["staleness"]["refresh_every"] == 32
        assert stats["churn"] == {"joins": 0, "leaves": 0, "skips": 0}
        assert stats["placement_digest"] == svc.placement_digest()

    def test_json_serialisable(self):
        svc = fresh_service()
        svc.allocate("obj-0")
        json.dumps(svc.stats())

    def test_empty_service(self):
        stats = fresh_service().stats()
        assert stats["requests"] == 0
        assert stats["load"]["max_over_mean"] == 0.0
        assert stats["latency"]["p50_ms"] == 0.0


class TestAsyncServer:
    def _roundtrip(self, messages):
        """Start a server, send each message, return the decoded replies."""

        async def run():
            svc = fresh_service()
            bound = {}
            server_task = asyncio.ensure_future(
                run_server(svc, port=0, ready=lambda addr: bound.update(addr=addr))
            )
            try:
                for _ in range(100):
                    if bound:
                        break
                    await asyncio.sleep(0.01)
                assert bound, "server never published its address"
                host, port = bound["addr"]
                reader, writer = await asyncio.open_connection(host, port)
                replies = []
                for msg in messages:
                    writer.write((json.dumps(msg) + "\n").encode())
                    await writer.drain()
                    replies.append(json.loads(await reader.readline()))
                writer.close()
                await writer.wait_closed()
                return replies
            finally:
                server_task.cancel()
                try:
                    await server_task
                except asyncio.CancelledError:
                    pass

        return asyncio.run(run())

    def test_ping_alloc_stats_churn(self):
        replies = self._roundtrip(
            [
                {"op": "ping"},
                {"op": "alloc", "key": "obj-1"},
                {"op": "churn", "kind": "join"},
                {"op": "stats"},
            ]
        )
        ping, alloc, churn, stats = replies
        assert ping == {"ok": True, "pong": True}
        assert alloc["ok"] and alloc["peer"] in PEERS
        assert churn["ok"] and churn["kind"] == "join"
        assert stats["ok"]
        assert stats["stats"]["requests"] == 1
        assert stats["stats"]["churn"]["joins"] == 1

    def test_error_paths(self):
        replies = self._roundtrip(
            [
                {"op": "alloc"},
                {"op": "churn", "kind": "explode"},
                {"op": "churn", "kind": "leave", "peer_id": "ghost"},
                {"op": "warp"},
            ]
        )
        assert all(not r["ok"] for r in replies)
        assert "key" in replies[0]["error"]
        assert "join" in replies[1]["error"]
        assert "ghost" in replies[2]["error"]
        assert "unknown op" in replies[3]["error"]

    def test_malformed_json_reports_error(self):
        async def run():
            svc = fresh_service()
            bound = {}
            task = asyncio.ensure_future(
                run_server(svc, port=0, ready=lambda a: bound.update(addr=a))
            )
            try:
                while not bound:
                    await asyncio.sleep(0.01)
                reader, writer = await asyncio.open_connection(*bound["addr"])
                writer.write(b"this is not json\n")
                await writer.drain()
                reply = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return reply
            finally:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass

        reply = asyncio.run(run())
        assert not reply["ok"]
        assert "bad json" in reply["error"]
