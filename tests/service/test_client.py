"""Tests for the retrying client: timeouts, backoff, idempotent retries."""

import socket

import pytest

from repro.service import (
    AllocationService,
    ClientError,
    FaultController,
    FaultPlan,
    RetryingClient,
)

PEERS = [f"peer-{i}" for i in range(8)]


def fresh_service(**kw):
    defaults = dict(d=2, refresh_every=16, seed=3)
    defaults.update(kw)
    return AllocationService(PEERS, **defaults)


def dead_port() -> int:
    """A port nothing is listening on (bound then immediately released)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestHappyPath:
    def test_ops_round_trip(self, server_thread):
        svc = fresh_service()
        addr = server_thread(svc)
        with RetryingClient(addr, client_id="t", jitter_seed=0) as client:
            assert client.ping()
            peer = client.alloc("obj-1")
            assert peer in PEERS
            resolved = client.churn("join")
            assert resolved["kind"] == "join"
            stats = client.stats()
            assert stats["requests"] == 1
            assert client.retries == 0

    def test_matches_direct_service_calls(self, server_thread):
        svc = fresh_service()
        addr = server_thread(svc)
        ref = fresh_service()
        with RetryingClient(addr, client_id="t", jitter_seed=0) as client:
            for i in range(60):
                assert client.alloc(f"obj-{i}") == ref.allocate(f"obj-{i}")
        assert svc.placement_digest() == ref.placement_digest()


class TestRetries:
    def test_retries_through_drops_without_double_placing(self, server_thread):
        plan = FaultPlan(drop_before=(2,), drop_after=(5,))
        controller = FaultController(plan)
        svc = fresh_service()
        addr = server_thread(svc, faults=controller)
        ref = fresh_service()
        with RetryingClient(
            addr, client_id="t", timeout=2.0, max_attempts=10,
            backoff_base=0.01, backoff_cap=0.02, jitter_seed=1,
        ) as client:
            for i in range(20):
                assert client.alloc(f"obj-{i}") == ref.allocate(f"obj-{i}")
            assert client.retries == 2
            assert client.reconnects == 2
            # The drop_after request was applied before the connection
            # died, so its retry was served from the dedup table.
            assert client.dup_replies == 1
        assert svc.placement_digest() == ref.placement_digest()
        assert svc.requests == 20
        assert controller.counts["drop_before"] == 1
        assert controller.counts["drop_after"] == 1

    def test_gives_up_after_max_attempts(self):
        sleeps = []
        client = RetryingClient(
            ("127.0.0.1", dead_port()), client_id="t", timeout=0.2,
            max_attempts=3, jitter_seed=0, sleep=sleeps.append,
        )
        with pytest.raises(ClientError, match="after 3 attempt"):
            client.ping()
        assert len(sleeps) == 2  # a backoff before each retry, none before the first

    def test_server_error_reply_is_not_retried(self, server_thread):
        addr = server_thread(fresh_service())
        with RetryingClient(addr, client_id="t", jitter_seed=0) as client:
            with pytest.raises(ClientError, match="server error"):
                client.churn("leave", peer_id="ghost")
            assert client.retries == 0


class TestBackoff:
    def _sleep_schedule(self, seed, attempts=5):
        sleeps = []
        client = RetryingClient(
            ("127.0.0.1", dead_port()), client_id="t", timeout=0.05,
            max_attempts=attempts, backoff_base=0.05, backoff_cap=0.4,
            jitter_seed=seed, sleep=sleeps.append,
        )
        with pytest.raises(ClientError):
            client.ping()
        return sleeps

    def test_jitter_is_seed_deterministic(self):
        assert self._sleep_schedule(seed=7) == self._sleep_schedule(seed=7)
        assert self._sleep_schedule(seed=7) != self._sleep_schedule(seed=8)

    def test_backoff_grows_and_caps(self):
        sleeps = self._sleep_schedule(seed=0, attempts=8)
        # Jitter is in [0.5x, 1.5x): every delay stays inside the jittered
        # envelope of min(cap, base * 2^k).
        base, cap = 0.05, 0.4
        for k, delay in enumerate(sleeps):
            envelope = min(cap, base * 2 ** k)
            assert 0.5 * envelope <= delay < 1.5 * envelope
        # The cap actually binds by the end of the schedule.
        assert sleeps[-1] < 1.5 * cap

    def test_rejects_bad_max_attempts(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryingClient(("127.0.0.1", 1), client_id="t", max_attempts=0)
