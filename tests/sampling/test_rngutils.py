"""Tests for RNG stream management."""

import numpy as np
import pytest

from repro.sampling import (
    RngStreamPool,
    derive_substream,
    make_rng,
    spawn_rngs,
    spawn_seed_sequences,
)


class TestMakeRng:
    def test_from_int(self):
        a = make_rng(7).random(4)
        b = make_rng(7).random(4)
        np.testing.assert_array_equal(a, b)

    def test_from_none(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert make_rng(g) is g

    def test_from_seed_sequence(self):
        ss = np.random.SeedSequence(5)
        a = make_rng(ss).random()
        b = make_rng(np.random.SeedSequence(5)).random()
        assert a == b


class TestSpawn:
    def test_count(self):
        assert len(spawn_seed_sequences(0, 7)) == 7

    def test_negative_count(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_seed_sequences(0, -1)

    def test_streams_differ(self):
        rngs = spawn_rngs(3, 4)
        draws = [g.random(8).tolist() for g in rngs]
        assert len({tuple(d) for d in draws}) == 4

    def test_reproducible(self):
        a = [g.random() for g in spawn_rngs(11, 3)]
        b = [g.random() for g in spawn_rngs(11, 3)]
        assert a == b


class TestDeriveSubstream:
    def test_same_path_same_stream(self):
        a = derive_substream(1, 3, 2).random(5)
        b = derive_substream(1, 3, 2).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_paths_differ(self):
        a = derive_substream(1, 0).random(5)
        b = derive_substream(1, 1).random(5)
        assert not np.array_equal(a, b)

    def test_rejects_negative_path(self):
        with pytest.raises(ValueError, match="non-negative"):
            derive_substream(1, -2)


class TestRngStreamPool:
    def test_same_index_same_child_seed(self):
        pool = RngStreamPool(9)
        a = pool.stream(4).random(3)
        b = pool.stream(4).random(3)
        np.testing.assert_array_equal(a, b)

    def test_indices_independent_of_request_order(self):
        p1 = RngStreamPool(9)
        p2 = RngStreamPool(9)
        late = p1.stream(5).random()
        _ = [p2.stream(i) for i in range(5)]
        early_then = p2.stream(5).random()
        assert late == early_then

    def test_streams_list(self):
        pool = RngStreamPool(2)
        assert len(pool.streams(6)) == 6

    def test_negative_index(self):
        with pytest.raises(IndexError):
            RngStreamPool(0).stream(-1)

    def test_entropy_exposed(self):
        assert RngStreamPool(1234).seed_entropy() == (1234,)

    def test_iteration(self):
        pool = RngStreamPool(5)
        it = iter(pool)
        first = next(it)
        second = next(it)
        assert first.random() != second.random()
