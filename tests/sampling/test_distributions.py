"""Tests for probability models over bins."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling import (
    CustomProbability,
    PowerProbability,
    ProportionalProbability,
    ThresholdProbability,
    UniformProbability,
    probability_model,
)

CAPS = np.array([1, 2, 3, 10])


class TestProportional:
    def test_weights(self):
        w = ProportionalProbability().weights(CAPS)
        np.testing.assert_allclose(w, CAPS / CAPS.sum())

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="positive"):
            ProportionalProbability().weights([1, 0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            ProportionalProbability().weights([])

    def test_name(self):
        assert ProportionalProbability().name == "proportional"

    def test_sampler_backends(self):
        from repro.sampling import AliasSampler, CdfSampler

        model = ProportionalProbability()
        assert isinstance(model.sampler(CAPS), AliasSampler)
        assert isinstance(model.sampler(CAPS, method="cdf"), CdfSampler)

    def test_sampler_bad_method(self):
        with pytest.raises(ValueError, match="unknown sampler method"):
            ProportionalProbability().sampler(CAPS, method="magic")


class TestUniform:
    def test_weights_ignore_capacities(self):
        w = UniformProbability().weights(CAPS)
        np.testing.assert_allclose(w, [0.25] * 4)


class TestPower:
    def test_t1_is_proportional(self):
        np.testing.assert_allclose(
            PowerProbability(1.0).weights(CAPS),
            ProportionalProbability().weights(CAPS),
        )

    def test_t0_is_uniform(self):
        np.testing.assert_allclose(
            PowerProbability(0.0).weights(CAPS),
            UniformProbability().weights(CAPS),
        )

    def test_t2(self):
        w = PowerProbability(2.0).weights([1, 3])
        np.testing.assert_allclose(w, [0.1, 0.9])

    def test_negative_exponent_favours_small(self):
        w = PowerProbability(-1.0).weights([1, 10])
        assert w[0] > w[1]

    def test_large_exponent_numerically_stable(self):
        w = PowerProbability(200.0).weights([1, 2, 1000])
        assert np.isfinite(w).all()
        assert w[2] == pytest.approx(1.0)

    def test_rejects_nan_exponent(self):
        with pytest.raises(ValueError, match="finite"):
            PowerProbability(float("nan"))

    def test_repr_mentions_exponent(self):
        assert "2.5" in repr(PowerProbability(2.5))


class TestThreshold:
    def test_mass_on_eligible_only(self):
        w = ThresholdProbability(3).weights(CAPS)
        np.testing.assert_allclose(w, [0.0, 0.0, 0.5, 0.5])

    def test_all_eligible(self):
        w = ThresholdProbability(1).weights(CAPS)
        np.testing.assert_allclose(w, [0.25] * 4)

    def test_no_eligible_raises(self):
        with pytest.raises(ValueError, match="no bin has capacity"):
            ThresholdProbability(100).weights(CAPS)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError, match="positive"):
            ThresholdProbability(0)

    def test_theorem5_setting(self):
        """Half the bins with capacity q get probability 1/(alpha n)."""
        caps = np.array([1] * 50 + [8] * 50)
        w = ThresholdProbability(8).weights(caps)
        assert np.allclose(w[50:], 1.0 / 50)
        assert np.all(w[:50] == 0)


class TestCustom:
    def test_normalises(self):
        m = CustomProbability([2, 2])
        np.testing.assert_allclose(m.weights([5, 7]), [0.5, 0.5])

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            CustomProbability([1, 2]).weights([1, 2, 3])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CustomProbability([-1, 2])

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            CustomProbability([0, 0])

    def test_returns_copy(self):
        m = CustomProbability([1, 1])
        w = m.weights([1, 1])
        w[0] = 99
        np.testing.assert_allclose(m.weights([1, 1]), [0.5, 0.5])


class TestCoercion:
    def test_instance_passthrough(self):
        m = PowerProbability(2)
        assert probability_model(m) is m

    def test_string_proportional(self):
        assert isinstance(probability_model("proportional"), ProportionalProbability)

    def test_string_uniform(self):
        assert isinstance(probability_model("uniform"), UniformProbability)

    def test_unknown_string(self):
        with pytest.raises(ValueError, match="unknown probability model"):
            probability_model("quadratic")

    def test_power_tuple(self):
        m = probability_model(("power", 1.5))
        assert isinstance(m, PowerProbability)
        assert m.exponent == 1.5

    def test_threshold_tuple(self):
        m = probability_model(("threshold", 4))
        assert isinstance(m, ThresholdProbability)
        assert m.min_capacity == 4

    def test_unknown_tuple(self):
        with pytest.raises(ValueError, match="unknown parameterised"):
            probability_model(("zipf", 2))

    def test_raw_vector_becomes_custom(self):
        m = probability_model([1, 2, 3])
        assert isinstance(m, CustomProbability)


@settings(max_examples=50, deadline=None)
@given(
    caps=st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=30),
    t=st.floats(min_value=-3, max_value=6),
)
def test_power_weights_are_distribution_and_monotone(caps, t):
    """Property: power weights are a distribution and ordered consistently
    with capacities (increasing for t>0, decreasing for t<0)."""
    w = PowerProbability(t).weights(caps)
    assert np.isclose(w.sum(), 1.0)
    assert np.all(w >= 0)
    caps_arr = np.asarray(caps, dtype=float)
    order = np.argsort(caps_arr)
    sorted_w = w[order]
    if t > 0:
        assert np.all(np.diff(sorted_w) >= -1e-12)
    elif t < 0:
        assert np.all(np.diff(sorted_w) <= 1e-12)
