"""Tests for the CDF-inversion sampler."""

import numpy as np
import pytest

from repro.sampling import CdfSampler


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            CdfSampler([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            CdfSampler([-1.0, 2.0])

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError, match="positive"):
            CdfSampler([0, 0, 0])

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError, match="finite"):
            CdfSampler([np.inf, 1.0])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            CdfSampler(np.ones((2, 2)))

    def test_probabilities(self):
        s = CdfSampler([2, 2])
        np.testing.assert_allclose(s.probabilities, [0.5, 0.5])

    def test_n(self):
        assert CdfSampler([1, 2, 3]).n == 3


class TestSampling:
    def test_zero_weight_never_drawn(self):
        s = CdfSampler([0.0, 1.0, 0.0])
        draws = s.sample(10_000, np.random.default_rng(0))
        assert set(np.unique(draws)) == {1}

    def test_leading_zero_weight_never_drawn(self):
        """Regression guard for the side='right' convention: outcome 0 with
        weight 0 has a zero-width CDF interval at the origin."""
        s = CdfSampler([0.0, 1.0])
        draws = s.sample(50_000, np.random.default_rng(1))
        assert draws.min() == 1

    def test_shapes(self):
        s = CdfSampler([1, 1])
        assert s.sample((3, 4), np.random.default_rng(2)).shape == (3, 4)

    def test_deterministic_given_seed(self):
        s = CdfSampler([1, 2, 3])
        a = s.sample(64, np.random.default_rng(9))
        b = s.sample(64, np.random.default_rng(9))
        np.testing.assert_array_equal(a, b)

    def test_sample_one_range(self):
        s = CdfSampler([5, 5])
        assert s.sample_one(np.random.default_rng(3)) in (0, 1)

    def test_empirical_frequencies(self):
        w = np.array([1.0, 4.0])
        s = CdfSampler(w)
        draws = s.sample(100_000, np.random.default_rng(4))
        frac1 = np.mean(draws == 1)
        assert frac1 == pytest.approx(0.8, abs=0.01)
