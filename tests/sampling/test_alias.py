"""Unit and statistical tests for the Vose alias sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling import AliasSampler, CdfSampler


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            AliasSampler([])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            AliasSampler([[1.0, 2.0]])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            AliasSampler([1.0, -0.5])

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError, match="positive"):
            AliasSampler([0.0, 0.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            AliasSampler([1.0, float("nan")])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            AliasSampler([1.0, float("inf")])

    def test_single_outcome(self):
        s = AliasSampler([3.0])
        assert s.n == 1
        assert np.all(s.sample(100, np.random.default_rng(0)) == 0)

    def test_probabilities_normalised(self):
        s = AliasSampler([1, 3])
        np.testing.assert_allclose(s.probabilities, [0.25, 0.75])

    def test_probabilities_read_only(self):
        s = AliasSampler([1, 2])
        with pytest.raises(ValueError):
            s.probabilities[0] = 0.9

    def test_unnormalised_weights_accepted(self):
        a = AliasSampler([2, 6])
        b = AliasSampler([0.25, 0.75])
        np.testing.assert_allclose(a.probabilities, b.probabilities)


class TestSampling:
    def test_shape_int(self):
        s = AliasSampler([1, 1, 1])
        assert s.sample(17, np.random.default_rng(1)).shape == (17,)

    def test_shape_tuple(self):
        s = AliasSampler([1, 1, 1])
        assert s.sample((4, 5), np.random.default_rng(1)).shape == (4, 5)

    def test_dtype_int64(self):
        s = AliasSampler([1, 2])
        assert s.sample(10, np.random.default_rng(2)).dtype == np.int64

    def test_range(self):
        s = AliasSampler([1, 2, 3, 4])
        draws = s.sample(1000, np.random.default_rng(3))
        assert draws.min() >= 0
        assert draws.max() <= 3

    def test_zero_weight_never_drawn(self):
        s = AliasSampler([1.0, 0.0, 1.0])
        draws = s.sample(20_000, np.random.default_rng(4))
        assert not np.any(draws == 1)

    def test_reproducible_with_seed(self):
        s = AliasSampler([1, 2, 3])
        a = s.sample(100, np.random.default_rng(42))
        b = s.sample(100, np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)

    def test_sample_one(self):
        s = AliasSampler([0.0, 1.0])
        assert s.sample_one(np.random.default_rng(5)) == 1

    def test_chi_square_proportional(self):
        """Empirical frequencies match weights (chi-square well below the
        p=0.001 critical value for 3 dof, ~16.27)."""
        from scipy import stats

        w = np.array([1, 2, 3, 4], dtype=float)
        s = AliasSampler(w)
        n_draws = 200_000
        draws = s.sample(n_draws, np.random.default_rng(6))
        observed = np.bincount(draws, minlength=4)
        expected = w / w.sum() * n_draws
        chi2 = float(((observed - expected) ** 2 / expected).sum())
        assert chi2 < stats.chi2.ppf(0.999, df=3)

    def test_extreme_skew(self):
        """A 10^6 : 1 weight ratio still never loses the rare outcome
        entirely at large draw counts."""
        s = AliasSampler([1e6, 1.0])
        draws = s.sample(4_000_000, np.random.default_rng(7))
        frac = np.mean(draws == 1)
        assert frac == pytest.approx(1e-6, rel=0.9)


@settings(max_examples=30, deadline=None)
@given(
    weights=st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=40),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_alias_matches_cdf_distribution(weights, seed):
    """Property: alias and CDF backends realise the same distribution.

    Checked via total-variation distance between empirical frequencies,
    which for 30k draws over <=40 outcomes stays well under 0.05 when the
    distributions agree.
    """
    alias = AliasSampler(weights)
    cdf = CdfSampler(weights)
    np.testing.assert_allclose(alias.probabilities, cdf.probabilities, atol=1e-12)
    n = 30_000
    da = alias.sample(n, np.random.default_rng(seed))
    dc = cdf.sample(n, np.random.default_rng(seed + 1))
    fa = np.bincount(da, minlength=len(weights)) / n
    fc = np.bincount(dc, minlength=len(weights)) / n
    assert 0.5 * np.abs(fa - fc).sum() < 0.05


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=30))
def test_alias_probability_vector_is_distribution(weights):
    """Property: for any valid weights, probabilities are a distribution."""
    if sum(weights) <= 0:
        with pytest.raises(ValueError):
            AliasSampler(weights)
        return
    p = AliasSampler(weights).probabilities
    assert np.all(p >= 0)
    assert np.isclose(p.sum(), 1.0)
