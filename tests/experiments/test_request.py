"""Tests for the declarative RunRequest and its cache key."""

import numpy as np
import pytest

from repro.experiments import RunRequest
from repro.experiments.base import (
    ENGINES,
    EngineNotSupportedError,
    ExperimentResult,
    ExperimentSpec,
    get_experiment,
)
from repro.experiments.request import OverrideError


def key(req, version=1):
    return req.cache_key(version=version)


class TestCanonicalization:
    def test_override_order_is_irrelevant(self):
        a = RunRequest("fig02", overrides={"n": 32, "repetitions": 5})
        b = RunRequest("fig02", overrides={"repetitions": 5, "n": 32})
        assert a == b
        assert key(a) == key(b)

    def test_numpy_scalars_collapse_to_python(self):
        a = RunRequest("fig02", overrides={"repetitions": np.int64(5)})
        b = RunRequest("fig02", overrides={"repetitions": 5})
        assert a == b
        assert key(a) == key(b)

    def test_tuples_and_lists_and_arrays_agree(self):
        a = RunRequest("fig01", overrides={"capacities": (1, 2, 8)})
        b = RunRequest("fig01", overrides={"capacities": [1, 2, 8]})
        c = RunRequest("fig01", overrides={"capacities": np.array([1, 2, 8])})
        assert key(a) == key(b) == key(c)

    def test_scale_and_seed_normalised(self):
        assert RunRequest("fig02", scale=1, seed=np.int64(3)) == RunRequest(
            "fig02", scale=1.0, seed=3
        )

    def test_overrides_dict_round_trip(self):
        req = RunRequest("fig02", overrides={"n": 32, "d": 2})
        assert req.overrides_dict() == {"n": 32, "d": 2}

    def test_unserialisable_override_rejected(self):
        with pytest.raises(OverrideError, match="probabilities"):
            RunRequest("fig18", overrides={"probabilities": object()})

    def test_payload_round_trip(self):
        req = RunRequest(
            "fig06", scale=0.01, seed=7, engine="ensemble", workers=4,
            block_size=16, overrides={"step_pct": 10},
        )
        assert RunRequest.from_payload(req.to_payload()) == req
        assert key(RunRequest.from_payload(req.to_payload())) == key(req)


class TestCacheKey:
    def test_stable_known_value(self):
        """The key is a pure function of the payload — pin one digest so an
        accidental encoding change (which would orphan every existing store
        entry) fails loudly.  Regenerate with:
        ``RunRequest('fig02', seed=1).cache_key(version=1)``."""
        assert key(RunRequest("fig02", seed=1)) == (
            "ddf16555395972c7421a29cd0077ec52b618c74231ac2338079db1bf5ba4aa32"
        )

    @pytest.mark.parametrize("field, value", [
        ("experiment_id", "fig03"),
        ("scale", 0.5),
        ("seed", 123),
        ("engine", "ensemble"),
    ])
    def test_key_changes_on_each_identity_field(self, field, value):
        base = RunRequest("fig02", scale=0.1, seed=1)
        changed = RunRequest(**{**base.to_payload(), field: value, "overrides": {}})
        assert key(base) != key(changed)

    def test_key_changes_on_override_value(self):
        assert key(RunRequest("fig02", overrides={"repetitions": 5})) != key(
            RunRequest("fig02", overrides={"repetitions": 6})
        )

    def test_version_bump_changes_key(self):
        req = RunRequest("fig02", seed=1)
        assert key(req, version=1) != key(req, version=2)

    def test_workers_do_not_change_key(self):
        """The executor's seed contract makes results independent of the
        pool size, so parallelism never fragments the cache."""
        assert key(RunRequest("fig02", seed=1, workers=1)) == key(
            RunRequest("fig02", seed=1, workers=8)
        )

    def test_unset_engine_equals_explicit_scalar(self):
        assert key(RunRequest("fig02", seed=1)) == key(
            RunRequest("fig02", seed=1, engine="scalar")
        )

    def test_block_size_only_keys_under_ensemble(self):
        scalar_a = RunRequest("fig02", seed=1, block_size=8)
        scalar_b = RunRequest("fig02", seed=1, block_size=32)
        assert key(scalar_a) == key(scalar_b)
        ens_a = RunRequest("fig02", seed=1, engine="ensemble", block_size=8)
        ens_b = RunRequest("fig02", seed=1, engine="ensemble", block_size=32)
        assert key(ens_a) != key(ens_b)


class TestPrecisionField:
    def base(self, **precision):
        return RunRequest(
            "fig02", seed=1, engine="ensemble",
            precision=precision or {"rel": 0.02},
        )

    def test_precision_participates_in_key(self):
        plain = RunRequest("fig02", seed=1, engine="ensemble")
        assert key(self.base()) != key(plain)
        assert key(self.base(rel=0.02)) != key(self.base(rel=0.01))
        assert key(self.base(rel=0.02)) != key(
            self.base(rel=0.02, min_blocks=16)
        )

    def test_absent_precision_keeps_pre_adaptive_keys(self):
        """The key payload gains the ``precision`` member only when set, so
        every store entry written before the adaptive layer keeps its
        address — the pinned digest above is the same proof."""
        assert "precision" not in RunRequest("fig02", seed=1).key_payload(version=1)

    def test_canonical_forms_agree(self):
        from repro.analysis.precision import PrecisionTarget

        target = PrecisionTarget(rel=0.02)
        via_target = RunRequest("fig02", engine="ensemble", precision=target)
        via_dict = RunRequest(
            "fig02", engine="ensemble", precision={"rel": 0.02}
        )
        via_pairs = RunRequest(
            "fig02", engine="ensemble", precision=via_target.precision
        )
        assert via_target == via_dict == via_pairs
        assert key(via_target) == key(via_dict) == key(via_pairs)
        assert via_target.precision_target() == target

    def test_payload_round_trip_with_precision(self):
        req = self.base(rel=0.01, conf=0.9)
        back = RunRequest.from_payload(req.to_payload())
        assert back == req and key(back) == key(req)

    def test_invalid_precision_rejected_at_request_time(self):
        from repro.analysis.precision import PrecisionError

        with pytest.raises(PrecisionError):
            RunRequest("fig02", precision={"rel": -1.0})
        with pytest.raises(PrecisionError):
            RunRequest("fig02", precision={"bogus": 1})

    def test_request_kwargs_passes_target_to_adaptive_spec(self):
        from repro.analysis.precision import PrecisionTarget

        spec = get_experiment("fig02")
        assert spec.adaptive
        kwargs = spec.request_kwargs(self.base(rel=0.02))
        assert kwargs["precision"] == PrecisionTarget(rel=0.02)

    def test_non_adaptive_spec_rejects_precision(self):
        from repro.experiments.base import PrecisionNotSupportedError

        spec = get_experiment("fig06")
        assert not spec.adaptive
        with pytest.raises(PrecisionNotSupportedError, match="fig06"):
            spec.request_kwargs(
                RunRequest("fig06", engine="ensemble", precision={"rel": 0.1})
            )

    def test_scalar_engine_rejects_precision(self):
        from repro.experiments.base import PrecisionNotSupportedError

        spec = get_experiment("fig02")
        with pytest.raises(PrecisionNotSupportedError, match="ensemble"):
            spec.request_kwargs(RunRequest("fig02", precision={"rel": 0.1}))


class TestSpecIntegration:
    def test_every_spec_declares_both_engines(self):
        spec = get_experiment("fig02")
        assert spec.engines == ENGINES
        assert spec.version == 1

    def test_request_kwargs_builds_run_arguments(self):
        spec = get_experiment("fig02")
        req = RunRequest(
            "fig02", scale=0.01, seed=3, engine="ensemble", workers=2,
            block_size=4, overrides={"repetitions": 5},
        )
        kwargs = spec.request_kwargs(req)
        assert kwargs == {
            "repetitions": 5, "scale": 0.01, "seed": 3, "engine": "ensemble",
            "block_size": 4, "workers": 2,
        }

    def test_request_for_other_experiment_rejected(self):
        with pytest.raises(ValueError, match="handed to spec"):
            get_experiment("fig02").request_kwargs(RunRequest("fig03"))

    def test_unsupported_engine_raises_declaratively(self):
        """The engine guard is the spec's own ``engines`` declaration — no
        ``inspect.signature`` sniffing anywhere in the path."""
        def fake_run(**kwargs):
            raise AssertionError("must not execute")

        spec = ExperimentSpec(
            experiment_id="future_exp", title="t", figure="f", description="d",
            run=fake_run, engines=("scalar",),
        )
        with pytest.raises(EngineNotSupportedError, match="future_exp"):
            spec.request_kwargs(RunRequest("future_exp", engine="ensemble"))

    def test_scalar_request_on_reduced_spec_passes(self):
        captured = {}

        def fake_run(*, progress=None, checkpoint=None, **kwargs):
            captured.update(kwargs)
            return ExperimentResult(
                experiment_id="future_exp", title="", x_name="x",
                x_values=np.array([0.0]), series={"s": np.array([1.0])},
            )

        spec = ExperimentSpec(
            experiment_id="future_exp", title="t", figure="f", description="d",
            run=fake_run, engines=("scalar",),
        )
        spec.execute(RunRequest("future_exp", engine="scalar", seed=1))
        assert captured["engine"] == "scalar"
        assert captured["seed"] == 1
