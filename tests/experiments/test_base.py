"""Tests for the experiment framework."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentResult,
    get_experiment,
    list_experiments,
    scaled_reps,
)


class TestScaledReps:
    def test_full_scale(self):
        assert scaled_reps(10_000, 1.0) == 10_000

    def test_reduction(self):
        assert scaled_reps(10_000, 0.01) == 100

    def test_minimum_floor(self):
        assert scaled_reps(10_000, 1e-9) == 3

    def test_custom_minimum(self):
        assert scaled_reps(100, 1e-9, minimum=20) == 20

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            scaled_reps(100, 0.0)

    def test_rejects_bad_paper_reps(self):
        with pytest.raises(ValueError):
            scaled_reps(0, 1.0)


class TestExperimentResult:
    def _result(self):
        return ExperimentResult(
            experiment_id="test",
            title="A test",
            x_name="x",
            x_values=np.array([1.0, 2.0, 3.0]),
            series={"s": np.array([1.0, 4.0, 9.0])},
            parameters={"n": 3},
        )

    def test_rejects_misaligned_series(self):
        with pytest.raises(ValueError, match="shape"):
            ExperimentResult(
                experiment_id="bad",
                title="",
                x_name="x",
                x_values=np.array([1.0]),
                series={"s": np.array([1.0, 2.0])},
            )

    def test_save_round_trip(self, tmp_path):
        from repro.io import load_json, read_series_csv

        res = self._result()
        csv_path, json_path = res.save(tmp_path)
        _, x, series = read_series_csv(csv_path)
        np.testing.assert_array_equal(x, res.x_values)
        np.testing.assert_array_equal(series["s"], res.series["s"])
        meta = load_json(json_path)
        assert meta["experiment_id"] == "test"
        assert meta["parameters"]["n"] == 3

    def test_render_contains_plot_and_table(self):
        out = self._result().render()
        assert "test: A test" in out
        assert "legend" in out
        assert "x" in out

    def test_render_truncates_rows(self):
        res = ExperimentResult(
            experiment_id="long",
            title="",
            x_name="x",
            x_values=np.arange(100, dtype=float),
            series={"s": np.arange(100, dtype=float)},
        )
        out = res.render(max_rows=6)
        assert "..." in out

    def test_summary_rows(self):
        rows = self._result().summary_rows()
        assert rows == [("s", 1.0, 9.0, 1.0, 9.0)]

    def test_summary_handles_nan(self):
        res = ExperimentResult(
            experiment_id="nan",
            title="",
            x_name="x",
            x_values=np.array([1.0, 2.0]),
            series={"s": np.array([np.nan, 5.0])},
        )
        (name, lo, hi, first, last) = res.summary_rows()[0]
        assert (lo, hi, first, last) == (5.0, 5.0, 5.0, 5.0)


class TestRegistry:
    def test_all_eighteen_figures_registered(self):
        ids = {spec.experiment_id for spec in list_experiments()}
        assert {f"fig{i:02d}" for i in range(1, 19)} <= ids

    def test_ablations_registered(self):
        ids = {spec.experiment_id for spec in list_experiments()}
        assert {"abl_tiebreak", "abl_probability", "abl_d", "abl_staleness"} <= ids

    def test_get_known(self):
        spec = get_experiment("fig06")
        assert spec.figure == "Figure 6"
        assert callable(spec.run)

    def test_get_unknown_mentions_known_ids(self):
        with pytest.raises(KeyError, match="fig06"):
            get_experiment("fig99")

    def test_specs_have_descriptions(self):
        for spec in list_experiments():
            assert spec.description
            assert spec.title
