"""Every figure experiment runs end to end at tiny scale, and its output
reproduces the paper's qualitative shape.

These are integration tests: they execute the real experiment code with
reduced repetitions / grids and assert structure (grid, series names,
finiteness) plus the directional claims the paper makes about each figure.
"""

import numpy as np
import pytest

from repro.experiments import run_experiment

SEED = 987654


class TestFig01:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig01", seed=SEED, repetitions=3, n=2000, capacities=(1, 2, 8))

    def test_structure(self, result):
        assert result.x_values.size == 2000
        assert set(result.series) == {"1-bins", "2-bins", "8-bins"}

    def test_profiles_sorted_descending(self, result):
        for ys in result.series.values():
            assert all(a >= b - 1e-9 for a, b in zip(ys, ys[1:]))

    def test_larger_capacity_flatter(self, result):
        """c=8 curve's max is below c=2's, which is below c=1's."""
        m1 = result.series["1-bins"][0]
        m2 = result.series["2-bins"][0]
        m8 = result.series["8-bins"][0]
        assert m8 < m2 < m1

    def test_average_load_one(self, result):
        for ys in result.series.values():
            assert np.mean(ys) == pytest.approx(1.0, abs=0.02)

    def test_extra_predictions_recorded(self, result):
        assert "prediction_obs2" in result.extra


class TestFig02to05:
    @pytest.fixture(scope="class")
    def results(self):
        return {
            fid: run_experiment(fid, seed=SEED, repetitions=5)
            for fid in ("fig02", "fig03", "fig04")
        }

    def test_structure(self, results):
        for res in results.values():
            assert res.x_values.size == 32
            assert set(res.series) == {"1-bins", "2-bins", "3-bins", "4-bins"}

    def test_average_tracks_multiplier(self, results):
        assert np.mean(results["fig03"].series["2-bins"]) == pytest.approx(10.0, abs=0.2)
        assert np.mean(results["fig04"].series["2-bins"]) == pytest.approx(100.0, abs=0.5)

    def test_gap_invariant_in_m(self, results):
        """The paper's heavily-loaded invariance: max-minus-average for the
        same capacity matches across multipliers (within noise)."""
        for c in (1, 2, 4):
            g1 = results["fig02"].extra["gap_above_average"][f"c={c}"]
            g100 = results["fig04"].extra["gap_above_average"][f"c={c}"]
            assert g100 == pytest.approx(g1, abs=0.6)

    def test_fig05_runs(self):
        res = run_experiment("fig05", seed=SEED, repetitions=3)
        assert np.mean(res.series["4-bins"]) == pytest.approx(1000.0, abs=1.0)


class TestFig06and07:
    @pytest.fixture(scope="class")
    def fig06(self):
        return run_experiment("fig06", seed=SEED, repetitions=8, n=400, step_pct=10)

    @pytest.fixture(scope="class")
    def fig07(self):
        return run_experiment("fig07", seed=SEED, repetitions=8, n=400, step_pct=10)

    def test_grid(self, fig06):
        np.testing.assert_array_equal(fig06.x_values, np.arange(0, 101, 10))

    def test_endpoints(self, fig06):
        """Pure small bins behave like the standard game (~3 at n=400);
        pure large bins flatten towards 1."""
        curve = fig06.series["max_load"]
        assert curve[0] > 2.0
        assert curve[-1] < 1.6

    def test_overall_decrease(self, fig06):
        curve = fig06.series["max_load"]
        assert curve[-1] < curve[0]

    def test_location_starts_small_ends_large(self, fig07):
        curve = fig07.series["pct_small_has_max"]
        assert curve[0] == 100.0  # only small bins exist
        assert curve[-1] == 0.0  # no small bins exist

    def test_location_monotone_trend(self, fig07):
        """The small-bin share of the maximum decreases overall."""
        curve = fig07.series["pct_small_has_max"]
        assert curve[-3] <= curve[1]


class TestFig08and09:
    @pytest.fixture(scope="class")
    def fig08(self):
        return run_experiment(
            "fig08", seed=SEED, repetitions=5, n=1500,
            mean_cap_grid=(1.0, 2.0, 4.0, 8.0),
        )

    def test_x_is_total_capacity(self, fig08):
        assert fig08.x_values[0] == pytest.approx(1500, rel=0.05)
        assert fig08.x_values[-1] == pytest.approx(12_000, rel=0.05)

    def test_max_load_decreases(self, fig08):
        curve = fig08.series["max_load"]
        assert curve[-1] < curve[0]
        assert curve[-1] < 1.8

    def test_fig09_migration(self):
        res = run_experiment(
            "fig09", seed=SEED, repetitions=8, n=500,
            mean_cap_grid=(1.0, 3.0, 6.0),
        )
        s1 = res.series["max_in_size_1"]
        assert s1[0] == 100.0  # all bins size 1 at c=1
        assert s1[-1] < 50.0  # size-1 bins rare and unloaded at c=6


class TestFig10to13:
    def test_fig10_flattening(self):
        res = run_experiment("fig10", seed=SEED, repetitions=6)
        all_small = res.series["0x2-bins"]
        all_large = res.series["32x2-bins"]
        assert all_large[0] < all_small[0]

    def test_fig12_big_bins_bounded(self):
        res = run_experiment("fig12", seed=SEED, repetitions=3)
        for name, ys in res.series.items():
            finite = ys[np.isfinite(ys)]
            assert finite[0] < 2.5, f"{name} exceeded the big-bin constant"

    def test_fig13_small_above_big(self):
        res12 = run_experiment("fig12", seed=SEED, repetitions=3)
        res13 = run_experiment("fig13", seed=SEED, repetitions=3)
        big = res12.series["2500x8-bins"]
        small = res13.series["2500x8-bins"]
        assert small[np.isfinite(small)][0] > big[np.isfinite(big)][0]

    def test_fig11_nan_padding_for_partial_classes(self):
        res = run_experiment("fig13", seed=SEED, repetitions=3)
        partial = res.series["2500x8-bins"]  # only 7500 small bins exist
        assert np.isnan(partial[-1])
        assert np.isfinite(partial[0])


class TestFig14and15:
    def test_fig14_growth_beats_baseline(self):
        res = run_experiment("fig14", seed=SEED, repetitions=3, max_bins=302)
        base = res.series["base (all capacities = 2)"]
        lin6 = res.series["lin a=6"]
        assert lin6[-1] < base[-1]

    def test_fig14_decreasing_curves(self):
        res = run_experiment("fig14", seed=SEED, repetitions=3, max_bins=302)
        lin = res.series["lin a=4"]
        assert lin[-1] < lin[0]

    def test_fig15_budget_truncation_recorded(self):
        res = run_experiment(
            "fig15", seed=SEED, repetitions=3, max_bins=302, ball_budget=8_000
        )
        truncated = res.extra["states_truncated_by_budget"]
        assert truncated["exp b=1.4"] > 0
        assert truncated["base (all capacities = 2)"] == 0

    def test_fig15_exponential_improves(self):
        res = run_experiment("fig15", seed=SEED, repetitions=3, max_bins=302)
        base = res.series["base (all capacities = 2)"]
        exp = res.series["exp b=1.4"]
        finite = np.isfinite(exp)
        assert exp[finite][-1] < base[finite][-1]


class TestFig16:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            "fig16", seed=SEED, repetitions=3, n=800,
            cap_multipliers=(1, 5), rounds=12,
        )

    def test_structure(self, result):
        assert result.x_values.size == 12
        assert set(result.series) == {"CAP = 1*n", "CAP = 5*n"}

    def test_gap_does_not_grow(self, result):
        """Essentially flat lines: tiny fitted slope per CAP unit."""
        for name, slope in result.extra["per_series_slope"].items():
            assert abs(slope) < 0.05, f"{name} slope {slope}"

    def test_larger_cap_closer_to_zero(self, result):
        g1 = np.nanmean(result.series["CAP = 1*n"])
        g5 = np.nanmean(result.series["CAP = 5*n"])
        assert g5 < g1


class TestFig17and18:
    def test_fig18_minimum_above_one(self):
        res = run_experiment(
            "fig18", seed=SEED, repetitions=60, capacities=(3,),
            t_grid=(0.5, 1.0, 1.5, 2.0, 2.5, 3.0),
        )
        curve = res.series["capacities 1 and 3"]
        best_t = res.x_values[int(np.argmin(curve))]
        assert best_t > 1.0

    def test_fig18_structure(self):
        res = run_experiment(
            "fig18", seed=SEED, repetitions=25, capacities=(2, 4), t_grid=(1.0, 2.0)
        )
        assert set(res.series) == {"capacities 1 and 2", "capacities 1 and 4"}

    def test_fig17_optimal_exponents_above_one(self):
        res = run_experiment(
            "fig17", seed=SEED, repetitions=40, capacities=(3, 6),
            t_grid=(1.0, 1.5, 2.0, 2.5),
        )
        assert (res.series["optimal_exponent"] > 1.0).all()


class TestRunnerPlumbing:
    def test_out_dir_saves_files(self, tmp_path):
        run_experiment(
            "fig06", seed=SEED, repetitions=3, n=100, step_pct=50, out_dir=tmp_path
        )
        assert (tmp_path / "fig06.csv").exists()
        assert (tmp_path / "fig06.json").exists()

    def test_wall_seconds_recorded(self):
        res = run_experiment("fig06", seed=SEED, repetitions=3, n=100, step_pct=50)
        assert res.extra["wall_seconds"] >= 0

    def test_run_all_filters(self, tmp_path):
        from repro.experiments import run_all

        results = run_all(
            only=["fig02"], seed=SEED, out_dir=tmp_path, scale=None,
        )
        assert set(results) == {"fig02"}
