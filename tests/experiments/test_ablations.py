"""Integration tests for the registered ablation experiments."""

import numpy as np
import pytest

from repro.experiments import run_experiment

SEED = 123321


class TestTieBreakAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            "abl_tiebreak", seed=SEED, repetitions=25, n=400, fractions=(30, 60)
        )

    def test_series_present(self, result):
        assert set(result.series) == {"max_capacity", "uniform", "min_capacity"}

    def test_paper_rule_not_worse(self, result):
        for i in range(result.x_values.size):
            assert (
                result.series["max_capacity"][i]
                <= result.series["min_capacity"][i] + 0.12
            )


class TestProbabilityAblation:
    def test_proportional_wins_at_high_skew(self):
        res = run_experiment(
            "abl_probability", seed=SEED, repetitions=10, n=400, large_caps=(4, 32)
        )
        prop = res.series["proportional"]
        uni = res.series["uniform"]
        # at capacity 32 the uniform model wastes probes on tiny bins
        assert prop[-1] <= uni[-1] + 0.05


class TestDAblation:
    def test_monotone_decrease_with_d(self):
        res = run_experiment(
            "abl_d", seed=SEED, repetitions=8, n=600, d_values=(1, 2, 4)
        )
        measured = res.series["measured"]
        assert measured[1] < measured[0]
        assert measured[2] <= measured[1] + 0.05

    def test_theory_column_nan_at_d1(self):
        res = run_experiment(
            "abl_d", seed=SEED, repetitions=3, n=200, d_values=(1, 2)
        )
        theory = res.series["1 + lnln(n)/ln(d)"]
        assert np.isnan(theory[0])
        assert np.isfinite(theory[1])


class TestStalenessAblation:
    def test_staleness_monotone_extremes(self):
        res = run_experiment(
            "abl_staleness", seed=SEED, repetitions=10, n=400,
            batch_sizes=(1, 400),
        )
        curve = res.series["max_load"]
        assert curve[-1] >= curve[0]
