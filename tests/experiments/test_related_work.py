"""Tests for the related-work and weighted-extension experiments."""

import numpy as np
import pytest

from repro.experiments import run_experiment

SEED = 2468


class TestRingExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            "rw_ring", seed=SEED, repetitions=6, n_peers=100,
            requests_per_peer=20, d_values=(1, 2),
        )

    def test_series_present(self, result):
        assert len(result.series) == 2
        assert result.x_values.tolist() == [1.0, 2.0]

    def test_two_points_beat_one(self, result):
        """Byers et al.'s claim in both accountings."""
        for name, curve in result.series.items():
            assert curve[1] < curve[0], name

    def test_plain_d1_reflects_arc_skew(self, result):
        """At d=1 the normalised max request count mirrors the max/avg arc
        skew, which is well above 2 at n=100."""
        plain = result.series["plain peers (max/avg requests)"]
        assert plain[0] > 2.0

    def test_capacity_aware_near_one_at_d2(self, result):
        aware = result.series["capacity-aware (max/avg load)"]
        assert aware[1] < 1.5


class TestWeightedAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            "abl_weighted", seed=SEED, repetitions=8, n=100,
            sigmas=(0.0, 1.0),
        )

    def test_x_axis_is_cv(self, result):
        assert result.x_values[0] == 0.0
        assert result.x_values[1] == pytest.approx(np.sqrt(np.e - 1))

    def test_unit_sizes_baseline(self, result):
        """sigma=0 recovers the unit-ball game: normalised max load in the
        usual band."""
        assert 1.0 <= result.series["max_over_avg_load"][0] <= 3.0

    def test_variability_does_not_collapse(self, result):
        """Heavier size tails raise (or at least do not lower) the
        normalised maximum."""
        curve = result.series["max_over_avg_load"]
        assert curve[1] >= curve[0] - 0.1
