"""Tests for experiment-module internals and edge branches."""

import numpy as np
import pytest

from repro.experiments import run_experiment


class TestFig16Internals:
    def test_capacity_tiling_above_mean_eight(self):
        """CAP multipliers above 8 tile the binomial construction; the
        realised mean capacity must track the multiplier."""
        from repro.experiments.fig16_heavy import _one_run

        gaps = _one_run(
            np.random.SeedSequence(0), n=400, cap_multiplier=10, rounds=3, d=2
        )
        assert gaps.shape == (3,)
        assert np.isfinite(gaps).all()

    def test_multiplier_within_range_uses_binomial(self):
        from repro.experiments.fig16_heavy import _one_run

        gaps = _one_run(
            np.random.SeedSequence(1), n=400, cap_multiplier=2, rounds=2, d=2
        )
        assert gaps.shape == (2,)


class TestSnapshotHelper:
    def test_normalise_rejects_out_of_range(self):
        from repro.core.simulation import _normalise_snapshot_points

        with pytest.raises(ValueError):
            _normalise_snapshot_points([5], 4)

    def test_normalise_sorts_and_dedups(self):
        from repro.core.simulation import _normalise_snapshot_points

        assert _normalise_snapshot_points([3, 1, 3], 5) == [1, 3]

    def test_none_gives_empty(self):
        from repro.core.simulation import _normalise_snapshot_points

        assert _normalise_snapshot_points(None, 10) == []


class TestMigrationTargets:
    def test_largest_remainder_exactness(self):
        from repro.bins import BinArray
        from repro.core.migration import _targets

        bins = BinArray([1, 1, 1])
        t = _targets(10, bins)
        assert t.sum() == 10
        assert t.max() - t.min() <= 1

    def test_proportionality(self):
        from repro.bins import BinArray
        from repro.core.migration import _targets

        bins = BinArray([1, 9])
        t = _targets(100, bins)
        np.testing.assert_array_equal(t, [10, 90])

    def test_remainder_ties_prefer_larger_capacity(self):
        from repro.bins import BinArray
        from repro.core.migration import _targets

        # exact shares 0.5/0.5 of one ball: the capacity-2 bin gets it
        bins = BinArray([2, 2, 4])
        t = _targets(2, bins)
        assert t.sum() == 2
        assert t[2] >= t[0]


class TestCliRenderEdge:
    def test_run_renders_nan_series(self, capsys):
        """fig13's partial-class NaN padding must render, not crash."""
        from repro.cli import main

        code = main(["run", "fig13", "--scale", "0.0003", "--seed", "3"])
        assert code == 0
        assert "legend" in capsys.readouterr().out


class TestRegistryDuplicateGuard:
    def test_double_registration_rejected(self):
        from repro.experiments.base import register

        with pytest.raises(ValueError, match="twice"):
            register("fig01", "dup", "Figure 1", "dup")(lambda **kw: None)
