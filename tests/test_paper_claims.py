"""Statistical integration tests of the paper's headline claims.

Each test runs the real simulator at laptop scale with fixed seeds and
checks the corresponding analytical statement.  Sizes are chosen so the
w.h.p. events have overwhelming probability at the tested n; a failure
indicates a genuine regression rather than statistical noise.

The figure-level claims are checked on **both** repetition engines with the
same tolerances: the ensemble runs use explicit per-replication seeds, so
the spawn-mode stream contract makes them exercise the lockstep code path
end to end while drawing the exact seeds the scalar runs use.
"""

import math

import numpy as np
import pytest

from repro.bins import big_small_split, two_class_bins, uniform_bins
from repro.core import (
    coupled_domination_run,
    empirical_max_load_domination,
    simulate,
    simulate_ensemble,
    standard_greedy,
)
from repro.core.heights import split_heights_by_big_contact
from repro.sampling import PowerProbability, ThresholdProbability
from repro.theory import observation2_bound, theorem3_bound

ENGINES = ("scalar", "ensemble")


def engine_max_loads(bins, n_runs, engine, *, d=2, m=None,
                     probabilities="proportional") -> np.ndarray:
    """Per-repetition max loads over seeds 0..n_runs-1 on either engine.

    The ensemble path hands the same integer seeds to one lockstep call
    (``seeds=``), so both engines sample identical runs — the claim checks
    below therefore apply the exact same tolerances to both.
    """
    seeds = list(range(n_runs))
    if engine == "ensemble":
        res = simulate_ensemble(
            bins, seeds=seeds, m=m, d=d, probabilities=probabilities
        )
        return np.asarray(res.max_loads)
    return np.asarray([
        simulate(bins, m=m, d=d, probabilities=probabilities, seed=s).max_load
        for s in seeds
    ])


class TestTheorem3:
    """Max load <= lnln(n)/ln(d) + O(1) for m = C, proportional probs."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_two_class_system(self, engine):
        bins = two_class_bins(2500, 2500, 1, 10)
        loads = engine_max_loads(bins, 5, engine)
        assert (loads <= theorem3_bound(bins.n, 2, constant=2.0)).all()

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_d_dependence(self, d, engine):
        """Larger d lowers the bound and the simulated load follows."""
        bins = two_class_bins(2000, 2000, 1, 4)
        loads = engine_max_loads(bins, 3, engine, d=d)
        assert np.mean(loads) <= theorem3_bound(bins.n, d, constant=2.0)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_max_load_does_not_grow_with_capacity(self, engine):
        """The paper's core message: heterogeneity does not hurt — the
        all-big system is at least as balanced as the unit system."""
        unit = np.mean(engine_max_loads(uniform_bins(2000, 1), 5, engine))
        big = np.mean(engine_max_loads(uniform_bins(2000, 10), 5, engine))
        assert big <= unit


class TestLemma1:
    """Non-uniform process dominated by the C-unit-bin process."""

    @pytest.mark.parametrize("seed", range(8))
    def test_coupled_runs_dominate(self, seed):
        bins = two_class_bins(100, 100, 1, 6)
        out = coupled_domination_run(bins, seed=seed)
        assert out.q_dominates_max
        assert out.q_dominates_slots

    def test_stochastic_domination_of_max_loads(self):
        """Independent (uncoupled) samples: P's max-load distribution sits
        below Q's (empirical first-order dominance up to small noise)."""
        bins = two_class_bins(200, 200, 1, 5)
        C = bins.total_capacity
        p_samples = [simulate(bins, seed=s).max_load for s in range(40)]
        q_samples = [standard_greedy(C, seed=1000 + s).max_load for s in range(40)]
        margin = empirical_max_load_domination(p_samples, q_samples)
        assert margin >= -0.15  # noise allowance on 40-sample CDFs


class TestObservation1:
    """Big bins stay below constant load; B_b balls have bounded height."""

    @pytest.mark.parametrize("seed", range(4))
    def test_big_bin_loads(self, seed):
        # capacity 64 >> ln(1000) ~ 6.9: the 64-bins are big
        bins = two_class_bins(900, 100, 1, 64)
        res = simulate(bins, seed=seed)
        big_max = res.max_load_of_class(64)
        assert big_max <= 4.0

    def test_big_ball_heights(self):
        bins = two_class_bins(300, 100, 1, 32)
        res = simulate(bins, track_heights=True, keep_choices=True, seed=11)
        split = big_small_split(bins)
        assert split.n_big == 100
        bb, _ = split_heights_by_big_contact(res.heights, res.choices, split)
        assert bb.max_height <= 4.0


class TestObservation2:
    """Uniform capacity c: max load ~ (m/n + O(lnln n))/c."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("c", [2, 4, 8])
    def test_prediction_matches(self, c, engine):
        n = 4000
        measured = float(np.mean(engine_max_loads(uniform_bins(n, c), 4, engine)))
        predicted = observation2_bound(c * n, n, c)
        assert measured == pytest.approx(predicted, abs=0.45)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_heavily_loaded_gap_invariance(self, engine):
        """Figures 2-5's invariance: the gap (max - m/C) is independent of
        the ball multiplier."""
        bins = uniform_bins(32, 2)
        gaps = {}
        for mult in (1, 10, 100):
            loads = engine_max_loads(bins, 30, engine, m=mult * bins.total_capacity)
            gaps[mult] = float(np.mean(loads)) - float(mult)
        assert gaps[10] == pytest.approx(gaps[1], abs=0.4)
        assert gaps[100] == pytest.approx(gaps[1], abs=0.4)


class TestTheorem5:
    """Routing only to the q-capacity bins yields constant max load."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_threshold_distribution_constant_load(self, engine):
        n = 1000
        q = 8  # ~ lnln-scale at this n
        bins = two_class_bins(n // 2, n // 2, 1, q)
        if engine == "ensemble":
            ens = simulate_ensemble(bins, seeds=[0], probabilities=ThresholdProbability(q))
            max_load, counts = float(ens.max_loads[0]), ens.counts[0]
        else:
            res = simulate(bins, probabilities=ThresholdProbability(q), seed=0)
            max_load, counts = res.max_load, res.counts
        # k = 1, alpha = 1/2 -> bound k/alpha + O(1) ~ 2 + small
        assert max_load <= 2.0 + 1.0
        # the ignored bins receive nothing
        assert counts[: n // 2].sum() == 0

    def test_threshold_beats_proportional_on_extreme_mixes(self):
        """With many tiny bins and few capable ones, ignoring the tiny bins
        lowers the maximum load (the Section 4.5 message)."""
        bins = two_class_bins(500, 500, 1, 8)
        prop = np.mean([simulate(bins, seed=s).max_load for s in range(6)])
        thr = np.mean(
            [
                simulate(bins, probabilities=ThresholdProbability(8), seed=s).max_load
                for s in range(6)
            ]
        )
        assert thr <= prop + 0.05


class TestSection45:
    """The optimal exponent exceeds 1 for mixed arrays."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_exponent_two_beats_exponent_one(self, engine):
        """At capacities 1 and 3 the paper reports t* ~ 2.1; t=2 should
        beat t=1 on mean max load."""
        bins = two_class_bins(50, 50, 1, 3)
        t1 = np.mean(
            engine_max_loads(bins, 300, engine, probabilities=PowerProbability(1.0))
        )
        t2 = np.mean(
            engine_max_loads(bins, 300, engine, probabilities=PowerProbability(2.0))
        )
        assert t2 < t1


class TestStandardGameReference:
    """Sanity anchor: the classical Azar et al. growth rate."""

    def test_loglog_growth(self):
        """Mean max load at n=m grows like lnln n: the n=8192 mean exceeds
        the n=64 mean by less than lnln(8192)/ln 2 - lnln(64)/ln 2 + 1."""
        small = np.mean([standard_greedy(64, seed=s).max_load for s in range(20)])
        large = np.mean([standard_greedy(8192, seed=s).max_load for s in range(5)])
        theory_delta = (
            math.log(math.log(8192)) - math.log(math.log(64))
        ) / math.log(2)
        assert large - small <= theory_delta + 1.0
        assert large >= small  # growth is real
