"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_bin_spec


class TestParseBinSpec:
    def test_single_class(self):
        bins = parse_bin_spec("1x10")
        assert bins.n == 10
        assert bins.is_uniform()

    def test_two_classes(self):
        bins = parse_bin_spec("1x500,10x500")
        assert bins.n == 1000
        assert bins.total_capacity == 5500

    def test_repeated_class_accumulates(self):
        bins = parse_bin_spec("2x3,2x4")
        assert bins.size_class_counts() == {2: 7}

    def test_whitespace_tolerated(self):
        assert parse_bin_spec(" 1x2 , 3x1 ").n == 3

    def test_bad_item_exits(self):
        with pytest.raises(SystemExit, match="bad bin spec"):
            parse_bin_spec("1-10")

    def test_empty_exits(self):
        with pytest.raises(SystemExit, match="empty"):
            parse_bin_spec(",")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out and "fig18" in out

    def test_describe(self, capsys):
        assert main(["describe", "1x50,10x50"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 3: applies" in out
        assert "C = 550" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "1x20,4x20", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "max load" in out
        assert "capacity 4" in out

    def test_simulate_custom_balls(self, capsys):
        assert main(["simulate", "1x10", "--balls", "5", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "m = 5 balls" in out

    def test_run_with_plot(self, capsys):
        code = main([
            "run", "fig02", "--scale", "0.0003", "--seed", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "legend" in out

    def test_run_no_plot_saves(self, tmp_path, capsys):
        code = main([
            "run", "fig02", "--scale", "0.0003", "--seed", "5",
            "--no-plot", "--out", str(tmp_path),
        ])
        assert code == 0
        assert (tmp_path / "fig02.csv").exists()
        out = capsys.readouterr().out
        assert "saved fig02.csv" in out

    def test_run_ensemble_engine(self, capsys):
        code = main([
            "run", "fig02", "--scale", "0.0003", "--seed", "5",
            "--engine", "ensemble", "--no-plot",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig02" in out

    def test_run_ensemble_engine_fully_migrated(self, capsys):
        """The engine matrix is full: formerly scalar-only figures now run
        under --engine ensemble instead of raising."""
        code = main([
            "run", "fig06", "--scale", "0.0003", "--seed", "5",
            "--engine", "ensemble", "--no-plot",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig06" in out

    def test_tune(self, capsys):
        code = main([
            "tune", "1x20,3x20", "--reps", "10", "--seed", "2",
            "--t-min", "0.5", "--t-max", "2.5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "best exponent" in out
        assert "proportional" in out

    def test_report(self, tmp_path, capsys):
        code = main([
            "report", "--only", "fig02", "--scale", "0.0003",
            "--seed", "4", "--out", str(tmp_path),
        ])
        assert code == 0
        report = (tmp_path / "REPORT.md").read_text()
        assert "### fig02" in report
        assert (tmp_path / "fig02.csv").exists()

    def test_verify(self, capsys):
        code = main(["verify", "--n", "400", "--seed", "9"])
        out = capsys.readouterr().out
        assert "claim" in out
        assert code == 0
        assert "checks passed" in out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestReplayCommand:
    ARGS = [
        "replay", "--requests", "500", "--peers", "6", "--rate", "500",
        "--objects", "200", "--users", "1000", "--seed", "5",
    ]

    def test_replay_prints_report(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "placement digest" in out
        assert "max/mean" in out
        assert "p99" in out

    def test_replay_json_is_deterministic(self, capsys):
        import json

        assert main([*self.ARGS, "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main([*self.ARGS, "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["placement_digest"] == second["placement_digest"]
        assert first["stats"]["load"]["per_peer"] == second["stats"]["load"]["per_peer"]
        assert first["requests"] == 500

    def test_replay_with_churn(self, capsys):
        assert main([*self.ARGS, "--churn-events", "3", "--json"]) == 0
        import json

        report = json.loads(capsys.readouterr().out)
        assert report["joins"] + report["leaves"] + report["skips"] == 3

    def test_replay_rejects_bad_peers(self):
        with pytest.raises(SystemExit, match="--peers"):
            main(["replay", "--peers", "0"])

    def test_replay_rejects_bad_spec(self):
        with pytest.raises(SystemExit, match="rate"):
            main(["replay", "--rate", "-1"])

    def test_serve_parser_accepts_options(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--peers", "4", "--refresh-every", "8"]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert args.refresh_every == 8
