"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_bin_spec


class TestParseBinSpec:
    def test_single_class(self):
        bins = parse_bin_spec("1x10")
        assert bins.n == 10
        assert bins.is_uniform()

    def test_two_classes(self):
        bins = parse_bin_spec("1x500,10x500")
        assert bins.n == 1000
        assert bins.total_capacity == 5500

    def test_repeated_class_accumulates(self):
        bins = parse_bin_spec("2x3,2x4")
        assert bins.size_class_counts() == {2: 7}

    def test_whitespace_tolerated(self):
        assert parse_bin_spec(" 1x2 , 3x1 ").n == 3

    def test_bad_item_exits(self):
        with pytest.raises(SystemExit, match="bad bin spec"):
            parse_bin_spec("1-10")

    def test_empty_exits(self):
        with pytest.raises(SystemExit, match="empty"):
            parse_bin_spec(",")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out and "fig18" in out

    def test_describe(self, capsys):
        assert main(["describe", "1x50,10x50"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 3: applies" in out
        assert "C = 550" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "1x20,4x20", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "max load" in out
        assert "capacity 4" in out

    def test_simulate_custom_balls(self, capsys):
        assert main(["simulate", "1x10", "--balls", "5", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "m = 5 balls" in out

    def test_run_with_plot(self, capsys):
        code = main([
            "run", "fig02", "--scale", "0.0003", "--seed", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "legend" in out

    def test_run_no_plot_saves(self, tmp_path, capsys):
        code = main([
            "run", "fig02", "--scale", "0.0003", "--seed", "5",
            "--no-plot", "--out", str(tmp_path),
        ])
        assert code == 0
        assert (tmp_path / "fig02.csv").exists()
        out = capsys.readouterr().out
        assert "saved fig02.csv" in out

    def test_run_ensemble_engine(self, capsys):
        code = main([
            "run", "fig02", "--scale", "0.0003", "--seed", "5",
            "--engine", "ensemble", "--no-plot",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig02" in out

    def test_run_ensemble_engine_fully_migrated(self, capsys):
        """The engine matrix is full: formerly scalar-only figures now run
        under --engine ensemble instead of raising."""
        code = main([
            "run", "fig06", "--scale", "0.0003", "--seed", "5",
            "--engine", "ensemble", "--no-plot",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig06" in out

    def test_tune(self, capsys):
        code = main([
            "tune", "1x20,3x20", "--reps", "10", "--seed", "2",
            "--t-min", "0.5", "--t-max", "2.5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "best exponent" in out
        assert "proportional" in out

    def test_report(self, tmp_path, capsys):
        code = main([
            "report", "--only", "fig02", "--scale", "0.0003",
            "--seed", "4", "--out", str(tmp_path),
        ])
        assert code == 0
        report = (tmp_path / "REPORT.md").read_text()
        assert "### fig02" in report
        assert (tmp_path / "fig02.csv").exists()

    def test_verify(self, capsys):
        code = main(["verify", "--n", "400", "--seed", "9"])
        out = capsys.readouterr().out
        assert "claim" in out
        assert code == 0
        assert "checks passed" in out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestReplayCommand:
    ARGS = [
        "replay", "--requests", "500", "--peers", "6", "--rate", "500",
        "--objects", "200", "--users", "1000", "--seed", "5",
    ]

    def test_replay_prints_report(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "placement digest" in out
        assert "max/mean" in out
        assert "p99" in out

    def test_replay_json_is_deterministic(self, capsys):
        import json

        assert main([*self.ARGS, "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main([*self.ARGS, "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["placement_digest"] == second["placement_digest"]
        assert first["stats"]["load"]["per_peer"] == second["stats"]["load"]["per_peer"]
        assert first["requests"] == 500

    def test_replay_with_churn(self, capsys):
        assert main([*self.ARGS, "--churn-events", "3", "--json"]) == 0
        import json

        report = json.loads(capsys.readouterr().out)
        assert report["joins"] + report["leaves"] + report["skips"] == 3

    def test_replay_rejects_bad_peers(self):
        with pytest.raises(SystemExit, match="--peers"):
            main(["replay", "--peers", "0"])

    def test_replay_rejects_bad_spec(self):
        with pytest.raises(SystemExit, match="rate"):
            main(["replay", "--rate", "-1"])

    def test_serve_parser_accepts_options(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--peers", "4", "--refresh-every", "8"]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert args.refresh_every == 8

    def test_serve_parser_accepts_wal_and_fault_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "serve", "--wal", "/tmp/svc.wal", "--wal-sync-every", "8",
            "--fault-plan", '{"kill_at": 10}',
        ])
        assert args.wal == "/tmp/svc.wal"
        assert args.wal_sync_every == 8
        assert args.fault_plan == '{"kill_at": 10}'


class TestRecoverCommand:
    def _write_wal(self, tmp_path):
        from repro.service import AllocationService, ChurnAction

        path = tmp_path / "svc.wal"
        svc = AllocationService(
            [f"peer-{i}" for i in range(4)], d=2, refresh_every=8,
            seed=11, wal=path)
        for i in range(6):
            svc.allocate(f"obj-{i}")
        svc.apply_churn(ChurnAction(time=0.0, kind="join"))
        digest = svc.placement_digest()
        svc.close_wal()
        return path, digest

    def test_recover_prints_report(self, tmp_path, capsys):
        path, digest = self._write_wal(tmp_path)
        assert main(["recover", str(path)]) == 0
        out = capsys.readouterr().out
        assert "recovered 7 record(s)" in out
        assert digest in out
        assert "1 join(s)" in out

    def test_recover_json_matches_live_digest(self, tmp_path, capsys):
        import json

        path, digest = self._write_wal(tmp_path)
        assert main(["recover", str(path), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["placement_digest"] == digest
        assert stats["requests"] == 6
        assert stats["churn"]["joins"] == 1

    def test_recover_missing_log_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="nothing to recover"):
            main(["recover", str(tmp_path / "nope.wal")])
