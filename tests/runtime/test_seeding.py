"""Tests for seed trees."""

import numpy as np
import pytest

from repro.runtime import SeedTree


class TestSeedTree:
    def test_cell_stability(self):
        a = SeedTree(99, n_points=4).repetition_seed(2, 5)
        b = SeedTree(99, n_points=4).repetition_seed(2, 5)
        assert np.random.default_rng(a).random() == np.random.default_rng(b).random()

    def test_request_order_irrelevant(self):
        t1 = SeedTree(1, n_points=2)
        t2 = SeedTree(1, n_points=2)
        late = t1.repetition_seed(0, 9)
        for i in range(9):
            t2.repetition_seed(0, i)
        again = t2.repetition_seed(0, 9)
        assert np.random.default_rng(late).random() == np.random.default_rng(again).random()

    def test_points_differ(self):
        t = SeedTree(5, n_points=3)
        a = np.random.default_rng(t.repetition_seed(0, 0)).random()
        b = np.random.default_rng(t.repetition_seed(1, 0)).random()
        assert a != b

    def test_repetitions_differ(self):
        t = SeedTree(5, n_points=1)
        a = np.random.default_rng(t.repetition_seed(0, 0)).random()
        b = np.random.default_rng(t.repetition_seed(0, 1)).random()
        assert a != b

    def test_repetition_seeds_list(self):
        t = SeedTree(0, n_points=1)
        seeds = t.repetition_seeds(0, 5)
        assert len(seeds) == 5

    def test_rejects_bad_n_points(self):
        with pytest.raises(ValueError):
            SeedTree(0, n_points=0)

    def test_rejects_negative_repetition(self):
        with pytest.raises(IndexError):
            SeedTree(0, n_points=1).repetition_seed(0, -1)

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            SeedTree(0, n_points=1).repetition_seeds(0, -1)
