"""Executor resume (checkpoint hook) and fail-fast pool error tests.

The resume contract: ``run_ensemble_reduced`` persists the merged-so-far
reducer after every completed block; a rerun of the same call skips the
checkpointed blocks and produces a reducer **bit-identical** to an
uninterrupted run — sound because block boundaries and each block's child
seeds are functions of ``(seed, repetitions, block_size)`` alone, and
blocks merge left-to-right on both paths.
"""

import numpy as np
import pytest

from repro.analysis.aggregate import StreamingScalar
from repro.analysis.precision import PrecisionTarget
from repro.io.store import ResultStore
from repro.runtime import run_ensemble_reduced, run_repetitions
from repro.runtime.executor import TaskError, _iter_block_seeds
from repro.sampling.rngutils import spawn_seed_sequences

#: Serial-path call counter (workers=1 runs tasks in-process).
CALLS = {"blocks": 0}

#: Out-of-band kill switch: fail any block whose first repetition index is
#: >= this value.  A module global rather than a task kwarg so the
#: interrupted attempt and the resume attempt are *the same call* (same
#: checkpoint fingerprint), exactly like a real mid-run kill; forked pool
#: workers inherit it.
FAIL = {"from": None}


def scalar_block(seeds, *, fail_from=None):
    """Top-level (picklable) reducer task; fails on the block whose first
    repetition index (= the first child's spawn key, per the executor seed
    contract) is >= ``fail_from`` (kwarg) or ``FAIL['from']`` (global)."""
    CALLS["blocks"] += 1
    first_rep = seeds[0].spawn_key[-1]
    threshold = fail_from if fail_from is not None else FAIL["from"]
    if threshold is not None and first_rep >= threshold:
        raise RuntimeError(f"injected kill at repetition {first_rep}")
    values = [float(np.random.default_rng(s).random()) for s in seeds]
    return StreamingScalar().update(values)


def failing_task(seed):
    raise ValueError("scalar task boom")


def failing_block(seeds):
    raise ValueError("block task boom")


def unpicklable_task(seed):
    return lambda: None  # lambdas cannot travel back through the pool


@pytest.fixture
def checkpoints(tmp_path):
    """A fresh checkpointer factory over one persistent directory."""
    store = ResultStore(tmp_path / "store")

    def make():
        return store.checkpointer("k" * 64)

    make.store = store
    return make


REPS, BLOCK = 20, 3  # 7 blocks: [0,3) ... [18,20)


class TestResume:
    def run(self, checkpoint, workers=1):
        return run_ensemble_reduced(
            scalar_block, REPS, seed=42, workers=workers, block_size=BLOCK,
            checkpoint=checkpoint, label="unit",
        )

    def kill_at(self, checkpoints, rep, workers=1, exc=RuntimeError, match="injected kill"):
        FAIL["from"] = rep
        try:
            with pytest.raises(exc, match=match):
                self.run(checkpoints(), workers=workers)
        finally:
            FAIL["from"] = None

    def test_interrupted_run_resumes_bit_identically(self, checkpoints):
        reference = run_ensemble_reduced(
            scalar_block, REPS, seed=42, block_size=BLOCK,
        )
        self.kill_at(checkpoints, 9)
        assert checkpoints.store.has_checkpoints("k" * 64)
        CALLS["blocks"] = 0
        resumed = self.run(checkpoints())
        # blocks [0,3) [3,6) [6,9) were checkpointed; only 4 of 7 re-run
        assert CALLS["blocks"] == 4
        assert resumed == reference
        agg_a, agg_b = resumed.aggregate(), reference.aggregate()
        assert (agg_a.mean, agg_a.std, agg_a.minimum, agg_a.maximum) == (
            agg_b.mean, agg_b.std, agg_b.minimum, agg_b.maximum
        )

    def test_completed_run_replays_from_checkpoint_without_work(self, checkpoints):
        first = self.run(checkpoints())
        CALLS["blocks"] = 0
        second = self.run(checkpoints())
        assert CALLS["blocks"] == 0  # fully checkpointed: nothing recomputed
        assert second == first

    def test_pool_interrupt_then_pool_resume(self, checkpoints):
        reference = run_ensemble_reduced(
            scalar_block, REPS, seed=42, block_size=BLOCK,
        )
        self.kill_at(
            checkpoints, 9, workers=2, exc=TaskError,
            match=r"unit ensemble block \[9, 12\)",
        )
        resumed = self.run(checkpoints(), workers=2)
        assert resumed == reference

    def test_changed_kwargs_invalidate_checkpoint(self, checkpoints):
        self.kill_at(checkpoints, 9)
        # different kwargs -> different fingerprint -> fresh start
        CALLS["blocks"] = 0
        fresh = run_ensemble_reduced(
            scalar_block, REPS, seed=42, block_size=BLOCK,
            kwargs={"fail_from": 10**9}, checkpoint=checkpoints(),
        )
        assert CALLS["blocks"] == 7
        assert fresh == run_ensemble_reduced(
            scalar_block, REPS, seed=42, block_size=BLOCK,
        )

    def test_changed_block_size_invalidates_checkpoint(self, checkpoints):
        self.kill_at(checkpoints, 9)
        CALLS["blocks"] = 0
        run_ensemble_reduced(
            scalar_block, REPS, seed=42, block_size=4,
            checkpoint=checkpoints(),
        )
        assert CALLS["blocks"] == 5  # ceil(20/4): all blocks, none resumed

    def test_seed_none_never_checkpoints(self, checkpoints):
        run_ensemble_reduced(
            scalar_block, REPS, seed=None, block_size=BLOCK,
            checkpoint=checkpoints(),
        )
        assert not checkpoints.store.has_checkpoints("k" * 64)

    def test_without_checkpoint_matches_with_checkpoint(self, checkpoints):
        plain = run_ensemble_reduced(scalar_block, REPS, seed=42, block_size=BLOCK)
        assert self.run(checkpoints()) == plain


#: Adaptive target for the early-stop × resume tests: on the uniform(0,1)
#: toy statistic it converges well inside the 60-repetition budget.
ADAPTIVE_TARGET = PrecisionTarget(absolute=0.1, confidence=0.9, min_blocks=4)


class TestFingerprintCompat:
    def test_fixed_budget_fingerprint_keeps_legacy_5_tuple_form(self):
        """A fixed-budget run's fingerprint must stay in the pre-adaptive
        5-tuple form, so checkpoints written before the early-stop hook
        existed still resume after an upgrade."""
        from repro.runtime.executor import _checkpoint_fingerprint

        fp = _checkpoint_fingerprint(scalar_block, REPS, BLOCK, 42, {})
        assert fp == repr((
            "scalar_block", REPS, BLOCK, "42", [],
        ))
        adaptive = _checkpoint_fingerprint(
            scalar_block, REPS, BLOCK, 42, {}, ADAPTIVE_TARGET.monitor()
        )
        assert adaptive != fp and "SequentialMonitor" in adaptive

    def test_large_arrays_differing_mid_vector_get_distinct_fingerprints(self):
        """Regression: ``repr`` truncates >1000-element arrays with ``...``,
        so two runs differing only in the middle of a long capacity vector
        used to share a fingerprint — and resume from each other's
        checkpoints unsoundly.  Array kwargs must be hashed over their full
        ``(dtype, shape, bytes)`` content."""
        from repro.runtime.executor import _checkpoint_fingerprint

        a = np.ones(5000, dtype=np.int64)
        b = a.copy()
        b[2500] = 7  # deep inside the repr-elided middle
        assert repr(a) == repr(b)  # the pre-fix collision condition
        fp_a = _checkpoint_fingerprint(scalar_block, REPS, BLOCK, 42, {"capacities": a})
        fp_b = _checkpoint_fingerprint(scalar_block, REPS, BLOCK, 42, {"capacities": b})
        assert fp_a != fp_b
        # Content-addressed: an equal copy (even non-contiguous source,
        # different dtype object) fingerprints identically.
        assert fp_a == _checkpoint_fingerprint(
            scalar_block, REPS, BLOCK, 42, {"capacities": a[::1].copy()}
        )
        # dtype and shape are part of the identity, not just the bytes.
        assert fp_a != _checkpoint_fingerprint(
            scalar_block, REPS, BLOCK, 42, {"capacities": a.astype(np.uint64)}
        )
        assert fp_a != _checkpoint_fingerprint(
            scalar_block, REPS, BLOCK, 42, {"capacities": a.reshape(50, 100)}
        )

    def test_arrays_nested_in_containers_are_content_hashed(self):
        from repro.runtime.executor import _checkpoint_fingerprint

        a = np.ones(5000)
        b = a.copy()
        b[400] = 3.0
        fp = lambda v: _checkpoint_fingerprint(scalar_block, REPS, BLOCK, 1, {"x": v})
        assert fp((a, 2)) != fp((b, 2))
        assert fp({"inner": [a]}) != fp({"inner": [b]})
        # Array-free kwargs keep the legacy repr form verbatim.
        assert "(1, 2)" in fp((1, 2))


class TestLazyBlockSeeds:
    """The adaptive path's lazy seed iterator honors the spawn contract."""

    BOUNDS = [(0, 3), (3, 6), (6, 8)]

    def assert_streams_equal(self, lazy, eager):
        for a, b in zip(lazy, eager):
            assert a.generate_state(4).tolist() == b.generate_state(4).tolist()

    def test_matches_eager_spawn_for_int_seed(self):
        lazy = [s for blk in _iter_block_seeds(7, self.BOUNDS) for s in blk]
        self.assert_streams_equal(lazy, spawn_seed_sequences(7, 8))

    def test_honors_prior_spawn_offset_without_mutating_parent(self):
        parent = np.random.SeedSequence(99)
        parent.spawn(5)
        reference_parent = np.random.SeedSequence(99)
        reference_parent.spawn(5)
        lazy = [s for blk in _iter_block_seeds(parent, self.BOUNDS) for s in blk]
        self.assert_streams_equal(lazy, reference_parent.spawn(8))
        assert parent.n_children_spawned == 5  # untouched by laziness


class TestAdaptiveResume:
    """Early stop × resume: a killed adaptive run reaches the same stopping
    block and a bit-identical reducer as an uninterrupted run."""

    BUDGET = 60  # 20 blocks of BLOCK=3

    def run(self, checkpoint=None, workers=1):
        monitor = ADAPTIVE_TARGET.monitor()
        reducer = run_ensemble_reduced(
            scalar_block, self.BUDGET, seed=42, workers=workers,
            block_size=BLOCK, checkpoint=checkpoint, until=monitor,
            label="unit",
        )
        return reducer, monitor

    def test_stops_early_and_serial_equals_pool(self):
        serial, monitor = self.run()
        assert BLOCK * ADAPTIVE_TARGET.min_blocks <= serial.repetitions < self.BUDGET
        assert monitor.should_stop()
        pooled, _ = self.run(workers=2)
        assert pooled == serial  # same stopping block, bit-identical state

    def test_killed_adaptive_run_resumes_to_same_stop(self, checkpoints):
        reference, ref_monitor = self.run()
        stop_rep = reference.repetitions
        # Kill two blocks before the stopping block (mid-flight).
        FAIL["from"] = stop_rep - 2 * BLOCK
        try:
            with pytest.raises(RuntimeError, match="injected kill"):
                self.run(checkpoints())
        finally:
            FAIL["from"] = None
        assert checkpoints.store.has_checkpoints("k" * 64)
        CALLS["blocks"] = 0
        resumed, monitor = self.run(checkpoints())
        # Only the blocks past the kill point ran again — the monitor state
        # was restored, not re-observed.
        assert CALLS["blocks"] == 2
        assert resumed == reference
        assert resumed.repetitions == stop_rep
        assert monitor.summary() == ref_monitor.summary()

    def test_converged_checkpoint_replays_without_work(self, checkpoints):
        first, _ = self.run(checkpoints())
        CALLS["blocks"] = 0
        again, monitor = self.run(checkpoints())
        assert CALLS["blocks"] == 0  # restored monitor already satisfied
        assert again == first
        assert monitor.should_stop()

    def test_pool_kill_then_pool_resume(self, checkpoints):
        reference, _ = self.run()
        FAIL["from"] = reference.repetitions - 2 * BLOCK
        try:
            with pytest.raises(TaskError, match="unit ensemble block"):
                self.run(checkpoints(), workers=2)
        finally:
            FAIL["from"] = None
        resumed, _ = self.run(checkpoints(), workers=2)
        assert resumed == reference

    def test_different_target_invalidates_checkpoint(self, checkpoints):
        """A checkpoint written under one precision target must not seed a
        run with another (the monitor joins the fingerprint)."""
        reference, _ = self.run()
        FAIL["from"] = reference.repetitions - 2 * BLOCK
        try:
            with pytest.raises(RuntimeError, match="injected kill"):
                self.run(checkpoints())
        finally:
            FAIL["from"] = None
        CALLS["blocks"] = 0
        other = PrecisionTarget(absolute=0.2, confidence=0.9, min_blocks=4)
        reducer = run_ensemble_reduced(
            scalar_block, self.BUDGET, seed=42, block_size=BLOCK,
            checkpoint=checkpoints(), until=other.monitor(), label="unit",
        )
        # Fresh start: the first checkpointed block would otherwise be
        # skipped, so re-running it proves the fingerprint mismatched.
        fresh = run_ensemble_reduced(
            scalar_block, self.BUDGET, seed=42, block_size=BLOCK,
            until=other.monitor(),
        )
        assert reducer == fresh

    def test_fixed_budget_checkpoint_not_resumed_by_adaptive_run(self, checkpoints):
        self.kill_fixed_budget_at(checkpoints, 9)
        CALLS["blocks"] = 0
        adaptive, _ = self.run(checkpoints())
        # No block skipped: the adaptive fingerprint differs from the
        # fixed-budget one, so all blocks up to the stop point re-ran.
        assert CALLS["blocks"] == adaptive.repetitions // BLOCK

    def kill_fixed_budget_at(self, checkpoints, rep):
        FAIL["from"] = rep
        try:
            with pytest.raises(RuntimeError, match="injected kill"):
                run_ensemble_reduced(
                    scalar_block, self.BUDGET, seed=42, block_size=BLOCK,
                    checkpoint=checkpoints(), label="unit",
                )
        finally:
            FAIL["from"] = None


class TestFailFast:
    def test_pool_scalar_failure_names_repetition(self):
        with pytest.raises(TaskError, match="lab repetition") as err:
            run_repetitions(failing_task, 4, seed=0, workers=2, label="lab")
        assert "scalar task boom" in str(err.value)
        assert "worker traceback" in str(err.value)

    def test_pool_block_failure_names_block_bounds(self):
        with pytest.raises(TaskError, match=r"exp ensemble block \[\d+, \d+\)"):
            run_ensemble_reduced(
                scalar_block, REPS, seed=1, workers=2, block_size=BLOCK,
                kwargs={"fail_from": 0}, label="exp",
            )

    def test_pool_unpicklable_result_wrapped(self):
        with pytest.raises(TaskError, match="worker pool failed"):
            run_repetitions(unpicklable_task, 4, seed=0, workers=2)

    def test_serial_failure_wrapped_like_pool(self):
        # Regression: the serial path used to let exceptions escape bare,
        # losing the describe(i) label the pool path reports — serial and
        # pool failures must now produce the same TaskError shape.
        with pytest.raises(TaskError, match="lab repetition") as err:
            run_repetitions(failing_task, 3, seed=0, workers=1, label="lab")
        assert "scalar task boom" in str(err.value)
        assert "task traceback" in str(err.value)
        # The original exception stays reachable for callers that care.
        assert isinstance(err.value.__cause__, ValueError)

    def test_serial_block_failure_names_block_bounds(self):
        with pytest.raises(TaskError, match=r"exp ensemble block \[0, 2\)"):
            run_ensemble_reduced(
                failing_block, 4, seed=0, workers=1, block_size=2, label="exp",
            )
