"""Tests for the repetition executor."""

import numpy as np
import pytest

from repro.runtime import run_repetitions


def draw_task(seed, scale=1.0):
    """Top-level task so it pickles for the pool path."""
    return float(np.random.default_rng(seed).random() * scale)


def identity_seed_entropy(seed):
    """Returns a stable fingerprint of the received seed."""
    return np.random.default_rng(seed).integers(0, 2**32)


class TestSerial:
    def test_count(self):
        out = run_repetitions(draw_task, 5, seed=0)
        assert len(out) == 5

    def test_deterministic(self):
        a = run_repetitions(draw_task, 8, seed=42)
        b = run_repetitions(draw_task, 8, seed=42)
        assert a == b

    def test_streams_independent(self):
        out = run_repetitions(draw_task, 10, seed=1)
        assert len(set(out)) == 10

    def test_kwargs_forwarded(self):
        out = run_repetitions(draw_task, 3, seed=0, kwargs={"scale": 0.0})
        assert out == [0.0, 0.0, 0.0]

    def test_zero_repetitions(self):
        assert run_repetitions(draw_task, 0, seed=0) == []

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            run_repetitions(draw_task, -1)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            run_repetitions(draw_task, 1, workers=0)


class TestPool:
    def test_pool_matches_serial(self):
        """workers=2 returns identical results in identical order."""
        serial = run_repetitions(identity_seed_entropy, 6, seed=7, workers=1)
        pooled = run_repetitions(identity_seed_entropy, 6, seed=7, workers=2)
        assert serial == pooled

    def test_pool_single_payload_falls_back(self):
        out = run_repetitions(draw_task, 1, seed=3, workers=4)
        assert len(out) == 1

    def test_workers_none_uses_all_cpus(self):
        out = run_repetitions(draw_task, 4, seed=9, workers=None)
        assert len(out) == 4
