"""Tests for the repetition executor, including the ensemble seed contract.

The seed contract (see the executor's module docstring): the master seed is
spawned into ``repetitions`` child sequences exactly once, child ``i`` is
repetition ``i``'s on every path, and ensemble blocks receive contiguous
slices of that same child list — so a stream-matched ensemble task must
reproduce scalar results bit-for-bit for any ``workers`` / ``block_size``.
"""

import os

import numpy as np
import pytest

from repro.bins import uniform_bins
from repro.core import simulate, simulate_ensemble
from repro.core.compiled import (
    THREADS_ENV_VAR,
    forced_backend,
    forced_threads,
    get_threads,
    resolve_threads,
)
from repro.runtime import (
    block_parameter_rng,
    run_ensemble_blocks,
    run_ensemble_reduced,
    run_repetitions,
)


def draw_task(seed, scale=1.0):
    """Top-level task so it pickles for the pool path."""
    return float(np.random.default_rng(seed).random() * scale)


def identity_seed_entropy(seed):
    """Returns a stable fingerprint of the received seed."""
    return np.random.default_rng(seed).integers(0, 2**32)


def draw_block_task(seeds, scale=1.0):
    """Ensemble counterpart of draw_task: one draw per child seed."""
    return [draw_task(s, scale=scale) for s in seeds]


def scalar_counts_task(seed, n=6, c=2, m=30):
    """One scalar simulation; returns the count vector."""
    return simulate(uniform_bins(n, c), m=m, seed=seed).counts


def ensemble_counts_task(seeds, n=6, c=2, m=30):
    """Stream-matched lockstep block: per-replication count rows."""
    res = simulate_ensemble(uniform_bins(n, c), m=m, seeds=seeds)
    return list(res.counts)


def bad_length_task(seeds):
    return [0]  # always the wrong number of per-repetition results


def block_fingerprint_task(seeds):
    """Block-level task recording which child seeds the block received."""
    return [identity_seed_entropy(s) for s in seeds]


def shared_param_block_task(seeds, draws=5):
    """Blocked-mode task using the shared-params-per-block hook: draws the
    block's parameters from block_parameter_rng(seeds), then fingerprints
    the child seeds it received."""
    rng = block_parameter_rng(seeds)
    params = rng.random(draws).tolist()
    return {
        "params": params,
        "fingerprints": [identity_seed_entropy(s) for s in seeds],
    }


class _SumReducer:
    """Minimal mergeable reducer for run_ensemble_reduced tests."""

    def __init__(self, total=0.0):
        self.total = total

    def merge(self, other):
        self.total += other.total
        return self


def sum_block_task(seeds):
    return _SumReducer(sum(draw_task(s) for s in seeds))


class TestSerial:
    def test_count(self):
        out = run_repetitions(draw_task, 5, seed=0)
        assert len(out) == 5

    def test_deterministic(self):
        a = run_repetitions(draw_task, 8, seed=42)
        b = run_repetitions(draw_task, 8, seed=42)
        assert a == b

    def test_streams_independent(self):
        out = run_repetitions(draw_task, 10, seed=1)
        assert len(set(out)) == 10

    def test_kwargs_forwarded(self):
        out = run_repetitions(draw_task, 3, seed=0, kwargs={"scale": 0.0})
        assert out == [0.0, 0.0, 0.0]

    def test_zero_repetitions(self):
        assert run_repetitions(draw_task, 0, seed=0) == []

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            run_repetitions(draw_task, -1)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            run_repetitions(draw_task, 1, workers=0)


class TestEnsembleSeedContract:
    def test_flat_results_match_scalar_path(self):
        """ensemble=True with a per-seed task equals the scalar path exactly:
        same spawn order, same per-repetition results, same positions."""
        scalar = run_repetitions(draw_task, 9, seed=42)
        for block_size in (1, 2, 4, 9, 100):
            ens = run_repetitions(
                draw_block_task, 9, seed=42, ensemble=True, block_size=block_size
            )
            assert ens == scalar, f"block_size={block_size}"

    def test_lockstep_engine_reproduces_scalar_repetitions(self):
        """A simulate_ensemble(seeds=...) task is bit-identical to scalar
        simulate() repetitions — the regression guard for the seed handling
        fix (ensemble blocks consume the same SeedSequence.spawn order)."""
        scalar = run_repetitions(scalar_counts_task, 7, seed=123)
        for block_size in (2, 3, 7):
            ens = run_repetitions(
                ensemble_counts_task, 7, seed=123, ensemble=True, block_size=block_size
            )
            assert len(ens) == 7
            for a, b in zip(scalar, ens):
                np.testing.assert_array_equal(a, b)

    def test_pool_matches_serial_ensemble(self):
        serial = run_repetitions(
            draw_block_task, 8, seed=7, ensemble=True, block_size=3, workers=1
        )
        pooled = run_repetitions(
            draw_block_task, 8, seed=7, ensemble=True, block_size=3, workers=2
        )
        assert serial == pooled

    def test_default_block_bounds_independent_of_workers(self):
        """Block boundaries come from block_size alone, so changing the pool
        size can never change a blocked-mode task's streams (regression for
        the workers-coupled default partitioning)."""
        serial = run_ensemble_blocks(block_fingerprint_task, 10, seed=5, workers=1)
        pooled = run_ensemble_blocks(block_fingerprint_task, 10, seed=5, workers=3)
        assert [list(b) for b in serial] == [list(b) for b in pooled]

    def test_blocks_receive_contiguous_seed_slices(self):
        """Concatenated block fingerprints equal the scalar per-repetition
        fingerprints: block b covering [i0, i1) got children[i0:i1]."""
        scalar = run_repetitions(identity_seed_entropy, 10, seed=99)
        blocks = run_ensemble_blocks(
            block_fingerprint_task, 10, seed=99, block_size=4
        )
        assert [len(b) for b in blocks] == [4, 4, 2]
        assert [fp for block in blocks for fp in block] == scalar

    def test_reduced_merges_blocks(self):
        """run_ensemble_reduced merges block reducers into one; the merged
        total equals the scalar per-repetition sum for any block_size."""
        expected = sum(run_repetitions(draw_task, 9, seed=31))
        for block_size in (2, 9):
            reducer = run_ensemble_reduced(
                sum_block_task, 9, seed=31, block_size=block_size
            )
            assert reducer.total == pytest.approx(expected)
        with pytest.raises(ValueError, match="at least one repetition"):
            run_ensemble_reduced(sum_block_task, 0, seed=31)

    def test_wrong_result_length_rejected(self):
        with pytest.raises(ValueError, match="ensemble task returned"):
            run_repetitions(bad_length_task, 5, seed=0, ensemble=True, block_size=5)

    def test_zero_repetitions(self):
        assert run_repetitions(draw_block_task, 0, seed=0, ensemble=True) == []
        assert run_ensemble_blocks(draw_block_task, 0, seed=0) == []

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError, match="block_size"):
            run_ensemble_blocks(draw_block_task, 4, seed=0, block_size=0)

    def test_run_tasks_rejects_mismatched_weights(self):
        from repro.runtime import run_tasks

        payloads = [(draw_task, s, {}) for s in range(3)]
        with pytest.raises(ValueError, match="weights"):
            run_tasks(payloads, weights=[1, 1])


class TestBlockParameterHook:
    """Seed-order regression for the shared-params-per-block convention:
    drawing shared parameters inside a block (random caps, ball sizes,
    rings) must not perturb the documented SeedSequence.spawn contract."""

    def test_rng_derives_from_first_child_only(self):
        """The parameter generator is a pure function of seeds[0]."""
        from repro.sampling.rngutils import spawn_seed_sequences

        children = spawn_seed_sequences(123, 5)
        hooked = block_parameter_rng(children).random(4)
        direct = np.random.default_rng(children[0]).random(4)
        np.testing.assert_array_equal(hooked, direct)
        # The remaining children of the slice are irrelevant to the draw.
        partial = block_parameter_rng(children[:1]).random(4)
        np.testing.assert_array_equal(hooked, partial)

    def test_param_draws_do_not_perturb_seed_contract(self):
        """A block that consumes parameter draws still receives exactly
        children[i0:i1]: concatenated fingerprints equal the scalar path's,
        for every block size."""
        scalar = run_repetitions(identity_seed_entropy, 10, seed=77)
        for block_size in (1, 3, 4, 10):
            blocks = run_ensemble_blocks(
                shared_param_block_task, 10, seed=77, block_size=block_size
            )
            flat = [fp for b in blocks for fp in b["fingerprints"]]
            assert flat == scalar, f"block_size={block_size}"

    def test_param_draws_deterministic_in_seed_and_block_size(self):
        """Shared parameter draws are fixed by (seed, block_size) alone —
        the pool size can never change which parameters a block sees."""
        serial = run_ensemble_blocks(
            shared_param_block_task, 9, seed=5, block_size=3, workers=1
        )
        pooled = run_ensemble_blocks(
            shared_param_block_task, 9, seed=5, block_size=3, workers=3
        )
        assert [b["params"] for b in serial] == [b["params"] for b in pooled]
        # Distinct blocks own distinct first children, hence distinct params.
        assert serial[0]["params"] != serial[1]["params"]

    def test_rejects_empty_slice(self):
        with pytest.raises(ValueError, match="non-empty"):
            block_parameter_rng([])


def thread_env_task(seed):
    """Reports the compiled-tier thread setup a pool child sees: the env
    var the initializer pinned, what get_threads resolves it to, and the
    concrete budget a compiled-parallel-sized batch would get."""
    del seed
    return {
        "env": os.environ.get(THREADS_ENV_VAR),
        "setting": get_threads(),
        "resolved": resolve_threads(64, 1 << 30),
    }


class TestThreadBudgetGuard:
    """Oversubscription guard: pool children are pinned to one compiled
    thread unless the driver explicitly forced a budget, so
    ``workers × threads`` never exceeds the core budget."""

    def test_pool_children_pinned_to_one_thread(self):
        out = run_repetitions(thread_env_task, 4, seed=0, workers=2)
        for child in out:
            assert child["env"] == "1"
            assert child["setting"] == 1
            assert child["resolved"] == 1

    def test_workers_4_compiled_parallel_stays_within_core_budget(self):
        """workers=4 + compiled-parallel: each child resolves to exactly 1
        thread even for a batch far beyond the work-size floor, so the
        fleet runs workers × 1 = 4 threads, never workers × cores."""
        workers = 4
        with forced_backend("compiled"):
            out = run_repetitions(thread_env_task, workers, seed=0,
                                  workers=workers)
        total_threads = sum(child["resolved"] for child in out)
        assert total_threads == workers

    def test_pool_children_inherit_forced_budget(self):
        """The guard is overridable: an explicit parent budget propagates
        (the escape hatch for few-worker fleets on many-core machines)."""
        with forced_threads(3):
            out = run_repetitions(thread_env_task, 2, seed=0, workers=2)
        for child in out:
            assert child["env"] == "3"
            assert child["setting"] == 3
            assert child["resolved"] == 3

    def test_parent_env_untouched(self):
        before = os.environ.get(THREADS_ENV_VAR)
        run_repetitions(thread_env_task, 2, seed=0, workers=2)
        assert os.environ.get(THREADS_ENV_VAR) == before


class TestPool:
    def test_pool_matches_serial(self):
        """workers=2 returns identical results in identical order."""
        serial = run_repetitions(identity_seed_entropy, 6, seed=7, workers=1)
        pooled = run_repetitions(identity_seed_entropy, 6, seed=7, workers=2)
        assert serial == pooled

    def test_pool_single_payload_falls_back(self):
        out = run_repetitions(draw_task, 1, seed=3, workers=4)
        assert len(out) == 1

    def test_workers_none_uses_all_cpus(self):
        out = run_repetitions(draw_task, 4, seed=9, workers=None)
        assert len(out) == 4
