"""Tests for progress reporting."""

import io

import pytest

from repro.runtime import NullReporter, ProgressReporter, make_reporter


class TestNullReporter:
    def test_noops(self):
        r = NullReporter()
        r.start(10, "x")
        r.advance()
        r.finish()  # nothing raised


class TestProgressReporter:
    def test_emits_label_and_counts(self):
        stream = io.StringIO()
        r = ProgressReporter(interval=0.0001, stream=stream)
        r.start(4, label="work")
        r.advance(4)
        r.finish()
        text = stream.getvalue()
        assert "work" in text
        assert "4/4" in text

    def test_unknown_total(self):
        stream = io.StringIO()
        r = ProgressReporter(interval=0.0001, stream=stream)
        r.start(0, label="open-ended")
        r.advance(3)
        r.finish()
        assert "open-ended: 3" in stream.getvalue()

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            ProgressReporter(interval=0)


class TestMakeReporter:
    def test_true_gives_progress(self):
        assert isinstance(make_reporter(True), ProgressReporter)

    def test_none_and_false_give_null(self):
        assert type(make_reporter(None)) is NullReporter
        assert type(make_reporter(False)) is NullReporter

    def test_instance_passthrough(self):
        r = NullReporter()
        assert make_reporter(r) is r

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            make_reporter("yes")
