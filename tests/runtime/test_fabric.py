"""Sweep-fabric tests: protocol, bit-identity, worker death, resume.

The load-bearing contract: a fixed-budget ``run_ensemble_reduced`` routed
through a :class:`~repro.runtime.fabric.FabricSession` returns a reducer
**bit-identical** to the serial run — regardless of fleet size, worker
placement, mid-flight worker deaths (``SIGKILL``), hung workers
(``SIGSTOP`` → lease expiry), or a whole-fabric kill resumed from parked
blocks.  Tasks live at module top level so worker subprocesses (which get
the driver's ``sys.path`` via ``PYTHONPATH``) can unpickle them.
"""

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.aggregate import StreamingScalar
from repro.analysis.precision import PrecisionTarget
from repro.core.compiled import THREADS_ENV_VAR, forced_threads
from repro.io.store import CheckpointSlot, ResultStore
from repro.runtime import (
    FabricSession,
    TaskError,
    current_fabric,
    run_ensemble_reduced,
)
from repro.runtime.executor import block_seed_spec
from repro.runtime.fabric.broker import Broker
from repro.runtime.fabric.protocol import (
    Wire,
    encode,
    park_fingerprint,
    park_path,
    split_lines,
    work_token,
)
from repro.runtime.fabric.worker import _pid_alive, _recv_patiently

REPS, BLOCK = 24, 3  # 8 blocks


def scalar_block(seeds):
    """Pure block reducer: one uniform draw per repetition."""
    values = [float(np.random.default_rng(s).random()) for s in seeds]
    return StreamingScalar().update(values)


def slow_block(seeds, *, delay=0.1):
    """Same numbers as scalar_block, but slow enough to kill mid-flight."""
    time.sleep(delay)
    return scalar_block(seeds)


def suicidal_block(seeds, *, arm_dir, fuse=9):
    """SIGKILLs its own worker process on late blocks while the arm file
    exists — the whole-fabric-kill scenario.  ``arm_dir`` is part of the
    kwargs (so every attempt shares one work token); *arming* is
    out-of-band file state, so the resume attempt computes instead of
    dying.  Early blocks always complete and get parked."""
    first_rep = seeds[0].spawn_key[-1]
    if first_rep >= fuse and (Path(arm_dir) / "armed").exists():
        os.kill(os.getpid(), signal.SIGKILL)
    return scalar_block(seeds)


def failing_block(seeds):
    raise ValueError("fabric task boom")


def reference_reducer():
    return run_ensemble_reduced(scalar_block, REPS, seed=42, block_size=BLOCK)


def assert_same_reducer(a, b):
    assert a == b  # bit-exact state equality (byte-compared moments)
    agg_a, agg_b = a.aggregate(), b.aggregate()
    assert (agg_a.mean, agg_a.std, agg_a.minimum, agg_a.maximum) == (
        agg_b.mean, agg_b.std, agg_b.minimum, agg_b.maximum
    )


def wait_for_park_file(store, deadline=10.0):
    """Spin until some worker parks a block reducer in *store* (so a kill
    staged after this is genuinely mid-flight, not before the start)."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if any(store.root.rglob("block-*.pkl")):
            return True
        time.sleep(0.02)
    return False


def _proc_environ(pid):
    """Parse /proc/<pid>/environ into a dict (Linux only)."""
    raw = Path(f"/proc/{pid}/environ").read_bytes()
    return dict(
        item.split(b"=", 1) for item in raw.split(b"\0") if b"=" in item
    )


@pytest.mark.skipif(not Path("/proc").exists(), reason="needs Linux procfs")
class TestWorkerThreadBudget:
    """Oversubscription guard, fabric side: spawned workers are pinned to
    one compiled thread via their environment unless the driver forced an
    explicit budget (mirrors the executor pool initializer)."""

    def test_spawned_workers_pinned_to_one_thread(self):
        with FabricSession(1) as session:
            pid = session.worker_pids[0]
            assert _proc_environ(pid)[THREADS_ENV_VAR.encode()] == b"1"

    def test_spawned_workers_inherit_forced_budget(self):
        with forced_threads(3):
            with FabricSession(1) as session:
                pid = session.worker_pids[0]
                assert _proc_environ(pid)[THREADS_ENV_VAR.encode()] == b"3"


class TestProtocol:
    def test_frame_round_trip(self):
        messages = [
            {"type": "hello", "worker": "w-1"},
            {"type": "lease", "token": "t" * 24, "dir": "/x", "i0": 0, "i1": 3},
        ]
        stream = b"".join(encode(m) for m in messages) + b'{"type":"ok"'
        decoded, rest = split_lines(stream)
        assert decoded == messages
        assert rest == b'{"type":"ok"'
        more, rest = split_lines(rest + b"}\n")
        assert more == [{"type": "ok"}] and rest == b""

    def test_work_token_is_seed_and_kwargs_sensitive(self):
        spec = block_seed_spec(42)
        base = work_token(scalar_block, REPS, BLOCK, spec, {})
        assert len(base) == 24
        assert base == work_token(scalar_block, REPS, BLOCK, spec, {})
        assert base != work_token(scalar_block, REPS, BLOCK, block_seed_spec(43), {})
        assert base != work_token(scalar_block, REPS + 1, BLOCK, spec, {})
        assert base != work_token(slow_block, REPS, BLOCK, spec, {})
        big = np.ones(5000)
        tweaked = big.copy()
        tweaked[2500] = 7.0  # repr-invisible: both print as [1. 1. ... 1.]
        assert work_token(scalar_block, REPS, BLOCK, spec, {"caps": big}) != (
            work_token(scalar_block, REPS, BLOCK, spec, {"caps": tweaked})
        )

    def test_none_seed_tokens_never_collide(self):
        a = work_token(scalar_block, REPS, BLOCK, block_seed_spec(None), {})
        b = work_token(scalar_block, REPS, BLOCK, block_seed_spec(None), {})
        assert a != b  # fresh OS entropy per spec: no false park sharing

    def test_wire_recv_timeout_loses_no_bytes(self):
        a, b = socket.socketpair()
        try:
            wire = Wire(a)
            with pytest.raises(TimeoutError, match="no broker frame"):
                wire.recv(timeout=0.05)
            # A frame split across sends survives a timeout mid-frame:
            # the partial line stays buffered, nothing is dropped.
            b.sendall(b'{"type":"ok"')
            with pytest.raises(TimeoutError):
                wire.recv(timeout=0.05)
            b.sendall(b'}\n{"type":"idle"}\n')
            assert wire.recv(timeout=1.0) == {"type": "ok"}
            assert wire.recv(timeout=1.0) == {"type": "idle"}
            b.close()
            with pytest.raises(ConnectionError, match="closed"):
                wire.recv(timeout=1.0)
        finally:
            a.close()

    def test_recv_patiently_detects_a_dead_broker_pid(self):
        # A pid that existed and is now gone: the probe, not the socket,
        # must get the worker out (a vanished broker host sends no RST).
        ghost = subprocess.Popen([sys.executable, "-c", "pass"])
        ghost.wait()
        assert not _pid_alive(ghost.pid)
        assert _pid_alive(os.getpid())
        a, b = socket.socketpair()
        try:
            with pytest.raises(ConnectionError, match="died"):
                _recv_patiently(
                    Wire(a), broker_pid=ghost.pid, tick=0.02, deadline=60.0)
        finally:
            a.close()
            b.close()

    def test_recv_patiently_deadline_fires_on_live_silent_broker(self):
        a, b = socket.socketpair()
        try:
            with pytest.raises(ConnectionError, match="no broker reply"):
                _recv_patiently(
                    Wire(a), broker_pid=os.getpid(), tick=0.02, deadline=0.1)
        finally:
            a.close()
            b.close()


class TestBrokerUnit:
    """Broker scheduling decisions, driven without any real workers."""

    def test_park_detected_on_lost_lease(self, tmp_path):
        broker = Broker(lease_ttl=60.0)
        try:
            ws = broker.submit("tok", tmp_path, [(0, 3)])
            # park the block exactly as a worker would, then lose the lease
            reducer = scalar_block([np.random.SeedSequence(1)])
            CheckpointSlot(park_path(tmp_path, 0)).save(
                reducer, 1, park_fingerprint("tok", 0, 3)
            )
            with broker._lock:
                broker._lost(("tok", 0), "worker disconnected")
            assert ws.event.is_set() and ws.error is None
            assert ws.done == {0}
            assert ws.done_repetitions() == 3
        finally:
            broker.stop()

    def test_unparked_lost_lease_requeues_then_gives_up(self, tmp_path):
        broker = Broker(lease_ttl=60.0, max_requeues=2)
        try:
            ws = broker.submit("tok", tmp_path, [(0, 3)])
            with broker._lock:
                broker._queue.clear()  # simulate the block being leased out
            for _ in range(2):
                with broker._lock:
                    broker._lost(("tok", 0), "lease expired")
                    assert not ws.event.is_set()
                    assert ("tok", 0) in broker._queue
                    broker._queue.clear()
            with broker._lock:
                broker._lost(("tok", 0), "lease expired")
            assert ws.event.is_set()
            assert "lost 3 times" in ws.error
        finally:
            broker.stop()


class TestFabricIdentity:
    def test_fabric_equals_serial_bit_identically(self):
        reference = reference_reducer()
        with FabricSession(workers=2) as session:
            with session.activate():
                fabbed = run_ensemble_reduced(
                    scalar_block, REPS, seed=42, block_size=BLOCK
                )
        assert_same_reducer(fabbed, reference)

    def test_fleet_size_never_changes_numbers(self):
        reference = reference_reducer()
        with FabricSession(workers=3) as session:
            with session.activate():
                fabbed = run_ensemble_reduced(
                    scalar_block, REPS, seed=42, block_size=BLOCK
                )
        assert_same_reducer(fabbed, reference)

    def test_activation_is_scoped(self):
        assert current_fabric() is None
        with FabricSession(workers=0, spawn_workers=False) as session:
            with session.activate():
                assert current_fabric() is session
            assert current_fabric() is None
        assert current_fabric() is None

    def test_closed_session_refuses_activation(self):
        session = FabricSession(workers=0, spawn_workers=False)
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            with session.activate():
                pass  # pragma: no cover

    def test_adaptive_runs_stay_local(self):
        # The fabric serves only fixed-budget runs; an until= run under an
        # activated workerless session must execute locally (it would hang
        # forever if it leased blocks to the empty fleet).
        target = PrecisionTarget(absolute=0.2, confidence=0.9, min_blocks=4)
        local = run_ensemble_reduced(
            scalar_block, 60, seed=42, block_size=BLOCK, until=target.monitor()
        )
        with FabricSession(workers=0, spawn_workers=False) as session:
            with session.activate():
                fabbed = run_ensemble_reduced(
                    scalar_block, 60, seed=42, block_size=BLOCK,
                    until=target.monitor(),
                )
        assert_same_reducer(fabbed, local)

    def test_worker_task_failure_raises_labelled_taskerror(self):
        with FabricSession(workers=1, lease_ttl=5.0) as session:
            with session.activate():
                with pytest.raises(TaskError, match="boom fabric work set") as err:
                    run_ensemble_reduced(
                        failing_block, 6, seed=1, block_size=3, label="boom"
                    )
        text = str(err.value)
        # the worker-side traceback travelled back over the wire, and the
        # block gave up only after the broker's retry cap
        assert "block [0, 3) failed 3 times" in text
        assert "fabric task boom" in text


class TestWorkerDeath:
    def test_kill_half_the_workers_mid_flight(self):
        reference = run_ensemble_reduced(slow_block, 40, seed=7, block_size=2)
        session = FabricSession(workers=4, lease_ttl=3.0)
        killed = []
        try:
            pids = list(session.worker_pids)
            assert len(pids) == 4

            def assassin():
                wait_for_park_file(session.store)
                for pid in pids[:2]:
                    try:
                        os.kill(pid, signal.SIGKILL)
                        killed.append(pid)
                    except ProcessLookupError:  # pragma: no cover
                        pass

            thread = threading.Thread(target=assassin)
            thread.start()
            with session.activate():
                fabbed = run_ensemble_reduced(slow_block, 40, seed=7, block_size=2)
            thread.join()
            assert killed, "assassin thread never fired"
            assert_same_reducer(fabbed, reference)
        finally:
            session.close()

    def test_sigstopped_worker_loses_lease_to_the_living(self):
        # A frozen worker never closes its socket — only lease expiry can
        # recover its block.  lease_ttl is short so the test stays fast.
        reference = run_ensemble_reduced(slow_block, 16, seed=11, block_size=2)
        session = FabricSession(workers=2, lease_ttl=1.5)
        stopped = []
        try:
            pids = list(session.worker_pids)

            def freezer():
                wait_for_park_file(session.store)
                try:
                    os.kill(pids[0], signal.SIGSTOP)
                    stopped.append(pids[0])
                except ProcessLookupError:  # pragma: no cover
                    pass

            thread = threading.Thread(target=freezer)
            thread.start()
            with session.activate():
                fabbed = run_ensemble_reduced(slow_block, 16, seed=11, block_size=2)
            thread.join()
            assert stopped, "freezer thread never fired"
            assert_same_reducer(fabbed, reference)
        finally:
            for pid in stopped:
                try:
                    os.kill(pid, signal.SIGCONT)
                except ProcessLookupError:
                    pass
            session.close()


#: Runs a broker in a disposable process so tests can kill it under a live
#: worker.  Prints the address, then a second line once a worker connects.
_BROKER_HOST_SCRIPT = """\
import time
from repro.runtime.fabric.broker import Broker

broker = Broker(lease_ttl=30.0).start()
host, port = broker.address
print(f"{host}:{port}", flush=True)
while broker.worker_count() == 0:
    time.sleep(0.02)
print("worker-connected", flush=True)
time.sleep(600)
"""


class TestBrokerDeath:
    """The reverse of TestWorkerDeath: the broker dies under a live worker.

    Before PR 10 a worker waiting for a reply sat in a blocking ``recv``
    with no timeout — a broker host that vanished without closing the TCP
    connection (machine crash, SIGSTOP, network partition) left the worker
    hung forever.  These tests put the broker in its own subprocess and
    assert the worker gets itself out in both flavours of broker death.
    """

    def _spawn_broker_and_worker(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p or os.getcwd() for p in sys.path)
        broker = subprocess.Popen(
            [sys.executable, "-c", _BROKER_HOST_SCRIPT],
            env=env, stdout=subprocess.PIPE, text=True,
        )
        address = broker.stdout.readline().strip()
        assert ":" in address, f"broker host failed to start: {address!r}"
        worker = subprocess.Popen(
            [
                sys.executable, "-m", "repro.runtime.fabric.worker",
                "--address", address,
                "--broker-pid", str(broker.pid),
                "--recv-tick", "0.1",
                "--recv-deadline", "2",
            ],
            env=env, stderr=subprocess.PIPE, text=True,
        )
        # The worker's hello has been answered: the kill below lands on a
        # genuinely live request loop, not on a connect in progress.
        assert broker.stdout.readline().strip() == "worker-connected"
        return broker, worker

    def _reap(self, *procs):
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
            proc.wait()

    def test_worker_exits_when_broker_is_sigkilled(self):
        broker, worker = self._spawn_broker_and_worker()
        try:
            os.kill(broker.pid, signal.SIGKILL)
            assert worker.wait(timeout=10) == 1
            assert "broker lost" in worker.stderr.read()
        finally:
            self._reap(worker, broker)

    def test_worker_gives_up_on_a_sigstopped_broker(self):
        # The hard case: the broker pid stays alive and its socket stays
        # open, so neither EOF nor the pid probe fires — only the recv
        # deadline can get the worker out.
        broker, worker = self._spawn_broker_and_worker()
        try:
            os.kill(broker.pid, signal.SIGSTOP)
            assert worker.wait(timeout=15) == 1
            assert "no broker reply" in worker.stderr.read()
        finally:
            try:
                os.kill(broker.pid, signal.SIGCONT)
            except ProcessLookupError:
                pass
            self._reap(worker, broker)


def test_whole_fabric_kill_then_resume(tmp_path):
    """Kill every worker mid-sweep; a fresh fleet over the same store picks
    the parked blocks up by content address and finishes bit-identically."""
    arm_dir = tmp_path / "arm"
    arm_dir.mkdir()
    store = ResultStore(tmp_path / "store")
    kwargs = {"arm_dir": str(arm_dir), "fuse": 9}

    # Reference: serial, computed before arming (same kwargs -> the fabric
    # attempts below address the same work token).
    reference = run_ensemble_reduced(
        suicidal_block, REPS, seed=42, block_size=BLOCK, kwargs=kwargs
    )

    # Attempt 1: armed — every worker that reaches repetition >= 9 dies,
    # so the whole fleet is dead within a few blocks.
    (arm_dir / "armed").touch()
    session = FabricSession(workers=2, store=store, lease_ttl=2.0)
    try:
        with session.activate():
            with pytest.raises(TaskError, match="fabric work set failed"):
                run_ensemble_reduced(
                    suicidal_block, REPS, seed=42, block_size=BLOCK, kwargs=kwargs
                )
    finally:
        session.close()
    parked = list((store.root / "fabric").rglob("block-*.pkl"))
    assert parked, "the doomed fleet parked nothing before dying"

    # Attempt 2: disarmed, fresh fleet, same store — the parked blocks are
    # found under the same content-addressed token and never recomputed.
    (arm_dir / "armed").unlink()
    session = FabricSession(workers=2, store=store, lease_ttl=5.0)
    try:
        with session.activate():
            resumed = run_ensemble_reduced(
                suicidal_block, REPS, seed=42, block_size=BLOCK, kwargs=kwargs
            )
    finally:
        session.close()
    assert_same_reducer(resumed, reference)
    # post-merge cleanup: the work set's scratch namespace is gone
    assert not list((store.root / "fabric").rglob("block-*.pkl"))


class TestCheckpointInterplay:
    def test_fabric_run_checkpoints_and_a_local_rerun_replays(self, tmp_path):
        store = ResultStore(tmp_path)
        reference = reference_reducer()
        with FabricSession(workers=2, store=store) as session:
            with session.activate():
                first = run_ensemble_reduced(
                    scalar_block, REPS, seed=42, block_size=BLOCK,
                    checkpoint=store.checkpointer("f" * 64),
                )
        assert_same_reducer(first, reference)
        # the fabric run checkpointed every absorbed block, so a local
        # rerun of the same call is a pure checkpoint replay
        resumed = run_ensemble_reduced(
            scalar_block, REPS, seed=42, block_size=BLOCK,
            checkpoint=store.checkpointer("f" * 64),
        )
        assert_same_reducer(resumed, reference)


class TestExperimentIdentity:
    def test_fig02_fabric_vs_serial(self):
        from repro.core.equivalence import check_fabric_serial_identity

        assert check_fabric_serial_identity("fig02", workers=2) == 2

    def test_execute_request_fabric_parameter(self, tmp_path):
        from repro.experiments.request import RunRequest
        from repro.experiments.runner import execute_request

        request = RunRequest(
            experiment_id="fig02", seed=2026, engine="ensemble",
            overrides=(("repetitions", 8),),
        )
        plain = execute_request(request).result
        with FabricSession(workers=2, store=ResultStore(tmp_path)) as session:
            fabbed = execute_request(request, fabric=session).result
        for name in plain.series:
            a, b = plain.series[name], fabbed.series[name]
            both_nan = np.isnan(a) & np.isnan(b)
            assert np.array_equal(a[~both_nan], b[~both_nan]), name
