"""Tests for Algorithm 1's reference implementation."""

import numpy as np
import pytest

from repro.core.protocol import TIE_BREAKS, allocate_ball, reference_run, select_bin


class TestSelectBin:
    def test_least_loaded_wins(self):
        # loads after: bin0 -> 2/1, bin1 -> 1/1
        assert select_bin([1, 0], [1, 1], [0, 1]) == 1

    def test_capacity_weighting_in_load(self):
        # counts 3,3; caps 1,4 -> loads after 4.0 vs 1.0
        assert select_bin([3, 3], [1, 4], [0, 1]) == 1

    def test_exact_fraction_comparison(self):
        # (counts+1)/caps: 1/3 vs 2/6 are exactly equal -> tie, larger cap wins
        assert select_bin([0, 1], [3, 6], [0, 1]) == 1

    def test_tie_max_capacity_filter(self):
        # equal loads after: (0+1)/2 vs (0+1)/2; capacities 2 vs 2... use 1/1 vs 2/2
        assert select_bin([0, 1], [1, 2], [0, 1]) == 1

    def test_tie_among_equal_capacity_uniform(self):
        counts = [0, 0]
        picks = {
            select_bin(counts, [1, 1], [0, 1], np.random.default_rng(s)) for s in range(40)
        }
        assert picks == {0, 1}

    def test_min_capacity_variant(self):
        assert select_bin([0, 1], [1, 2], [0, 1], tie_break="min_capacity") == 0

    def test_uniform_variant_keeps_both(self):
        picks = {
            select_bin([0, 1], [1, 2], [0, 1], np.random.default_rng(s), tie_break="uniform")
            for s in range(40)
        }
        assert picks == {0, 1}

    def test_duplicate_candidates(self):
        assert select_bin([5, 0], [1, 1], [0, 0]) == 0

    def test_single_candidate(self):
        assert select_bin([9], [1], [0]) == 0

    def test_rejects_empty_candidates(self):
        with pytest.raises(ValueError, match="non-empty"):
            select_bin([0], [1], [])

    def test_rejects_unknown_tie_break(self):
        with pytest.raises(ValueError, match="unknown tie_break"):
            select_bin([0], [1], [0], tie_break="biggest")

    def test_three_way_decision(self):
        # loads after: 3/1, 2/2, 5/4 -> 3.0, 1.0, 1.25 -> bin 1
        assert select_bin([2, 1, 4], [1, 2, 4], [0, 1, 2]) == 1

    def test_paper_rule_prefers_big_bin_on_tie(self):
        """Empty bins of caps 1 and 8: loads-after 1.0 vs 0.125 — the big
        bin simply wins; but with counts making equal loads, capacity
        decides."""
        # counts 1,15 caps 2,16: loads after = 1.0, 1.0 -> cap 16 wins
        assert select_bin([1, 15], [2, 16], [0, 1]) == 1


class TestAllocateBall:
    def test_increments_chosen(self):
        counts = [0, 0]
        chosen = allocate_ball(counts, [1, 2], [0, 1])
        assert chosen == 1
        assert counts == [0, 1]

    def test_sequence_conserves_balls(self):
        counts = [0, 0, 0]
        rng = np.random.default_rng(0)
        for _ in range(30):
            allocate_ball(counts, [1, 2, 3], [0, 1, 2], rng)
        assert sum(counts) == 30


class TestReferenceRun:
    def test_conservation(self):
        rng = np.random.default_rng(1)
        choices = rng.integers(0, 4, size=(100, 2))
        counts = reference_run([1, 2, 3, 4], choices, rng)
        assert counts.sum() == 100

    def test_deterministic_when_no_ties_possible(self):
        # caps all distinct and candidate pairs always comparable with the
        # max-capacity rule; same choices -> same counts for any rng
        choices = np.array([[0, 1], [1, 2], [0, 2], [2, 1]])
        a = reference_run([1, 2, 4], choices, np.random.default_rng(5))
        b = reference_run([1, 2, 4], choices, np.random.default_rng(99))
        np.testing.assert_array_equal(a, b)

    def test_tie_breaks_constant(self):
        assert TIE_BREAKS == ("max_capacity", "uniform", "min_capacity")
