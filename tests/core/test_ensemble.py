"""Randomised equivalence suite for the lockstep ensemble engine.

The contract under test (see :mod:`repro.core.ensemble`): every replication
of the ensemble engine is *bit-identical* to the scalar engines given the
same choices and tie-uniform stream —

* ``run_batch_ensemble(counts, caps, choices, tie_u)[r]``
  equals ``fast.run_batch`` on ``choices[r]`` / ``tie_u[r]``
  equals ``protocol.reference_run(..., tie_uniforms=tie_u[r])``,
  including per-ball heights instrumentation;
* ``simulate_ensemble(bins, seeds=[s_0..s_{R-1}])`` row ``r`` equals
  ``simulate(bins, seed=s_r)`` — counts, heights, and snapshots;
* the protocol variants carry the same spawn-mode parity:
  ``simulate_batched_ensemble`` / ``simulate_weighted_ensemble`` /
  ``allocate_requests_ensemble`` row ``r`` equals the matching scalar driver
  under ``seed=child_r``.

On top of the bit-level sweeps, the per-experiment cross-engine matrix
(:data:`repro.core.equivalence.EXPERIMENT_CASES`) runs **every** registered
experiment on both engines at a pinned tiny configuration; a future
experiment that skips migration fails here rather than only at
``--engine ensemble`` runtime.

``scripts/check_equivalence.py`` reruns this suite with a larger draw budget.
"""

import inspect

import numpy as np
import pytest

from repro.bins import BinArray
from repro.core.ensemble import SEED_MODES, run_batch_ensemble, simulate_ensemble
from repro.core.equivalence import (
    EXPERIMENT_CASES,
    check_batched_parity,
    check_driver_parity,
    check_kernel_equivalence,
    check_experiment_equivalence,
    check_experiment_wavefront_identity,
    check_ring_parity,
    check_weighted_parity,
)
from repro.core.fast import run_batch
from repro.sampling.rngutils import spawn_seed_sequences


class TestRandomisedEquivalence:
    def test_three_way_sweep(self):
        """~50 randomised (n, m, d, profile, tie, seed) draws: ensemble ==
        fast == reference, counts and heights, for every replication."""
        assert check_kernel_equivalence(0xE25E) == 50

    def test_driver_parity_sweep(self):
        """simulate_ensemble row r == simulate(seed=child_r), randomised."""
        assert check_driver_parity(0xD41E) == 6

    def test_batched_parity_sweep(self):
        """simulate_batched_ensemble row r == simulate_batched(seed=child_r)."""
        assert check_batched_parity(0xBA7C) == 6

    def test_weighted_parity_sweep(self):
        """simulate_weighted_ensemble row r == simulate_weighted(seed=child_r),
        counts and float masses both."""
        assert check_weighted_parity(0x3E16) == 6

    def test_ring_parity_sweep(self):
        """allocate_requests_ensemble row r == allocate_requests(seed=child_r)."""
        assert check_ring_parity(0x21F6) == 6

    def test_per_replication_capacities(self):
        """The kernel also accepts (R, n) capacities: each replication then
        plays against its own array, still bit-identical to the scalar loop."""
        rng = np.random.default_rng(7)
        n, m, R = 6, 80, 4
        for d in (1, 2, 3):
            caps = rng.integers(1, 9, size=(R, n)).astype(np.int64)
            choices = rng.integers(0, n, size=(R, m, d))
            tie_u = rng.random((R, m))
            counts = np.zeros((R, n), dtype=np.int64)
            run_batch_ensemble(counts, caps, choices, tie_u)
            for r in range(R):
                fast_counts = [0] * n
                run_batch(fast_counts, caps[r].tolist(), choices[r], tie_u[r])
                assert np.array_equal(counts[r], fast_counts), (d, r)


class TestSpawnStreamParity:
    def test_explicit_seeds_equal_spawned_master(self):
        """seeds=spawn(master, R) is exactly the default spawn of master."""
        bins = BinArray([1, 2, 3, 4])
        a = simulate_ensemble(bins, repetitions=5, seed=42)
        b = simulate_ensemble(bins, seeds=spawn_seed_sequences(42, 5))
        np.testing.assert_array_equal(a.counts, b.counts)

    def test_kernel_split_invariance(self):
        """Splitting one batch into consecutive kernel calls (what the driver
        does to bound temporaries) must not alter any replication."""
        rng = np.random.default_rng(21)
        n, m, R = 5, 90, 3
        caps = np.array([3, 1, 4, 1, 5], dtype=np.int64)
        for d in (1, 2, 3):
            choices = rng.integers(0, n, size=(R, m, d))
            tie_u = rng.random((R, m))
            whole = np.zeros((R, n), dtype=np.int64)
            run_batch_ensemble(whole, caps, choices, tie_u)
            split = np.zeros((R, n), dtype=np.int64)
            cut = 37
            run_batch_ensemble(split, caps, choices[:, :cut], tie_u[:, :cut])
            run_batch_ensemble(split, caps, choices[:, cut:], tie_u[:, cut:])
            np.testing.assert_array_equal(whole, split, err_msg=f"d={d}")


class TestBlockedMode:
    def test_deterministic_and_conserving(self):
        bins = BinArray([1, 2, 2, 5])
        a = simulate_ensemble(bins, repetitions=6, m=50, seed=3, seed_mode="blocked")
        b = simulate_ensemble(bins, repetitions=6, m=50, seed=3, seed_mode="blocked")
        np.testing.assert_array_equal(a.counts, b.counts)
        assert (a.counts.sum(axis=1) == 50).all()
        assert a.seed_mode == "blocked"

    def test_replications_differ(self):
        bins = BinArray([1, 1, 1, 1, 1, 1, 1, 1])
        res = simulate_ensemble(bins, repetitions=8, m=64, seed=0, seed_mode="blocked")
        assert len({tuple(row) for row in res.counts.tolist()}) > 1


class TestResultSurface:
    def test_load_statistics(self):
        bins = BinArray([2, 2, 4])
        res = simulate_ensemble(bins, repetitions=3, m=16, seed=1)
        assert res.counts.shape == (3, 3)
        assert res.loads.shape == (3, 3)
        assert res.max_loads.shape == (3,)
        assert res.average_load == pytest.approx(2.0)
        np.testing.assert_allclose(res.gaps, res.max_loads - 2.0)

    def test_load_properties_are_cached(self):
        """Repeated property access returns the same array object instead of
        materialising a fresh (R, n) float matrix every time."""
        bins = BinArray([2, 2, 4])
        res = simulate_ensemble(bins, repetitions=3, m=16, seed=1)
        assert res.loads is res.loads
        assert res.max_loads is res.max_loads
        np.testing.assert_allclose(res.max_loads, res.loads.max(axis=1))

    def test_snapshot_gaps(self):
        bins = BinArray([1, 1])
        res = simulate_ensemble(bins, repetitions=2, m=2, seed=5, snapshot_at=[1, 2])
        assert [s.balls_thrown for s in res.snapshots] == [1, 2]
        snap = res.snapshots[0]
        np.testing.assert_allclose(snap.gaps, snap.max_loads - snap.average_load)


class TestExperimentEngineMatrix:
    """Per-experiment cross-engine suite: the full registry, one id per test.

    Each case runs the experiment on both engines at the pinned tiny
    configuration in ``EXPERIMENT_CASES`` and bounds the figure deviation;
    both runs are deterministic at fixed seeds, so these tests cannot flake.
    """

    @pytest.mark.parametrize("experiment_id", sorted(EXPERIMENT_CASES))
    def test_cross_engine(self, experiment_id):
        check_experiment_equivalence(experiment_id)

    def test_registry_fully_migrated(self):
        """Every registered experiment must expose the engine knob *and* own
        a cross-engine case — a future experiment that skips migration fails
        loudly here instead of only at ``--engine ensemble`` runtime."""
        from repro.experiments import list_experiments

        for spec in list_experiments():
            params = inspect.signature(spec.run).parameters
            assert "engine" in params, (
                f"experiment {spec.experiment_id!r} has no engine parameter: "
                f"migrate it to the ensemble engine (see ROADMAP engine matrix)"
            )
            assert spec.experiment_id in EXPERIMENT_CASES, (
                f"experiment {spec.experiment_id!r} has no cross-engine case "
                f"in repro.core.equivalence.EXPERIMENT_CASES"
            )

    def test_cases_cover_only_registered_experiments(self):
        """No stale case ids: the matrix and the registry agree exactly."""
        from repro.experiments import list_experiments

        registered = {spec.experiment_id for spec in list_experiments()}
        assert set(EXPERIMENT_CASES) == registered

    def test_missing_case_raises_with_guidance(self):
        with pytest.raises(KeyError, match="no cross-engine case"):
            check_experiment_equivalence("fig99")


class TestWavefrontExperimentIdentity:
    """Wavefront forced on vs forced off over the full experiment registry.

    The wavefront kernels consume the identical pre-drawn randomness as
    the per-ball loops, so — unlike the tolerance-bounded cross-engine
    matrix above — every series must agree *bit for bit* on both engines,
    for every registered experiment.  A future experiment whose runner
    somehow leaks the dispatch decision into its numbers fails here.
    """

    @pytest.mark.parametrize("experiment_id", sorted(EXPERIMENT_CASES))
    def test_forced_on_equals_forced_off(self, experiment_id):
        assert check_experiment_wavefront_identity(experiment_id) == 2


class TestKernelSubBatching:
    """Bit-identity of ``simulate_ensemble`` across ``_KERNEL_TARGET``-driven
    ``kernel_block`` values that do not divide the chunk, including
    ``track_heights`` slice alignment at the sub-batch boundaries."""

    @pytest.mark.parametrize("target", [1, 3, 7, 50])
    def test_kernel_block_boundaries(self, target, monkeypatch):
        import repro.core.ensemble as ens
        import repro.core.wavefront as wf

        bins = BinArray([1, 2, 3, 4, 2, 1, 5])
        kwargs = dict(repetitions=3, m=83, d=2, seed=99, seed_mode="blocked",
                      track_heights=True, snapshot_at=[0, 40, 83])
        # Force the per-ball path so the sub-batch loop actually runs, and
        # compare degenerate kernel_block values against the default.
        monkeypatch.setattr(wf, "_mode_override", "off")
        reference = simulate_ensemble(bins, **kwargs)
        monkeypatch.setattr(ens, "_KERNEL_TARGET", target)
        split = simulate_ensemble(bins, **kwargs)
        np.testing.assert_array_equal(split.counts, reference.counts)
        np.testing.assert_array_equal(split.heights, reference.heights)
        assert len(split.snapshots) == len(reference.snapshots)
        for a, b in zip(split.snapshots, reference.snapshots):
            assert a.balls_thrown == b.balls_thrown
            np.testing.assert_array_equal(a.max_loads, b.max_loads)


class TestValidation:
    def test_rejects_unknown_tie_break(self):
        with pytest.raises(ValueError, match="unknown tie_break"):
            run_batch_ensemble(
                np.zeros((1, 2), dtype=np.int64), [1, 1],
                np.zeros((1, 1, 2), dtype=np.int64), np.zeros((1, 1)),
                tie_break="nope",
            )

    def test_rejects_bad_shapes(self):
        counts = np.zeros((2, 3), dtype=np.int64)
        with pytest.raises(ValueError, match=r"\(R, k, d\)"):
            run_batch_ensemble(counts, [1, 1, 1], np.zeros((2, 4), dtype=np.int64), np.zeros((2, 4)))
        with pytest.raises(ValueError, match="first axis"):
            run_batch_ensemble(counts, [1, 1, 1], np.zeros((3, 4, 2), dtype=np.int64), np.zeros((3, 4)))
        with pytest.raises(ValueError, match="tie_uniforms"):
            run_batch_ensemble(counts, [1, 1, 1], np.zeros((2, 4, 2), dtype=np.int64), np.zeros((2, 3)))
        with pytest.raises(ValueError, match="heights"):
            run_batch_ensemble(
                counts, [1, 1, 1], np.zeros((2, 4, 2), dtype=np.int64), np.zeros((2, 4)),
                heights=np.zeros((2, 3)),
            )

    def test_empty_batch_noop(self):
        counts = np.arange(6, dtype=np.int64).reshape(2, 3)
        out = run_batch_ensemble(
            counts.copy(), [1, 1, 1], np.zeros((2, 0, 2), dtype=np.int64), np.zeros((2, 0))
        )
        np.testing.assert_array_equal(out, counts)

    def test_driver_validation(self):
        bins = BinArray([1, 1])
        with pytest.raises(ValueError, match="seed_mode"):
            simulate_ensemble(bins, repetitions=2, seed_mode="turbo")
        with pytest.raises(ValueError, match="repetitions"):
            simulate_ensemble(bins)
        with pytest.raises(ValueError, match="contradicts"):
            simulate_ensemble(bins, repetitions=3, seeds=[1, 2])
        with pytest.raises(ValueError, match="blocked"):
            simulate_ensemble(bins, seeds=[1, 2], seed_mode="blocked")
        assert set(SEED_MODES) == {"spawn", "blocked"}

    def test_rejects_non_contiguous_counts(self):
        counts = np.zeros((4, 6), dtype=np.int64)[:, ::2]  # strided view
        with pytest.raises(ValueError, match="C-contiguous"):
            run_batch_ensemble(
                counts, [1, 1, 1], np.zeros((4, 2, 2), dtype=np.int64), np.zeros((4, 2))
            )
