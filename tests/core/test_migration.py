"""Tests for incremental-rebalance planning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bins import BinArray, two_class_bins, uniform_bins
from repro.core import (
    expected_displaced_from_scratch,
    migration_cost_from_scratch,
    rebalance_waterfill,
    simulate,
)


class TestRebalanceWaterfill:
    def test_already_balanced_moves_nothing(self):
        bins = uniform_bins(4, 1)
        plan = rebalance_waterfill([2, 2, 2, 2], bins)
        assert plan.balls_moved == 0
        np.testing.assert_array_equal(plan.new_counts, [2, 2, 2, 2])

    def test_conservation(self):
        bins = BinArray([1, 2, 3])
        plan = rebalance_waterfill([10, 0, 2], bins)
        assert plan.new_counts.sum() == 12

    def test_targets_proportional_to_capacity(self):
        bins = BinArray([1, 3])
        plan = rebalance_waterfill([8, 0], bins)
        np.testing.assert_array_equal(plan.new_counts, [2, 6])

    def test_moves_match_delta(self):
        bins = BinArray([1, 1])
        plan = rebalance_waterfill([10, 0], bins)
        assert plan.balls_moved == 5
        assert plan.moves == {(0, 1): 5}

    def test_minimality(self):
        """balls_moved equals the surplus mass — the lower bound."""
        bins = BinArray([2, 2, 4])
        counts = [9, 1, 0]
        plan = rebalance_waterfill(counts, bins)
        surplus = int(np.maximum(np.asarray(counts) - plan.new_counts, 0).sum())
        assert plan.balls_moved == surplus

    def test_rounding_within_one_ball(self):
        bins = BinArray([1, 1, 1])
        plan = rebalance_waterfill([7, 0, 0], bins)
        assert plan.new_counts.sum() == 7
        assert plan.new_counts.max() - plan.new_counts.min() <= 1

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            rebalance_waterfill([1, 2], uniform_bins(3))

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            rebalance_waterfill([-1, 1], uniform_bins(2))


class TestFromScratchCost:
    def test_identical_zero(self):
        assert migration_cost_from_scratch([3, 3], [3, 3]) == 0

    def test_simple_move(self):
        assert migration_cost_from_scratch([4, 0], [2, 2]) == 2

    def test_growth_pads_old(self):
        # old system had 2 bins, new has 4
        assert migration_cost_from_scratch([4, 4], [2, 2, 2, 2]) == 4

    def test_rejects_shrink(self):
        with pytest.raises(ValueError):
            migration_cost_from_scratch([1, 1, 1], [3])

    def test_rejects_ball_mismatch(self):
        with pytest.raises(ValueError, match="differ"):
            migration_cost_from_scratch([2, 2], [1, 1])


class TestExpectedDisplaced:
    def test_identical_uniform_allocation(self):
        """Same counts 5,5 over two bins: a redraw keeps a ball with
        probability new_i/m = 1/2, so E[displaced] = m/2."""
        assert expected_displaced_from_scratch([5, 5], [5, 5]) == pytest.approx(5.0)

    def test_everything_in_one_bin(self):
        """All mass stays in the single occupied bin: nothing displaced."""
        assert expected_displaced_from_scratch([10, 0], [10, 0]) == 0.0

    def test_total_reassignment(self):
        assert expected_displaced_from_scratch([10, 0], [0, 10]) == 10.0

    def test_zero_balls(self):
        assert expected_displaced_from_scratch([0, 0], [0, 0]) == 0.0

    def test_dominates_count_lower_bound(self):
        """The identity-level expectation is never below the count-level
        lower bound."""
        old = [7, 3, 0]
        new = [4, 4, 2]
        assert expected_displaced_from_scratch(old, new) >= migration_cost_from_scratch(old, new)

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError):
            expected_displaced_from_scratch([1], [2])


class TestGrowthScenario:
    def test_incremental_cheaper_than_rescatter(self):
        """Adding big disks: waterfill moves far fewer balls than a fresh
        random allocation displaces."""
        old_bins = uniform_bins(20, 2)
        res = simulate(old_bins, seed=0)
        new_bins = old_bins.with_appended([10] * 5)
        old_counts = np.concatenate([res.counts, np.zeros(5, dtype=np.int64)])

        plan = rebalance_waterfill(old_counts, new_bins)
        fresh = simulate(new_bins, m=int(old_counts.sum()), seed=1)
        scratch_cost = migration_cost_from_scratch(old_counts, fresh.counts)

        assert plan.balls_moved <= scratch_cost
        # the plan actually balances: loads within one ball of proportional
        loads = plan.new_counts / new_bins.capacities
        assert loads.max() - loads.min() <= 1.0


@settings(max_examples=40, deadline=None)
@given(
    counts=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=10),
    cap_seed=st.integers(min_value=0, max_value=2**30),
)
def test_waterfill_invariants(counts, cap_seed):
    """Properties: conservation, minimality, targets within one ball of the
    exact proportional share."""
    rng = np.random.default_rng(cap_seed)
    bins = BinArray(rng.integers(1, 9, size=len(counts)))
    plan = rebalance_waterfill(counts, bins)
    total = sum(counts)
    assert plan.new_counts.sum() == total
    exact = total * bins.capacities / bins.total_capacity
    assert np.all(np.abs(plan.new_counts - exact) <= 1.0 + 1e-9)
    surplus = int(np.maximum(np.asarray(counts) - plan.new_counts, 0).sum())
    assert plan.balls_moved == surplus
