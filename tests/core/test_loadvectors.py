"""Tests for load/slot vector machinery (Section 2 definitions)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.loadvectors import (
    loads_from_counts,
    normalized_load_vector,
    normalized_slot_load_vector,
    slot_load_vector,
    slot_owners_by_position,
)


class TestLoads:
    def test_basic(self):
        np.testing.assert_allclose(loads_from_counts([2, 3], [1, 2]), [2.0, 1.5])

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            loads_from_counts([1, 2], [1])

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            loads_from_counts([-1], [1])

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            loads_from_counts([1], [0])


class TestNormalizedLoadVector:
    def test_sorted_descending(self):
        out = normalized_load_vector([1.0, 3.0, 2.0])
        np.testing.assert_allclose(out, [3.0, 2.0, 1.0])

    def test_is_permutation(self):
        vals = [0.5, 2.5, 2.5, 0.1]
        out = normalized_load_vector(vals)
        assert sorted(out) == sorted(vals)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            normalized_load_vector(np.ones((2, 2)))


class TestSlotLoadVector:
    def test_round_robin_fill(self):
        # 10 balls, 4 slots: q=2, r=2 -> [3,3,2,2]
        np.testing.assert_array_equal(slot_load_vector([10], [4]), [3, 3, 2, 2])

    def test_exact_multiple(self):
        np.testing.assert_array_equal(slot_load_vector([8], [4]), [2, 2, 2, 2])

    def test_fewer_balls_than_slots(self):
        np.testing.assert_array_equal(slot_load_vector([2], [4]), [1, 1, 0, 0])

    def test_multiple_bins_concatenated(self):
        out = slot_load_vector([3, 1], [2, 2])
        np.testing.assert_array_equal(out, [2, 1, 1, 0])

    def test_length_is_total_capacity(self):
        assert slot_load_vector([5, 5], [3, 7]).size == 10

    def test_sum_preserved(self):
        out = slot_load_vector([13, 6], [4, 5])
        assert out.sum() == 19


class TestSlotOwners:
    def test_positions(self):
        np.testing.assert_array_equal(slot_owners_by_position([2, 1]), [0, 0, 1])

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            slot_owners_by_position([0, 1])


class TestNormalizedSlotLoadVector:
    def test_paper_example(self):
        """Bins a, b with 4 slots each, loads 2.5 and 2.75 — the paper's
        worked example: vector 3,3,3,3,3,2,2,2 owned by b,b,b,a,a,b,a,a."""
        vals, owners = normalized_slot_load_vector([10, 11], [4, 4], return_owners=True)
        np.testing.assert_array_equal(vals, [3, 3, 3, 3, 3, 2, 2, 2])
        np.testing.assert_array_equal(owners, [1, 1, 1, 0, 0, 1, 0, 0])

    def test_values_only_by_default(self):
        out = normalized_slot_load_vector([10, 11], [4, 4])
        assert isinstance(out, np.ndarray)
        np.testing.assert_array_equal(out, [3, 3, 3, 3, 3, 2, 2, 2])

    def test_sorted_non_increasing(self):
        out = normalized_slot_load_vector([7, 2, 9], [3, 2, 4])
        assert all(a >= b for a, b in zip(out, out[1:]))

    def test_equal_loads_stable(self):
        vals, owners = normalized_slot_load_vector([2, 2], [2, 2], return_owners=True)
        np.testing.assert_array_equal(vals, [1, 1, 1, 1])


@settings(max_examples=60, deadline=None)
@given(
    counts=st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=12),
    caps_seed=st.integers(min_value=0, max_value=2**30),
)
def test_slot_vector_invariants(counts, caps_seed):
    """Properties: slot vector sums to total balls, entries differ by at
    most 1 within a bin, and the normalised vector is a permutation."""
    rng = np.random.default_rng(caps_seed)
    caps = rng.integers(1, 9, size=len(counts)).tolist()
    sv = slot_load_vector(counts, caps)
    assert sv.sum() == sum(counts)
    pos = 0
    for c in caps:
        bin_slots = sv[pos : pos + c]
        assert bin_slots.max() - bin_slots.min() <= 1
        # round-robin: the larger values come first within the bin
        assert all(a >= b for a, b in zip(bin_slots, bin_slots[1:]))
        pos += c
    norm = normalized_slot_load_vector(counts, caps)
    assert sorted(norm) == sorted(sv)
