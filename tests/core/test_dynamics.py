"""Tests for the insert/delete dynamics extension."""

import numpy as np
import pytest

from repro.bins import two_class_bins, uniform_bins
from repro.core.dynamics import simulate_insert_delete


class TestValidation:
    def test_rejects_negative_operations(self):
        with pytest.raises(ValueError):
            simulate_insert_delete(uniform_bins(4), -1)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            simulate_insert_delete(uniform_bins(4), 10, insert_probability=1.5)

    def test_rejects_bad_record_every(self):
        with pytest.raises(ValueError):
            simulate_insert_delete(uniform_bins(4), 10, record_every=0)

    def test_rejects_bad_warmup(self):
        with pytest.raises(ValueError):
            simulate_insert_delete(uniform_bins(4), 10, warmup_inserts=-1)


class TestBookkeeping:
    def test_counts_match_inserts_minus_deletes(self):
        bins = two_class_bins(5, 5, 1, 4)
        res = simulate_insert_delete(bins, 500, warmup_inserts=100, seed=0)
        assert res.counts.sum() == res.inserts - res.deletes
        assert res.inserts + res.deletes <= 600 + 1  # deletes on empty are no-ops

    def test_counts_non_negative(self):
        bins = uniform_bins(6, 2)
        res = simulate_insert_delete(bins, 300, insert_probability=0.3, seed=1)
        assert (res.counts >= 0).all()

    def test_pure_inserts_match_operations(self):
        bins = uniform_bins(10, 1)
        res = simulate_insert_delete(bins, 100, insert_probability=1.0, seed=2)
        assert res.inserts == 100
        assert res.deletes == 0
        assert res.counts.sum() == 100

    def test_delete_on_empty_noop(self):
        bins = uniform_bins(4, 1)
        res = simulate_insert_delete(bins, 50, insert_probability=0.0, seed=3)
        assert res.counts.sum() == 0
        assert res.deletes == 0

    def test_trajectory_lengths(self):
        bins = uniform_bins(8, 1)
        res = simulate_insert_delete(bins, 100, record_every=10, seed=4)
        assert res.max_load_trajectory.size == 10
        assert res.balls_trajectory.size == 10

    def test_reproducible(self):
        bins = two_class_bins(4, 4, 1, 2)
        a = simulate_insert_delete(bins, 200, warmup_inserts=50, seed=9)
        b = simulate_insert_delete(bins, 200, warmup_inserts=50, seed=9)
        np.testing.assert_array_equal(a.counts, b.counts)


class TestSteadyState:
    def test_balance_survives_churn(self):
        """After heavy insert/delete churn around a steady population, the
        max load stays within the two-choice band (no drift)."""
        bins = two_class_bins(50, 50, 1, 8)
        C = bins.total_capacity
        res = simulate_insert_delete(
            bins, 10 * C, warmup_inserts=C, insert_probability=0.5,
            record_every=C, seed=5,
        )
        # population hovers near C; final max load stays small
        assert res.max_load <= 4.0
        assert res.peak_max_load <= 5.0

    def test_population_hovers_near_warmup(self):
        bins = uniform_bins(20, 1)
        res = simulate_insert_delete(
            bins, 2000, warmup_inserts=100, insert_probability=0.5,
            record_every=100, seed=6,
        )
        assert abs(int(res.balls_trajectory[-1]) - 100) < 150
