"""Tests for the weighted-balls extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bins import two_class_bins, uniform_bins
from repro.core import simulate, simulate_weighted


class TestValidation:
    def test_rejects_negative_sizes(self):
        with pytest.raises(ValueError, match="positive"):
            simulate_weighted(uniform_bins(4), [1.0, -1.0])

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError, match="positive"):
            simulate_weighted(uniform_bins(4), [0.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            simulate_weighted(uniform_bins(4), [np.nan])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            simulate_weighted(uniform_bins(4), np.ones((2, 2)))

    def test_rejects_bad_d(self):
        with pytest.raises(ValueError):
            simulate_weighted(uniform_bins(4), [1.0], d=0)


class TestSemantics:
    def test_mass_conservation(self):
        bins = two_class_bins(5, 5, 1, 4)
        sizes = np.random.default_rng(0).uniform(0.5, 2.0, size=100)
        res = simulate_weighted(bins, sizes, seed=1)
        assert res.total_mass == pytest.approx(sizes.sum())
        assert res.masses.sum() == pytest.approx(sizes.sum())

    def test_count_conservation(self):
        bins = uniform_bins(8, 2)
        res = simulate_weighted(bins, [1.0] * 50, seed=2)
        assert res.counts.sum() == 50

    def test_empty_run(self):
        res = simulate_weighted(uniform_bins(3), [], seed=0)
        assert res.total_mass == 0.0
        assert res.masses.sum() == 0.0

    def test_unit_sizes_match_unit_engine_statistically(self):
        """With all sizes 1 the weighted engine plays the same game as the
        integer engine: mean max loads agree."""
        bins = two_class_bins(20, 20, 1, 4)
        m = bins.total_capacity
        unit = np.mean([simulate(bins, seed=s).max_load for s in range(25)])
        weighted = np.mean(
            [simulate_weighted(bins, [1.0] * m, seed=s).max_load for s in range(25)]
        )
        assert weighted == pytest.approx(unit, abs=0.25)

    def test_average_load(self):
        bins = uniform_bins(10, 2)
        res = simulate_weighted(bins, [2.0] * 20, seed=3)
        assert res.average_load == pytest.approx(40.0 / 20.0)
        assert res.gap == pytest.approx(res.max_load - 2.0)

    def test_two_choice_beats_one_choice_weighted(self):
        bins = uniform_bins(100, 1)
        sizes = np.random.default_rng(1).uniform(0.5, 1.5, size=200)
        d1 = np.mean([simulate_weighted(bins, sizes, d=1, seed=s).max_load for s in range(10)])
        d2 = np.mean([simulate_weighted(bins, sizes, d=2, seed=s).max_load for s in range(10)])
        assert d2 < d1

    def test_big_bins_absorb_heavy_balls(self):
        """One giant ball among small ones ends in the big bin under the
        capacity tie-break + proportional probabilities (on average)."""
        bins = two_class_bins(5, 5, 1, 50)
        hits = 0
        for s in range(20):
            res = simulate_weighted(bins, [10.0], seed=s)
            if res.masses[5:].sum() > 0:
                hits += 1
        assert hits >= 15  # the big half holds ~98% of the probability mass


@settings(max_examples=25, deadline=None)
@given(
    sizes=st.lists(st.floats(min_value=0.1, max_value=5.0), min_size=0, max_size=60),
    seed=st.integers(min_value=0, max_value=2**30),
)
def test_weighted_invariants(sizes, seed):
    """Property: mass conservation and non-negative loads for any sizes."""
    bins = two_class_bins(3, 3, 1, 4)
    res = simulate_weighted(bins, sizes, seed=seed)
    assert res.masses.sum() == pytest.approx(sum(sizes))
    assert (res.masses >= 0).all()
    assert res.counts.sum() == len(sizes)


class TestWeightedEnsemble:
    """Lockstep counterpart of simulate_weighted (simulate_weighted_ensemble)."""

    def test_spawn_parity_with_scalar(self):
        """Replication r == simulate_weighted(seed=child_r): counts and the
        float masses bit for bit (identical IEEE operations)."""
        from repro.core import simulate_weighted_ensemble
        from repro.sampling.rngutils import spawn_seed_sequences

        bins = two_class_bins(4, 4, 1, 6)
        sizes = np.linspace(0.25, 3.0, 30)
        ens = simulate_weighted_ensemble(bins, sizes, repetitions=4, seed=5)
        for r, child in enumerate(spawn_seed_sequences(5, 4)):
            sc = simulate_weighted(bins, sizes, seed=child)
            np.testing.assert_array_equal(ens.counts[r], sc.counts)
            np.testing.assert_array_equal(ens.masses[r], sc.masses)

    def test_blocked_mode_deterministic_and_conserving(self):
        from repro.core import simulate_weighted_ensemble

        bins = two_class_bins(3, 3, 1, 4)
        sizes = np.asarray([0.5, 1.5, 2.5, 0.25])
        a = simulate_weighted_ensemble(
            bins, sizes, repetitions=5, seed=9, seed_mode="blocked"
        )
        b = simulate_weighted_ensemble(
            bins, sizes, repetitions=5, seed=9, seed_mode="blocked"
        )
        np.testing.assert_array_equal(a.counts, b.counts)
        np.testing.assert_allclose(a.masses.sum(axis=1), sizes.sum())
        assert a.average_load == pytest.approx(sizes.sum() / bins.total_capacity)
        assert a.max_loads.shape == (5,)

    def test_validation(self):
        from repro.core import simulate_weighted_ensemble

        bins = uniform_bins(4)
        with pytest.raises(ValueError, match="positive"):
            simulate_weighted_ensemble(bins, [1.0, -1.0], repetitions=2)
        with pytest.raises(ValueError, match="repetitions"):
            simulate_weighted_ensemble(bins, [1.0])
        with pytest.raises(ValueError, match="seed_mode"):
            simulate_weighted_ensemble(bins, [1.0], repetitions=2, seed_mode="x")
        with pytest.raises(ValueError, match="blocked"):
            simulate_weighted_ensemble(bins, [1.0], seeds=[1], seed_mode="blocked")
