"""Compiled backend suite: bit-identity, dispatch knob, and the fallback.

The contract under test (see :mod:`repro.core.compiled`):
``run_batch_compiled`` is a drop-in replacement for
``run_batch_ensemble`` / ``run_batch_wavefront`` — identical counts *and*
heights for every replication, every tie-break mode, shared or
per-replication capacities — and the engine drivers may therefore dispatch
between the tiers freely (``forced_backend("compiled")`` and
``forced_backend("numpy")`` runs must be bit-identical end to end).
Without Numba the same kernel source runs through the interpreter, so the
whole suite doubles as the graceful-fallback check: nothing here skips
when :data:`repro.core.compiled.HAVE_NUMBA` is ``False``.
"""

import numpy as np
import pytest

from repro.bins import BinArray
from repro.core.compiled import (
    BACKEND_ENV_VAR,
    BACKEND_MODES,
    HAVE_NUMBA,
    forced_backend,
    get_backend,
    run_batch_compiled,
    set_backend,
    use_compiled,
    warmup,
)
from repro.core.ensemble import run_batch_ensemble, simulate_ensemble
from repro.core.equivalence import (
    EXPERIMENT_CASES,
    SweepBudget,
    check_backend_driver_identity,
    check_compiled_kernel_equivalence,
    check_experiment_backend_identity,
)
from repro.core.fast import run_batch
from repro.core.protocol import TIE_BREAKS
from repro.core.simulation import simulate


class TestKernelBitIdentity:
    def test_randomised_sweep(self):
        """~120 randomised draws: compiled == per-ball ensemble kernel,
        counts and heights, across d, R, capacity profiles and tie modes —
        all three compiled specialisations covered."""
        assert check_compiled_kernel_equivalence(0xC0DE, SweepBudget(draws=120)) == 120

    @pytest.mark.parametrize("tie_break", TIE_BREAKS)
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_modes_and_d(self, tie_break, d):
        rng = np.random.default_rng(hash((tie_break, d)) % 2**32)
        n, m, R = 12, 300, 3
        caps = rng.integers(1, 7, size=n).astype(np.int64)
        choices = rng.integers(0, n, size=(R, m, d))
        tie_u = rng.random((R, m))
        base = np.zeros((R, n), dtype=np.int64)
        bh = np.empty((R, m))
        run_batch_ensemble(base, caps, choices, tie_u, tie_break=tie_break, heights=bh)
        comp = np.zeros((R, n), dtype=np.int64)
        ch = np.empty((R, m))
        run_batch_compiled(comp, caps, choices, tie_u, tie_break=tie_break, heights=ch)
        np.testing.assert_array_equal(base, comp)
        np.testing.assert_array_equal(bh, ch)

    def test_d2_uniform_specialisation(self):
        """Equal capacities at d=2 route through the uniform kernel; the
        heights must still divide by the true capacity, not 1."""
        rng = np.random.default_rng(3)
        n, m, R = 8, 200, 2
        caps = np.full(n, 4, dtype=np.int64)
        choices = rng.integers(0, n, size=(R, m, 2))
        tie_u = rng.random((R, m))
        base = np.zeros((R, n), dtype=np.int64)
        bh = np.empty((R, m))
        run_batch_ensemble(base, caps, choices, tie_u, heights=bh)
        comp = np.zeros((R, n), dtype=np.int64)
        ch = np.empty((R, m))
        run_batch_compiled(comp, caps, choices, tie_u, heights=ch)
        np.testing.assert_array_equal(base, comp)
        np.testing.assert_array_equal(bh, ch)

    def test_within_ball_duplicates(self):
        """Balls whose candidate multiset repeats a bin (a == b) take the
        repeated bin without consulting the tie coin."""
        rng = np.random.default_rng(5)
        R, n, m = 3, 6, 200
        choices = rng.integers(0, n, size=(R, m, 2))
        choices[:, ::3, 1] = choices[:, ::3, 0]
        tie_u = rng.random((R, m))
        base = np.zeros((R, n), dtype=np.int64)
        run_batch_ensemble(base, [2] * n, choices, tie_u)
        comp = np.zeros((R, n), dtype=np.int64)
        run_batch_compiled(comp, [2] * n, choices, tie_u)
        np.testing.assert_array_equal(base, comp)

    def test_per_replication_capacities(self):
        rng = np.random.default_rng(11)
        n, m, R = 8, 150, 4
        caps = rng.integers(1, 9, size=(R, n)).astype(np.int64)
        for d in (1, 2, 3):
            choices = rng.integers(0, n, size=(R, m, d))
            tie_u = rng.random((R, m))
            base = np.zeros((R, n), dtype=np.int64)
            run_batch_ensemble(base, caps, choices, tie_u)
            comp = np.zeros((R, n), dtype=np.int64)
            run_batch_compiled(comp, caps, choices, tie_u)
            np.testing.assert_array_equal(base, comp, err_msg=f"d={d}")

    def test_split_invariance_against_scalar(self):
        """Chained compiled calls on one counts array equal one whole-batch
        pass and the scalar loop (the driver's chunking pattern)."""
        rng = np.random.default_rng(21)
        n, m, R = 9, 120, 2
        caps = np.array([3, 1, 4, 1, 5, 9, 2, 6, 5], dtype=np.int64)
        choices = rng.integers(0, n, size=(R, m, 2))
        tie_u = rng.random((R, m))
        whole = np.zeros((R, n), dtype=np.int64)
        run_batch_compiled(whole, caps, choices, tie_u)
        split = np.zeros((R, n), dtype=np.int64)
        cut = 47
        run_batch_compiled(split, caps, choices[:, :cut], tie_u[:, :cut])
        run_batch_compiled(split, caps, choices[:, cut:], tie_u[:, cut:])
        np.testing.assert_array_equal(whole, split)
        for r in range(R):
            fast_counts = [0] * n
            run_batch(fast_counts, caps.tolist(), choices[r], tie_u[r])
            assert np.array_equal(split[r], fast_counts)

    def test_empty_batch_noop(self):
        counts = np.arange(6, dtype=np.int64).reshape(2, 3)
        out = run_batch_compiled(
            counts.copy(), [1, 1, 1], np.zeros((2, 0, 2), dtype=np.int64),
            np.zeros((2, 0)),
        )
        np.testing.assert_array_equal(out, counts)

    def test_shares_kernel_validation(self):
        with pytest.raises(ValueError, match="unknown tie_break"):
            run_batch_compiled(
                np.zeros((1, 2), dtype=np.int64), [1, 1],
                np.zeros((1, 1, 2), dtype=np.int64), np.zeros((1, 1)),
                tie_break="nope",
            )
        with pytest.raises(ValueError, match="C-contiguous"):
            run_batch_compiled(
                np.zeros((4, 6), dtype=np.int64)[:, ::2], [1, 1, 1],
                np.zeros((4, 2, 2), dtype=np.int64), np.zeros((4, 2)),
            )
        with pytest.raises(ValueError, match="tie_uniforms"):
            run_batch_compiled(
                np.zeros((2, 3), dtype=np.int64), [1, 1, 1],
                np.zeros((2, 4, 2), dtype=np.int64), np.zeros((2, 3)),
            )

    def test_warmup_runs_every_kernel(self):
        """warmup() touches all specialisations at toy scale and reports
        whether the jit actually happened."""
        assert warmup() is HAVE_NUMBA


class TestDriverIdentity:
    def test_randomised_driver_sweep(self):
        """simulate / simulate_ensemble forced compiled == forced numpy,
        counts, heights and snapshots, across tie modes and seed modes."""
        assert check_backend_driver_identity(0xBACC, trials=8) == 8

    def test_compiled_skips_wavefront_dispatch(self, monkeypatch):
        """When the compiled tier is in force the wavefront kernels must not
        run at all — a wavefront call under forced_backend("compiled") is a
        dispatch-order bug even if the numbers happen to agree."""
        import repro.core.ensemble as ens
        import repro.core.simulation as sim

        def boom(*args, **kwargs):  # pragma: no cover - only on regression
            raise AssertionError("wavefront kernel ran under compiled backend")

        monkeypatch.setattr(sim, "run_batch_wavefront", boom)
        monkeypatch.setattr(ens, "run_batch_wavefront", boom)
        bins = BinArray([1] * 3000)
        with forced_backend("compiled"):
            simulate(bins, m=500, d=2, seed=1)
            simulate_ensemble(bins, repetitions=2, m=500, d=2, seed=1)


class TestBackendKnobs:
    def test_mode_knobs(self):
        assert get_backend() in BACKEND_MODES
        with forced_backend("compiled"):
            assert get_backend() == "compiled"
            assert use_compiled()
            with forced_backend("numpy"):
                assert not use_compiled()
            assert get_backend() == "compiled"
        with pytest.raises(ValueError, match="unknown backend"):
            set_backend("fortran")

    def test_env_override(self, monkeypatch):
        set_backend(None)
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert get_backend() == "numpy"
        assert not use_compiled()
        monkeypatch.setenv(BACKEND_ENV_VAR, "compiled")
        assert get_backend() == "compiled"
        assert use_compiled()
        monkeypatch.setenv(BACKEND_ENV_VAR, "garbage")
        assert get_backend() == "auto"

    def test_auto_follows_numba_availability(self):
        """"auto" means "compiled iff numba importable" — so a numba-less
        install never changes behaviour, and a numba install always gets the
        fast tier without configuration."""
        assert use_compiled("auto") is HAVE_NUMBA
        assert use_compiled("compiled") is True
        assert use_compiled("numpy") is False

    def test_fallback_is_usable_without_numba(self):
        """Forcing "compiled" must work (interpreter speed) even when numba
        is absent: correctness never depends on the jit."""
        bins = BinArray([2, 1, 3, 1])
        with forced_backend("compiled"):
            res = simulate(bins, m=50, d=2, seed=4, track_heights=True)
        with forced_backend("numpy"):
            ref = simulate(bins, m=50, d=2, seed=4, track_heights=True)
        np.testing.assert_array_equal(res.counts, ref.counts)
        np.testing.assert_array_equal(res.heights, ref.heights)


class TestBackendExperimentIdentity:
    """Backend compiled vs numpy over the full experiment registry.

    The compiled kernels consume the identical pre-drawn randomness as the
    NumPy tiers, so every series must agree *bit for bit* on both engines,
    for every registered experiment — with or without numba (the fallback
    runs the same source).  A future experiment whose runner leaks the
    backend decision into its numbers fails here.
    """

    @pytest.mark.parametrize("experiment_id", sorted(EXPERIMENT_CASES))
    def test_compiled_equals_numpy(self, experiment_id):
        assert check_experiment_backend_identity(experiment_id) == 2
