"""Compiled backend suite: bit-identity, dispatch knob, and the fallback.

The contract under test (see :mod:`repro.core.compiled`):
``run_batch_compiled`` is a drop-in replacement for
``run_batch_ensemble`` / ``run_batch_wavefront`` — identical counts *and*
heights for every replication, every tie-break mode, shared or
per-replication capacities — and the engine drivers may therefore dispatch
between the tiers freely (``forced_backend("compiled")`` and
``forced_backend("numpy")`` runs must be bit-identical end to end).
Without Numba the same kernel source runs through the interpreter, so the
whole suite doubles as the graceful-fallback check: nothing here skips
when :data:`repro.core.compiled.HAVE_NUMBA` is ``False``.
"""

import numpy as np
import pytest

import repro.core.compiled as compiled
from repro.bins import BinArray
from repro.core.compiled import (
    BACKEND_ENV_VAR,
    BACKEND_MODES,
    HAVE_NUMBA,
    PARALLEL_MIN_WORK,
    THREADS_ENV_VAR,
    forced_backend,
    forced_threads,
    get_backend,
    get_threads,
    resolve_threads,
    run_batch_compiled,
    set_backend,
    set_threads,
    use_compiled,
    warmup,
    worker_thread_budget,
)
from repro.core.ensemble import run_batch_ensemble, simulate_ensemble
from repro.core.equivalence import (
    EXPERIMENT_CASES,
    SweepBudget,
    check_backend_driver_identity,
    check_compiled_kernel_equivalence,
    check_experiment_backend_identity,
    check_thread_identity,
)
from repro.core.fast import run_batch
from repro.core.protocol import TIE_BREAKS
from repro.core.simulation import simulate

#: Names of the prange kernel family, for dispatch-path monkeypatching.
_PARALLEL_KERNELS = (
    "_kernel_d2_uniform_par",
    "_kernel_d2_general_par",
    "_kernel_general_par",
)


class TestKernelBitIdentity:
    def test_randomised_sweep(self):
        """~120 randomised draws: compiled == per-ball ensemble kernel,
        counts and heights, across d, R, capacity profiles and tie modes —
        all three compiled specialisations covered."""
        assert check_compiled_kernel_equivalence(0xC0DE, SweepBudget(draws=120)) == 120

    @pytest.mark.parametrize("tie_break", TIE_BREAKS)
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_modes_and_d(self, tie_break, d):
        rng = np.random.default_rng(hash((tie_break, d)) % 2**32)
        n, m, R = 12, 300, 3
        caps = rng.integers(1, 7, size=n).astype(np.int64)
        choices = rng.integers(0, n, size=(R, m, d))
        tie_u = rng.random((R, m))
        base = np.zeros((R, n), dtype=np.int64)
        bh = np.empty((R, m))
        run_batch_ensemble(base, caps, choices, tie_u, tie_break=tie_break, heights=bh)
        comp = np.zeros((R, n), dtype=np.int64)
        ch = np.empty((R, m))
        run_batch_compiled(comp, caps, choices, tie_u, tie_break=tie_break, heights=ch)
        np.testing.assert_array_equal(base, comp)
        np.testing.assert_array_equal(bh, ch)

    def test_d2_uniform_specialisation(self):
        """Equal capacities at d=2 route through the uniform kernel; the
        heights must still divide by the true capacity, not 1."""
        rng = np.random.default_rng(3)
        n, m, R = 8, 200, 2
        caps = np.full(n, 4, dtype=np.int64)
        choices = rng.integers(0, n, size=(R, m, 2))
        tie_u = rng.random((R, m))
        base = np.zeros((R, n), dtype=np.int64)
        bh = np.empty((R, m))
        run_batch_ensemble(base, caps, choices, tie_u, heights=bh)
        comp = np.zeros((R, n), dtype=np.int64)
        ch = np.empty((R, m))
        run_batch_compiled(comp, caps, choices, tie_u, heights=ch)
        np.testing.assert_array_equal(base, comp)
        np.testing.assert_array_equal(bh, ch)

    def test_within_ball_duplicates(self):
        """Balls whose candidate multiset repeats a bin (a == b) take the
        repeated bin without consulting the tie coin."""
        rng = np.random.default_rng(5)
        R, n, m = 3, 6, 200
        choices = rng.integers(0, n, size=(R, m, 2))
        choices[:, ::3, 1] = choices[:, ::3, 0]
        tie_u = rng.random((R, m))
        base = np.zeros((R, n), dtype=np.int64)
        run_batch_ensemble(base, [2] * n, choices, tie_u)
        comp = np.zeros((R, n), dtype=np.int64)
        run_batch_compiled(comp, [2] * n, choices, tie_u)
        np.testing.assert_array_equal(base, comp)

    def test_per_replication_capacities(self):
        rng = np.random.default_rng(11)
        n, m, R = 8, 150, 4
        caps = rng.integers(1, 9, size=(R, n)).astype(np.int64)
        for d in (1, 2, 3):
            choices = rng.integers(0, n, size=(R, m, d))
            tie_u = rng.random((R, m))
            base = np.zeros((R, n), dtype=np.int64)
            run_batch_ensemble(base, caps, choices, tie_u)
            comp = np.zeros((R, n), dtype=np.int64)
            run_batch_compiled(comp, caps, choices, tie_u)
            np.testing.assert_array_equal(base, comp, err_msg=f"d={d}")

    def test_split_invariance_against_scalar(self):
        """Chained compiled calls on one counts array equal one whole-batch
        pass and the scalar loop (the driver's chunking pattern)."""
        rng = np.random.default_rng(21)
        n, m, R = 9, 120, 2
        caps = np.array([3, 1, 4, 1, 5, 9, 2, 6, 5], dtype=np.int64)
        choices = rng.integers(0, n, size=(R, m, 2))
        tie_u = rng.random((R, m))
        whole = np.zeros((R, n), dtype=np.int64)
        run_batch_compiled(whole, caps, choices, tie_u)
        split = np.zeros((R, n), dtype=np.int64)
        cut = 47
        run_batch_compiled(split, caps, choices[:, :cut], tie_u[:, :cut])
        run_batch_compiled(split, caps, choices[:, cut:], tie_u[:, cut:])
        np.testing.assert_array_equal(whole, split)
        for r in range(R):
            fast_counts = [0] * n
            run_batch(fast_counts, caps.tolist(), choices[r], tie_u[r])
            assert np.array_equal(split[r], fast_counts)

    def test_empty_batch_noop(self):
        counts = np.arange(6, dtype=np.int64).reshape(2, 3)
        out = run_batch_compiled(
            counts.copy(), [1, 1, 1], np.zeros((2, 0, 2), dtype=np.int64),
            np.zeros((2, 0)),
        )
        np.testing.assert_array_equal(out, counts)

    def test_shares_kernel_validation(self):
        with pytest.raises(ValueError, match="unknown tie_break"):
            run_batch_compiled(
                np.zeros((1, 2), dtype=np.int64), [1, 1],
                np.zeros((1, 1, 2), dtype=np.int64), np.zeros((1, 1)),
                tie_break="nope",
            )
        with pytest.raises(ValueError, match="C-contiguous"):
            run_batch_compiled(
                np.zeros((4, 6), dtype=np.int64)[:, ::2], [1, 1, 1],
                np.zeros((4, 2, 2), dtype=np.int64), np.zeros((4, 2)),
            )
        with pytest.raises(ValueError, match="tie_uniforms"):
            run_batch_compiled(
                np.zeros((2, 3), dtype=np.int64), [1, 1, 1],
                np.zeros((2, 4, 2), dtype=np.int64), np.zeros((2, 3)),
            )

    def test_warmup_runs_every_kernel(self):
        """warmup() touches all specialisations at toy scale and reports
        whether the jit actually happened."""
        assert warmup() is HAVE_NUMBA


class TestDriverIdentity:
    def test_randomised_driver_sweep(self):
        """simulate / simulate_ensemble forced compiled == forced numpy,
        counts, heights and snapshots, across tie modes and seed modes."""
        assert check_backend_driver_identity(0xBACC, trials=8) == 8

    def test_compiled_skips_wavefront_dispatch(self, monkeypatch):
        """When the compiled tier is in force the wavefront kernels must not
        run at all — a wavefront call under forced_backend("compiled") is a
        dispatch-order bug even if the numbers happen to agree."""
        import repro.core.ensemble as ens
        import repro.core.simulation as sim

        def boom(*args, **kwargs):  # pragma: no cover - only on regression
            raise AssertionError("wavefront kernel ran under compiled backend")

        monkeypatch.setattr(sim, "run_batch_wavefront", boom)
        monkeypatch.setattr(ens, "run_batch_wavefront", boom)
        bins = BinArray([1] * 3000)
        with forced_backend("compiled"):
            simulate(bins, m=500, d=2, seed=1)
            simulate_ensemble(bins, repetitions=2, m=500, d=2, seed=1)


class TestBackendKnobs:
    def test_mode_knobs(self):
        assert get_backend() in BACKEND_MODES
        with forced_backend("compiled"):
            assert get_backend() == "compiled"
            assert use_compiled()
            with forced_backend("numpy"):
                assert not use_compiled()
            assert get_backend() == "compiled"
        with pytest.raises(ValueError, match="unknown backend"):
            set_backend("fortran")

    def test_env_override(self, monkeypatch):
        set_backend(None)
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert get_backend() == "numpy"
        assert not use_compiled()
        monkeypatch.setenv(BACKEND_ENV_VAR, "compiled")
        assert get_backend() == "compiled"
        assert use_compiled()
        monkeypatch.setenv(BACKEND_ENV_VAR, "garbage")
        assert get_backend() == "auto"

    def test_auto_follows_numba_availability(self):
        """"auto" means "compiled iff numba importable" — so a numba-less
        install never changes behaviour, and a numba install always gets the
        fast tier without configuration."""
        assert use_compiled("auto") is HAVE_NUMBA
        assert use_compiled("compiled") is True
        assert use_compiled("numpy") is False

    def test_fallback_is_usable_without_numba(self):
        """Forcing "compiled" must work (interpreter speed) even when numba
        is absent: correctness never depends on the jit."""
        bins = BinArray([2, 1, 3, 1])
        with forced_backend("compiled"):
            res = simulate(bins, m=50, d=2, seed=4, track_heights=True)
        with forced_backend("numpy"):
            ref = simulate(bins, m=50, d=2, seed=4, track_heights=True)
        np.testing.assert_array_equal(res.counts, ref.counts)
        np.testing.assert_array_equal(res.heights, ref.heights)


class TestThreadKnobs:
    def test_default_is_auto(self):
        assert get_threads() == "auto"

    def test_set_and_forced(self):
        with forced_threads(2):
            assert get_threads() == 2
            with forced_threads("auto"):
                assert get_threads() == "auto"
            assert get_threads() == 2
        assert get_threads() == "auto"

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError, match="thread budget"):
            set_threads(0)
        with pytest.raises(ValueError, match="thread budget"):
            set_threads(-3)
        with pytest.raises(ValueError, match="thread budget"):
            set_threads("many")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV_VAR, "5")
        assert get_threads() == 5
        monkeypatch.setenv(THREADS_ENV_VAR, "auto")
        assert get_threads() == "auto"
        monkeypatch.setenv(THREADS_ENV_VAR, "garbage")
        assert get_threads() == "auto"  # degrade, never crash a run
        monkeypatch.setenv(THREADS_ENV_VAR, "0")
        assert get_threads() == "auto"

    def test_resolve_auto_caps_at_replications(self, monkeypatch):
        monkeypatch.setattr(compiled, "cpu_budget", lambda: 8)
        big = PARALLEL_MIN_WORK  # at/above the floor
        assert resolve_threads(64, big) == 8
        assert resolve_threads(3, big) == 3
        assert resolve_threads(1, big) == 1
        assert resolve_threads(64) == 8  # no work estimate: trust R

    def test_resolve_explicit_bypasses_floor_and_cores(self, monkeypatch):
        monkeypatch.setattr(compiled, "cpu_budget", lambda: 2)
        with forced_threads(7):
            assert resolve_threads(3, 10) == 7  # tiny work, threads > R
        with forced_threads(1):
            assert resolve_threads(256, PARALLEL_MIN_WORK) == 1

    def test_worker_thread_budget(self):
        assert worker_thread_budget() == "1"  # auto: children stay serial
        with forced_threads(3):
            assert worker_thread_budget() == "3"  # explicit: propagates


class TestWorkSizeFloor:
    """"auto" keeps tiny batches on the serial kernels — proven by
    monkeypatching the parallel family to a tripwire, on a simulated
    multi-core box (CI may have one core, which would make auto trivially
    serial)."""

    def _arm(self, monkeypatch):
        monkeypatch.setattr(compiled, "cpu_budget", lambda: 8)

        def boom(*args):  # pragma: no cover - only on regression
            raise AssertionError("parallel kernel ran below the work floor")

        for name in _PARALLEL_KERNELS:
            monkeypatch.setattr(compiled, name, boom)

    def test_resolve_floor_boundary(self, monkeypatch):
        monkeypatch.setattr(compiled, "cpu_budget", lambda: 8)
        assert resolve_threads(64, PARALLEL_MIN_WORK - 1) == 1
        assert resolve_threads(64, PARALLEL_MIN_WORK) == 8

    def test_small_batch_stays_serial(self, monkeypatch):
        self._arm(monkeypatch)
        rng = np.random.default_rng(2)
        R, n, m = 4, 8, 50  # R * m far below PARALLEL_MIN_WORK
        for d, caps in ((2, np.ones(n, np.int64)),
                        (2, np.arange(1, n + 1, dtype=np.int64)),
                        (3, np.arange(1, n + 1, dtype=np.int64))):
            counts = np.zeros((R, n), dtype=np.int64)
            run_batch_compiled(counts, caps, rng.integers(0, n, (R, m, d)),
                               rng.random((R, m)))

    def test_small_driver_run_stays_serial(self, monkeypatch):
        self._arm(monkeypatch)
        with forced_backend("compiled"):
            simulate_ensemble(BinArray([1] * 8), repetitions=4, m=60, d=2,
                              seed=3)
            simulate(BinArray([1] * 8), m=60, d=2, seed=3)

    def test_large_batch_goes_parallel(self, monkeypatch):
        """Above the floor on a multi-core box, auto dispatches the prange
        family (counted via a pass-through spy)."""
        monkeypatch.setattr(compiled, "cpu_budget", lambda: 8)
        calls = []
        real = compiled._kernel_d2_uniform_par

        def spy(*args):
            calls.append(len(args))
            return real(*args)

        monkeypatch.setattr(compiled, "_kernel_d2_uniform_par", spy)
        R = 64
        m = PARALLEL_MIN_WORK // R  # R * m == PARALLEL_MIN_WORK exactly
        rng = np.random.default_rng(4)
        n = 512
        counts = np.zeros((R, n), dtype=np.int64)
        run_batch_compiled(counts, np.ones(n, np.int64),
                           rng.integers(0, n, (R, m, 2)), rng.random((R, m)))
        assert calls, "prange kernel did not run above the work floor"


class TestThreadCountBitIdentity:
    """Randomized thread-count property: any budget, any specialisation,
    bit-identical counts and heights — including threads > R (idle
    threads) and per-replication capacity matrices."""

    @pytest.mark.parametrize("R", [1, 3, 64])
    @pytest.mark.parametrize("track_heights", [False, True])
    def test_all_specialisations(self, R, track_heights):
        rng = np.random.default_rng(0xBEEF + R + track_heights)
        n, m = 10, 120
        profiles = [
            (2, np.full(n, 3, dtype=np.int64)),              # d2 uniform
            (2, rng.integers(1, 7, (n,)).astype(np.int64)),  # d2 general
            (2, rng.integers(1, 7, (R, n)).astype(np.int64)),  # d2 per-rep
            (1, rng.integers(1, 7, (n,)).astype(np.int64)),  # general d=1
            (3, rng.integers(1, 7, (R, n)).astype(np.int64)),  # general d=3
        ]
        for d, caps in profiles:
            choices = rng.integers(0, n, size=(R, m, d))
            tie_u = rng.random((R, m))
            base = np.zeros((R, n), dtype=np.int64)
            bh = np.empty((R, m)) if track_heights else None
            run_batch_compiled(base, caps, choices, tie_u, heights=bh,
                               threads=1)
            for threads in (2, 7):
                counts = np.zeros((R, n), dtype=np.int64)
                h = np.empty((R, m)) if track_heights else None
                run_batch_compiled(counts, caps, choices, tie_u, heights=h,
                                   threads=threads)
                label = f"d={d} caps{caps.shape} R={R} threads={threads}"
                np.testing.assert_array_equal(base, counts, err_msg=label)
                if track_heights:
                    np.testing.assert_array_equal(bh, h, err_msg=label)


class TestBackendExperimentIdentity:
    """Backend compiled vs numpy over the full experiment registry.

    The compiled kernels consume the identical pre-drawn randomness as the
    NumPy tiers, so every series must agree *bit for bit* on both engines,
    for every registered experiment — with or without numba (the fallback
    runs the same source).  A future experiment whose runner leaks the
    backend decision into its numbers fails here.
    """

    @pytest.mark.parametrize("experiment_id", sorted(EXPERIMENT_CASES))
    def test_compiled_equals_numpy(self, experiment_id):
        assert check_experiment_backend_identity(experiment_id) == 2


class TestThreadExperimentIdentity:
    """Forced 1 vs 2 vs 7 compiled threads over the full experiment
    registry, both engines: the threads axis of the backend matrix.  Runs
    with or without numba (the prange family falls back to the identical
    plain-Python source), so a future kernel whose parallel variant drifts
    from the serial one fails here on every machine."""

    @pytest.mark.parametrize("experiment_id", sorted(EXPERIMENT_CASES))
    def test_threads_never_change_a_number(self, experiment_id):
        # 2 engines x 2 non-baseline budgets
        assert check_thread_identity(experiment_id) == 4
