"""Tests for the optimised allocation loops, including cross-validation
against the readable reference implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fast import run_batch
from repro.core.protocol import reference_run


def _fast_counts(caps, choices, tie_break="max_capacity", heights=None):
    counts = [0] * len(caps)
    tie_u = np.random.default_rng(123).random(len(choices))
    run_batch(counts, list(caps), np.asarray(choices), tie_u, tie_break=tie_break, heights=heights)
    return np.asarray(counts)


class TestValidation:
    def test_rejects_unknown_tie_break(self):
        with pytest.raises(ValueError, match="unknown tie_break"):
            run_batch([0], [1], np.zeros((1, 2), dtype=int), np.zeros(1), tie_break="nope")

    def test_rejects_1d_choices(self):
        with pytest.raises(ValueError, match="shape"):
            run_batch([0], [1], np.zeros(3, dtype=int), np.zeros(3))

    def test_rejects_short_tie_vector(self):
        with pytest.raises(ValueError, match="tie uniforms"):
            run_batch([0, 0], [1, 1], np.zeros((5, 2), dtype=int), np.zeros(2))

    def test_empty_batch_noop(self):
        counts = [3, 4]
        out = run_batch(counts, [1, 1], np.zeros((0, 2), dtype=int), np.zeros(0))
        assert out == [3, 4]


class TestSemantics:
    def test_conservation_d2(self):
        caps = [1, 2, 3, 4]
        choices = np.random.default_rng(0).integers(0, 4, size=(500, 2))
        assert _fast_counts(caps, choices).sum() == 500

    def test_conservation_d4(self):
        caps = [1, 5, 9]
        choices = np.random.default_rng(1).integers(0, 3, size=(300, 4))
        assert _fast_counts(caps, choices).sum() == 300

    def test_d1_always_takes_its_choice(self):
        choices = np.array([[2]] * 10 + [[0]] * 5)
        counts = _fast_counts([1, 1, 1], choices)
        np.testing.assert_array_equal(counts, [5, 0, 10])

    def test_same_bin_twice_d2(self):
        choices = np.array([[1, 1]] * 7)
        counts = _fast_counts([1, 1], choices)
        np.testing.assert_array_equal(counts, [0, 7])

    def test_heights_recorded(self):
        caps = [2, 4]
        heights: list[float] = []
        counts = [0, 0]
        choices = np.array([[0, 1], [0, 1], [0, 1]])
        run_batch(counts, caps, choices, np.zeros(3), heights=heights)
        assert len(heights) == 3
        # balls 1-2 go to the cap-4 bin (loads-after 0.25, 0.5 beat 0.5
        # with the capacity tie-break at step 2); ball 3 sees 0.5 vs 0.75
        # and takes the cap-2 bin: heights 0.25, 0.5, 0.5.
        np.testing.assert_allclose(heights, [0.25, 0.5, 0.5])

    def test_max_capacity_vs_min_capacity_differ(self):
        # perpetual ties between caps 1 and 2 only happen at specific counts;
        # engineered: counts equal loads at every step is hard, so instead
        # check the first ball's tie: counts 1,3 caps 2,4 -> loads-after 1.0,1.0
        choices = np.array([[0, 1]])
        counts_max = [1, 3]
        run_batch(counts_max, [2, 4], choices, np.zeros(1), tie_break="max_capacity")
        counts_min = [1, 3]
        run_batch(counts_min, [2, 4], choices, np.zeros(1), tie_break="min_capacity")
        assert counts_max == [1, 4]
        assert counts_min == [2, 3]


class TestAgainstReference:
    @pytest.mark.parametrize("d", [1, 2, 3, 5])
    @pytest.mark.parametrize("caps", [[1, 1, 1, 1], [1, 2, 4, 8], [3, 3, 7, 7]])
    def test_no_tie_runs_match_reference(self, d, caps):
        """With distinct random tie-resolution irrelevant runs (we verify by
        re-running the reference with different rngs), fast == reference."""
        rng = np.random.default_rng(42 + d)
        m = 200
        choices = rng.integers(0, len(caps), size=(m, d))
        refs = [reference_run(caps, choices, np.random.default_rng(s)) for s in range(8)]
        if any(not np.array_equal(refs[0], r) for r in refs[1:]):
            pytest.skip("tie-dependent instance; covered by distribution test")
        # Also require the fast loop to be tie-insensitive on this instance.
        fasts = []
        for s in (123, 321):
            counts = [0] * len(caps)
            tie_u = np.random.default_rng(s).random(m)
            run_batch(counts, list(caps), np.asarray(choices), tie_u)
            fasts.append(counts)
        if fasts[0] != fasts[1]:
            pytest.skip("tie-dependent instance; covered by distribution test")
        np.testing.assert_array_equal(fasts[0], refs[0])

    def test_tie_instances_same_support(self):
        """On tie-heavy instances fast and reference agree in distribution:
        equal mean counts over many independent tie streams."""
        caps = [1, 1]
        choices = np.tile([[0, 1]], (9, 1))
        fast_runs = []
        ref_runs = []
        for s in range(200):
            counts = [0, 0]
            run_batch(
                counts, caps, choices, np.random.default_rng(s).random(9)
            )
            fast_runs.append(counts)
            ref_runs.append(reference_run(caps, choices, np.random.default_rng(1000 + s)))
        fast_mean = np.mean(fast_runs, axis=0)
        ref_mean = np.mean(ref_runs, axis=0)
        np.testing.assert_allclose(fast_mean, ref_mean, atol=0.5)


@settings(max_examples=40, deadline=None)
@given(
    caps=st.lists(st.integers(min_value=1, max_value=16), min_size=2, max_size=8),
    d=st.integers(min_value=1, max_value=4),
    m=st.integers(min_value=0, max_value=120),
    seed=st.integers(min_value=0, max_value=2**30),
)
def test_fast_reference_equivalence_property(caps, d, m, seed):
    """Property: with a shared deterministic tie stream the fast loop and a
    tie-stream-matched reference agree exactly on final counts.

    We bypass RNG mismatch by giving the fast loop an all-zeros tie vector
    (always pick the first of the tied set) and comparing against a greedy
    reference with the same convention.
    """
    rng = np.random.default_rng(seed)
    choices = rng.integers(0, len(caps), size=(m, d))

    counts_fast = [0] * len(caps)
    run_batch(counts_fast, list(caps), choices, np.zeros(m), tie_break="uniform")

    counts_ref = [0] * len(caps)
    for row in choices:
        best = None
        for b in row:
            num, den = counts_ref[b] + 1, caps[b]
            if best is None or num * best[1] < best[0] * den:
                best = (num, den, b)
        counts_ref[best[2]] += 1

    # "uniform" tie-break with u=0 picks the first-encountered minimum,
    # exactly matching the reference scan above.
    assert counts_fast == counts_ref
