"""Tests for the high-level simulation driver."""

import numpy as np
import pytest

from repro.bins import BinArray, two_class_bins, uniform_bins
from repro.core import simulate
from repro.sampling import PowerProbability


class TestBasics:
    def test_m_defaults_to_total_capacity(self, small_mixed_bins):
        res = simulate(small_mixed_bins, seed=0)
        assert res.m == small_mixed_bins.total_capacity
        assert res.counts.sum() == res.m

    def test_conservation_large(self):
        bins = two_class_bins(100, 100, 1, 10)
        res = simulate(bins, m=5000, seed=1)
        assert res.counts.sum() == 5000

    def test_zero_balls(self, small_mixed_bins):
        res = simulate(small_mixed_bins, m=0, seed=0)
        assert res.counts.sum() == 0
        assert res.max_load == 0.0

    def test_counts_non_negative(self, small_mixed_bins):
        res = simulate(small_mixed_bins, seed=2)
        assert (res.counts >= 0).all()

    def test_accepts_raw_capacities(self):
        res = simulate([1, 2, 3], seed=3)
        assert isinstance(res.bins, BinArray)
        assert res.counts.sum() == 6

    def test_rejects_negative_m(self, small_mixed_bins):
        with pytest.raises(ValueError):
            simulate(small_mixed_bins, m=-1)

    def test_rejects_bad_d(self, small_mixed_bins):
        with pytest.raises(ValueError):
            simulate(small_mixed_bins, d=0)

    def test_rejects_bad_chunk(self, small_mixed_bins):
        with pytest.raises(ValueError):
            simulate(small_mixed_bins, chunk_size=0)

    def test_reproducible(self):
        bins = two_class_bins(20, 20, 1, 4)
        a = simulate(bins, seed=77)
        b = simulate(bins, seed=77)
        np.testing.assert_array_equal(a.counts, b.counts)

    def test_different_seeds_differ(self):
        bins = uniform_bins(100, 1)
        a = simulate(bins, seed=1)
        b = simulate(bins, seed=2)
        assert not np.array_equal(a.counts, b.counts)

    def test_chunked_run_covers_all_balls(self, small_mixed_bins):
        res = simulate(small_mixed_bins, m=1000, chunk_size=7, seed=5)
        assert res.counts.sum() == 1000


class TestResultProperties:
    def test_loads(self, small_mixed_bins):
        res = simulate(small_mixed_bins, seed=0)
        np.testing.assert_allclose(res.loads, res.counts / small_mixed_bins.capacities)

    def test_average_load_m_equals_c(self, small_mixed_bins):
        res = simulate(small_mixed_bins, seed=0)
        assert res.average_load == 1.0

    def test_gap(self, small_mixed_bins):
        res = simulate(small_mixed_bins, seed=0)
        assert res.gap == pytest.approx(res.max_load - 1.0)

    def test_argmax_consistency(self):
        bins = two_class_bins(10, 10, 1, 4)
        res = simulate(bins, seed=9)
        assert res.loads[res.argmax_bin] == res.max_load
        assert res.argmax_capacity == bins.capacities[res.argmax_bin]

    def test_max_load_of_class(self):
        bins = two_class_bins(10, 10, 1, 4)
        res = simulate(bins, seed=4)
        small_max = res.max_load_of_class(1)
        large_max = res.max_load_of_class(4)
        assert max(small_max, large_max) == pytest.approx(res.max_load)

    def test_max_load_of_absent_class_nan(self, small_mixed_bins):
        res = simulate(small_mixed_bins, seed=0)
        assert np.isnan(res.max_load_of_class(99))

    def test_repr(self, small_mixed_bins):
        assert "max_load" in repr(simulate(small_mixed_bins, seed=0))


class TestSnapshots:
    def test_points_recorded(self):
        bins = uniform_bins(50, 2)
        res = simulate(bins, m=100, snapshot_at=[25, 50, 100], seed=0)
        assert [s.balls_thrown for s in res.snapshots] == [25, 50, 100]

    def test_snapshot_zero(self):
        bins = uniform_bins(10, 1)
        res = simulate(bins, m=10, snapshot_at=[0], seed=0)
        assert res.snapshots[0].max_load == 0.0

    def test_average_load_tracks_balls(self):
        bins = uniform_bins(10, 1)
        res = simulate(bins, m=20, snapshot_at=[10, 20], seed=0)
        assert res.snapshots[0].average_load == 1.0
        assert res.snapshots[1].average_load == 2.0

    def test_gap_property(self):
        bins = uniform_bins(10, 1)
        res = simulate(bins, m=10, snapshot_at=[10], seed=0)
        snap = res.snapshots[0]
        assert snap.gap == pytest.approx(snap.max_load - 1.0)

    def test_snapshot_out_of_range_rejected(self):
        bins = uniform_bins(10, 1)
        with pytest.raises(ValueError, match="outside"):
            simulate(bins, m=10, snapshot_at=[11])

    def test_duplicates_deduplicated(self):
        bins = uniform_bins(10, 1)
        res = simulate(bins, m=10, snapshot_at=[5, 5, 10], seed=0)
        assert [s.balls_thrown for s in res.snapshots] == [5, 10]

    def test_snapshots_unaffected_by_chunking(self):
        bins = uniform_bins(20, 1)
        res = simulate(bins, m=100, snapshot_at=[33, 66], chunk_size=10, seed=3)
        assert [s.balls_thrown for s in res.snapshots] == [33, 66]

    def test_max_load_monotone_in_uniform_unit_bins(self):
        """With unit bins, the running max ball count never decreases."""
        bins = uniform_bins(30, 1)
        res = simulate(bins, m=300, snapshot_at=list(range(50, 301, 50)), seed=6)
        maxima = [s.max_load for s in res.snapshots]
        assert all(b >= a for a, b in zip(maxima, maxima[1:]))


class TestInstrumentation:
    def test_heights_length(self, small_mixed_bins):
        res = simulate(small_mixed_bins, m=100, track_heights=True, seed=0)
        assert res.heights is not None
        assert res.heights.size == 100

    def test_heights_none_by_default(self, small_mixed_bins):
        assert simulate(small_mixed_bins, seed=0).heights is None

    def test_heights_positive(self, small_mixed_bins):
        res = simulate(small_mixed_bins, m=50, track_heights=True, seed=1)
        assert (res.heights > 0).all()

    def test_max_height_is_max_load_for_unit_bins(self):
        """On unit bins the maximum height equals the final maximum load."""
        bins = uniform_bins(20, 1)
        res = simulate(bins, m=40, track_heights=True, seed=2)
        assert res.heights.max() == pytest.approx(res.max_load)

    def test_keep_choices_shape(self, small_mixed_bins):
        res = simulate(small_mixed_bins, m=25, d=3, keep_choices=True, seed=0)
        assert res.choices.shape == (25, 3)

    def test_choices_within_range(self, small_mixed_bins):
        res = simulate(small_mixed_bins, m=40, keep_choices=True, seed=0)
        assert res.choices.min() >= 0
        assert res.choices.max() < small_mixed_bins.n


class TestProbabilityModels:
    def test_threshold_routes_only_to_big(self):
        bins = two_class_bins(10, 10, 1, 8)
        res = simulate(bins, probabilities=("threshold", 8), seed=0)
        assert res.counts[:10].sum() == 0

    def test_power_exponent_shifts_mass(self):
        bins = two_class_bins(50, 50, 1, 8)
        prop = simulate(bins, seed=3)
        power = simulate(bins, probabilities=PowerProbability(3.0), seed=3)
        assert power.counts[50:].sum() > prop.counts[50:].sum()

    def test_uniform_probability_name_recorded(self, small_mixed_bins):
        res = simulate(small_mixed_bins, probabilities="uniform", seed=0)
        assert res.probability == "uniform"

    def test_cdf_backend(self, small_mixed_bins):
        res = simulate(small_mixed_bins, sampler_method="cdf", seed=0)
        assert res.counts.sum() == small_mixed_bins.total_capacity

    def test_d1_matches_one_choice_distribution(self):
        """d=1 through the engine is the single-choice game."""
        bins = uniform_bins(50, 1)
        res = simulate(bins, m=500, d=1, seed=4)
        assert res.counts.sum() == 500
