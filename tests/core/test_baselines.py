"""Tests for baseline allocation strategies."""

import numpy as np
import pytest

from repro.bins import two_class_bins, uniform_bins
from repro.core import (
    greedy_uniform_probabilities,
    least_loaded_of_all,
    one_choice,
    standard_greedy,
)


class TestOneChoice:
    def test_conservation(self):
        bins = two_class_bins(10, 10, 1, 4)
        res = one_choice(bins, m=500, seed=0)
        assert res.counts.sum() == 500
        assert res.d == 1

    def test_default_m(self):
        bins = uniform_bins(20, 2)
        assert one_choice(bins, seed=0).m == 40

    def test_proportional_frequencies(self):
        """Big bin (cap 9 of 10 total) receives ~90% of single-choice balls."""
        bins = two_class_bins(1, 1, 1, 9)
        res = one_choice(bins, m=20_000, seed=1)
        assert res.counts[1] / res.m == pytest.approx(0.9, abs=0.02)

    def test_uniform_probability_option(self):
        bins = two_class_bins(1, 1, 1, 9)
        res = one_choice(bins, m=20_000, probabilities="uniform", seed=2)
        assert res.counts[0] / res.m == pytest.approx(0.5, abs=0.02)

    def test_rejects_negative_m(self):
        with pytest.raises(ValueError):
            one_choice(uniform_bins(5), m=-1)

    def test_worse_than_two_choice(self):
        """The power of two choices: d=2 beats d=1 on max load (standard
        game, seeded comparison of means)."""
        from repro.core import simulate

        bins = uniform_bins(500, 1)
        ones = np.mean([one_choice(bins, seed=s).max_load for s in range(10)])
        twos = np.mean([simulate(bins, seed=s).max_load for s in range(10)])
        assert twos < ones


class TestGreedyUniformProbabilities:
    def test_runs_and_records_model(self):
        bins = two_class_bins(10, 10, 1, 8)
        res = greedy_uniform_probabilities(bins, seed=0)
        assert res.probability == "uniform"
        assert res.counts.sum() == bins.total_capacity

    def test_worse_than_proportional_on_skewed_arrays(self):
        """Uniform probing undervalues big bins: max load is (on average)
        at least the proportional strategy's."""
        from repro.core import simulate

        bins = two_class_bins(450, 50, 1, 20)
        uni = np.mean([greedy_uniform_probabilities(bins, seed=s).max_load for s in range(8)])
        prop = np.mean([simulate(bins, seed=s).max_load for s in range(8)])
        assert uni >= prop - 0.05


class TestStandardGreedy:
    def test_unit_bins(self):
        res = standard_greedy(100, seed=0)
        assert res.bins.is_uniform()
        assert res.bins[0] == 1
        assert res.m == 100

    def test_loglog_regime(self):
        """Max load for n=m=2000, d=2 stays within lnln(n)/ln2 + 3."""
        import math

        res = standard_greedy(2000, seed=1)
        bound = math.log(math.log(2000)) / math.log(2) + 3
        assert res.max_load <= bound


class TestLeastLoadedOfAll:
    def test_perfect_balance_on_unit_bins(self):
        bins = uniform_bins(10, 1)
        res = least_loaded_of_all(bins, m=30)
        np.testing.assert_array_equal(res.counts, [3] * 10)

    def test_optimal_max_load(self):
        """m = C on any array: the omniscient strategy achieves max load
        exactly 1 in every bin... it achieves ceil behaviour: max load
        <= 1 + 1/min_cap."""
        bins = two_class_bins(5, 5, 1, 4)
        res = least_loaded_of_all(bins)
        assert res.max_load <= 1.0 + 1e-9

    def test_deterministic(self):
        bins = two_class_bins(3, 3, 1, 2)
        a = least_loaded_of_all(bins, m=17)
        b = least_loaded_of_all(bins, m=17)
        np.testing.assert_array_equal(a.counts, b.counts)

    def test_conservation(self):
        bins = two_class_bins(4, 4, 1, 3)
        assert least_loaded_of_all(bins, m=100).counts.sum() == 100

    def test_rejects_negative_m(self):
        with pytest.raises(ValueError):
            least_loaded_of_all(uniform_bins(3), m=-5)

    def test_lower_bounds_greedy(self):
        """The omniscient max load never exceeds the 2-choice max load."""
        from repro.core import simulate

        bins = two_class_bins(20, 20, 1, 6)
        omni = least_loaded_of_all(bins).max_load
        greedy = simulate(bins, seed=0).max_load
        assert omni <= greedy + 1e-9
