"""Tests for majorisation and the Lemma 1 domination experiments."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bins import BinArray, two_class_bins, uniform_bins
from repro.core.majorization import (
    coupled_domination_run,
    empirical_max_load_domination,
    majorizes,
)


class TestMajorizes:
    def test_reflexive(self):
        assert majorizes([3, 2, 1], [3, 2, 1])

    def test_simple_true(self):
        assert majorizes([4, 0, 0], [2, 1, 1])

    def test_simple_false(self):
        assert not majorizes([2, 1, 1], [4, 0, 0])

    def test_order_independent(self):
        assert majorizes([0, 0, 4], [1, 2, 1])

    def test_incomparable_pair(self):
        # prefix sums 5,8,9 vs 4,8,10 -> neither dominates at every prefix
        u, v = [5, 3, 1], [4, 4, 2]
        assert not majorizes(u, v) or not majorizes(v, u)
        assert not majorizes(v, u)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            majorizes([1, 2], [1, 2, 3])

    def test_tolerance(self):
        assert majorizes([1.0, 1.0], [1.0 + 1e-12, 1.0 - 1e-12])


@settings(max_examples=60, deadline=None)
@given(
    v=st.lists(st.floats(min_value=0, max_value=10), min_size=1, max_size=10),
)
def test_majorization_by_concentration(v):
    """Property: moving all mass to one coordinate majorises the original."""
    total = sum(v)
    concentrated = [total] + [0.0] * (len(v) - 1)
    assert majorizes(concentrated, v)


@settings(max_examples=40, deadline=None)
@given(
    u=st.lists(st.floats(min_value=0, max_value=5), min_size=2, max_size=8),
    seed=st.integers(min_value=0, max_value=2**20),
)
def test_majorization_transitive_with_mean_vector(u, seed):
    """Property: any vector majorises the constant vector of its mean."""
    mean = sum(u) / len(u)
    flat = [mean] * len(u)
    assert majorizes(u, flat)


class TestCoupledDomination:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_q_dominates_max_load(self, seed):
        """Lemma 1 under the proof's coupling: Q's max >= P's max."""
        bins = two_class_bins(20, 20, 1, 4)
        out = coupled_domination_run(bins, seed=seed)
        assert out.q_dominates_max

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_q_dominates_slot_vectors(self, seed):
        bins = BinArray([1, 2, 3, 4, 5, 5])
        out = coupled_domination_run(bins, seed=seed)
        assert out.q_dominates_slots

    def test_uniform_unit_bins_identical(self):
        """With all-unit bins P and Q are the same process under the
        coupling, so the slot vectors coincide."""
        bins = uniform_bins(30, 1)
        out = coupled_domination_run(bins, seed=5)
        np.testing.assert_array_equal(out.p_slot_vector, out.q_slot_vector)
        assert out.p_max_load == out.q_max_load

    def test_vector_lengths_equal_total_capacity(self):
        bins = BinArray([2, 3, 5])
        out = coupled_domination_run(bins, m=10, seed=0)
        assert out.p_slot_vector.size == 10
        assert out.q_slot_vector.size == 10

    def test_custom_m(self):
        bins = BinArray([2, 2])
        out = coupled_domination_run(bins, m=1, seed=0)
        assert out.p_slot_vector.sum() == 1


class TestEmpiricalDomination:
    def test_identical_samples_zero_margin(self):
        margin = empirical_max_load_domination([1, 2, 3], [1, 2, 3])
        assert margin == pytest.approx(0.0)

    def test_clearly_dominated(self):
        """Both CDFs reach 1 at the pooled maximum, so perfect dominance
        yields margin exactly 0 (never positive)."""
        margin = empirical_max_load_domination([1, 1, 2], [3, 3, 4])
        assert margin == pytest.approx(0.0)

    def test_violation_detected(self):
        margin = empirical_max_load_domination([5, 6], [1, 2])
        assert margin < 0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            empirical_max_load_domination([], [1])
