"""Wavefront kernel suite: bit-identity, dispatch, and the wave machinery.

The contract under test (see :mod:`repro.core.wavefront`):
``run_batch_wavefront`` is a drop-in replacement for
``run_batch_ensemble`` — identical counts *and* heights for every
replication, every tie-break mode, shared or per-replication capacities,
any tile width — and the engine drivers may therefore dispatch between
the two paths freely (``forced("on")`` / ``forced("off")`` runs must be
bit-identical end to end).
"""

import numpy as np
import pytest

from repro.bins import BinArray
from repro.core.ensemble import run_batch_ensemble, simulate_ensemble
from repro.core.equivalence import (
    SweepBudget,
    check_wavefront_driver_identity,
    check_wavefront_kernel_equivalence,
)
from repro.core.fast import run_batch
from repro.core.simulation import simulate
from repro.core.wavefront import (
    MIN_BINS_PER_LANE,
    WAVEFRONT_MODES,
    WavefrontStats,
    WavefrontWorkspace,
    effective_bins,
    expected_free_fraction,
    forced,
    get_mode,
    run_batch_wavefront,
    set_mode,
    tile_width,
    use_wavefront,
)
from repro.core.protocol import TIE_BREAKS


class TestKernelBitIdentity:
    def test_randomised_sweep(self):
        """~120 randomised draws: wavefront == per-ball ensemble kernel,
        counts and heights, across d, R, capacity profiles, tie modes, and
        tile widths including the degenerate ones."""
        assert check_wavefront_kernel_equivalence(0xAFE1, SweepBudget(draws=120)) == 120

    @pytest.mark.parametrize("tie_break", TIE_BREAKS)
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_modes_and_d(self, tie_break, d):
        rng = np.random.default_rng(hash((tie_break, d)) % 2**32)
        n, m, R = 12, 300, 3
        caps = rng.integers(1, 7, size=n).astype(np.int64)
        choices = rng.integers(0, n, size=(R, m, d))
        tie_u = rng.random((R, m))
        base = np.zeros((R, n), dtype=np.int64)
        bh = np.empty((R, m))
        run_batch_ensemble(base, caps, choices, tie_u, tie_break=tie_break, heights=bh)
        wf = np.zeros((R, n), dtype=np.int64)
        wh = np.empty((R, m))
        run_batch_wavefront(wf, caps, choices, tie_u, tie_break=tie_break, heights=wh)
        np.testing.assert_array_equal(base, wf)
        np.testing.assert_array_equal(bh, wh)

    def test_all_balls_one_bin(self):
        """Degenerate adversary: every ball probes the same bin, so every
        ball after the first is deferred and the wave chain is as deep as
        the tile."""
        R, n, m = 2, 4, 40
        choices = np.zeros((R, m, 2), dtype=np.int64)
        tie_u = np.random.default_rng(0).random((R, m))
        base = np.zeros((R, n), dtype=np.int64)
        run_batch_ensemble(base, [1] * n, choices, tie_u)
        for tile in (1, 8, m):
            wf = np.zeros((R, n), dtype=np.int64)
            stats = WavefrontStats()
            run_batch_wavefront(wf, [1] * n, choices, tie_u, tile=tile, stats=stats)
            np.testing.assert_array_equal(base, wf, err_msg=f"tile={tile}")
        assert stats.free_fraction < 0.1
        # the 40-deep chain blows the vectorised-round budget: the rest is
        # committed ball-by-ball and accounted as tail work
        assert stats.tail_balls > 0

    def test_within_ball_duplicates(self):
        """Balls whose candidate multiset repeats a bin (a == b) must not
        deadlock or double-commit."""
        rng = np.random.default_rng(5)
        R, n, m = 3, 6, 200
        choices = rng.integers(0, n, size=(R, m, 2))
        choices[:, ::3, 1] = choices[:, ::3, 0]  # force a == b on every 3rd ball
        tie_u = rng.random((R, m))
        base = np.zeros((R, n), dtype=np.int64)
        run_batch_ensemble(base, [2] * n, choices, tie_u)
        wf = np.zeros((R, n), dtype=np.int64)
        run_batch_wavefront(wf, [2] * n, choices, tie_u, tile=16)
        np.testing.assert_array_equal(base, wf)

    def test_per_replication_capacities(self):
        rng = np.random.default_rng(11)
        n, m, R = 8, 150, 4
        caps = rng.integers(1, 9, size=(R, n)).astype(np.int64)
        for d in (1, 2, 3):
            choices = rng.integers(0, n, size=(R, m, d))
            tie_u = rng.random((R, m))
            base = np.zeros((R, n), dtype=np.int64)
            run_batch_ensemble(base, caps, choices, tie_u)
            wf = np.zeros((R, n), dtype=np.int64)
            run_batch_wavefront(wf, caps, choices, tie_u, tile=8)
            np.testing.assert_array_equal(base, wf, err_msg=f"d={d}")

    def test_split_invariance_against_scalar(self):
        """Chained wavefront calls on one counts array equal one per-ball
        pass and the scalar loop (the driver's chunking pattern)."""
        rng = np.random.default_rng(21)
        n, m, R = 9, 120, 2
        caps = np.array([3, 1, 4, 1, 5, 9, 2, 6, 5], dtype=np.int64)
        choices = rng.integers(0, n, size=(R, m, 2))
        tie_u = rng.random((R, m))
        whole = np.zeros((R, n), dtype=np.int64)
        run_batch_ensemble(whole, caps, choices, tie_u)
        split = np.zeros((R, n), dtype=np.int64)
        ws = WavefrontWorkspace()
        cut = 47
        run_batch_wavefront(split, caps, choices[:, :cut], tie_u[:, :cut], workspace=ws)
        run_batch_wavefront(split, caps, choices[:, cut:], tie_u[:, cut:], workspace=ws)
        np.testing.assert_array_equal(whole, split)
        for r in range(R):
            fast_counts = [0] * n
            run_batch(fast_counts, caps.tolist(), choices[r], tie_u[r])
            assert np.array_equal(split[r], fast_counts)

    def test_empty_batch_noop(self):
        counts = np.arange(6, dtype=np.int64).reshape(2, 3)
        out = run_batch_wavefront(
            counts.copy(), [1, 1, 1], np.zeros((2, 0, 2), dtype=np.int64),
            np.zeros((2, 0)),
        )
        np.testing.assert_array_equal(out, counts)

    def test_shares_kernel_validation(self):
        with pytest.raises(ValueError, match="unknown tie_break"):
            run_batch_wavefront(
                np.zeros((1, 2), dtype=np.int64), [1, 1],
                np.zeros((1, 1, 2), dtype=np.int64), np.zeros((1, 1)),
                tie_break="nope",
            )
        with pytest.raises(ValueError, match="C-contiguous"):
            run_batch_wavefront(
                np.zeros((4, 6), dtype=np.int64)[:, ::2], [1, 1, 1],
                np.zeros((4, 2, 2), dtype=np.int64), np.zeros((4, 2)),
            )
        with pytest.raises(ValueError, match="tie_uniforms"):
            run_batch_wavefront(
                np.zeros((2, 3), dtype=np.int64), [1, 1, 1],
                np.zeros((2, 4, 2), dtype=np.int64), np.zeros((2, 3)),
            )


class TestDriverIdentity:
    def test_randomised_driver_sweep(self):
        """simulate / simulate_ensemble forced on == forced off, counts,
        heights and snapshots, across tie modes and seed modes."""
        assert check_wavefront_driver_identity(0xD1D0, trials=8) == 8

    def test_scalar_runtime_fallback_is_invisible(self, monkeypatch):
        """A run whose realised free fraction trips the runtime guard must
        still produce exactly the forced-off numbers: the fallback converts
        the array representation back to lists mid-run (counts *and* the
        heights prefix), and a slicing bug there would corrupt the tail."""
        import repro.core.simulation as sim

        n = 3000
        bins = BinArray([1] * n)
        kwargs = dict(m=2000, d=2, seed=9, track_heights=True,
                      snapshot_at=[500, 2000], chunk_size=500)
        with forced("off"):
            ref = simulate(bins, **kwargs)
        # An impossible threshold trips the guard right after the first
        # chunk, so chunk 1 runs the wavefront and chunks 2-4 the loop.
        monkeypatch.setattr(sim, "RUNTIME_MIN_FREE_FRACTION", 2.0)
        res = simulate(bins, **kwargs)
        np.testing.assert_array_equal(res.counts, ref.counts)
        np.testing.assert_array_equal(res.heights, ref.heights)
        assert [s.max_load for s in res.snapshots] == [
            s.max_load for s in ref.snapshots
        ]

    def test_ensemble_runtime_fallback_is_invisible(self, monkeypatch):
        """Same guarantee for the ensemble driver: tripping the guard after
        the first chunk hands the rest of the run to the per-ball kernels
        without changing a bit."""
        import repro.core.ensemble as ens

        bins = BinArray([1] * 3000)
        kwargs = dict(repetitions=3, m=2000, d=2, seed=11,
                      seed_mode="blocked", track_heights=True, chunk_size=500)
        with forced("off"):
            ref = simulate_ensemble(bins, **kwargs)
        monkeypatch.setattr(ens, "RUNTIME_MIN_FREE_FRACTION", 2.0)
        res = simulate_ensemble(bins, **kwargs)
        np.testing.assert_array_equal(res.counts, ref.counts)
        np.testing.assert_array_equal(res.heights, ref.heights)


class TestDispatch:
    def test_mode_knobs(self):
        assert get_mode() in WAVEFRONT_MODES
        with forced("on"):
            assert get_mode() == "on"
            assert use_wavefront(2.0, 256, 5)
            with forced("off"):
                assert not use_wavefront(1e9, 1, 2)
            assert get_mode() == "on"
        with pytest.raises(ValueError, match="unknown wavefront mode"):
            set_mode("sometimes")

    def test_env_override(self, monkeypatch):
        set_mode(None)
        monkeypatch.setenv("REPRO_WAVEFRONT", "off")
        assert get_mode() == "off"
        assert not use_wavefront(1e9, 1, 2)
        monkeypatch.setenv("REPRO_WAVEFRONT", "garbage")
        assert get_mode() == "auto"

    def test_auto_keys_on_bins_per_lane(self):
        # large n, scalar: on; same n, very wide ensemble: off
        assert use_wavefront(10_000, 1, 2, mode="auto")
        assert use_wavefront(10_000, 64, 2, mode="auto")
        assert not use_wavefront(10_000, 128, 2, mode="auto")
        # small instances never dispatch (fig02-sized)
        assert not use_wavefront(32, 64, 2, mode="auto")
        assert not use_wavefront(100, 1, 2, mode="auto")
        # the ratio is keyed on n / (R * d * d)
        assert not use_wavefront(10_000, 1, 25, mode="auto")

    def test_effective_bins(self):
        assert effective_bins(np.full(100, 0.01)) == pytest.approx(100.0)
        skew = np.zeros(1000)
        skew[0] = 1.0
        assert effective_bins(skew) == pytest.approx(1.0)

    def test_expected_free_fraction_and_tile_width(self):
        assert expected_free_fraction(10_000, 64, 2, 64) == pytest.approx(
            1.0 - 4 * 64 / 20_000
        )
        assert expected_free_fraction(10, 1, 4, 64) == 0.0
        w = tile_width(10_000, 1, 2)
        assert w & (w - 1) == 0 and 16 <= w <= 4096
        assert tile_width(10_000, 64, 2) < w
        assert MIN_BINS_PER_LANE > 0

    def test_stats_accumulate(self):
        rng = np.random.default_rng(3)
        R, n, m = 2, 500, 400
        choices = rng.integers(0, n, size=(R, m, 2))
        stats = WavefrontStats()
        counts = np.zeros((R, n), dtype=np.int64)
        run_batch_wavefront(counts, [1] * n, choices, rng.random((R, m)), stats=stats)
        assert stats.balls == R * m
        assert stats.chunks == 1
        assert 0.0 <= stats.free_fraction <= 1.0
        assert stats.waves >= 1


class TestWorkspace:
    def test_reuse_across_calls_changes_nothing(self):
        rng = np.random.default_rng(17)
        n, m, R = 50, 300, 3
        caps = rng.integers(1, 5, size=n).astype(np.int64)
        ws = WavefrontWorkspace()
        expected = None
        for trial in range(3):
            choices = rng.integers(0, n, size=(R, m, 2))
            tie_u = rng.random((R, m))
            fresh = np.zeros((R, n), dtype=np.int64)
            run_batch_wavefront(fresh, caps, choices, tie_u)
            shared = np.zeros((R, n), dtype=np.int64)
            run_batch_wavefront(shared, caps, choices, tie_u, workspace=ws)
            np.testing.assert_array_equal(fresh, shared, err_msg=f"trial={trial}")

    def test_per_ball_kernel_workspace(self):
        """The hoisted rbase/offsets path of run_batch_ensemble is
        bit-identical to the ad hoc one."""
        rng = np.random.default_rng(23)
        n, m, R = 20, 200, 5
        caps = rng.integers(1, 5, size=n).astype(np.int64)
        ws = WavefrontWorkspace()
        ws.prepare(R, n)
        for d in (1, 2, 3):
            choices = rng.integers(0, n, size=(R, m, d))
            tie_u = rng.random((R, m))
            plain = np.zeros((R, n), dtype=np.int64)
            run_batch_ensemble(plain, caps, choices, tie_u)
            hoisted = np.zeros((R, n), dtype=np.int64)
            run_batch_ensemble(hoisted, caps, choices, tie_u, workspace=ws)
            np.testing.assert_array_equal(plain, hoisted, err_msg=f"d={d}")

    def test_buffers_are_cached(self):
        ws = WavefrontWorkspace()
        ws.prepare(2, 10)
        assert ws.buf("x", (2, 4), np.int64) is ws.buf("x", (2, 4), np.int64)
        assert ws.rbase(2) is ws.rbase(2)
        assert ws.row_offsets(2, 10) is ws.row_offsets(2, 10)


class TestEnsembleDriverDispatch:
    def test_forced_on_matches_forced_off_large_n(self):
        """At a dispatch-eligible size the auto path must take the
        wavefront and still reproduce the per-ball numbers exactly."""
        bins = BinArray([1] * 3000)
        with forced("off"):
            off = simulate_ensemble(bins, repetitions=3, m=1500, seed=4,
                                    seed_mode="blocked", track_heights=True)
        auto = simulate_ensemble(bins, repetitions=3, m=1500, seed=4,
                                 seed_mode="blocked", track_heights=True)
        np.testing.assert_array_equal(auto.counts, off.counts)
        np.testing.assert_array_equal(auto.heights, off.heights)
