"""Tests for ball-height bookkeeping (Observation 1 instrumentation)."""

import numpy as np
import pytest

from repro.bins import two_class_bins, big_small_split
from repro.core import simulate
from repro.core.heights import (
    HeightSummary,
    split_heights_by_big_contact,
    summarize_heights,
)


class TestHeightSummary:
    def test_of_values(self):
        s = HeightSummary.of(np.array([1.0, 2.0, 3.0]))
        assert s.count == 3
        assert s.max_height == 3.0
        assert s.mean_height == 2.0

    def test_empty(self):
        s = HeightSummary.of(np.array([]))
        assert s.count == 0
        assert np.isnan(s.max_height)

    def test_summarize_wrapper(self):
        assert summarize_heights([2.0]).max_height == 2.0


class TestSplitByBigContact:
    def _setup(self, seed=0):
        # 40 unit bins + 10 big bins of capacity 32 >> ln(50) ~ 3.9
        bins = two_class_bins(40, 10, 1, 32)
        res = simulate(bins, track_heights=True, keep_choices=True, seed=seed)
        split = big_small_split(bins)
        return bins, res, split

    def test_partition_counts(self):
        _, res, split = self._setup()
        bb, bs = split_heights_by_big_contact(res.heights, res.choices, split)
        assert bb.count + bs.count == res.m

    def test_big_contact_majority(self):
        """With C_b/C = 320/360, ~(1 - (40/360)^2) > 98% of balls touch a
        big bin."""
        _, res, split = self._setup()
        bb, _ = split_heights_by_big_contact(res.heights, res.choices, split)
        assert bb.count / res.m > 0.9

    def test_big_ball_heights_bounded(self):
        """Observation 1's conclusion at small scale: B_b heights stay
        below 4."""
        for seed in range(3):
            _, res, split = self._setup(seed)
            bb, _ = split_heights_by_big_contact(res.heights, res.choices, split)
            assert bb.max_height <= 4.0

    def test_shape_mismatch_rejected(self):
        _, res, split = self._setup()
        with pytest.raises(ValueError):
            split_heights_by_big_contact(res.heights[:-1], res.choices, split)
