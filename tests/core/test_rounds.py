"""Tests for batched arrivals with stale loads."""

import numpy as np
import pytest

from repro.bins import two_class_bins, uniform_bins
from repro.core import simulate, simulate_batched


class TestValidation:
    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            simulate_batched(uniform_bins(4), batch_size=0)

    def test_rejects_bad_d(self):
        with pytest.raises(ValueError):
            simulate_batched(uniform_bins(4), d=0)

    def test_rejects_negative_m(self):
        with pytest.raises(ValueError):
            simulate_batched(uniform_bins(4), m=-1)


class TestSemantics:
    def test_conservation(self):
        bins = two_class_bins(5, 5, 1, 4)
        res = simulate_batched(bins, m=100, batch_size=7, seed=0)
        assert res.counts.sum() == 100

    def test_default_m_is_capacity(self):
        bins = uniform_bins(10, 3)
        assert simulate_batched(bins, seed=0).m == 30

    def test_batch_one_matches_sequential_statistically(self):
        """batch_size=1 is the sequential protocol; mean max loads agree."""
        bins = uniform_bins(200, 1)
        seq = np.mean([simulate(bins, seed=s).max_load for s in range(20)])
        b1 = np.mean([simulate_batched(bins, batch_size=1, seed=s).max_load for s in range(20)])
        assert b1 == pytest.approx(seq, abs=0.3)

    def test_staleness_degrades_balance(self):
        """Larger batches -> staler views -> higher max load (monotone in
        expectation across the extremes)."""
        bins = uniform_bins(300, 1)
        fresh = np.mean(
            [simulate_batched(bins, batch_size=1, seed=s).max_load for s in range(15)]
        )
        stale = np.mean(
            [simulate_batched(bins, batch_size=300, seed=s).max_load for s in range(15)]
        )
        assert stale > fresh

    def test_full_batch_between_one_and_two_choice(self):
        """Even a fully stale batch retains some benefit over one-choice:
        duplicate candidate pairs still avoid committed collisions only by
        chance, so the max load sits at or above the fresh two-choice value
        and at or below one-choice."""
        from repro.core import one_choice

        bins = uniform_bins(300, 1)
        stale = np.mean(
            [simulate_batched(bins, batch_size=300, seed=s).max_load for s in range(15)]
        )
        single = np.mean([one_choice(bins, seed=s).max_load for s in range(15)])
        assert stale <= single + 0.3

    def test_heterogeneous_batches(self):
        bins = two_class_bins(50, 50, 1, 8)
        res = simulate_batched(bins, batch_size=64, seed=3)
        assert res.counts.sum() == bins.total_capacity
        assert res.max_load < 6.0


class TestBatchedEnsemble:
    """Lockstep counterpart of simulate_batched (simulate_batched_ensemble)."""

    def test_spawn_parity_with_scalar(self):
        """Replication r == simulate_batched(seed=child_r), any batch size."""
        from repro.core import simulate_batched_ensemble
        from repro.sampling.rngutils import spawn_seed_sequences

        bins = two_class_bins(4, 4, 1, 6)
        for batch in (1, 7, 48):
            ens = simulate_batched_ensemble(
                bins, repetitions=3, m=48, batch_size=batch, seed=11
            )
            for r, child in enumerate(spawn_seed_sequences(11, 3)):
                sc = simulate_batched(bins, m=48, batch_size=batch, seed=child)
                np.testing.assert_array_equal(
                    ens.counts[r], sc.counts, err_msg=f"batch={batch} rep={r}"
                )

    def test_blocked_mode_deterministic_and_conserving(self):
        from repro.core import simulate_batched_ensemble

        bins = uniform_bins(6, 2)
        a = simulate_batched_ensemble(
            bins, repetitions=5, m=40, batch_size=8, seed=3, seed_mode="blocked"
        )
        b = simulate_batched_ensemble(
            bins, repetitions=5, m=40, batch_size=8, seed=3, seed_mode="blocked"
        )
        np.testing.assert_array_equal(a.counts, b.counts)
        assert (a.counts.sum(axis=1) == 40).all()
        assert a.tie_break == "max_capacity"

    def test_validation(self):
        from repro.core import simulate_batched_ensemble

        bins = uniform_bins(4)
        with pytest.raises(ValueError, match="repetitions"):
            simulate_batched_ensemble(bins)
        with pytest.raises(ValueError, match="batch_size"):
            simulate_batched_ensemble(bins, repetitions=2, batch_size=0)
        with pytest.raises(ValueError, match="seed_mode"):
            simulate_batched_ensemble(bins, repetitions=2, seed_mode="nope")
        with pytest.raises(ValueError, match="blocked"):
            simulate_batched_ensemble(bins, seeds=[1, 2], seed_mode="blocked")
        with pytest.raises(ValueError, match="contradicts"):
            simulate_batched_ensemble(bins, repetitions=3, seeds=[1, 2])
