"""End-to-end run-pipeline tests: RunRequest → store → resumable sweep.

These enforce the pipeline's two acceptance criteria:

* running the same request twice through a store does **zero simulation
  work** the second time and returns a bit-identical result;
* killing a sweep mid-run and re-running it resumes from block checkpoints
  and produces results bit-identical to an uninterrupted run at the same
  seed.
"""

import numpy as np
import pytest

import repro.experiments.fig02_05_small_heavy as fig02mod
from repro.cli import main
from repro.experiments import RunRequest, execute_request, run_experiment
from repro.experiments.base import get_experiment
from repro.io.store import ResultStore


def assert_bit_identical(a, b):
    assert a.x_values.tobytes() == b.x_values.tobytes()
    assert list(a.series) == list(b.series)
    for name in a.series:
        assert a.series[name].tobytes() == b.series[name].tobytes(), name


@pytest.fixture
def no_simulation(monkeypatch):
    """Arm after the first run: any further simulation work fails the test."""

    def arm():
        def boom(*args, **kwargs):
            raise AssertionError("simulation ran on what must be a cache hit")

        monkeypatch.setattr(fig02mod, "simulate", boom)
        monkeypatch.setattr(fig02mod, "simulate_ensemble", boom)

    return arm


class TestCacheHitOrCompute:
    @pytest.mark.parametrize("engine", ["scalar", "ensemble"])
    def test_second_run_is_pure_lookup(self, tmp_path, no_simulation, engine):
        store = ResultStore(tmp_path)
        first = run_experiment(
            "fig02", seed=5, repetitions=6, engine=engine, store=store
        )
        no_simulation()
        second = run_experiment(
            "fig02", seed=5, repetitions=6, engine=engine, store=store
        )
        assert store.hits == 1
        assert_bit_identical(first, second)
        assert second.extra["wall_seconds"] == first.extra["wall_seconds"]
        assert second.parameters == first.parameters

    def test_different_request_recomputes(self, tmp_path):
        store = ResultStore(tmp_path)
        run_experiment("fig02", seed=5, repetitions=6, store=store)
        run_experiment("fig02", seed=6, repetitions=6, store=store)
        assert store.stats().entries == 2 and store.hits == 0

    def test_outcome_reports_key_and_status(self, tmp_path):
        store = ResultStore(tmp_path)
        request = RunRequest("fig02", seed=5, overrides={"repetitions": 6})
        miss = execute_request(request, store=store)
        hit = execute_request(request, store=store)
        assert not miss.cache_hit and hit.cache_hit
        assert miss.key == hit.key == request.cache_key(
            version=get_experiment("fig02").version
        )

    def test_store_true_uses_env_knob(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env"))
        run_experiment("fig02", seed=5, repetitions=6, store=True)
        assert ResultStore(tmp_path / "env").stats().entries == 1

    def test_request_and_kwargs_conflict_rejected(self):
        request = RunRequest("fig02", seed=5, overrides={"repetitions": 3})
        with pytest.raises(ValueError, match="not both"):
            run_experiment(request, seed=6)
        with pytest.raises(ValueError, match="not both"):
            run_experiment(request, workers=8)

    def test_run_all_rejects_unknown_engine(self):
        from repro.experiments import run_all

        with pytest.raises(ValueError, match="unknown engine"):
            run_all(engine="ensembel", only=["fig02"])


class TestCliStore:
    def test_run_store_hit_on_second_invocation(self, tmp_path, capsys, no_simulation):
        argv = ["run", "fig02", "--seed", "5", "--scale", "0.0003",
                "--no-plot", "--store", str(tmp_path)]
        assert main(argv) == 0
        assert "cache miss" in capsys.readouterr().out
        no_simulation()
        assert main(argv) == 0
        assert "cache hit" in capsys.readouterr().out

    def test_sweep_grid_hits_on_rerun(self, tmp_path, capsys, no_simulation):
        argv = ["sweep", "fig02", "--seeds", "5,6", "--engines",
                "scalar,ensemble", "--repetitions", "4",
                "--store", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert out.count("miss") == 4 and "0 cache hit(s)" in out
        no_simulation()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert out.count("hit") >= 4 and "4 cache hit(s)" in out

    def test_sweep_out_keeps_one_artifact_per_cell(self, tmp_path):
        out = tmp_path / "artifacts"
        assert main(["sweep", "fig02", "--seeds", "5,6", "--repetitions", "4",
                     "--store", str(tmp_path / "store"), "--out", str(out)]) == 0
        cells = sorted(p.name for p in out.iterdir())
        assert len(cells) == 2  # one <id>-<key> directory per grid cell
        for cell in cells:
            assert cell.startswith("fig02-")
            assert (out / cell / "fig02.csv").is_file()
            assert (out / cell / "fig02.json").is_file()

    def test_sweep_rejects_unknown_engine(self):
        with pytest.raises(SystemExit, match="unknown engine"):
            main(["sweep", "fig02", "--engines", "warp"])

    def test_sweep_rejects_bad_scale(self):
        with pytest.raises(SystemExit, match="bad scale"):
            main(["sweep", "fig02", "--scales", "fast"])


class TestSweepResume:
    def test_killed_sweep_resumes_bit_identically(self, tmp_path, monkeypatch, capsys):
        """The acceptance scenario: a sweep dies mid-ensemble-run; rerunning
        it resumes from the block checkpoints (not from scratch) and the
        final stored result equals an uninterrupted run bit-for-bit."""
        argv = ["sweep", "fig02", "--seeds", "7", "--engines", "ensemble",
                "--repetitions", "12", "--block-size", "2",
                "--store", str(tmp_path / "killed")]

        # Uninterrupted reference in a separate store.
        reference = run_experiment(
            "fig02", seed=7, repetitions=12, engine="ensemble", block_size=2,
            store=ResultStore(tmp_path / "reference"),
        )

        real = fig02mod.simulate_ensemble
        calls = {"n": 0}

        def dying(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 7:  # 24 blocks total: die in the second sub-run
                raise RuntimeError("sweep killed")
            return real(*args, **kwargs)

        monkeypatch.setattr(fig02mod, "simulate_ensemble", dying)
        with pytest.raises(RuntimeError, match="sweep killed"):
            main(argv)
        capsys.readouterr()

        store = ResultStore(tmp_path / "killed")
        request = RunRequest(
            "fig02", seed=7, engine="ensemble", block_size=2,
            overrides={"repetitions": 12},
        )
        key = request.cache_key(version=get_experiment("fig02").version)
        assert store.has_checkpoints(key)

        # Rerun: must resume (recompute only the unfinished blocks).
        counting = {"n": 0}

        def counted(*args, **kwargs):
            counting["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(fig02mod, "simulate_ensemble", counted)
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "resumed" in out
        assert counting["n"] == 24 - 7  # checkpointed blocks were skipped

        resumed = store.get(key).result
        assert_bit_identical(resumed, reference)
        assert not store.has_checkpoints(key)  # cleared after completion

        # And a third invocation is a pure cache hit.
        monkeypatch.setattr(fig02mod, "simulate_ensemble", real)
        assert main(argv) == 0
        assert "hit" in capsys.readouterr().out
