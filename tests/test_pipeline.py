"""End-to-end run-pipeline tests: RunRequest → store → resumable sweep.

These enforce the pipeline's two acceptance criteria:

* running the same request twice through a store does **zero simulation
  work** the second time and returns a bit-identical result;
* killing a sweep mid-run and re-running it resumes from block checkpoints
  and produces results bit-identical to an uninterrupted run at the same
  seed.
"""

import numpy as np
import pytest

import repro.experiments.fig02_05_small_heavy as fig02mod
from repro.cli import main
from repro.experiments import RunRequest, execute_request, run_experiment
from repro.experiments.base import get_experiment
from repro.io.store import ResultStore


def assert_bit_identical(a, b):
    assert a.x_values.tobytes() == b.x_values.tobytes()
    assert list(a.series) == list(b.series)
    for name in a.series:
        assert a.series[name].tobytes() == b.series[name].tobytes(), name


@pytest.fixture
def no_simulation(monkeypatch):
    """Arm after the first run: any further simulation work fails the test."""

    def arm():
        def boom(*args, **kwargs):
            raise AssertionError("simulation ran on what must be a cache hit")

        monkeypatch.setattr(fig02mod, "simulate", boom)
        monkeypatch.setattr(fig02mod, "simulate_ensemble", boom)

    return arm


class TestCacheHitOrCompute:
    @pytest.mark.parametrize("engine", ["scalar", "ensemble"])
    def test_second_run_is_pure_lookup(self, tmp_path, no_simulation, engine):
        store = ResultStore(tmp_path)
        first = run_experiment(
            "fig02", seed=5, repetitions=6, engine=engine, store=store
        )
        no_simulation()
        second = run_experiment(
            "fig02", seed=5, repetitions=6, engine=engine, store=store
        )
        assert store.hits == 1
        assert_bit_identical(first, second)
        assert second.extra["wall_seconds"] == first.extra["wall_seconds"]
        assert second.parameters == first.parameters

    def test_different_request_recomputes(self, tmp_path):
        store = ResultStore(tmp_path)
        run_experiment("fig02", seed=5, repetitions=6, store=store)
        run_experiment("fig02", seed=6, repetitions=6, store=store)
        assert store.stats().entries == 2 and store.hits == 0

    def test_outcome_reports_key_and_status(self, tmp_path):
        store = ResultStore(tmp_path)
        request = RunRequest("fig02", seed=5, overrides={"repetitions": 6})
        miss = execute_request(request, store=store)
        hit = execute_request(request, store=store)
        assert not miss.cache_hit and hit.cache_hit
        assert miss.key == hit.key == request.cache_key(
            version=get_experiment("fig02").version
        )

    def test_store_true_uses_env_knob(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env"))
        run_experiment("fig02", seed=5, repetitions=6, store=True)
        assert ResultStore(tmp_path / "env").stats().entries == 1

    def test_request_and_kwargs_conflict_rejected(self):
        request = RunRequest("fig02", seed=5, overrides={"repetitions": 3})
        with pytest.raises(ValueError, match="not both"):
            run_experiment(request, seed=6)
        with pytest.raises(ValueError, match="not both"):
            run_experiment(request, workers=8)

    def test_run_all_rejects_unknown_engine(self):
        from repro.experiments import run_all

        with pytest.raises(ValueError, match="unknown engine"):
            run_all(engine="ensembel", only=["fig02"])


class TestCliStore:
    def test_run_store_hit_on_second_invocation(self, tmp_path, capsys, no_simulation):
        argv = ["run", "fig02", "--seed", "5", "--scale", "0.0003",
                "--no-plot", "--store", str(tmp_path)]
        assert main(argv) == 0
        assert "cache miss" in capsys.readouterr().out
        no_simulation()
        assert main(argv) == 0
        assert "cache hit" in capsys.readouterr().out

    def test_sweep_grid_hits_on_rerun(self, tmp_path, capsys, no_simulation):
        argv = ["sweep", "fig02", "--seeds", "5,6", "--engines",
                "scalar,ensemble", "--repetitions", "4",
                "--store", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert out.count("miss") == 4 and "0 cache hit(s)" in out
        no_simulation()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert out.count("hit") >= 4 and "4 cache hit(s)" in out

    def test_sweep_out_keeps_one_artifact_per_cell(self, tmp_path):
        out = tmp_path / "artifacts"
        assert main(["sweep", "fig02", "--seeds", "5,6", "--repetitions", "4",
                     "--store", str(tmp_path / "store"), "--out", str(out)]) == 0
        cells = sorted(p.name for p in out.iterdir())
        assert len(cells) == 2  # one <id>-<key> directory per grid cell
        for cell in cells:
            assert cell.startswith("fig02-")
            assert (out / cell / "fig02.csv").is_file()
            assert (out / cell / "fig02.json").is_file()

    def test_sweep_rejects_unknown_engine(self):
        with pytest.raises(SystemExit, match="unknown engine"):
            main(["sweep", "fig02", "--engines", "warp"])

    def test_sweep_rejects_bad_scale(self):
        with pytest.raises(SystemExit, match="bad scale"):
            main(["sweep", "fig02", "--scales", "fast"])

    def test_sweep_fabric_matches_local_bit_identically(self, tmp_path):
        """`--fabric N` runs the grid over broker-leased workers; the stored
        entries must be byte-identical to a local sweep of the same grid
        (placement is not part of the cache key, and never changes a
        number)."""
        local_store = ResultStore(tmp_path / "local")
        fabric_store = ResultStore(tmp_path / "fabric")
        grid = ["sweep", "fig02", "--seeds", "5", "--engines", "ensemble",
                "--repetitions", "8", "--block-size", "2"]
        assert main(grid + ["--store", str(local_store.root)]) == 0
        assert main(grid + ["--store", str(fabric_store.root),
                            "--fabric", "2"]) == 0
        keys = local_store.keys()
        assert keys == fabric_store.keys() and len(keys) == 1
        a = local_store.get(keys[0]).result
        b = fabric_store.get(keys[0]).result
        for name in a.series:
            assert a.series[name].tobytes() == b.series[name].tobytes()
        # the fabric scratch namespace never outlives the sweep
        assert not any((fabric_store.root / "fabric").rglob("block-*.pkl"))

    def test_sweep_rejects_nonpositive_fabric(self, tmp_path):
        with pytest.raises(SystemExit, match="fabric"):
            main(["sweep", "fig02", "--fabric", "0",
                  "--store", str(tmp_path)])


class TestSweepResume:
    def test_killed_sweep_resumes_bit_identically(self, tmp_path, monkeypatch, capsys):
        """The acceptance scenario: a sweep dies mid-ensemble-run; rerunning
        it resumes from the block checkpoints (not from scratch) and the
        final stored result equals an uninterrupted run bit-for-bit."""
        argv = ["sweep", "fig02", "--seeds", "7", "--engines", "ensemble",
                "--repetitions", "12", "--block-size", "2",
                "--store", str(tmp_path / "killed")]

        # Uninterrupted reference in a separate store.
        reference = run_experiment(
            "fig02", seed=7, repetitions=12, engine="ensemble", block_size=2,
            store=ResultStore(tmp_path / "reference"),
        )

        real = fig02mod.simulate_ensemble
        calls = {"n": 0}

        def dying(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 7:  # 24 blocks total: die in the second sub-run
                raise RuntimeError("sweep killed")
            return real(*args, **kwargs)

        monkeypatch.setattr(fig02mod, "simulate_ensemble", dying)
        # The sweep survives the dying cell (reports it, exits nonzero)
        # instead of crashing with a traceback; its checkpoints remain.
        assert main(argv) == 1
        out = capsys.readouterr()
        assert "error" in out.out
        assert "sweep killed" in out.err

        store = ResultStore(tmp_path / "killed")
        request = RunRequest(
            "fig02", seed=7, engine="ensemble", block_size=2,
            overrides={"repetitions": 12},
        )
        key = request.cache_key(version=get_experiment("fig02").version)
        assert store.has_checkpoints(key)

        # Rerun: must resume (recompute only the unfinished blocks).
        counting = {"n": 0}

        def counted(*args, **kwargs):
            counting["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(fig02mod, "simulate_ensemble", counted)
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "resumed" in out
        assert counting["n"] == 24 - 7  # checkpointed blocks were skipped

        resumed = store.get(key).result
        assert_bit_identical(resumed, reference)
        assert not store.has_checkpoints(key)  # cleared after completion

        # And a third invocation is a pure cache hit.
        monkeypatch.setattr(fig02mod, "simulate_ensemble", real)
        assert main(argv) == 0
        assert "hit" in capsys.readouterr().out


class TestSweepFailureExit:
    def test_failed_cell_reports_error_and_exits_nonzero(
        self, tmp_path, monkeypatch, capsys
    ):
        """Regression: a raising grid cell must not hide behind a zero exit
        — the sweep finishes the other cells, marks the bad one ``error``
        in the table, and returns 1."""

        def boom(*args, **kwargs):
            raise RuntimeError("cell exploded")

        monkeypatch.setattr(fig02mod, "simulate", boom)
        code = main(["sweep", "fig01,fig02", "--seeds", "5",
                     "--repetitions", "4", "--store", str(tmp_path)])
        assert code == 1
        out = capsys.readouterr()
        rows = [line for line in out.out.splitlines() if "fig" in line]
        assert any("fig01" in r and "miss" in r for r in rows)
        assert any("fig02" in r and "error" in r for r in rows)
        assert "cell exploded" in out.err and "FAILED" in out.err
        # The healthy cell still landed in the store.
        store = ResultStore(tmp_path)
        assert store.stats().entries == 1

    def test_all_green_sweep_still_exits_zero(self, tmp_path, capsys):
        assert main(["sweep", "fig02", "--seeds", "5", "--repetitions", "4",
                     "--store", str(tmp_path)]) == 0


PRECISION = "rel=0.05,conf=0.9,min_blocks=4"


def adaptive_request(seed=9, budget=256):
    return RunRequest(
        "fig02", seed=seed, engine="ensemble",
        overrides={"repetitions": budget},
        precision={"rel": 0.05, "conf": 0.9, "min_blocks": 4},
    )


class TestAdaptivePipeline:
    def test_adaptive_run_stops_early_and_round_trips_store(
        self, tmp_path, no_simulation
    ):
        store = ResultStore(tmp_path)
        request = adaptive_request()
        first = execute_request(request, store=store).result
        info = first.extra["adaptive"]
        assert info["early_stopped"]
        assert info["replications_used"] < info["replication_budget"]
        # Second run: pure lookup, adaptive provenance included.
        no_simulation()
        outcome = execute_request(request, store=store)
        assert outcome.cache_hit
        assert_bit_identical(first, outcome.result)
        back = outcome.result.extra["adaptive"]
        assert back["replications_used"] == info["replications_used"]
        assert back["runs"].keys() == info["runs"].keys()
        assert not store.has_checkpoints(outcome.key)

    def test_killed_adaptive_run_resumes_to_same_stop(self, tmp_path, monkeypatch):
        """The adaptive acceptance scenario: kill an early-stopping run
        mid-stream; the rerun resumes from the checkpointed (reducer,
        monitor) state, stops at the same block, and the stored result is
        bit-identical to an uninterrupted adaptive run."""
        request = adaptive_request()
        reference = execute_request(
            request, store=ResultStore(tmp_path / "ref")
        ).result

        real = fig02mod.simulate_ensemble
        calls = {"n": 0}

        def dying(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 5:
                raise RuntimeError("adaptive run killed")
            return real(*args, **kwargs)

        store = ResultStore(tmp_path / "killed")
        monkeypatch.setattr(fig02mod, "simulate_ensemble", dying)
        with pytest.raises(RuntimeError, match="adaptive run killed"):
            execute_request(request, store=store)
        key = request.cache_key(version=get_experiment("fig02").version)
        assert store.has_checkpoints(key)

        monkeypatch.setattr(fig02mod, "simulate_ensemble", real)
        resumed = execute_request(request, store=store)
        assert not resumed.cache_hit and resumed.resumed
        assert_bit_identical(resumed.result, reference)
        assert (resumed.result.extra["adaptive"]["replications_used"]
                == reference.extra["adaptive"]["replications_used"])

    def test_cli_run_reports_early_stop(self, tmp_path, capsys):
        assert main(["run", "fig02", "--seed", "9", "--engine", "ensemble",
                     "--scale", "0.05", "--precision", PRECISION,
                     "--no-plot", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "early-stopped at R=" in out

    def test_cli_sweep_shows_stopped_column(self, tmp_path, capsys):
        assert main(["sweep", "fig02", "--seeds", "9", "--engines", "ensemble",
                     "--repetitions", "256", "--precision", PRECISION,
                     "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "stopped" in out and "early@R=" in out

    def test_cli_rejects_bad_precision(self):
        with pytest.raises(SystemExit, match="bad --precision"):
            main(["run", "fig02", "--precision", "frobnicate=1"])

    def test_cli_rejects_precision_on_scalar_engine(self, tmp_path):
        with pytest.raises(SystemExit, match="ensemble"):
            main(["run", "fig02", "--seed", "9", "--precision", PRECISION,
                  "--no-plot", "--store", str(tmp_path)])

    def test_precision_on_non_adaptive_experiment_rejected(self):
        from repro.experiments.base import PrecisionNotSupportedError

        request = RunRequest(
            "fig06", seed=1, engine="ensemble",
            precision={"rel": 0.05},
        )
        with pytest.raises(PrecisionNotSupportedError, match="fig06"):
            execute_request(request)

    @pytest.mark.parametrize("overrides", [{"repetitions": 4}])
    def test_run_experiment_kwarg_precision(self, tmp_path, overrides):
        from repro.analysis.precision import PrecisionTarget

        result = run_experiment(
            "fig02", seed=9, engine="ensemble", store=ResultStore(tmp_path),
            precision=PrecisionTarget(rel=0.5, min_blocks=2), **overrides,
        )
        assert "adaptive" in result.extra
