"""Tests for the consistent-hashing ring."""

import math

import numpy as np
import pytest

from repro.p2p import ConsistentHashRing, RingPeer


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one peer"):
            ConsistentHashRing([])

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError, match="unique"):
            ConsistentHashRing(["a", "a"])

    def test_accepts_strings(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        assert ring.n_peers == 3

    def test_virtual_nodes_multiply_positions(self):
        ring = ConsistentHashRing([RingPeer("a", virtual_nodes=5)])
        assert ring.positions.size == 5

    def test_rejects_bad_virtual_nodes(self):
        with pytest.raises(ValueError):
            RingPeer("a", virtual_nodes=0)

    def test_random_factory(self):
        ring = ConsistentHashRing.random(10, seed=0)
        assert ring.n_peers == 10

    def test_random_reproducible(self):
        a = ConsistentHashRing.random(5, seed=3)
        b = ConsistentHashRing.random(5, seed=3)
        np.testing.assert_array_equal(a.positions, b.positions)


class TestLookup:
    def test_positions_sorted(self):
        ring = ConsistentHashRing.random(50, seed=1)
        assert np.all(np.diff(ring.positions) >= 0)

    def test_lookup_returns_valid_peer(self):
        ring = ConsistentHashRing.random(20, seed=2)
        for p in (0.0, 0.3, 0.99999):
            assert 0 <= ring.lookup(p) < 20

    def test_wraparound(self):
        """A point after the last position maps to the first position's
        owner (anti-clockwise successor)."""
        ring = ConsistentHashRing.random(10, seed=3)
        last = float(ring.positions[-1])
        point = (last + 1.0) / 2.0  # strictly beyond every position
        assert ring.lookup(point) == ring.lookup(0.0)

    def test_point_modulo(self):
        ring = ConsistentHashRing.random(10, seed=4)
        assert ring.lookup(1.25) == ring.lookup(0.25)

    def test_lookup_key_stable(self):
        ring = ConsistentHashRing.random(10, seed=5)
        assert ring.lookup_key("file-42") == ring.lookup_key("file-42")


class TestArcs:
    def test_lengths_sum_to_one(self):
        ring = ConsistentHashRing.random(30, seed=6)
        assert ring.arc_lengths().sum() == pytest.approx(1.0)

    def test_lengths_positive(self):
        ring = ConsistentHashRing.random(30, seed=7)
        assert (ring.arc_lengths() > 0).all()

    def test_imbalance_at_least_one(self):
        ring = ConsistentHashRing.random(100, seed=8)
        assert ring.arc_imbalance() >= 1.0

    def test_imbalance_log_scale(self):
        """The paper cites max arc up to log(n) times the average; the
        random ring's imbalance should be within a few multiples of ln n."""
        n = 200
        ring = ConsistentHashRing.random(n, seed=9)
        assert ring.arc_imbalance() <= 4 * math.log(n)

    def test_virtual_nodes_reduce_imbalance(self):
        plain = ConsistentHashRing.random(100, virtual_nodes=1, seed=10)
        virt = ConsistentHashRing.random(100, virtual_nodes=32, seed=10)
        assert virt.arc_imbalance() < plain.arc_imbalance()

    def test_single_peer_owns_everything(self):
        ring = ConsistentHashRing(["only"])
        np.testing.assert_allclose(ring.arc_lengths(), [1.0])


class TestAsBinArray:
    def test_total_close_to_resolution(self):
        ring = ConsistentHashRing.random(20, seed=11)
        bins = ring.as_bin_array(resolution=1000)
        assert bins.n == 20
        assert abs(bins.total_capacity - 1000) <= 20  # rounding slack

    def test_min_capacity_one(self):
        ring = ConsistentHashRing.random(50, seed=12)
        bins = ring.as_bin_array(resolution=100)
        assert bins.capacities.min() >= 1

    def test_rejects_low_resolution(self):
        ring = ConsistentHashRing.random(50, seed=13)
        with pytest.raises(ValueError):
            ring.as_bin_array(resolution=10)

    def test_capacities_proportional_to_arcs(self):
        ring = ConsistentHashRing.random(10, seed=14)
        arcs = ring.arc_lengths()
        caps = ring.as_bin_array(resolution=10_000).capacities
        corr = np.corrcoef(arcs, caps)[0, 1]
        assert corr > 0.999


class TestLookupBatch:
    """The vectorised lookup is bit-identical to per-point lookup."""

    def test_randomized_identity_with_lookup(self):
        rng = np.random.default_rng(11)
        for seed, vnodes in [(0, 1), (1, 1), (2, 4)]:
            ring = ConsistentHashRing.random(37, virtual_nodes=vnodes, seed=seed)
            pts = rng.random(2000)
            batch = ring.lookup_batch(pts)
            serial = np.array([ring.lookup(float(p)) for p in pts])
            np.testing.assert_array_equal(batch, serial)

    def test_boundary_points_identity(self):
        ring = ConsistentHashRing.random(25, seed=5)
        pos = ring.positions
        pts = np.concatenate([
            pos,                                   # exactly at a position
            np.nextafter(pos, 1.0),                # just past a position
            [0.0, np.nextafter(1.0, 0.0)],         # interval ends
            [pos[-1] + (1.0 - pos[-1]) / 2],       # past the last position
        ])
        batch = ring.lookup_batch(pts)
        serial = np.array([ring.lookup(float(p)) for p in pts])
        np.testing.assert_array_equal(batch, serial)

    def test_out_of_range_points_wrap_like_lookup(self):
        # The pre-fix inline vectorisation in p2p.workload wrapped every
        # out-of-range point to the first virtual position instead of
        # reducing modulo 1 the way ring.lookup does.
        ring = ConsistentHashRing.random(25, seed=5)
        pts = np.array([1.0, 1.2, 2.7, -0.3, -1e-20, -2.0])
        batch = ring.lookup_batch(pts)
        serial = np.array([ring.lookup(float(p)) for p in pts])
        np.testing.assert_array_equal(batch, serial)

    def test_preserves_shape(self):
        ring = ConsistentHashRing.random(10, seed=1)
        out = ring.lookup_batch(np.zeros((3, 4)))
        assert out.shape == (3, 4)

    def test_single_peer_ring_always_peer_zero(self):
        ring = ConsistentHashRing(["solo"])
        pts = np.linspace(0.0, 0.999, 17)
        assert (ring.lookup_batch(pts) == 0).all()
