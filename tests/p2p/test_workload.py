"""Tests for ring request allocation (Byers et al. vs capacity-aware)."""

import numpy as np
import pytest

from repro.p2p import ConsistentHashRing, allocate_requests


@pytest.fixture(scope="module")
def ring():
    return ConsistentHashRing.random(100, seed=42)


class TestBasics:
    def test_conservation(self, ring):
        res = allocate_requests(ring, 2000, d=2, seed=0)
        assert res.counts.sum() == 2000

    def test_unit_capacities_by_default(self, ring):
        res = allocate_requests(ring, 100, seed=1)
        assert (res.capacities == 1).all()
        assert not res.capacity_aware

    def test_capacity_aware_capacities(self, ring):
        res = allocate_requests(ring, 100, capacity_aware=True, seed=2)
        assert res.capacity_aware
        assert res.capacities.sum() >= ring.n_peers

    def test_rejects_bad_m(self, ring):
        with pytest.raises(ValueError):
            allocate_requests(ring, -1)

    def test_rejects_bad_d(self, ring):
        with pytest.raises(ValueError):
            allocate_requests(ring, 10, d=0)

    def test_reproducible(self, ring):
        a = allocate_requests(ring, 500, seed=7)
        b = allocate_requests(ring, 500, seed=7)
        np.testing.assert_array_equal(a.counts, b.counts)

    def test_loads_and_max(self, ring):
        res = allocate_requests(ring, 500, seed=8)
        assert res.max_load == res.loads.max()
        assert res.max_requests == res.counts.max()


class TestPowerOfTwoChoices:
    def test_d2_beats_d1(self, ring):
        """Byers et al.'s observation: two probes flatten the arc skew."""
        m = 5000
        one = np.mean([allocate_requests(ring, m, d=1, seed=s).max_requests for s in range(5)])
        two = np.mean([allocate_requests(ring, m, d=2, seed=s).max_requests for s in range(5)])
        assert two < one

    def test_d1_skew_follows_arcs(self, ring):
        """Single-probe allocation is proportional to arc lengths."""
        m = 200_000
        res = allocate_requests(ring, m, d=1, seed=0)
        arcs = ring.arc_lengths()
        corr = np.corrcoef(arcs, res.counts)[0, 1]
        assert corr > 0.99

    def test_capacity_aware_load_near_one(self, ring):
        """Capacity-aware allocation with m = total capacity keeps max
        load within a small constant of the optimum 1."""
        caps_total = int(ring.as_bin_array(1000).total_capacity)
        res = allocate_requests(
            ring, caps_total, d=2, capacity_aware=True, resolution=1000, seed=3
        )
        assert res.max_load < 3.0


class TestEnsembleAllocation:
    """Lockstep counterpart of allocate_requests (allocate_requests_ensemble)."""

    def test_spawn_parity_with_scalar(self, ring):
        from repro.p2p import allocate_requests_ensemble
        from repro.sampling.rngutils import spawn_seed_sequences

        for aware in (False, True):
            ens = allocate_requests_ensemble(
                ring, 300, repetitions=3, d=2, capacity_aware=aware, seed=17
            )
            for r, child in enumerate(spawn_seed_sequences(17, 3)):
                sc = allocate_requests(ring, 300, d=2, capacity_aware=aware, seed=child)
                np.testing.assert_array_equal(
                    ens.counts[r], sc.counts, err_msg=f"aware={aware} rep={r}"
                )

    def test_blocked_mode_deterministic_and_conserving(self, ring):
        from repro.p2p import allocate_requests_ensemble

        a = allocate_requests_ensemble(
            ring, 200, repetitions=4, d=2, seed=23, seed_mode="blocked"
        )
        b = allocate_requests_ensemble(
            ring, 200, repetitions=4, d=2, seed=23, seed_mode="blocked"
        )
        np.testing.assert_array_equal(a.counts, b.counts)
        assert (a.counts.sum(axis=1) == 200).all()
        assert a.max_requests.shape == (4,)
        assert a.max_loads.shape == (4,)

    def test_validation(self, ring):
        from repro.p2p import allocate_requests_ensemble

        with pytest.raises(ValueError, match="repetitions"):
            allocate_requests_ensemble(ring, 10)
        with pytest.raises(ValueError, match="m must"):
            allocate_requests_ensemble(ring, -1, repetitions=2)
        with pytest.raises(ValueError, match="seed_mode"):
            allocate_requests_ensemble(ring, 10, repetitions=2, seed_mode="x")
        with pytest.raises(ValueError, match="contradicts"):
            allocate_requests_ensemble(ring, 10, repetitions=3, seeds=[1, 2])


class TestVectorizedLookupIdentity:
    """allocate_requests' owner mapping goes through ring.lookup_batch,
    which is pinned bit-identical to per-point ring.lookup."""

    def test_allocation_matches_manual_per_point_lookup(self, ring):
        m, d, seed = 400, 2, 31
        res = allocate_requests(ring, m, d=d, seed=seed)
        # Reproduce the draw order: points first, then the tie stream.
        rng = np.random.default_rng(seed)
        points = rng.random((m, d))
        owners = np.array(
            [[ring.lookup(float(p)) for p in row] for row in points]
        )
        np.testing.assert_array_equal(owners, ring.lookup_batch(points))
        # And the counts produced from those owners conserve mass.
        assert res.counts.sum() == m


class TestWorkloadEdgeCases:
    def test_zero_requests(self, ring):
        res = allocate_requests(ring, 0, d=2, seed=0)
        assert res.counts.sum() == 0
        assert res.max_requests == 0
        assert res.max_load == 0.0

    def test_d1_single_probe(self, ring):
        res = allocate_requests(ring, 100, d=1, seed=1)
        assert res.counts.sum() == 100
        assert res.d == 1

    def test_single_peer_ring(self):
        solo = ConsistentHashRing(["only"])
        res = allocate_requests(solo, 57, d=2, seed=2)
        np.testing.assert_array_equal(res.counts, [57])
        aware = allocate_requests(solo, 57, d=2, capacity_aware=True, seed=3)
        np.testing.assert_array_equal(aware.counts, [57])

    def test_ensemble_zero_requests_and_single_peer(self):
        from repro.p2p import allocate_requests_ensemble

        solo = ConsistentHashRing(["only"])
        res = allocate_requests_ensemble(solo, 0, repetitions=3, d=1, seed=4)
        assert (res.counts == 0).all()
        res = allocate_requests_ensemble(solo, 9, repetitions=2, d=2, seed=5)
        np.testing.assert_array_equal(res.counts, [[9], [9]])
