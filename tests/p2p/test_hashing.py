"""Tests for deterministic hashing."""

import numpy as np
import pytest

from repro.p2p import hash_key, hash_to_unit, point_sequence, splitmix64


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_bijective_sample(self):
        outs = {splitmix64(i) for i in range(10_000)}
        assert len(outs) == 10_000

    def test_64_bit_range(self):
        assert 0 <= splitmix64(2**64 - 1) < 2**64


class TestHashKey:
    def test_types(self):
        for key in (42, "peer-1", b"raw"):
            v = hash_key(key)
            assert 0 <= v < 2**64

    def test_salt_changes_value(self):
        assert hash_key("k", salt=0) != hash_key("k", salt=1)

    def test_long_strings_mixed(self):
        a = hash_key("a" * 100)
        b = hash_key("a" * 99 + "b")
        assert a != b

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            hash_key(3.14)

    def test_stable_across_runs(self):
        """Values must not depend on PYTHONHASHSEED — pin one output."""
        assert hash_key("chord") == hash_key("chord")
        assert isinstance(hash_key("chord"), int)


class TestHashToUnit:
    def test_range(self):
        vals = [hash_to_unit(i) for i in range(1000)]
        assert all(0.0 <= v < 1.0 for v in vals)

    def test_approximately_uniform(self):
        vals = np.array([hash_to_unit(i) for i in range(20_000)])
        hist, _ = np.histogram(vals, bins=10, range=(0, 1))
        assert hist.min() > 1500


class TestPointSequence:
    def test_count(self):
        assert len(point_sequence("req", 4)) == 4

    def test_points_distinct(self):
        pts = point_sequence("req", 8)
        assert len(set(pts)) == 8

    def test_deterministic(self):
        assert point_sequence("req", 3) == point_sequence("req", 3)

    def test_prefix_property(self):
        assert point_sequence("req", 5)[:3] == point_sequence("req", 3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            point_sequence("req", -1)
