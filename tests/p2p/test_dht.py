"""Tests for the DHT with churn."""

import pytest

from repro.p2p import DHT


@pytest.fixture
def dht():
    d = DHT([f"peer-{i}" for i in range(20)], replication=2)
    for k in range(200):
        d.store(f"key-{k}")
    return d


class TestConstruction:
    def test_rejects_bad_replication(self):
        with pytest.raises(ValueError):
            DHT(["a", "b"], replication=0)

    def test_rejects_too_few_peers(self):
        with pytest.raises(ValueError):
            DHT(["a"], replication=2)

    def test_rejects_bad_virtual_nodes(self):
        with pytest.raises(ValueError):
            DHT(["a"], virtual_nodes=0)


class TestStorage:
    def test_store_and_lookup(self, dht):
        owners = dht.store("fresh-key")
        assert dht.lookup("fresh-key") == owners
        assert "fresh-key" in dht

    def test_replication_distinct_peers(self, dht):
        for k in range(30):
            owners = dht.lookup(f"key-{k}")
            assert len(owners) == 2
            assert len(set(owners)) == 2

    def test_owners_are_current_peers(self, dht):
        peers = set(dht.peer_ids)
        for k in range(30):
            assert set(dht.lookup(f"key-{k}")) <= peers

    def test_len(self, dht):
        assert len(dht) == 200

    def test_key_counts_total(self, dht):
        assert sum(dht.key_counts().values()) == 200

    def test_replica_counts_total(self, dht):
        assert sum(dht.replica_counts().values()) == 400

    def test_skew_at_least_one(self, dht):
        assert dht.skew() >= 1.0

    def test_lookup_missing_raises(self, dht):
        with pytest.raises(KeyError):
            dht.lookup("nope")


class TestDChoice:
    def test_d_choice_reduces_skew(self):
        plain = DHT([f"p{i}" for i in range(30)])
        balanced = DHT([f"p{i}" for i in range(30)])
        for k in range(600):
            plain.store(f"key-{k}")
            balanced.store_d_choice(f"key-{k}", d=2)
        assert balanced.skew() <= plain.skew()

    def test_d_choice_rejects_bad_d(self, dht):
        with pytest.raises(ValueError):
            dht.store_d_choice("k", d=0)

    def test_d1_is_plain_store(self):
        a = DHT([f"p{i}" for i in range(10)])
        a.store_d_choice("some-key", d=1)
        # with d=1 the single candidate point is point_sequence[0], not the
        # canonical hash, so only membership is guaranteed
        assert "some-key" in a


class TestChurn:
    def test_join_moves_bounded_fraction(self, dht):
        moved = dht.join("newcomer")
        # consistent hashing: expected movement ~ r * stored / n ~ 20 copies;
        # allow generous slack for arc-size variance
        assert moved <= 200
        assert sum(dht.key_counts().values()) == 200

    def test_join_duplicate_rejected(self, dht):
        with pytest.raises(ValueError):
            dht.join("peer-0")

    def test_leave_remaps_only_its_keys(self, dht):
        victim = "peer-3"
        held = [k for k, owners in dht._keys.items() if victim in owners]
        moved = dht.leave(victim)
        assert moved >= 0
        for k in held:
            assert victim not in dht.lookup(k)

    def test_leave_unknown_raises(self, dht):
        with pytest.raises(KeyError):
            dht.leave("ghost")

    def test_leave_respects_replication_floor(self):
        d = DHT(["a", "b"], replication=2)
        with pytest.raises(ValueError):
            d.leave("a")

    def test_join_then_leave_round_trip(self, dht):
        before = dict(dht._keys)
        dht.join("temp")
        dht.leave("temp")
        assert dht._keys == before

    def test_churn_cheaper_than_full_remap(self):
        """The movement on one join is far below total copies — the
        consistent-hashing guarantee vs mod-N hashing."""
        d = DHT([f"p{i}" for i in range(50)])
        for k in range(1000):
            d.store(f"key-{k}")
        moved = d.join("newcomer")
        assert moved < 0.2 * 1000  # mod-N would remap ~98%
