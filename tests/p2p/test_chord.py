"""Tests for the Chord overlay."""

import math

import numpy as np
import pytest

from repro.p2p import ChordNetwork


@pytest.fixture(scope="module")
def net():
    return ChordNetwork([f"node-{i}" for i in range(64)], bits=32)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ChordNetwork([])

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            ChordNetwork(["a"], bits=0)
        with pytest.raises(ValueError):
            ChordNetwork(["a"], bits=65)

    def test_finger_table_length(self, net):
        node = next(iter(net.nodes.values()))
        assert len(node.fingers) == 32

    def test_successor_is_first_finger(self, net):
        for node in net.nodes.values():
            assert node.successor == node.fingers[0]

    def test_n_nodes(self, net):
        assert net.n_nodes == 64


class TestLookup:
    def test_owner_consistent_with_lookup(self, net):
        for i in range(50):
            key = f"key-{i}"
            assert net.lookup(key).owner == net.owner_of(key)

    def test_lookup_from_any_start(self, net):
        key = "shared-key"
        owners = {net.lookup(key, start=s).owner for s in list(net.nodes)[:10]}
        assert len(owners) == 1

    def test_rejects_unknown_start(self, net):
        with pytest.raises(KeyError):
            net.lookup("k", start=123456789)

    def test_logarithmic_hops(self, net):
        """Mean hop count is O(log n): comfortably under 2*log2(n)."""
        hops = [net.lookup(f"key-{i}").hops for i in range(300)]
        assert np.mean(hops) <= 2 * math.log2(net.n_nodes)

    def test_path_starts_at_origin(self, net):
        start = int(net.node_ids[0])
        res = net.lookup("k", start=start)
        assert res.path[0] == start
        assert res.path[-1] == res.owner

    def test_single_node_owns_all(self):
        net1 = ChordNetwork(["solo"], bits=16)
        assert net1.lookup("anything").owner == int(net1.node_ids[0])


class TestArcSizes:
    def test_sum_is_modulus(self, net):
        assert sum(net.arc_sizes().values()) == net.modulus

    def test_single_node(self):
        net1 = ChordNetwork(["solo"], bits=8)
        assert list(net1.arc_sizes().values()) == [256]

    def test_skew_exists(self, net):
        """Random placement gives non-uniform arcs — the paper's premise."""
        sizes = np.array(list(net.arc_sizes().values()), dtype=float)
        assert sizes.max() / sizes.mean() > 1.5
