"""Tests for the churn driver."""

import pytest

from repro.p2p import DHT
from repro.p2p.churn import run_churn


def make_dht(peers=20, keys=300, replication=1):
    d = DHT([f"p{i}" for i in range(peers)], replication=replication)
    for k in range(keys):
        d.store(f"key-{k}")
    return d


class TestValidation:
    def test_rejects_negative_events(self):
        with pytest.raises(ValueError):
            run_churn(make_dht(), -1)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            run_churn(make_dht(), 5, join_probability=2.0)


class TestTrace:
    def test_event_count(self):
        trace = run_churn(make_dht(), 10, seed=0)
        assert len(trace.events) == 10

    def test_event_kinds(self):
        trace = run_churn(make_dht(), 20, join_probability=0.5, seed=1)
        kinds = {e.kind for e in trace.events}
        assert kinds <= {"join", "leave"}
        assert len(kinds) == 2  # both occur at p=0.5 over 20 events

    def test_all_joins(self):
        dht = make_dht()
        trace = run_churn(dht, 5, join_probability=1.0, seed=2)
        assert all(e.kind == "join" for e in trace.events)
        assert dht.n_peers == 25

    def test_keys_preserved(self):
        dht = make_dht(keys=200)
        run_churn(dht, 30, seed=3)
        assert len(dht) == 200
        assert sum(dht.key_counts().values()) == 200

    def test_replication_floor_respected(self):
        dht = make_dht(peers=3, keys=50, replication=2)
        trace = run_churn(dht, 15, join_probability=0.0, seed=4)
        # leaves drawn at the floor are skipped, so peers never drop
        # below replication
        assert all(e.n_peers_after >= 2 for e in trace.events)


class TestReplicationFloor:
    """A leave drawn at the floor is an explicit no-op skip, never a join."""

    def test_floor_leave_is_skip_not_forced_join(self):
        # Start exactly at the floor with join_probability=0: the pre-fix
        # code silently converted every drawn leave into a join here, so
        # the network grew despite p_join = 0.
        dht = make_dht(peers=2, keys=30, replication=2)
        trace = run_churn(dht, 10, join_probability=0.0, seed=7)
        assert [e.kind for e in trace.events] == ["skip"] * 10
        assert dht.n_peers == 2
        assert dht.peer_ids == ("p0", "p1")

    def test_skip_event_shape(self):
        dht = make_dht(peers=2, keys=30, replication=2)
        trace = run_churn(dht, 5, join_probability=0.0, seed=8)
        for event in trace.events:
            assert event.copies_moved == 0
            assert event.n_peers_after == 2
            assert event.peer_id in ("p0", "p1")  # the would-be leaver
            assert event.skew_after >= 1.0
        assert trace.total_moved == 0

    def test_mixed_run_can_skip_then_recover(self):
        # At the floor, joins still happen with their own probability and
        # lift the network off the floor; subsequent leaves are real again.
        dht = make_dht(peers=2, keys=30, replication=2)
        trace = run_churn(dht, 60, join_probability=0.5, seed=9)
        kinds = {e.kind for e in trace.events}
        assert kinds == {"join", "leave", "skip"}
        assert all(e.n_peers_after >= 2 for e in trace.events)

    def test_statistics(self):
        trace = run_churn(make_dht(), 12, seed=5)
        assert trace.total_moved == trace.moved_series().sum()
        assert trace.mean_moved_per_event == pytest.approx(trace.total_moved / 12)
        assert trace.max_skew >= 1.0

    def test_movement_is_incremental(self):
        """Per-event movement stays far below the full key population —
        the consistent-hashing minimal-disruption property under churn."""
        dht = make_dht(peers=40, keys=1000)
        trace = run_churn(dht, 20, seed=6)
        assert trace.mean_moved_per_event < 0.25 * 1000
