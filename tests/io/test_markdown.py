"""Tests for markdown report rendering."""

import numpy as np
import pytest

from repro.experiments import ExperimentResult
from repro.io import result_to_markdown, results_to_report


@pytest.fixture
def result():
    return ExperimentResult(
        experiment_id="figXX",
        title="Demo experiment",
        x_name="x",
        x_values=np.arange(4, dtype=float),
        series={"load": np.array([3.0, 2.0, 1.5, np.nan])},
        parameters={"n": 100, "d": 2},
        extra={"note": "shape ok", "wall_seconds": 1.0},
    )


class TestResultToMarkdown:
    def test_contains_heading_and_params(self, result):
        md = result_to_markdown(result)
        assert "### figXX — Demo experiment" in md
        assert "n=100" in md

    def test_table_structure(self, result):
        md = result_to_markdown(result)
        assert "| x | load |" in md
        assert "| 0 | 3 |" in md

    def test_nan_rendered_as_dash(self, result):
        assert "| 3 | — |" in result_to_markdown(result)

    def test_extra_notes_without_wall_seconds(self, result):
        md = result_to_markdown(result)
        assert "`note`: shape ok" in md
        assert "wall_seconds" not in md

    def test_row_truncation(self):
        res = ExperimentResult(
            experiment_id="big",
            title="",
            x_name="x",
            x_values=np.arange(50, dtype=float),
            series={"s": np.arange(50, dtype=float)},
        )
        md = result_to_markdown(res, max_rows=6)
        assert "…" in md


class TestResultsToReport:
    def test_summary_and_sections(self, result):
        report = results_to_report({"figXX": result}, title="Run 1")
        assert report.startswith("# Run 1")
        assert "| figXX | load |" in report
        assert "### figXX" in report

    def test_sorted_by_id(self, result):
        other = ExperimentResult(
            experiment_id="figAA",
            title="",
            x_name="x",
            x_values=np.array([1.0]),
            series={"s": np.array([1.0])},
        )
        report = results_to_report({"figXX": result, "figAA": other})
        assert report.index("### figAA") < report.index("### figXX")
