"""Tests for CSV series persistence."""

import numpy as np
import pytest

from repro.io import read_series_csv, write_series_csv


class TestRoundTrip:
    def test_lossless(self, tmp_path):
        x = np.array([1.0, 2.5, 3.125])
        series = {"a": np.array([0.1, 0.2, 0.3]), "b": np.array([9.0, 8.0, 7.0])}
        path = write_series_csv(tmp_path / "out.csv", "x", x, series)
        name, x2, series2 = read_series_csv(path)
        assert name == "x"
        np.testing.assert_array_equal(x, x2)
        for key in series:
            np.testing.assert_array_equal(series[key], series2[key])

    def test_nan_round_trip(self, tmp_path):
        x = np.array([1.0, 2.0])
        series = {"a": np.array([np.nan, 1.0])}
        path = write_series_csv(tmp_path / "nan.csv", "x", x, series)
        _, _, series2 = read_series_csv(path)
        assert np.isnan(series2["a"][0])
        assert series2["a"][1] == 1.0

    def test_integer_x(self, tmp_path):
        path = write_series_csv(tmp_path / "int.csv", "rank", np.arange(3), {"v": [1, 2, 3]})
        _, x, _ = read_series_csv(path)
        np.testing.assert_array_equal(x, [0, 1, 2])

    def test_creates_parent_dirs(self, tmp_path):
        path = write_series_csv(tmp_path / "a" / "b" / "c.csv", "x", [1], {"y": [2]})
        assert path.exists()

    def test_empty_series_rows(self, tmp_path):
        path = write_series_csv(tmp_path / "empty.csv", "x", np.empty(0), {"y": np.empty(0)})
        name, x, series = read_series_csv(path)
        assert name == "x"
        assert x.size == 0
        assert series["y"].size == 0


class TestValidation:
    def test_rejects_length_mismatch(self, tmp_path):
        with pytest.raises(ValueError, match="shape"):
            write_series_csv(tmp_path / "bad.csv", "x", [1, 2], {"y": [1]})

    def test_rejects_2d_x(self, tmp_path):
        with pytest.raises(ValueError, match="1-D"):
            write_series_csv(tmp_path / "bad.csv", "x", np.ones((2, 2)), {})

    def test_read_empty_file_raises(self, tmp_path):
        p = tmp_path / "zero.csv"
        p.write_text("")
        with pytest.raises((ValueError, StopIteration)):
            read_series_csv(p)
