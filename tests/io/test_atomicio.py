"""Atomic-write contract: whole files only, under overlap and crashes.

Regression suite for two historical bugs: the temp name was unique per
*process* only (two overlapping writers of one path shared the sibling —
one truncated the other, and the loser's ``os.replace`` raised
``FileNotFoundError``), and nothing was fsynced before the rename (a crash
straddling the replace could publish an empty file on journalled
filesystems).
"""

import json
import os
import threading
from unittest import mock

import pytest

from repro.io.atomicio import atomic_write


class TestBasics:
    def test_roundtrip(self, tmp_path):
        target = tmp_path / "out.json"
        with atomic_write(target) as fh:
            json.dump({"x": 1}, fh)
        assert json.loads(target.read_text()) == {"x": 1}

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.txt"
        with atomic_write(target) as fh:
            fh.write("hi")
        assert target.read_text() == "hi"

    def test_exception_leaves_previous_content(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        with pytest.raises(RuntimeError):
            with atomic_write(target) as fh:
                fh.write("partial")
                raise RuntimeError("boom")
        assert target.read_text() == "old"
        assert list(tmp_path.iterdir()) == [target]

    def test_no_temp_residue(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_write(target) as fh:
            fh.write("payload")
        assert list(tmp_path.iterdir()) == [target]


class TestOverlappingWriters:
    def test_nested_writers_same_path(self, tmp_path):
        """Two overlapping writers of one path must not share a temp file.

        Pre-fix, the inner writer truncated the outer's half-written temp,
        published it, and left the outer's ``os.replace`` raising
        ``FileNotFoundError``.  Post-fix both complete; the outer (last
        replace) wins, and both observable states are whole files.
        """
        target = tmp_path / "out.txt"
        with atomic_write(target) as outer:
            outer.write("outer")
            with atomic_write(target) as inner:
                inner.write("inner")
            assert target.read_text() == "inner"
        assert target.read_text() == "outer"
        assert list(tmp_path.iterdir()) == [target]

    def test_concurrent_threads_same_path(self, tmp_path):
        """Many threads hammering one path: every published state is a
        whole payload, no writer errors, no temp residue."""
        target = tmp_path / "out.txt"
        payloads = [f"payload-{i:02d}" * 50 for i in range(8)]
        start = threading.Barrier(len(payloads))
        errors = []

        def writer(payload):
            try:
                start.wait()
                for _ in range(25):
                    with atomic_write(target) as fh:
                        fh.write(payload)
            except Exception as exc:  # pragma: no cover - only pre-fix
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(p,)) for p in payloads]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert target.read_text() in payloads
        assert list(tmp_path.iterdir()) == [target]


class TestDurability:
    def test_fsync_before_replace(self, tmp_path):
        """The payload is fsynced before the rename — the ordering that
        makes the replace crash-safe."""
        target = tmp_path / "out.txt"
        events = []
        real_fsync, real_replace = os.fsync, os.replace
        with mock.patch(
            "os.fsync", side_effect=lambda fd: (events.append("fsync"), real_fsync(fd))
        ), mock.patch(
            "os.replace",
            side_effect=lambda a, b: (events.append("replace"), real_replace(a, b)),
        ):
            with atomic_write(target) as fh:
                fh.write("data")
        assert events == ["fsync", "replace"]
        assert target.read_text() == "data"


class TestVanishingParent:
    """The final rename vs. a concurrently rmtree'd parent directory
    (``Checkpointer.clear`` racing a late ``slot.save`` from another
    process).  Pre-fix the ``FileNotFoundError`` escaped as a crash; now
    the writer re-creates the parent and retries, and concedes silently
    only when the sweep also took its temp file (the clear won the race,
    and the state being saved was just declared obsolete anyway)."""

    def test_retries_after_parent_swept_but_tmp_survives(self, tmp_path):
        target = tmp_path / "ns" / "out.txt"
        real_replace = os.replace
        calls = []

        def flaky_replace(src, dst):
            calls.append((src, dst))
            if len(calls) == 1:
                raise FileNotFoundError(dst)  # parent vanished under us
            return real_replace(src, dst)

        with mock.patch("os.replace", side_effect=flaky_replace):
            with atomic_write(target) as fh:
                fh.write("survived")
        assert len(calls) == 2
        assert target.read_text() == "survived"

    def test_swept_tmp_means_the_clear_won_silently(self, tmp_path):
        target = tmp_path / "ns" / "out.txt"

        def sweeping_replace(src, dst):
            os.unlink(src)  # the rmtree took the temp file too
            raise FileNotFoundError(dst)

        with mock.patch("os.replace", side_effect=sweeping_replace):
            with atomic_write(target) as fh:  # no crash: the write is dropped
                fh.write("doomed")
        assert not target.exists()
        assert list((tmp_path / "ns").iterdir()) == []

    def test_pathological_delete_loop_fails_loudly(self, tmp_path):
        from repro.io.atomicio import _REPLACE_ATTEMPTS

        target = tmp_path / "ns" / "out.txt"
        calls = []

        def always_missing(src, dst):
            calls.append(dst)
            raise FileNotFoundError(dst)

        with mock.patch("os.replace", side_effect=always_missing):
            with pytest.raises(FileNotFoundError):
                with atomic_write(target) as fh:
                    fh.write("never lands")
        assert len(calls) == _REPLACE_ATTEMPTS  # bounded, not a spin
        assert not target.exists()
