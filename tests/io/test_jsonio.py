"""Tests for JSON persistence and conversion."""

import numpy as np
import pytest

from repro.io import dump_json, load_json, to_jsonable


class TestToJsonable:
    def test_scalars_passthrough(self):
        assert to_jsonable(5) == 5
        assert to_jsonable("x") == "x"
        assert to_jsonable(None) is None
        assert to_jsonable(True) is True

    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(7)) == 7
        assert isinstance(to_jsonable(np.float64(1.5)), float)

    def test_numpy_array(self):
        assert to_jsonable(np.array([1, 2])) == [1, 2]

    def test_nested_dict(self):
        out = to_jsonable({"a": np.array([1.0]), 5: "v"})
        assert out == {"a": [1.0], "5": "v"}

    def test_tuple_and_set(self):
        assert to_jsonable((1, 2)) == [1, 2]
        assert sorted(to_jsonable({3, 1})) == [1, 3]

    def test_object_with_dict(self):
        class Obj:
            def __init__(self):
                self.x = np.int64(3)
                self._private = "hidden"

        assert to_jsonable(Obj()) == {"x": 3}

    def test_rejects_unconvertible(self):
        with pytest.raises(TypeError):
            to_jsonable(object())


class TestDumpLoad:
    def test_round_trip(self, tmp_path):
        payload = {"series": np.array([1.0, 2.0]), "meta": {"n": np.int64(10)}}
        path = dump_json(tmp_path / "r.json", payload)
        loaded = load_json(path)
        assert loaded == {"series": [1.0, 2.0], "meta": {"n": 10}}

    def test_creates_parents(self, tmp_path):
        path = dump_json(tmp_path / "x" / "y.json", {"a": 1})
        assert path.exists()

    def test_sorted_keys_stable_output(self, tmp_path):
        p1 = dump_json(tmp_path / "a.json", {"b": 1, "a": 2})
        p2 = dump_json(tmp_path / "b.json", {"a": 2, "b": 1})
        assert p1.read_text() == p2.read_text()
