"""Schema tests for the machine-readable benchmark records."""

import json
from pathlib import Path

import pytest

from repro.io.benchjson import (
    BENCH_SCHEMA,
    LEGACY_BENCH_SCHEMAS,
    load_bench_json,
    validate_bench_payload,
    write_bench_json,
)

ROW = {"config": "fig01_large", "R": 64, "engine": "ensemble",
       "wavefront": "on", "seconds": 0.0123, "threads": 1, "cpu_count": 4}
LEGACY_ROW = {"config": "fig01_large", "R": 64, "engine": "ensemble",
              "wavefront": "on", "seconds": 0.0123}
SPEEDUP = {"config": "fig01_large", "R": 64, "kind": "wavefront_over_per_ball",
           "ratio": 1.9, "floor": 1.4}


class TestRoundTrip:
    def test_write_and_load(self, tmp_path):
        path = tmp_path / "BENCH_ensemble.json"
        payload = write_bench_json(path, quick=True, rows=[ROW], speedups=[SPEEDUP])
        assert payload["schema"] == BENCH_SCHEMA
        loaded = load_bench_json(path)
        assert loaded == payload
        # the document is plain JSON, newline-terminated
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text)["rows"] == [ROW]

    def test_empty_lists_are_valid(self, tmp_path):
        path = tmp_path / "b.json"
        write_bench_json(path, quick=False, rows=[], speedups=[])
        assert load_bench_json(path)["rows"] == []


class TestValidation:
    def test_schema_mismatch(self):
        with pytest.raises(ValueError, match="schema mismatch"):
            validate_bench_payload({"schema": "nope", "quick": True,
                                    "rows": [], "speedups": []})

    def test_missing_row_field(self):
        bad = dict(ROW)
        del bad["seconds"]
        with pytest.raises(ValueError, match=r"rows\[0\]: missing"):
            validate_bench_payload({"schema": BENCH_SCHEMA, "quick": True,
                                    "rows": [bad], "speedups": []})

    def test_unknown_row_field(self):
        bad = dict(ROW, extra=1)
        with pytest.raises(ValueError, match=r"rows\[0\]: unknown"):
            validate_bench_payload({"schema": BENCH_SCHEMA, "quick": True,
                                    "rows": [bad], "speedups": []})

    def test_bad_types_and_values(self):
        for mutation, pattern in [
            (dict(ROW, R="64"), r"rows\[0\]\.R"),
            (dict(ROW, seconds=-1.0), r"rows\[0\]\.seconds"),
            (dict(ROW, wavefront="sometimes"), r"rows\[0\]\.wavefront"),
            (dict(ROW, threads=0), r"rows\[0\]\.threads"),
            (dict(ROW, threads="2"), r"rows\[0\]\.threads"),
            (dict(ROW, cpu_count=0), r"rows\[0\]\.cpu_count"),
        ]:
            with pytest.raises(ValueError, match=pattern):
                validate_bench_payload({"schema": BENCH_SCHEMA, "quick": True,
                                        "rows": [mutation], "speedups": []})
        with pytest.raises(ValueError, match=r"speedups\[0\]"):
            validate_bench_payload({"schema": BENCH_SCHEMA, "quick": True,
                                    "rows": [], "speedups": [dict(SPEEDUP, floor=0)]})

    def test_quick_must_be_bool(self):
        with pytest.raises(ValueError, match="quick"):
            validate_bench_payload({"schema": BENCH_SCHEMA, "quick": "yes",
                                    "rows": [], "speedups": []})


class TestLegacySchema:
    """The /1 read path: PR-over-PR diffing must still open the previous
    PR's committed document after the /2 bump."""

    def _write_legacy(self, path):
        payload = {"schema": LEGACY_BENCH_SCHEMAS[0], "quick": True,
                   "rows": [dict(LEGACY_ROW)], "speedups": [SPEEDUP]}
        path.write_text(json.dumps(payload) + "\n")
        return payload

    def test_legacy_document_loads_and_normalises(self, tmp_path):
        path = tmp_path / "old.json"
        self._write_legacy(path)
        loaded = load_bench_json(path)
        assert loaded["schema"] == LEGACY_BENCH_SCHEMAS[0]  # preserved
        row = loaded["rows"][0]
        assert row["threads"] == 1  # pre-/2 timings were all serial
        assert row["cpu_count"] is None  # unrecorded, not guessed
        assert row["seconds"] == LEGACY_ROW["seconds"]

    def test_legacy_rows_must_not_carry_new_fields(self):
        """A /1 document with /2 fields is malformed, not 'early'."""
        with pytest.raises(ValueError, match=r"rows\[0\]: unknown"):
            validate_bench_payload({"schema": LEGACY_BENCH_SCHEMAS[0],
                                    "quick": True, "rows": [dict(ROW)],
                                    "speedups": []})

    def test_current_rows_must_carry_new_fields(self):
        """A /2 document without threads/cpu_count is malformed."""
        with pytest.raises(ValueError, match=r"rows\[0\]: missing"):
            validate_bench_payload({"schema": BENCH_SCHEMA, "quick": True,
                                    "rows": [dict(LEGACY_ROW)],
                                    "speedups": []})

    def test_writes_are_always_current_schema(self, tmp_path):
        path = tmp_path / "new.json"
        payload = write_bench_json(path, quick=True, rows=[ROW],
                                   speedups=[SPEEDUP])
        assert payload["schema"] == BENCH_SCHEMA
        assert json.loads(path.read_text())["schema"] == BENCH_SCHEMA


class TestRepoArtifact:
    """Validate the committed ``BENCH_ensemble.json`` when present.

    ``make check`` regenerates the file via the quick-mode benchmark run;
    this test keeps whatever is checked in (or left by a previous bench
    run) structurally honest."""

    def test_repo_root_file_is_valid(self):
        path = Path(__file__).resolve().parents[2] / "BENCH_ensemble.json"
        if not path.exists():
            pytest.skip("no BENCH_ensemble.json at the repo root (run make check)")
        payload = load_bench_json(path)
        kinds = {s["kind"] for s in payload["speedups"]}
        assert {"wavefront_over_per_ball", "wavefront_over_fast"} <= kinds


SERVICE_TRACE = {"requests": 4000, "objects": 10000, "users": 100000,
                 "rate": 2000.0, "seed": 1, "digest": "ab" * 32}
SERVICE_ROW = {"d": 2, "refresh_every": 64, "peers": 16, "max_load": 700,
               "mean_load": 250.0, "max_over_mean": 2.8, "p50_ms": 0.01,
               "p99_ms": 0.04, "seconds": 0.05, "placement_digest": "cd" * 32}
SERVICE_COMPARISON = {"d": 2, "max_load_ratio_vs_d1": 0.51}


class TestServiceBenchSchema:
    def _write(self, tmp_path, **overrides):
        from repro.io.benchjson import write_service_bench_json

        kw = dict(quick=True, trace=SERVICE_TRACE, rows=[SERVICE_ROW],
                  comparisons=[SERVICE_COMPARISON])
        kw.update(overrides)
        return write_service_bench_json(tmp_path / "BENCH_service.json", **kw)

    def test_round_trip(self, tmp_path):
        from repro.io.benchjson import (
            SERVICE_BENCH_SCHEMA,
            load_service_bench_json,
        )

        payload = self._write(tmp_path)
        assert payload["schema"] == SERVICE_BENCH_SCHEMA
        loaded = load_service_bench_json(tmp_path / "BENCH_service.json")
        assert loaded == payload
        assert (tmp_path / "BENCH_service.json").read_text().endswith("\n")

    def test_rejects_empty_rows(self, tmp_path):
        with pytest.raises(ValueError, match="rows: must not be empty"):
            self._write(tmp_path, rows=[])

    def test_rejects_missing_trace_field(self, tmp_path):
        trace = dict(SERVICE_TRACE)
        del trace["digest"]
        with pytest.raises(ValueError, match="trace: missing"):
            self._write(tmp_path, trace=trace)

    def test_rejects_unknown_row_field(self, tmp_path):
        row = dict(SERVICE_ROW, surprise=1)
        with pytest.raises(ValueError, match="unknown fields"):
            self._write(tmp_path, rows=[row])

    def test_rejects_inverted_percentiles(self, tmp_path):
        row = dict(SERVICE_ROW, p50_ms=1.0, p99_ms=0.5)
        with pytest.raises(ValueError, match="p50_ms <= p99_ms"):
            self._write(tmp_path, rows=[row])

    def test_rejects_sub_one_imbalance(self, tmp_path):
        row = dict(SERVICE_ROW, max_over_mean=0.5)
        with pytest.raises(ValueError, match="max_over_mean"):
            self._write(tmp_path, rows=[row])

    def test_rejects_nonpositive_ratio(self, tmp_path):
        cmp_ = dict(SERVICE_COMPARISON, max_load_ratio_vs_d1=0.0)
        with pytest.raises(ValueError, match="must be positive"):
            self._write(tmp_path, comparisons=[cmp_])

    def test_rejects_wrong_schema(self):
        from repro.io.benchjson import validate_service_bench_payload

        with pytest.raises(ValueError, match="schema mismatch"):
            validate_service_bench_payload({"schema": "repro.bench_ensemble/2"})

    def test_repo_root_service_file_is_valid(self):
        from repro.io.benchjson import load_service_bench_json

        path = Path(__file__).resolve().parents[2] / "BENCH_service.json"
        if not path.exists():
            pytest.skip("no BENCH_service.json at the repo root (run make check)")
        payload = load_service_bench_json(path)
        assert any(r["d"] == 1 for r in payload["rows"])
        assert all(c["max_load_ratio_vs_d1"] < 1.0
                   for c in payload["comparisons"])
