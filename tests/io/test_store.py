"""Tests for the content-addressed result store and its checkpoints."""

import pickle

import numpy as np
import pytest

from repro.analysis.aggregate import StreamingProfile, StreamingScalar
from repro.experiments import RunRequest
from repro.experiments.base import ExperimentResult
from repro.io.jsonio import to_jsonable
from repro.io.store import (
    STORE_ENV_VAR,
    ResultStore,
    default_store_root,
    resolve_store,
)


def make_result(experiment_id="figx", n=40, nan_tail=7):
    """A result shaped like the registry's: NaN-padded series, mixed extra."""
    rng = np.random.default_rng(99)
    padded = rng.random(n)
    padded[-nan_tail:] = np.nan
    return ExperimentResult(
        experiment_id=experiment_id,
        title="store test",
        x_name="bin_rank",
        x_values=np.arange(n),
        series={"full": rng.random(n), "padded": padded},
        parameters={"n": n, "seed": 1, "engine": "ensemble", "caps": [1, 2, 8]},
        extra={"wall_seconds": 0.5, "per_class": {"c=1": 2.25}},
    )


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


class TestResultStore:
    def test_get_miss_counts(self, store):
        assert store.get("0" * 64) is None
        assert store.stats().misses == 1
        assert store.stats().entries == 0

    def test_put_get_round_trip_bit_identical(self, store):
        result = make_result()
        request = RunRequest("figx", seed=1, engine="ensemble")
        key = request.cache_key(version=1)
        store.put(key, result, request=request)
        stored = store.get(key)
        assert stored is not None and store.stats().hits == 1
        back = stored.result
        assert back.x_values.tobytes() == result.x_values.tobytes()
        assert back.x_values.dtype == result.x_values.dtype
        assert list(back.series) == list(result.series)
        for name in result.series:
            # byte-for-byte, NaN padding included
            assert back.series[name].tobytes() == result.series[name].tobytes()
        assert to_jsonable(back.parameters) == to_jsonable(result.parameters)
        assert to_jsonable(back.extra) == to_jsonable(result.extra)
        assert back.experiment_id == "figx" and back.title == result.title

    def test_entry_records_request_and_provenance(self, store):
        request = RunRequest("figx", seed=1, overrides={"repetitions": 3})
        key = request.cache_key(version=1)
        store.put(key, make_result(), request=request)
        stored = store.get(key)
        assert RunRequest.from_payload(stored.request) == request
        assert stored.provenance["numpy"] == np.__version__
        assert "python" in stored.provenance

    def test_contains_and_evict(self, store):
        key = "a" * 64
        assert not store.contains(key)
        store.put(key, make_result())
        assert store.contains(key)
        assert store.evict(key)
        assert not store.contains(key)
        assert not store.evict(key)

    def test_keys_and_stats(self, store):
        assert store.keys() == []
        store.put("b" * 64, make_result())
        store.put("a" * 64, make_result())
        assert store.keys() == ["a" * 64, "b" * 64]
        stats = store.stats()
        assert stats.entries == 2 and stats.total_bytes > 0

    def test_stats_skips_entries_evicted_mid_iteration(self, store, tmp_path):
        """Regression: ``stats()`` called ``p.stat()`` on live glob results,
        so an entry evicted (or any unstatable path appearing) between the
        listing and the stat raised ``FileNotFoundError``.  A dangling
        symlink reproduces that window deterministically."""
        store.put("a" * 64, make_result())
        dangling = store.result_path("b" * 64)
        dangling.symlink_to(tmp_path / "vanished.npz")
        stats = store.stats()
        assert stats.entries == 1
        assert stats.total_bytes > 0

    def test_put_is_atomic_no_tmp_left_behind(self, store):
        key = "c" * 64
        store.put(key, make_result())
        leftovers = [p for p in store.root.rglob("*") if ".tmp-" in p.name]
        assert leftovers == []

    def test_put_overwrites(self, store):
        key = "d" * 64
        store.put(key, make_result(n=10, nan_tail=2))
        store.put(key, make_result(n=20, nan_tail=2))
        assert store.get(key).result.x_values.size == 20
        assert store.stats().entries == 1

    def test_corrupt_entry_is_a_miss_not_an_error(self, store):
        """A torn entry (crashed pre-fsync writer, partial copy) must not
        poison every sweep over the store: ``get`` treats it as a miss and
        quarantines the bytes for post-mortem (see ``TestQuarantine``)."""
        key = "e" * 64
        path = store.result_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not an npz")
        assert store.get(key) is None
        assert store.stats().misses == 1
        assert path.with_name(path.name + ".corrupt").exists()


class TestCheckpoints:
    def test_slot_save_load_round_trip(self, store):
        ck = store.checkpointer("k" * 64)
        slot = ck.slot()
        reducer = StreamingScalar().update([1.0, 2.0, 3.0])
        slot.save(reducer, 2, "fp")
        loaded, blocks_done, monitor = slot.load("fp")
        assert blocks_done == 2
        assert loaded == reducer  # bit-exact reducer equality
        assert monitor is None  # fixed-budget runs carry no monitor state

    def test_slot_round_trips_monitor_state(self, store):
        slot = store.checkpointer("k" * 64).slot()
        state = {"series": {"mean": [3, 1.5, 0.75]}, "reps_done": 9}
        slot.save(StreamingScalar().update([1.0]), 3, "fp", monitor=state)
        _, _, monitor = slot.load("fp")
        assert monitor == state

    def test_fingerprint_mismatch_ignored(self, store):
        ck = store.checkpointer("k" * 64)
        slot = ck.slot()
        slot.save(StreamingScalar().update([1.0]), 1, "fp-old")
        assert slot.load("fp-new") is None

    def test_torn_checkpoint_ignored(self, store):
        ck = store.checkpointer("k" * 64)
        slot = ck.slot()
        slot.path.parent.mkdir(parents=True, exist_ok=True)
        slot.path.write_bytes(b"\x80garbage")
        assert slot.load("fp") is None

    def test_slots_autonumber_in_call_order(self, store):
        ck = store.checkpointer("k" * 64)
        assert ck.slot().path.name == "slot00000000.pkl"
        assert ck.slot().path.name == "slot00000001.pkl"
        again = store.checkpointer("k" * 64)
        assert again.slot().path.name == "slot00000000.pkl"

    def test_slot_names_order_past_ten_thousand(self, store):
        """Regression: 4-digit padding made ``slot10000`` sort *before*
        ``slot9999``, so anything leaning on name order (directory
        listings, lexicographic discovery) mis-ordered runs with >= 10,000
        checkpointed sub-runs.  New names stay lexicographically aligned
        with call order across the boundary, and discovery orders
        numerically regardless."""
        ck = store.checkpointer("k" * 64)
        names = [ck.slot().path.name for _ in range(10_002)]
        assert names == sorted(names)
        assert names[9_999] == "slot00009999.pkl"
        assert names[10_000] == "slot00010000.pkl"

    def test_legacy_slot_names_stay_resumable(self, store):
        """Checkpoints written with the old 4-digit padding must still be
        found: a fresh Checkpointer maps slot i to the legacy file, loads
        its state under the same fingerprint, and saves back in place."""
        key = "k" * 64
        ck = store.checkpointer(key)
        legacy = ck.directory / "slot0001.pkl"
        from repro.io.store import CheckpointSlot

        reducer = StreamingScalar().update([4.0, 5.0])
        CheckpointSlot(legacy).save(reducer, 7, "fp")

        again = store.checkpointer(key)
        assert again.slot_indices() == [1]
        assert again.slot().path.name == "slot00000000.pkl"  # slot 0: fresh
        slot1 = again.slot()
        assert slot1.path == legacy
        loaded, blocks_done, _ = slot1.load("fp")
        assert blocks_done == 7 and loaded == reducer

    def test_put_clears_checkpoints(self, store):
        key = "k" * 64
        ck = store.checkpointer(key)
        ck.slot().save(StreamingProfile(3).update(np.ones((2, 3))), 1, "fp")
        assert store.has_checkpoints(key)
        store.put(key, make_result())
        assert not store.has_checkpoints(key)

    def test_reducers_pickle_bit_exactly(self):
        profile = StreamingProfile(5).update(np.random.default_rng(1).random((4, 5)))
        assert pickle.loads(pickle.dumps(profile)) == profile
        scalar = StreamingScalar().update([1.5, 2.5])
        assert pickle.loads(pickle.dumps(scalar)) == scalar

    def test_nan_state_reducers_still_round_trip_equal(self):
        """Equality is byte-level, so NaN moments (NaN-padded series fed to
        a reducer) do not break the ``loads(dumps(r)) == r`` invariant."""
        scalar = StreamingScalar().update([1.0, np.nan])
        assert pickle.loads(pickle.dumps(scalar)) == scalar
        profile = StreamingProfile(2).update(np.array([[1.0, np.nan]]))
        assert pickle.loads(pickle.dumps(profile)) == profile


class TestStoreKnob:
    def test_default_root_uses_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "envstore"))
        assert default_store_root() == tmp_path / "envstore"

    def test_default_root_fallback(self, monkeypatch):
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        assert str(default_store_root()) == ".repro-store"

    def test_resolve_store_forms(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "envstore"))
        assert resolve_store(None) is None
        store = ResultStore(tmp_path)
        assert resolve_store(store) is store
        assert resolve_store(True).root == tmp_path / "envstore"
        assert resolve_store(tmp_path / "explicit").root == tmp_path / "explicit"


def _stress_writer(directory, rounds):
    """Subprocess body: keep saving resume state into a namespace that a
    sibling process is concurrently clearing.  Any exception escaping here
    (the pre-fix ``FileNotFoundError`` from ``os.replace``) turns into a
    nonzero exit code the parent asserts on."""
    from repro.io.store import Checkpointer

    reducer = StreamingScalar().update([1.0, 2.0, 3.0])
    for i in range(rounds):
        slot = Checkpointer(directory).slot()
        slot.save(reducer, i, "f" * 64)


def _stress_clearer(directory, rounds):
    from repro.io.store import Checkpointer

    for _ in range(rounds):
        Checkpointer(directory).clear()


class TestQuarantine:
    """Unreadable store entries are misses, not poison (regression: a torn
    ``.npz`` — crashed pre-fsync writer, partial copy — used to raise out
    of ``get`` on every subsequent sweep over the store)."""

    KEY = "c" * 64

    def put_one(self, store):
        store.put(self.KEY, make_result())
        return store.result_path(self.KEY)

    def assert_quarantined_miss(self, store, path):
        misses_before = store.misses
        assert store.get(self.KEY) is None
        assert store.misses == misses_before + 1
        assert not path.exists()
        corrupt = path.with_name(path.name + ".corrupt")
        assert corrupt.exists()
        # the bad entry no longer pollutes listings or stats
        assert store.keys() == []
        assert store.stats().entries == 0
        assert not store.contains(self.KEY)

    def test_truncated_entry_is_a_quarantined_miss(self, store):
        path = self.put_one(store)
        whole = path.read_bytes()
        path.write_bytes(whole[: len(whole) // 2])
        self.assert_quarantined_miss(store, path)

    def test_zero_byte_entry_is_a_quarantined_miss(self, store):
        path = self.put_one(store)
        path.write_bytes(b"")
        self.assert_quarantined_miss(store, path)

    def test_foreign_file_entry_is_a_quarantined_miss(self, store):
        path = self.put_one(store)
        path.write_bytes(b"this is not a zip archive at all")
        self.assert_quarantined_miss(store, path)

    def test_npz_without_store_members_is_a_quarantined_miss(self, store):
        path = self.put_one(store)
        np.savez(path, stray=np.arange(3))  # valid .npz, foreign layout
        self.assert_quarantined_miss(store, path)

    def test_recompute_after_quarantine_round_trips(self, store):
        path = self.put_one(store)
        path.write_bytes(b"")
        assert store.get(self.KEY) is None
        store.put(self.KEY, make_result())
        stored = store.get(self.KEY)
        assert stored is not None and stored.result.experiment_id == "figx"

    def test_readable_entries_are_never_quarantined(self, store):
        path = self.put_one(store)
        assert store.get(self.KEY) is not None
        assert path.exists()
        assert not path.with_name(path.name + ".corrupt").exists()


class TestCheckpointerConcurrency:
    def test_multiprocess_save_clear_stress(self, tmp_path):
        """Writers hammering ``slot.save`` while another process rmtrees the
        namespace (``Checkpointer.clear``) — the fabric's steady state.
        Pre-fix, a writer whose parent directory vanished between the mkdir
        and the ``os.replace`` crashed with ``FileNotFoundError``; post-fix
        every process exits clean and the namespace stays usable."""
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        directory = tmp_path / "ckpt"
        rounds = 60
        procs = [
            ctx.Process(target=_stress_writer, args=(directory, rounds))
            for _ in range(3)
        ] + [ctx.Process(target=_stress_clearer, args=(directory, rounds))]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
        exit_codes = [p.exitcode for p in procs]
        assert exit_codes == [0, 0, 0, 0]
        # the namespace survived the storm: a fresh save/load round-trips
        slot = ResultStore(tmp_path / "s2").checkpointer("d" * 64).slot()
        reducer = StreamingScalar().update([4.0])
        slot.save(reducer, 1, "g" * 64)
        loaded = slot.load("g" * 64)
        assert loaded is not None and loaded[0] == reducer
