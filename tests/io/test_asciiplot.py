"""Tests for terminal plotting."""

import numpy as np
import pytest

from repro.io import ascii_plot, ascii_table


class TestAsciiPlot:
    def test_contains_title_and_legend(self):
        out = ascii_plot([1, 2], {"load": [1.0, 2.0]}, title="demo")
        assert "demo" in out
        assert "*=load" in out

    def test_multiple_series_distinct_glyphs(self):
        out = ascii_plot([1, 2], {"a": [1, 2], "b": [2, 1]})
        assert "*=a" in out and "+=b" in out

    def test_canvas_dimensions(self):
        out = ascii_plot([0, 1], {"s": [0, 1]}, width=30, height=8, title="t")
        lines = out.split("\n")
        canvas_lines = [l for l in lines if "|" in l]
        assert len(canvas_lines) == 8

    def test_handles_nan(self):
        out = ascii_plot([1, 2, 3], {"s": [1.0, np.nan, 3.0]})
        assert "legend" in out

    def test_constant_series(self):
        out = ascii_plot([1, 2], {"flat": [5.0, 5.0]})
        assert "flat" in out

    def test_rejects_empty_series_dict(self):
        with pytest.raises(ValueError):
            ascii_plot([1], {})

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_plot([1, 2], {"s": [1]})

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValueError):
            ascii_plot([1, 2], {"s": [1, 2]}, width=5, height=2)

    def test_rejects_all_nan(self):
        with pytest.raises(ValueError):
            ascii_plot([1], {"s": [np.nan]})

    def test_axis_labels(self):
        out = ascii_plot([1, 2], {"s": [1, 2]}, x_label="bins", y_label="load")
        assert "x: bins" in out


class TestAsciiTable:
    def test_alignment_and_separator(self):
        out = ascii_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = out.split("\n")
        assert "-" in lines[1]
        assert len(lines) == 4  # header, separator, two data rows

    def test_float_format(self):
        out = ascii_table(["v"], [[1.23456]], float_format="{:.2f}")
        assert "1.23" in out

    def test_mixed_types(self):
        out = ascii_table(["name", "x"], [["row", 2.0]])
        assert "row" in out
