"""Tests for repetition aggregation."""

import numpy as np
import pytest

from repro.analysis import (
    aggregate_scalar,
    fraction_true,
    mean_profile_by_position,
    mean_sorted_profile,
)


class TestMeanSortedProfile:
    def test_sorts_each_row(self):
        m = [[1.0, 3.0], [2.0, 0.0]]
        prof = mean_sorted_profile(m)
        np.testing.assert_allclose(prof.mean, [2.5, 0.5])

    def test_repetitions_recorded(self):
        prof = mean_sorted_profile(np.ones((7, 3)))
        assert prof.repetitions == 7
        assert len(prof) == 3

    def test_std(self):
        m = [[0.0, 2.0], [2.0, 0.0]]
        prof = mean_sorted_profile(m)
        np.testing.assert_allclose(prof.std, [0.0, 0.0])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            mean_sorted_profile([1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mean_sorted_profile(np.empty((0, 4)))

    def test_profile_non_increasing(self):
        rng = np.random.default_rng(0)
        prof = mean_sorted_profile(rng.random((20, 15)))
        assert all(a >= b - 1e-12 for a, b in zip(prof.mean, prof.mean[1:]))


class TestMeanProfileByPosition:
    def test_no_sorting(self):
        m = [[1.0, 3.0], [3.0, 1.0]]
        prof = mean_profile_by_position(m)
        np.testing.assert_allclose(prof.mean, [2.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mean_profile_by_position(np.empty((0, 2)))


class TestAggregateScalar:
    def test_values(self):
        agg = aggregate_scalar([1.0, 2.0, 3.0])
        assert agg.mean == 2.0
        assert agg.minimum == 1.0
        assert agg.maximum == 3.0
        assert agg.repetitions == 3

    def test_single_sample(self):
        agg = aggregate_scalar([5.0])
        assert agg.std == 0.0
        assert agg.ci_halfwidth() == float("inf")

    def test_ci_shrinks_with_reps(self):
        rng = np.random.default_rng(1)
        small = aggregate_scalar(rng.normal(size=10))
        large = aggregate_scalar(rng.normal(size=1000))
        assert large.ci_halfwidth() < small.ci_halfwidth()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate_scalar([])


class TestFractionTrue:
    def test_half(self):
        assert fraction_true([True, False, True, False]) == 0.5

    def test_all_false(self):
        assert fraction_true([False, False]) == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fraction_true([])
