"""Tests for repetition aggregation."""

import numpy as np
import pytest

from repro.analysis import (
    StreamingProfile,
    StreamingScalar,
    aggregate_scalar,
    fraction_true,
    mean_profile_by_position,
    mean_sorted_profile,
)


class TestStreamingProfile:
    def test_matches_batch_sorted_profile(self):
        """Block-wise accumulation equals the all-at-once reduction."""
        rng = np.random.default_rng(3)
        matrix = rng.random((23, 6))
        sp = StreamingProfile(6)
        sp.update(matrix[:10]).update(matrix[10:15]).update(matrix[15:])
        batch = mean_sorted_profile(matrix)
        stream = sp.profile()
        np.testing.assert_allclose(stream.mean, batch.mean)
        np.testing.assert_allclose(stream.std, batch.std, atol=1e-12)
        assert stream.repetitions == batch.repetitions == 23

    def test_unsorted_matches_by_position(self):
        rng = np.random.default_rng(4)
        matrix = rng.random((11, 4))
        sp = StreamingProfile(4, sort=False)
        for row in matrix:
            sp.update(row)
        batch = mean_profile_by_position(matrix)
        stream = sp.profile()
        np.testing.assert_allclose(stream.mean, batch.mean)
        np.testing.assert_allclose(stream.std, batch.std, atol=1e-12)

    def test_merge_equals_single_reducer(self):
        rng = np.random.default_rng(5)
        matrix = rng.random((12, 5))
        whole = StreamingProfile(5).update(matrix)
        left = StreamingProfile(5).update(matrix[:7])
        right = StreamingProfile(5).update(matrix[7:])
        merged = left.merge(right).profile()
        np.testing.assert_allclose(merged.mean, whole.profile().mean)
        assert merged.repetitions == 12

    def test_merge_rejects_incompatible(self):
        with pytest.raises(ValueError):
            StreamingProfile(3).merge(StreamingProfile(4))
        with pytest.raises(ValueError):
            StreamingProfile(3).merge(StreamingProfile(3, sort=False))
        with pytest.raises(TypeError):
            StreamingProfile(3).merge(object())

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StreamingProfile(3).profile()
        with pytest.raises(ValueError):
            StreamingProfile(0)
        with pytest.raises(ValueError):
            StreamingProfile(3).update(np.ones((2, 4)))


class TestStreamingScalar:
    def test_matches_aggregate_scalar(self):
        rng = np.random.default_rng(6)
        values = rng.normal(size=37)
        ss = StreamingScalar()
        ss.update(values[:20]).update(values[20:])
        batch = aggregate_scalar(values)
        stream = ss.aggregate()
        assert stream.mean == pytest.approx(batch.mean)
        assert stream.std == pytest.approx(batch.std)
        assert stream.minimum == batch.minimum
        assert stream.maximum == batch.maximum
        assert stream.repetitions == 37

    def test_merge(self):
        a = StreamingScalar().update([1.0, 2.0])
        b = StreamingScalar().update([3.0])
        agg = a.merge(b).aggregate()
        assert agg.mean == pytest.approx(2.0)
        assert agg.repetitions == 3

    def test_single_sample_and_empty(self):
        assert StreamingScalar().update([5.0]).aggregate().std == 0.0
        with pytest.raises(ValueError):
            StreamingScalar().aggregate()
        ss = StreamingScalar()
        ss.update([])
        assert ss.repetitions == 0


class TestMeanSortedProfile:
    def test_sorts_each_row(self):
        m = [[1.0, 3.0], [2.0, 0.0]]
        prof = mean_sorted_profile(m)
        np.testing.assert_allclose(prof.mean, [2.5, 0.5])

    def test_repetitions_recorded(self):
        prof = mean_sorted_profile(np.ones((7, 3)))
        assert prof.repetitions == 7
        assert len(prof) == 3

    def test_std(self):
        m = [[0.0, 2.0], [2.0, 0.0]]
        prof = mean_sorted_profile(m)
        np.testing.assert_allclose(prof.std, [0.0, 0.0])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            mean_sorted_profile([1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mean_sorted_profile(np.empty((0, 4)))

    def test_profile_non_increasing(self):
        rng = np.random.default_rng(0)
        prof = mean_sorted_profile(rng.random((20, 15)))
        assert all(a >= b - 1e-12 for a, b in zip(prof.mean, prof.mean[1:]))


class TestMeanProfileByPosition:
    def test_no_sorting(self):
        m = [[1.0, 3.0], [3.0, 1.0]]
        prof = mean_profile_by_position(m)
        np.testing.assert_allclose(prof.mean, [2.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mean_profile_by_position(np.empty((0, 2)))


class TestAggregateScalar:
    def test_values(self):
        agg = aggregate_scalar([1.0, 2.0, 3.0])
        assert agg.mean == 2.0
        assert agg.minimum == 1.0
        assert agg.maximum == 3.0
        assert agg.repetitions == 3

    def test_single_sample(self):
        agg = aggregate_scalar([5.0])
        assert agg.std == 0.0
        assert agg.ci_halfwidth() == float("inf")

    def test_ci_shrinks_with_reps(self):
        rng = np.random.default_rng(1)
        small = aggregate_scalar(rng.normal(size=10))
        large = aggregate_scalar(rng.normal(size=1000))
        assert large.ci_halfwidth() < small.ci_halfwidth()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate_scalar([])


class TestFractionTrue:
    def test_half(self):
        assert fraction_true([True, False, True, False]) == 0.5

    def test_all_false(self):
        assert fraction_true([False, False]) == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fraction_true([])


class TestReducerBundle:
    def test_merges_key_by_key(self):
        from repro.analysis import ReducerBundle, StreamingScalar

        a = ReducerBundle(x=StreamingScalar().update([1.0, 2.0]),
                          y=StreamingScalar().update([10.0]))
        b = ReducerBundle(x=StreamingScalar().update([3.0]),
                          y=StreamingScalar().update([20.0, 30.0]))
        a.merge(b)
        assert a["x"].mean == pytest.approx(2.0)
        assert a["y"].mean == pytest.approx(20.0)
        assert a["x"].repetitions == 3

    def test_rejects_mismatched_keys_and_types(self):
        from repro.analysis import ReducerBundle, StreamingScalar

        a = ReducerBundle(x=StreamingScalar().update([1.0]))
        with pytest.raises(ValueError, match="incompatible"):
            a.merge(ReducerBundle(y=StreamingScalar().update([1.0])))
        with pytest.raises(TypeError):
            a.merge(StreamingScalar())
        with pytest.raises(ValueError, match="at least one"):
            ReducerBundle()
