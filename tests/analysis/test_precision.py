"""Tests for the adaptive-precision layer (targets, monitor, statistics).

The centrepiece is the statistical validity check: over 200 seeded trials
on a known-distribution toy experiment, the *sequential* CI at the
stopping time must achieve close-to-nominal coverage — a monitor that
"peeks" naively (tiny batch counts, normal quantiles on correlated
samples) fails the pinned binomial tolerance.
"""

import math
import pickle

import numpy as np
import pytest

from repro.analysis.aggregate import ReducerBundle, StreamingProfile, StreamingScalar
from repro.analysis.precision import (
    AdaptiveRecorder,
    PrecisionError,
    PrecisionTarget,
    SequentialMonitor,
    default_block_statistics,
    student_t_quantile,
)


class TestStudentTQuantile:
    def test_matches_scipy(self):
        stats = pytest.importorskip("scipy.stats")
        for conf in (0.5, 0.9, 0.95, 0.99, 0.999):
            for df in (1, 2, 3, 7, 30, 100, 500):
                assert student_t_quantile(conf, df) == pytest.approx(
                    float(stats.t.ppf(0.5 * (1 + conf), df)), abs=1e-9
                )

    def test_limits_to_normal_quantile(self):
        # t_inf(95%) -> 1.959964...
        assert student_t_quantile(0.95, 10_000) == pytest.approx(1.96, abs=1e-2)

    def test_monotone_in_confidence(self):
        qs = [student_t_quantile(c, 9) for c in (0.8, 0.9, 0.95, 0.99)]
        assert qs == sorted(qs)

    def test_heavy_tail_extremes_match_scipy(self):
        """df = 1-2 at confidence >= 0.999: the quantile explodes (t_1 at
        0.9999 is ~6366), so the bisection's ``hi *= 2`` bracket growth and
        the continued fraction's tail behaviour both get exercised.  Pinned
        relatively — the absolute scale varies over four decades."""
        stats = pytest.importorskip("scipy.stats")
        for conf in (0.999, 0.9999, 0.99999):
            for df in (1, 2):
                expected = float(stats.t.ppf(0.5 * (1 + conf), df))
                assert student_t_quantile(conf, df) == pytest.approx(
                    expected, rel=1e-9
                ), f"conf={conf} df={df}"

    def test_heavy_tail_extremes_closed_form(self):
        """The same extremes against the df = 1 (Cauchy) and df = 2 closed
        forms — no scipy involved, so this asserts the pure-numpy/math
        fallback path itself converges at heavy tails."""
        for conf in (0.999, 0.9999, 0.99999):
            # t_1: quantile of the Cauchy at one-sided level (1+c)/2.
            assert student_t_quantile(conf, 1) == pytest.approx(
                math.tan(math.pi * conf / 2.0), rel=1e-9
            ), f"df=1 conf={conf}"
            # t_2: t = sqrt(2) c / sqrt(1 - c^2), c the two-sided confidence.
            assert student_t_quantile(conf, 2) == pytest.approx(
                math.sqrt(2.0) * conf / math.sqrt((1.0 - conf) * (1.0 + conf)),
                rel=1e-9,
            ), f"df=2 conf={conf}"

    def test_invalid_inputs(self):
        with pytest.raises(PrecisionError):
            student_t_quantile(1.0, 5)
        with pytest.raises(PrecisionError):
            student_t_quantile(0.95, 0)


class TestPrecisionTarget:
    def test_parse_full_spec(self):
        t = PrecisionTarget.parse(
            "rel=0.01,abs=0.5,conf=0.9,min_reps=10,max_reps=100,min_blocks=4"
        )
        assert t == PrecisionTarget(
            rel=0.01, absolute=0.5, confidence=0.9,
            min_reps=10, max_reps=100, min_blocks=4,
        )

    def test_parse_minimal(self):
        assert PrecisionTarget.parse("rel=0.02") == PrecisionTarget(rel=0.02)

    @pytest.mark.parametrize("bad", [
        "", "rel", "rel=x", "frobnicate=1", "rel=-0.1", "abs=0",
        "rel=0.1,conf=1.5", "rel=0.1,min_blocks=1",
        "rel=0.1,min_reps=50,max_reps=10",
    ])
    def test_parse_rejects(self, bad):
        with pytest.raises(PrecisionError):
            PrecisionTarget.parse(bad)

    def test_needs_at_least_one_target(self):
        with pytest.raises(PrecisionError, match="at least one"):
            PrecisionTarget()

    def test_payload_round_trip(self):
        t = PrecisionTarget.parse("rel=0.01,conf=0.99,min_blocks=16")
        assert PrecisionTarget.from_payload(t.to_payload()) == t

    def test_from_payload_rejects_unknown_keys(self):
        with pytest.raises(PrecisionError, match="unknown"):
            PrecisionTarget.from_payload({"rel": 0.1, "typo": 1})

    def test_tolerance_takes_the_laxer_of_rel_and_abs(self):
        t = PrecisionTarget(rel=0.1, absolute=0.5)
        assert t.tolerance(100.0) == pytest.approx(10.0)  # rel dominates
        assert t.tolerance(1.0) == pytest.approx(0.5)     # abs dominates


class TestDefaultBlockStatistics:
    def test_scalar_reducer(self):
        r = StreamingScalar().update([1.0, 3.0])
        assert default_block_statistics(r) == {"mean": 2.0}

    def test_profile_reducer_tracks_rank0(self):
        r = StreamingProfile(3).update(np.array([[1.0, 5.0, 2.0], [2.0, 1.0, 7.0]]))
        # sorted rows: [5,2,1] and [7,2,1] -> rank0 mean = 6
        assert default_block_statistics(r) == {"rank0": 6.0}

    def test_bundle_flattens_with_prefix(self):
        bundle = ReducerBundle(
            gap=StreamingScalar().update([4.0]),
            prof=StreamingProfile(2).update(np.array([[1.0, 2.0]])),
        )
        assert default_block_statistics(bundle) == {"gap.mean": 4.0, "prof.rank0": 2.0}

    def test_unknown_reducer_rejected(self):
        with pytest.raises(TypeError, match="extract"):
            default_block_statistics(object())


def feed_blocks(monitor, block_means, reps_per_block=10):
    """Drive a monitor with synthetic scalar block aggregates (the rep
    count continues across calls, like a resumed block stream)."""
    stopped_at = None
    for i, mean in enumerate(block_means):
        block = StreamingScalar().update([mean] * reps_per_block)
        if monitor.observe(block, monitor.reps_done + reps_per_block):
            stopped_at = i + 1
            break
    return stopped_at


class TestSequentialMonitor:
    def test_needs_min_blocks_before_stopping(self):
        mon = PrecisionTarget(absolute=1e9, min_blocks=5).monitor()
        assert feed_blocks(mon, [1.0] * 4) is None
        assert feed_blocks(mon, [1.0]) == 1  # fifth block satisfies

    def test_min_reps_floor(self):
        mon = PrecisionTarget(absolute=1e9, min_blocks=2, min_reps=100).monitor()
        assert feed_blocks(mon, [1.0] * 9) is None  # 90 reps < floor
        assert feed_blocks(mon, [1.0]) == 1

    def test_max_reps_cap_stops_unconverged(self):
        mon = PrecisionTarget(absolute=1e-12, max_reps=30).monitor()
        # wildly varying block means never converge, but the cap fires
        assert feed_blocks(mon, [0.0, 100.0, -50.0, 80.0]) == 3

    def test_tight_target_keeps_running(self):
        mon = PrecisionTarget(absolute=0.01, min_blocks=4).monitor()
        rng = np.random.default_rng(0)
        assert feed_blocks(mon, rng.normal(0, 10.0, 50)) is None

    def test_nan_series_never_converges(self):
        mon = PrecisionTarget(absolute=1e9, min_blocks=2).monitor()
        assert feed_blocks(mon, [float("nan")] * 20) is None

    def test_stop_is_pure_function_of_prefix(self):
        means = list(np.random.default_rng(3).normal(5.0, 0.1, 40))
        stops = []
        for _ in range(2):
            mon = PrecisionTarget(rel=0.05).monitor()
            stops.append(feed_blocks(mon, means))
        assert stops[0] == stops[1] is not None

    def test_state_dict_round_trip_is_exact(self):
        mon = PrecisionTarget(rel=0.02).monitor()
        feed_blocks(mon, list(np.random.default_rng(1).normal(2.0, 0.5, 6)))
        clone = PrecisionTarget(rel=0.02).monitor()
        clone.load_state_dict(pickle.loads(pickle.dumps(mon.state_dict())))
        assert clone.state_dict() == mon.state_dict()
        assert clone.should_stop() == mon.should_stop()
        assert clone.series_report() == mon.series_report()

    def test_fingerprint_distinguishes_targets(self):
        a = PrecisionTarget(rel=0.02).monitor()
        b = PrecisionTarget(rel=0.01).monitor()
        c = PrecisionTarget(rel=0.02).monitor()
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() == c.fingerprint()

    def test_summary_reports_halfwidth_and_convergence(self):
        mon = PrecisionTarget(absolute=10.0, min_blocks=2).monitor()
        feed_blocks(mon, [1.0, 2.0])
        s = mon.summary()
        assert s["replications"] == 20 and s["converged"]
        series = s["series"]["mean"]
        assert series["blocks"] == 2
        # t(95%, df=1) * sd/sqrt(2): sd of {1,2} is 0.7071...
        expected = student_t_quantile(0.95, 1) * math.sqrt(0.5 / 2)
        assert series["halfwidth"] == pytest.approx(expected)


class TestAdaptiveRecorder:
    def test_inert_without_target(self):
        rec = AdaptiveRecorder(None, engine="scalar")
        assert rec.monitor("a") is None
        extra = {}
        rec.annotate(extra, budget_per_run=100)
        assert extra == {}
        assert rec.block_size(1000, None) is None

    def test_rejects_scalar_engine(self):
        with pytest.raises(ValueError, match="ensemble"):
            AdaptiveRecorder(PrecisionTarget(rel=0.1), engine="scalar")

    def test_duplicate_labels_rejected(self):
        rec = AdaptiveRecorder(PrecisionTarget(rel=0.1), engine="ensemble")
        rec.monitor("a")
        with pytest.raises(ValueError, match="duplicate"):
            rec.monitor("a")

    def test_annotate_totals_and_early_stop_flag(self):
        rec = AdaptiveRecorder(PrecisionTarget(absolute=1e9, min_blocks=2),
                               engine="ensemble")
        feed_blocks(rec.monitor("x"), [1.0, 1.0])          # stops at 20 reps
        feed_blocks(rec.monitor("y"), [1.0] * 10)          # stops at 20 reps
        extra = {}
        rec.annotate(extra, budget_per_run=100)
        info = extra["adaptive"]
        assert info["replication_budget"] == 200
        assert info["replications_used"] == 40
        assert info["early_stopped"]
        assert info["runs"]["x"]["stopped_early"]

    def test_adaptive_block_size_default(self):
        rec = AdaptiveRecorder(PrecisionTarget(rel=0.1, min_blocks=8),
                               engine="ensemble")
        assert rec.block_size(1024, None) == 32    # 1024 // (4*8)
        assert rec.block_size(10_000, None) == 128  # capped at the default
        assert rec.block_size(10, None) == 1        # floor
        assert rec.block_size(1024, 64) == 64       # explicit width wins


class TestSequentialCoverage:
    """Statistical validity: the sequential CI keeps near-nominal coverage.

    200 seeded trials draw i.i.d. normal blocks (a toy experiment whose
    true mean is known) and run the monitor to its stopping time.  The
    fraction of trials whose final batch-means CI covers the true mean
    must sit within a binomial 3-sigma band of the nominal 95% —
    3 * sqrt(0.95 * 0.05 / 200) ~ 0.046, so the pinned floor is 0.90.  A
    naive "peek every block with a normal quantile and no batch floor"
    rule measurably undershoots this band; the batch-means t-interval
    with the min_blocks floor does not (measured 0.955 at these seeds).
    """

    TRIALS = 200
    MU, SIGMA, R = 3.0, 1.0, 16

    def run_trial(self, seed, target, max_blocks=400):
        rng = np.random.default_rng(seed)
        monitor = target.monitor()
        merged = StreamingScalar()
        for b in range(max_blocks):
            block = StreamingScalar().update(rng.normal(self.MU, self.SIGMA, self.R))
            merged.merge(block)
            if monitor.observe(block, (b + 1) * self.R):
                break
        report = monitor.series_report()["mean"]
        covered = abs(report["mean"] - self.MU) <= report["halfwidth"]
        return covered, monitor.reps_done

    def test_sequential_ci_coverage_within_binomial_tolerance(self):
        target = PrecisionTarget(absolute=0.1, confidence=0.95, min_blocks=8)
        outcomes = [self.run_trial(seed, target) for seed in range(self.TRIALS)]
        coverage = float(np.mean([c for c, _ in outcomes]))
        mean_reps = float(np.mean([r for _, r in outcomes]))
        # Every trial must actually have stopped early (else the test
        # exercises the budget, not the stopping rule).
        assert mean_reps < 0.25 * 400 * self.R
        assert 0.90 <= coverage <= 1.0, (
            f"sequential CI coverage {coverage:.3f} outside the pinned "
            f"binomial band [0.90, 1.0] at nominal 0.95"
        )

    def test_estimates_agree_with_truth_at_tolerance_scale(self):
        target = PrecisionTarget(absolute=0.1, confidence=0.95, min_blocks=8)
        errors = []
        for seed in range(50):
            rng = np.random.default_rng(seed)
            monitor = target.monitor()
            for b in range(400):
                block = StreamingScalar().update(
                    rng.normal(self.MU, self.SIGMA, self.R)
                )
                if monitor.observe(block, (b + 1) * self.R):
                    break
            errors.append(abs(monitor.series_report()["mean"]["mean"] - self.MU))
        # RMS error is of the order of the requested half-width, not above.
        assert float(np.sqrt(np.mean(np.square(errors)))) < 0.1
