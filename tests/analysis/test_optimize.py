"""Tests for the optimal-exponent search."""

import pytest

from repro.analysis import exponent_sweep, optimal_exponent
from repro.bins import two_class_bins, uniform_bins


class TestExponentSweep:
    def test_grid_keys(self):
        bins = two_class_bins(10, 10, 1, 3)
        out = exponent_sweep(bins, [0.0, 1.0, 2.0], repetitions=5, seed=0)
        assert set(out) == {0.0, 1.0, 2.0}

    def test_deterministic_given_seed(self):
        bins = two_class_bins(10, 10, 1, 3)
        a = exponent_sweep(bins, [1.0], repetitions=5, seed=7)
        b = exponent_sweep(bins, [1.0], repetitions=5, seed=7)
        assert a == b

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            exponent_sweep(uniform_bins(4), [], repetitions=3)

    def test_rejects_bad_reps(self):
        with pytest.raises(ValueError):
            exponent_sweep(uniform_bins(4), [1.0], repetitions=0)

    def test_uniform_bins_flat_in_t(self):
        """On uniform capacities every exponent gives the same game."""
        bins = uniform_bins(50, 3)
        out = exponent_sweep(bins, [0.0, 1.0, 2.0], repetitions=30, seed=1)
        vals = list(out.values())
        assert max(vals) - min(vals) < 0.2


class TestOptimalExponent:
    def test_finds_t_above_one_for_mixed_array(self):
        """The paper's finding: t* > 1 at capacities 1 and 3."""
        bins = two_class_bins(50, 50, 1, 3)
        result = optimal_exponent(
            bins, t_min=0.0, t_max=3.5, coarse_points=8,
            refine_iterations=4, repetitions=120, seed=3,
        )
        assert result.best_t > 1.0
        assert result.improvement_over_proportional() >= -0.05

    def test_interval_brackets_best(self):
        bins = two_class_bins(20, 20, 1, 4)
        result = optimal_exponent(
            bins, coarse_points=5, refine_iterations=3, repetitions=20, seed=4
        )
        lo, hi = result.refinement_interval
        # the best t is either inside the final bracket or a coarse point
        assert (lo - 1e-9 <= result.best_t <= hi + 1e-9) or result.best_t in result.coarse_curve

    def test_coarse_curve_recorded(self):
        bins = two_class_bins(10, 10, 1, 2)
        result = optimal_exponent(
            bins, coarse_points=4, refine_iterations=1, repetitions=5, seed=5
        )
        assert len(result.coarse_curve) == 4

    def test_validation(self):
        bins = uniform_bins(4)
        with pytest.raises(ValueError):
            optimal_exponent(bins, t_min=2.0, t_max=1.0)
        with pytest.raises(ValueError):
            optimal_exponent(bins, coarse_points=2)
        with pytest.raises(ValueError):
            optimal_exponent(bins, refine_iterations=-1)
