"""Tests for plateau detection."""

import pytest

from repro.analysis import find_plateaus, longest_plateau


class TestFindPlateaus:
    def test_flat_curve_is_one_plateau(self):
        p = find_plateaus([2.0] * 6)
        assert len(p) == 1
        assert p[0].length == 6
        assert p[0].level == 2.0

    def test_steps_detected_separately(self):
        curve = [3.0, 3.0, 3.0, 1.0, 1.0, 1.0]
        p = find_plateaus(curve, tolerance=0.01)
        assert len(p) == 2
        assert p[0].level == pytest.approx(3.0)
        assert p[1].level == pytest.approx(1.0)

    def test_monotone_decline_no_plateau(self):
        curve = [5.0, 4.0, 3.0, 2.0, 1.0]
        assert find_plateaus(curve, tolerance=0.1) == []

    def test_tolerance_merges_noise(self):
        curve = [2.0, 2.02, 1.98, 2.01, 2.0]
        p = find_plateaus(curve, tolerance=0.05)
        assert len(p) == 1
        assert p[0].length == 5

    def test_min_length_respected(self):
        curve = [1.0, 1.0, 5.0, 5.0, 5.0, 5.0]
        p = find_plateaus(curve, min_length=4, tolerance=0.01)
        assert len(p) == 1
        assert p[0].start == 2

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            find_plateaus([1.0], tolerance=-1)
        with pytest.raises(ValueError):
            find_plateaus([1.0], min_length=1)

    def test_index_bounds(self):
        curve = [9.0, 1.0, 1.0, 1.0, 9.0]
        p = find_plateaus(curve, tolerance=0.01)
        assert p[0].start == 1
        assert p[0].stop == 3


class TestLongestPlateau:
    def test_picks_longest(self):
        curve = [1.0] * 3 + [5.0] * 6 + [2.0] * 3
        lp = longest_plateau(curve, tolerance=0.01)
        assert lp.level == pytest.approx(5.0)
        assert lp.length == 6

    def test_none_when_absent(self):
        assert longest_plateau([1.0, 2.0, 3.0], tolerance=0.01) is None

    def test_figure6_style_plateau(self):
        """A curve shaped like Figure 6 (drop, plateau, drop) has its
        longest plateau in the middle."""
        curve = [3.0, 2.2, 2.0, 2.0, 2.0, 2.0, 1.8, 1.5, 1.3, 1.2]
        lp = longest_plateau(curve, tolerance=0.05)
        assert lp is not None
        assert 2 <= lp.start <= 3
        assert lp.level == pytest.approx(2.0, abs=0.05)
