"""Tests for per-run load statistics."""

import numpy as np
import pytest

from repro.analysis import (
    argmax_bins,
    load_gap,
    load_stats,
    max_load,
    max_load_location_by_class,
    per_class_max_loads,
)


class TestLoadStats:
    def test_basic(self):
        s = load_stats([2, 4], [1, 4])
        assert s.max_load == 2.0
        assert s.average_load == pytest.approx(6 / 5)
        assert s.min_load == 1.0

    def test_gap(self):
        s = load_stats([3, 1], [1, 1])
        assert s.gap == pytest.approx(3 - 2)

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            load_stats([1], [1, 2])

    def test_std_zero_when_balanced(self):
        s = load_stats([2, 2, 2], [1, 1, 1])
        assert s.std_load == 0.0


class TestScalarHelpers:
    def test_max_load(self):
        assert max_load([5, 2], [1, 2]) == 5.0

    def test_load_gap(self):
        assert load_gap([2, 0], [1, 1]) == pytest.approx(1.0)

    def test_max_load_capacity_normalised(self):
        # 8 balls in cap-8 bin is load 1, less than 2 balls in cap-1 bin
        assert max_load([8, 2], [8, 1]) == 2.0


class TestArgmax:
    def test_single_winner(self):
        np.testing.assert_array_equal(argmax_bins([3, 1], [1, 1]), [0])

    def test_ties_detected(self):
        np.testing.assert_array_equal(argmax_bins([2, 2, 1], [1, 1, 1]), [0, 1])

    def test_cross_capacity_tie(self):
        # 2/1 == 8/4
        np.testing.assert_array_equal(argmax_bins([2, 8], [1, 4]), [0, 1])

    def test_rtol_widens(self):
        winners = argmax_bins([100, 99], [1, 1], rtol=0.02)
        np.testing.assert_array_equal(winners, [0, 1])

    def test_all_zero_loads(self):
        np.testing.assert_array_equal(argmax_bins([0, 0], [1, 2]), [0, 1])


class TestLocationByClass:
    def test_small_bin_has_max(self):
        loc = max_load_location_by_class([3, 4], [1, 4])
        assert loc == {1: True, 4: False}

    def test_shared_max(self):
        loc = max_load_location_by_class([2, 8], [1, 4])
        assert loc == {1: True, 4: True}

    def test_uniform_single_class(self):
        loc = max_load_location_by_class([1, 2], [1, 1])
        assert loc == {1: True}


class TestPerClassMax:
    def test_values(self):
        out = per_class_max_loads([1, 3, 8, 4], [1, 1, 4, 4])
        assert out == {1: 3.0, 4: 2.0}

    def test_single_class(self):
        assert per_class_max_loads([5], [2]) == {2: 2.5}


class TestMaxLoadLocationByClassMatrix:
    def test_matches_per_row_scalar_version(self):
        from repro.analysis import (
            max_load_location_by_class,
            max_load_location_by_class_matrix,
        )

        rng = np.random.default_rng(4)
        caps = rng.integers(1, 6, size=12)
        counts = rng.integers(0, 20, size=(7, 12))
        matrix = max_load_location_by_class_matrix(counts, caps)
        for r in range(7):
            row = max_load_location_by_class(counts[r], caps)
            assert set(row) == set(matrix)
            for c, flag in row.items():
                assert bool(matrix[c][r]) == flag, (r, c)

    def test_rejects_bad_shapes(self):
        from repro.analysis import max_load_location_by_class_matrix

        with pytest.raises(ValueError, match=r"\(R, n\)"):
            max_load_location_by_class_matrix(np.zeros(3, dtype=int), np.ones(3, dtype=int))
