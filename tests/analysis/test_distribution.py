"""Tests for load-distribution views."""

import numpy as np
import pytest

from repro.analysis import class_load_matrix, class_profiles, load_histogram


class TestLoadHistogram:
    def test_counts_sum(self):
        h = load_histogram([0.1, 0.6, 1.2, 2.9])
        assert h.total == 4

    def test_bin_width(self):
        h = load_histogram([0.0, 0.26], bin_width=0.25)
        assert h.counts[0] == 1
        assert h.counts[1] == 1

    def test_densities(self):
        h = load_histogram([0.1, 0.1, 0.6, 0.6])
        np.testing.assert_allclose(h.densities().sum(), 1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            load_histogram([])

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            load_histogram([1.0], bin_width=0)

    def test_max_value_included(self):
        h = load_histogram([1.0], bin_width=0.5)
        assert h.counts.sum() == 1


class TestClassProfiles:
    def test_split_and_sorted(self):
        counts = [3, 1, 8, 16]
        caps = [1, 1, 8, 8]
        prof = class_profiles(counts, caps)
        np.testing.assert_allclose(prof[1], [3.0, 1.0])
        np.testing.assert_allclose(prof[8], [2.0, 1.0])

    def test_single_class(self):
        prof = class_profiles([1, 2], [1, 1])
        assert set(prof) == {1}

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError):
            class_profiles([1], [1, 2])


class TestClassLoadMatrix:
    def test_column_selection(self):
        matrix = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        caps = [1, 8, 1]
        out = class_load_matrix(matrix, caps, 1)
        np.testing.assert_allclose(out, [[1.0, 3.0], [4.0, 6.0]])

    def test_rejects_absent_class(self):
        with pytest.raises(ValueError, match="no bins"):
            class_load_matrix(np.ones((2, 2)), [1, 1], 8)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            class_load_matrix(np.ones((2, 3)), [1, 1], 1)
