"""Tests for adaptive repetition control."""

import numpy as np
import pytest

from repro.analysis import run_until_ci


def noisy_task(seed, sigma=1.0, mean=5.0):
    return float(np.random.default_rng(seed).normal(mean, sigma))


def constant_task(seed):
    return 3.0


class TestValidation:
    def test_rejects_bad_halfwidth(self):
        with pytest.raises(ValueError):
            run_until_ci(constant_task, target_halfwidth=0)

    def test_rejects_bad_min_reps(self):
        with pytest.raises(ValueError):
            run_until_ci(constant_task, target_halfwidth=0.1, min_repetitions=1)

    def test_rejects_inverted_budget(self):
        with pytest.raises(ValueError):
            run_until_ci(
                constant_task, target_halfwidth=0.1,
                min_repetitions=10, max_repetitions=5,
            )

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            run_until_ci(constant_task, target_halfwidth=0.1, batch=0)


class TestBehaviour:
    def test_constant_converges_at_min_reps(self):
        est = run_until_ci(constant_task, target_halfwidth=0.01, seed=0)
        assert est.converged
        assert est.repetitions == 10  # the default minimum
        assert est.mean == 3.0
        assert est.ci_halfwidth == 0.0

    def test_noisy_converges_near_truth(self):
        est = run_until_ci(
            noisy_task, target_halfwidth=0.1, max_repetitions=5000, seed=1,
            kwargs={"sigma": 1.0, "mean": 5.0},
        )
        assert est.converged
        assert est.mean == pytest.approx(5.0, abs=0.3)
        assert est.ci_halfwidth <= 0.1

    def test_budget_exhaustion_flagged(self):
        est = run_until_ci(
            noisy_task, target_halfwidth=1e-6, max_repetitions=50, seed=2,
        )
        assert not est.converged
        assert est.repetitions == 50

    def test_tighter_target_needs_more_reps(self):
        loose = run_until_ci(
            noisy_task, target_halfwidth=0.5, max_repetitions=4000, seed=3
        )
        tight = run_until_ci(
            noisy_task, target_halfwidth=0.1, max_repetitions=4000, seed=3
        )
        assert tight.repetitions > loose.repetitions

    def test_prefix_reproducibility(self):
        """Sample i is identical across runs with the same seed, regardless
        of where convergence stops."""
        a = run_until_ci(noisy_task, target_halfwidth=0.3, max_repetitions=500, seed=4)
        b = run_until_ci(noisy_task, target_halfwidth=0.1, max_repetitions=500, seed=4)
        k = min(a.repetitions, b.repetitions)
        np.testing.assert_array_equal(a.samples[:k], b.samples[:k])

    def test_std_property(self):
        est = run_until_ci(noisy_task, target_halfwidth=0.2, max_repetitions=2000, seed=5)
        assert est.std == pytest.approx(1.0, abs=0.3)

    def test_with_simulation_task(self):
        """End-to-end: adaptive estimate of a real max-load mean."""
        from repro.bins import two_class_bins
        from repro.core import simulate

        bins = two_class_bins(20, 20, 1, 4)

        def task(ss):
            return simulate(bins, seed=ss).max_load

        est = run_until_ci(task, target_halfwidth=0.15, max_repetitions=300, seed=6)
        assert est.converged
        assert 1.0 <= est.mean <= 3.0
