"""Property-based reducer tests: partition invariance of streaming merges.

The resume pipeline and the adaptive monitor both rest on one algebraic
property: folding replication blocks through the streaming reducers is
*exactly* the same reduction regardless of how the replications are
partitioned into blocks.  These tests drive that property with seeded
hypothesis generators — any random partition (including empty blocks and
NaN-padded rows) merged through :class:`StreamingProfile` /
:class:`StreamingScalar` / :class:`ReducerBundle` must be **bit-identical**
to the one-shot reduction.

Exactness caveat, by construction: real replication data is counts
(integers) or normalised loads with bounded dyadic denominators, whose
float64 sums are exact under any association.  The generators therefore
produce integer-valued and eighth-valued samples — the regime the
pipeline actually operates in and the one where bit-identity is a
theorem, not luck.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.aggregate import (
    ReducerBundle,
    StreamingProfile,
    StreamingScalar,
)

MAX_REPS = 60
MAX_N = 12


def _partition(rng, rows):
    """A random ordered partition of ``range(rows)`` with empty parts."""
    n_cuts = int(rng.integers(0, 6))
    cuts = sorted(int(c) for c in rng.integers(0, rows + 1, size=n_cuts))
    bounds = [0, *cuts, rows]
    return list(zip(bounds[:-1], bounds[1:]))  # may contain empty [i, i)


def _load_matrix(rng, rows, n):
    """Integer-valued loads with optional NaN padding (exact in float64)."""
    matrix = rng.integers(0, 50, size=(rows, n)).astype(np.float64)
    if n > 1 and rng.random() < 0.5:
        # NaN-pad a column tail, the shape padded per-class series have.
        pad = int(rng.integers(1, n))
        matrix[:, n - pad:] = np.nan
    return matrix


def _scalar_values(rng, rows):
    """Eighth-valued scalars (dyadic: exact sums under any association)."""
    return rng.integers(-400, 400, size=rows).astype(np.float64) / 8.0


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_profile_partition_invariance(seed):
    rng = np.random.default_rng(seed)
    rows = int(rng.integers(1, MAX_REPS))
    n = int(rng.integers(1, MAX_N))
    sort = bool(rng.integers(0, 2))
    matrix = _load_matrix(rng, rows, n)

    one_shot = StreamingProfile(n, sort=sort).update(matrix)
    merged = StreamingProfile(n, sort=sort)
    for i0, i1 in _partition(rng, rows):
        merged.merge(StreamingProfile(n, sort=sort).update(matrix[i0:i1]))

    assert merged == one_shot  # bit-exact (__eq__ compares moment bytes)
    a, b = merged.profile(), one_shot.profile()
    assert a.mean.tobytes() == b.mean.tobytes()
    assert a.std.tobytes() == b.std.tobytes()
    assert a.repetitions == b.repetitions == rows


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_scalar_partition_invariance(seed):
    rng = np.random.default_rng(seed)
    rows = int(rng.integers(1, MAX_REPS))
    values = _scalar_values(rng, rows)

    one_shot = StreamingScalar().update(values)
    merged = StreamingScalar()
    for i0, i1 in _partition(rng, rows):
        merged.merge(StreamingScalar().update(values[i0:i1]))

    assert merged == one_shot
    a, b = merged.aggregate(), one_shot.aggregate()
    assert (a.mean, a.std, a.minimum, a.maximum, a.repetitions) == (
        b.mean, b.std, b.minimum, b.maximum, b.repetitions
    )


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_bundle_partition_invariance(seed):
    """Bundles merge key-by-key: the partition property lifts member-wise."""
    rng = np.random.default_rng(seed)
    rows = int(rng.integers(1, MAX_REPS))
    n = int(rng.integers(1, MAX_N))
    matrix = _load_matrix(rng, rows, n)
    values = _scalar_values(rng, rows)

    def bundle(i0, i1):
        return ReducerBundle(
            profile=StreamingProfile(n).update(matrix[i0:i1]),
            gap=StreamingScalar().update(values[i0:i1]),
        )

    one_shot = bundle(0, rows)
    parts = _partition(rng, rows)
    merged = bundle(*parts[0])
    for i0, i1 in parts[1:]:
        merged.merge(bundle(i0, i1))

    assert merged == one_shot
    assert merged["profile"] == one_shot["profile"]
    assert merged["gap"] == one_shot["gap"]


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_row_by_row_equals_one_shot(seed):
    """The finest partition (one update per replication) is the same too."""
    rng = np.random.default_rng(seed)
    rows = int(rng.integers(1, 20))
    n = int(rng.integers(1, MAX_N))
    matrix = _load_matrix(rng, rows, n)

    one_shot = StreamingProfile(n).update(matrix)
    fine = StreamingProfile(n)
    for row in matrix:
        fine.update(row)  # 1-D rows are promoted to (1, n) blocks
    assert fine == one_shot


def test_empty_block_updates_are_identity():
    reducer = StreamingProfile(3).update(np.arange(6.0).reshape(2, 3))
    before = (reducer.repetitions, reducer._sum.tobytes(), reducer._sumsq.tobytes())
    reducer.update(np.empty((0, 3)))
    reducer.merge(StreamingProfile(3))  # never-updated reducer
    after = (reducer.repetitions, reducer._sum.tobytes(), reducer._sumsq.tobytes())
    assert before == after

    scalar = StreamingScalar().update([1.5])
    scalar.update([])
    scalar.merge(StreamingScalar())
    assert scalar.repetitions == 1 and scalar.mean == 1.5


def test_all_empty_reduction_has_no_profile():
    merged = StreamingProfile(4)
    merged.merge(StreamingProfile(4))
    assert merged.repetitions == 0
    try:
        merged.profile()
    except ValueError:
        pass
    else:  # pragma: no cover - the guard must fire
        raise AssertionError("profile() on an empty reduction must raise")
