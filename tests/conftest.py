"""Shared test fixtures.

Also makes the suite runnable without an installed package by falling back
to the in-tree ``src`` layout (useful on machines where ``pip install -e .``
is unavailable, e.g. fully offline environments without the ``wheel``
package).
"""

import sys
from pathlib import Path

try:  # pragma: no cover - trivial import guard
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A deterministic generator for tests that need ad-hoc randomness."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def small_mixed_bins():
    """A tiny heterogeneous array used across suites: capacities 1,1,2,4."""
    from repro.bins import BinArray

    return BinArray([1, 1, 2, 4])


@pytest.fixture
def two_class_1000():
    """The paper's Figure 6 style array at reduced size: 50x1 + 50x10."""
    from repro.bins import two_class_bins

    return two_class_bins(50, 50, 1, 10)
