"""Tests for the tail-bound helpers (Lemma 2 and Chernoff)."""

import math

import numpy as np
import pytest

from repro.theory import (
    binomial_tail_upper,
    chernoff_upper,
    lemma2_collision_tail,
    lemma2_small_ball_count_tail,
)


class TestChernoff:
    def test_observation1_form(self):
        """eps=1: P[X >= 2 mu] <= exp(-mu/3) — the step in Observation 1."""
        mu = 30.0
        assert chernoff_upper(mu, 1.0) == pytest.approx(math.exp(-mu / 3))

    def test_decreasing_in_mean(self):
        assert chernoff_upper(100, 0.5) < chernoff_upper(10, 0.5)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            chernoff_upper(10, 0.0)
        with pytest.raises(ValueError):
            chernoff_upper(10, 1.5)

    def test_rejects_negative_mean(self):
        with pytest.raises(ValueError):
            chernoff_upper(-1, 0.5)

    def test_is_valid_upper_bound_empirically(self):
        """Bound dominates the empirical tail for Bin(n, p)."""
        n, p = 200, 0.1
        mu = n * p
        rng = np.random.default_rng(0)
        draws = rng.binomial(n, p, size=50_000)
        emp = np.mean(draws >= 2 * mu)
        assert emp <= chernoff_upper(mu, 1.0) + 0.01


class TestBinomialTail:
    def test_vacuous_when_k_small(self):
        assert binomial_tail_upper(100, 0.5, 10) == 1.0

    def test_zero_k(self):
        assert binomial_tail_upper(100, 0.5, 0) == 1.0

    def test_decays_in_k(self):
        vals = [binomial_tail_upper(100, 0.01, k) for k in (10, 20, 40)]
        assert vals[0] > vals[1] > vals[2]

    def test_no_underflow_large_k(self):
        assert binomial_tail_upper(10**6, 1e-9, 1000) >= 0.0

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            binomial_tail_upper(10, 1.5, 2)

    def test_dominates_empirical_tail(self):
        n, p, k = 500, 0.002, 8
        rng = np.random.default_rng(1)
        draws = rng.binomial(n, p, size=100_000)
        emp = np.mean(draws >= k)
        assert emp <= binomial_tail_upper(n, p, k) + 1e-3


class TestLemma2:
    def test_part1_formula(self):
        """(e C_s^2 / (k C))^k for d=2."""
        m, cs, c, k = 1000, 30, 1000, 5.0
        expected = (math.e * m * (cs / c) ** 2 / k) ** k
        assert lemma2_small_ball_count_tail(m, cs, c, k) == pytest.approx(
            min(1.0, expected), rel=1e-9
        )

    def test_part1_d3_tighter(self):
        v2 = lemma2_small_ball_count_tail(1000, 100, 1000, 10, d=2)
        v3 = lemma2_small_ball_count_tail(1000, 100, 1000, 10, d=3)
        assert v3 <= v2

    def test_part1_rejects_cs_above_c(self):
        with pytest.raises(ValueError):
            lemma2_small_ball_count_tail(10, 20, 10, 1)

    def test_part1_rejects_d1(self):
        with pytest.raises(ValueError):
            lemma2_small_ball_count_tail(10, 1, 10, 1, d=1)

    def test_part2_decays(self):
        vals = [lemma2_collision_tail(20, 500, lam) for lam in (2, 4, 8)]
        assert vals[0] >= vals[1] >= vals[2]

    def test_part2_probability_range(self):
        v = lemma2_collision_tail(5, 100, 3)
        assert 0.0 <= v <= 1.0

    def test_part1_validates_against_simulation(self):
        """The analytic tail dominates the simulated frequency of
        |B_s| >= k for a concrete system."""
        m, cs, c, k, d = 400, 40, 400, 6, 2
        rng = np.random.default_rng(2)
        p_small = (cs / c) ** d
        sims = rng.binomial(m, p_small, size=50_000)
        emp = np.mean(sims >= k)
        assert emp <= lemma2_small_ball_count_tail(m, cs, c, k, d) + 1e-3
