"""Tests for theorem applicability checkers."""

import pytest

from repro.bins import BinArray, two_class_bins, uniform_bins
from repro.theory import (
    applicable_theorems,
    corollary1_applies,
    theorem1_applies,
    theorem2_applies,
    theorem3_applies,
    theorem5_applies,
)


class TestTheorem1:
    def test_m_at_least_n_squared(self):
        bins = uniform_bins(10, 100)  # C = 1000 >= n^2 = 100
        assert theorem1_applies(bins).applies

    def test_small_cs_clause(self):
        # 990 big bins of cap 100, 10 small of cap 1 -> C_s tiny
        bins = two_class_bins(10, 990, 1, 100)
        assert theorem1_applies(bins).applies

    def test_fails_when_cs_large_and_m_small(self):
        bins = uniform_bins(1000, 1)  # all small, C = n
        assert not theorem1_applies(bins).applies

    def test_m_must_equal_c(self):
        bins = uniform_bins(10, 100)
        assert not theorem1_applies(bins, m=5).applies

    def test_explain_lists_clauses(self):
        report = theorem1_applies(uniform_bins(10, 100))
        text = report.explain()
        assert "m = C" in text and "n^2" in text

    def test_bool_protocol(self):
        assert bool(theorem1_applies(uniform_bins(10, 100)))


class TestTheorem2:
    def test_all_big_bins(self):
        bins = uniform_bins(100, 50)  # threshold ln(100)~4.6, all big, C_s=0
        assert theorem2_applies(bins).applies

    def test_d_clause(self):
        bins = uniform_bins(100, 50)
        assert not theorem2_applies(bins, d=1).applies

    def test_cs_bound_clause(self):
        # mostly unit bins: C_s = 900 > C^(1/2) sqrt-ish bound
        bins = two_class_bins(900, 10, 1, 100)
        report = theorem2_applies(bins)
        assert not report.applies


class TestTheorem3:
    def test_typical_system(self, two_class_1000):
        assert theorem3_applies(two_class_1000).applies

    def test_requires_m_equals_c(self, two_class_1000):
        assert not theorem3_applies(two_class_1000, m=3).applies

    def test_requires_d2(self, two_class_1000):
        assert not theorem3_applies(two_class_1000, d=1).applies


class TestCorollary1:
    def test_uniform_big_capacity(self):
        bins = uniform_bins(100, 10)
        assert corollary1_applies(bins, m=3 * 100 * 10).applies

    def test_non_uniform_fails(self):
        bins = two_class_bins(5, 5, 1, 10)
        assert not corollary1_applies(bins, m=bins.total_capacity).applies

    def test_non_multiple_m_fails(self):
        bins = uniform_bins(100, 10)
        assert not corollary1_applies(bins, m=1001).applies

    def test_tiny_capacity_fails(self):
        bins = uniform_bins(10**6, 1)  # lnln(1e6) ~ 2.6 > 1
        assert not corollary1_applies(bins, m=10**6).applies


class TestTheorem5:
    def test_half_big_bins(self):
        bins = two_class_bins(50, 50, 1, 10)
        assert theorem5_applies(bins, q=10).applies

    def test_no_bin_reaches_q(self):
        bins = uniform_bins(100, 2)
        assert not theorem5_applies(bins, q=50).applies

    def test_q_below_loglog_fails(self):
        bins = two_class_bins(50, 50, 1, 2)
        report = theorem5_applies(bins, q=2, loglog_factor=10.0)
        assert not report.applies

    def test_alpha_min_respected(self):
        bins = two_class_bins(99, 1, 1, 50)
        assert not theorem5_applies(bins, q=50, alpha_min=0.5).applies


class TestApplicableTheorems:
    def test_returns_all_five(self, two_class_1000):
        reports = applicable_theorems(two_class_1000)
        names = {r.theorem for r in reports}
        assert names == {"Theorem 1", "Theorem 2", "Theorem 3", "Corollary 1", "Theorem 5"}

    def test_theorem3_usually_applies(self):
        for bins in (uniform_bins(50, 2), two_class_bins(10, 10, 1, 8), BinArray([1, 2, 3])):
            reports = {r.theorem: r.applies for r in applicable_theorems(bins)}
            assert reports["Theorem 3"]
