"""Tests for the theorem self-check harness."""

import pytest

from repro.theory.selfcheck import verify_all


class TestVerifyAll:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return verify_all(n=400, seed=11)

    def test_all_claims_present(self, outcomes):
        claims = {o.claim for o in outcomes}
        assert len(claims) == 6
        assert any("Observation 1" in c for c in claims)
        assert any("Lemma 1" in c for c in claims)
        assert any("Theorem 3" in c for c in claims)
        assert any("Theorem 5" in c for c in claims)

    def test_all_pass_at_default_settings(self, outcomes):
        failed = [o.claim for o in outcomes if not o.passed]
        assert not failed, f"failed checks: {failed}"

    def test_rows_render(self, outcomes):
        for o in outcomes:
            row = o.row()
            assert row[0] == o.claim
            assert row[3] in ("ok", "FAIL")

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            verify_all(n=10)

    def test_deterministic_in_seed(self):
        a = verify_all(n=400, seed=3)
        b = verify_all(n=400, seed=3)
        assert [o.measured for o in a] == [o.measured for o in b]
