"""Tests for the analytical bound functions."""

import math

import pytest

from repro.theory import (
    corollary1_bound,
    loglog_over_logd,
    observation1_bound,
    observation2_bound,
    theorem1_bound,
    theorem2_bound,
    theorem3_bound,
    theorem4_standard_game,
    theorem5_bound,
)


class TestLogLog:
    def test_value(self):
        assert loglog_over_logd(10_000, 2) == pytest.approx(
            math.log(math.log(10_000)) / math.log(2)
        )

    def test_small_n_clamped(self):
        assert loglog_over_logd(2, 2) == 0.0

    def test_monotone_in_n(self):
        assert loglog_over_logd(10**6, 2) > loglog_over_logd(10**3, 2)

    def test_decreasing_in_d(self):
        assert loglog_over_logd(10_000, 4) < loglog_over_logd(10_000, 2)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            loglog_over_logd(0, 2)

    def test_rejects_d1(self):
        with pytest.raises(ValueError):
            loglog_over_logd(100, 1)

    def test_paper_number(self):
        """The paper quotes lnln(10,000) ~ 2.22."""
        assert math.log(math.log(10_000)) == pytest.approx(2.22, abs=0.01)


class TestSimpleBounds:
    def test_observation1(self):
        assert observation1_bound() == 4.0

    def test_theorem1(self):
        assert theorem1_bound(2.0) == 12.0

    def test_theorem1_rejects_bad_kappa(self):
        with pytest.raises(ValueError):
            theorem1_bound(0)

    def test_theorem2(self):
        assert theorem2_bound(1.0) == 10.0

    def test_theorem3_composition(self):
        assert theorem3_bound(10_000, 2, constant=1.5) == pytest.approx(
            loglog_over_logd(10_000, 2) + 1.5
        )

    def test_corollary1(self):
        assert corollary1_bound(3.0, constant=2.0) == 5.0

    def test_corollary1_rejects_negative_k(self):
        with pytest.raises(ValueError):
            corollary1_bound(-1)


class TestTheorem4:
    def test_average_plus_gap(self):
        val = theorem4_standard_game(m=100_000, n=1000, d=2)
        assert val == pytest.approx(100.0 + loglog_over_logd(1000, 2))

    def test_gap_independent_of_m(self):
        g1 = theorem4_standard_game(10_000, 100, 2) - 100.0
        g2 = theorem4_standard_game(1_000_000, 100, 2) - 10_000.0
        assert g1 == pytest.approx(g2)

    def test_rejects_negative_m(self):
        with pytest.raises(ValueError):
            theorem4_standard_game(-1, 10, 2)


class TestObservation2:
    def test_m_equals_nc(self):
        """m = n*c gives the Section-4.1 form 1 + lnln(n)/c."""
        n, c = 10_000, 4
        val = observation2_bound(m=n * c, n=n, capacity=c)
        assert val == pytest.approx(1 + math.log(math.log(n)) / c)

    def test_decreasing_in_capacity(self):
        n = 10_000
        v2 = observation2_bound(2 * n, n, 2)
        v8 = observation2_bound(8 * n, n, 8)
        assert v8 < v2

    def test_paper_figure1_predictions(self):
        """Section 4.1: max load 'very close to 1 + lnln(n)/c' for c>=2."""
        n = 10_000
        for c in (2, 3, 4, 8):
            pred = observation2_bound(c * n, n, c)
            assert pred == pytest.approx(1 + math.log(math.log(n)) / c, abs=0.35)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            observation2_bound(10, 10, 0)


class TestTheorem5:
    def test_constant_for_growing_q(self):
        """With q = lnln(n)-scale, the bound is O(1): k/alpha + O(1)."""
        val = theorem5_bound(k=1.0, alpha=0.5, q=10.0, n=10**6)
        assert val < 1.0 / 0.5 + 1.0

    def test_k_over_alpha_term(self):
        lo = theorem5_bound(k=1.0, alpha=1.0, q=100.0, n=1000)
        hi = theorem5_bound(k=1.0, alpha=0.25, q=100.0, n=1000)
        assert hi > lo

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            theorem5_bound(1, 0.0, 5, 100)
        with pytest.raises(ValueError):
            theorem5_bound(1, 1.5, 5, 100)

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            theorem5_bound(1, 0.5, 0, 100)
