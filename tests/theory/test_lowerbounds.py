"""Tests for the baseline growth-rate formulas."""

import math

import numpy as np
import pytest

from repro.bins import uniform_bins
from repro.core import one_choice
from repro.theory import (
    one_choice_gap_heavy,
    one_choice_max_heavy,
    one_choice_max_light,
    two_choice_gap,
)


class TestFormulas:
    def test_light_value(self):
        n = 10_000
        assert one_choice_max_light(n) == pytest.approx(
            math.log(n) / math.log(math.log(n))
        )

    def test_light_rejects_small_n(self):
        with pytest.raises(ValueError):
            one_choice_max_light(2)

    def test_heavy_gap_grows_with_m(self):
        assert one_choice_gap_heavy(10**6, 100) > one_choice_gap_heavy(10**4, 100)

    def test_heavy_max_composition(self):
        m, n = 10**5, 100
        assert one_choice_max_heavy(m, n) == pytest.approx(
            m / n + one_choice_gap_heavy(m, n)
        )

    def test_heavy_rejects_bad_args(self):
        with pytest.raises(ValueError):
            one_choice_gap_heavy(-1, 10)
        with pytest.raises(ValueError):
            one_choice_gap_heavy(10, 1)

    def test_two_choice_gap_matches_bounds_module(self):
        from repro.theory import loglog_over_logd

        assert two_choice_gap(1000, 2) == loglog_over_logd(1000, 2)

    def test_one_choice_gap_dwarfs_two_choice_gap(self):
        """The exponential separation the whole literature rests on."""
        n = 10_000
        m = 100 * n
        assert one_choice_gap_heavy(m, n) > 10 * two_choice_gap(n, 2)


class TestAgainstSimulation:
    def test_light_prediction_tracks_simulation(self):
        """One-choice m=n max load is within a factor ~2 of ln n/lnln n."""
        n = 5000
        sims = [one_choice(uniform_bins(n, 1), seed=s).max_load for s in range(10)]
        measured = float(np.mean(sims))
        predicted = one_choice_max_light(n)
        assert 0.5 * predicted <= measured <= 2.0 * predicted

    def test_heavy_prediction_tracks_simulation(self):
        """Heavy one-choice max load near m/n + sqrt(2 (m/n) ln n)."""
        n, mult = 500, 200
        m = mult * n
        sims = [one_choice(uniform_bins(n, 1), m=m, seed=s).max_load for s in range(5)]
        measured = float(np.mean(sims))
        predicted = one_choice_max_heavy(m, n)
        assert measured == pytest.approx(predicted, rel=0.15)
