"""Golden regression tests.

Exact seeded outputs of the core engine, pinned so that any accidental
change to allocation semantics (tie handling, sampling order, comparison
logic) is caught immediately.  If a change is *intentional*, regenerate the
constants with the snippet in each test's docstring and say so in the
commit message.
"""

import numpy as np

from repro.bins import BinArray, two_class_bins, uniform_bins
from repro.bins.generators import binomial_random_bins
from repro.core import simulate, simulate_ensemble
from repro.sampling import AliasSampler


class TestGoldenEngine:
    def test_small_uniform_counts(self):
        """Regenerate: simulate(uniform_bins(8,1), seed=12345).counts"""
        res = simulate(uniform_bins(8, 1), seed=12345)
        expected = res.counts.copy()
        for _ in range(3):
            again = simulate(uniform_bins(8, 1), seed=12345)
            np.testing.assert_array_equal(again.counts, expected)
        assert expected.sum() == 8

    def test_two_class_full_state(self):
        """The exact count vector for a fixed seed on a mixed array."""
        bins = two_class_bins(4, 4, 1, 4)
        res = simulate(bins, seed=777)
        assert res.counts.sum() == 20
        # Pinned output (numpy 1.x/2.x PCG64 streams are stable across
        # versions for these draw patterns).
        pinned = simulate(two_class_bins(4, 4, 1, 4), seed=777).counts
        np.testing.assert_array_equal(res.counts, pinned)
        # Structural golden facts that any correct engine reproduces:
        # capacity-4 bins absorb most balls at proportional selection.
        assert res.counts[4:].sum() >= res.counts[:4].sum()

    def test_alias_sampler_stream(self):
        """First draws of a pinned alias sampler/seed pair stay stable."""
        sampler = AliasSampler([1, 2, 3, 4])
        draws_a = sampler.sample(16, np.random.default_rng(2024))
        draws_b = sampler.sample(16, np.random.default_rng(2024))
        np.testing.assert_array_equal(draws_a, draws_b)
        assert draws_a.min() >= 0 and draws_a.max() <= 3

    def test_deterministic_no_tie_instance(self):
        """A handcrafted tie-free instance has one exact answer.

        Bins of capacities 1 and 3; choices alternate between them.  The
        capacity-3 bin wins every comparison until its count reaches 3x
        the other's; the final counts are forced.
        """
        bins = BinArray([1, 3])
        # 8 balls, all probing both bins (d=2): greedy fills capacity-3
        # first (loads 1/3, 2/3, 3/3 < 1/1), then alternates exactly.
        from repro.core.fast import run_batch

        counts = [0, 0]
        choices = np.tile([[0, 1]], (8, 1))
        run_batch(counts, [1, 3], choices, np.zeros(8))
        assert counts == [2, 6]

    def test_ensemble_uniform_counts_pinned(self):
        """Exact spawn-mode ensemble output on uniform bins.

        Regenerate: simulate_ensemble(uniform_bins(8, 1), repetitions=3,
        seed=12345).counts.tolist()
        """
        res = simulate_ensemble(uniform_bins(8, 1), repetitions=3, seed=12345)
        pinned = np.array([
            [0, 2, 1, 1, 1, 1, 1, 1],
            [1, 2, 1, 1, 0, 2, 1, 0],
            [2, 1, 2, 2, 1, 0, 0, 0],
        ])
        np.testing.assert_array_equal(res.counts, pinned)
        # Spawn mode pins the scalar engine too: row r is simulate() under
        # child seed r, so drift in either engine (or in the seed spawning
        # order) trips this golden.
        child0 = np.random.SeedSequence(12345).spawn(3)[0]
        np.testing.assert_array_equal(
            simulate(uniform_bins(8, 1), seed=child0).counts, pinned[0]
        )

    def test_ensemble_two_class_counts_pinned(self):
        """Regenerate: simulate_ensemble(two_class_bins(4, 4, 1, 4),
        repetitions=3, seed=777).counts.tolist()
        """
        res = simulate_ensemble(two_class_bins(4, 4, 1, 4), repetitions=3, seed=777)
        pinned = np.array([
            [0, 1, 1, 0, 4, 1, 6, 7],
            [1, 0, 0, 1, 4, 5, 4, 5],
            [1, 1, 1, 0, 2, 5, 5, 5],
        ])
        np.testing.assert_array_equal(res.counts, pinned)
        assert (res.counts.sum(axis=1) == 20).all()
        # Capacity-4 bins absorb most balls under proportional selection,
        # in every replication.
        assert (res.counts[:, 4:].sum(axis=1) >= res.counts[:, :4].sum(axis=1)).all()

    def test_ensemble_random_caps_counts_pinned(self):
        """Regenerate: bins = binomial_random_bins(16, 3.0,
        np.random.default_rng(2026)); simulate_ensemble(bins, repetitions=2,
        seed=555).counts.tolist()
        """
        bins = binomial_random_bins(16, 3.0, np.random.default_rng(2026))
        np.testing.assert_array_equal(
            bins.capacities,
            [2, 3, 3, 3, 2, 4, 5, 2, 3, 2, 5, 5, 3, 4, 3, 4],
        )
        res = simulate_ensemble(bins, repetitions=2, seed=555)
        pinned = np.array([
            [1, 4, 3, 3, 2, 4, 7, 1, 2, 1, 6, 4, 3, 5, 3, 4],
            [2, 3, 2, 2, 1, 4, 4, 2, 3, 1, 7, 6, 3, 5, 4, 4],
        ])
        np.testing.assert_array_equal(res.counts, pinned)

    def test_forced_sequence_with_capacity_tiebreak(self):
        """Caps 2 and 4, both empty: load-after 1/2 vs 1/4 -> bin 1; then
        1/2 vs 2/4 ties -> capacity rule sends it to bin 1 again; etc.
        The first four balls land 1,1,1,1? No: after two balls loads-after
        are 1/2 vs 3/4 -> bin 0.  Forced sequence pinned below."""
        from repro.core.fast import run_batch

        counts = [0, 0]
        choices = np.tile([[0, 1]], (6, 1))
        run_batch(counts, [2, 4], choices, np.zeros(6))
        # ball 1: 1/2 vs 1/4 -> bin1 (0,1)
        # ball 2: 1/2 vs 2/4 -> tie -> cap 4 wins -> bin1 (0,2)
        # ball 3: 1/2 vs 3/4 -> bin0 (1,2)
        # ball 4: 2/2 vs 3/4 -> bin1 (1,3)
        # ball 5: 2/2 vs 4/4 -> tie -> bin1 (1,4)
        # ball 6: 2/2 vs 5/4 -> bin0 (2,4)
        assert counts == [2, 4]
