"""Golden regression tests.

Exact seeded outputs of the core engine, pinned so that any accidental
change to allocation semantics (tie handling, sampling order, comparison
logic) is caught immediately.  If a change is *intentional*, regenerate the
constants with the snippet in each test's docstring and say so in the
commit message.
"""

import numpy as np

from repro.bins import BinArray, two_class_bins, uniform_bins
from repro.bins.generators import binomial_random_bins
from repro.core import (
    simulate,
    simulate_batched_ensemble,
    simulate_ensemble,
    simulate_weighted_ensemble,
)
from repro.experiments import run_experiment
from repro.sampling import AliasSampler


def ensemble_series(experiment_id, **kwargs):
    """One ensemble-engine experiment run at the goldens' shared seed."""
    return run_experiment(
        experiment_id, seed=20260612, engine="ensemble", **kwargs
    ).series


class TestGoldenEngine:
    def test_small_uniform_counts(self):
        """Regenerate: simulate(uniform_bins(8,1), seed=12345).counts"""
        res = simulate(uniform_bins(8, 1), seed=12345)
        expected = res.counts.copy()
        for _ in range(3):
            again = simulate(uniform_bins(8, 1), seed=12345)
            np.testing.assert_array_equal(again.counts, expected)
        assert expected.sum() == 8

    def test_two_class_full_state(self):
        """The exact count vector for a fixed seed on a mixed array."""
        bins = two_class_bins(4, 4, 1, 4)
        res = simulate(bins, seed=777)
        assert res.counts.sum() == 20
        # Pinned output (numpy 1.x/2.x PCG64 streams are stable across
        # versions for these draw patterns).
        pinned = simulate(two_class_bins(4, 4, 1, 4), seed=777).counts
        np.testing.assert_array_equal(res.counts, pinned)
        # Structural golden facts that any correct engine reproduces:
        # capacity-4 bins absorb most balls at proportional selection.
        assert res.counts[4:].sum() >= res.counts[:4].sum()

    def test_alias_sampler_stream(self):
        """First draws of a pinned alias sampler/seed pair stay stable."""
        sampler = AliasSampler([1, 2, 3, 4])
        draws_a = sampler.sample(16, np.random.default_rng(2024))
        draws_b = sampler.sample(16, np.random.default_rng(2024))
        np.testing.assert_array_equal(draws_a, draws_b)
        assert draws_a.min() >= 0 and draws_a.max() <= 3

    def test_deterministic_no_tie_instance(self):
        """A handcrafted tie-free instance has one exact answer.

        Bins of capacities 1 and 3; choices alternate between them.  The
        capacity-3 bin wins every comparison until its count reaches 3x
        the other's; the final counts are forced.
        """
        bins = BinArray([1, 3])
        # 8 balls, all probing both bins (d=2): greedy fills capacity-3
        # first (loads 1/3, 2/3, 3/3 < 1/1), then alternates exactly.
        from repro.core.fast import run_batch

        counts = [0, 0]
        choices = np.tile([[0, 1]], (8, 1))
        run_batch(counts, [1, 3], choices, np.zeros(8))
        assert counts == [2, 6]

    def test_ensemble_uniform_counts_pinned(self):
        """Exact spawn-mode ensemble output on uniform bins.

        Regenerate: simulate_ensemble(uniform_bins(8, 1), repetitions=3,
        seed=12345).counts.tolist()
        """
        res = simulate_ensemble(uniform_bins(8, 1), repetitions=3, seed=12345)
        pinned = np.array([
            [0, 2, 1, 1, 1, 1, 1, 1],
            [1, 2, 1, 1, 0, 2, 1, 0],
            [2, 1, 2, 2, 1, 0, 0, 0],
        ])
        np.testing.assert_array_equal(res.counts, pinned)
        # Spawn mode pins the scalar engine too: row r is simulate() under
        # child seed r, so drift in either engine (or in the seed spawning
        # order) trips this golden.
        child0 = np.random.SeedSequence(12345).spawn(3)[0]
        np.testing.assert_array_equal(
            simulate(uniform_bins(8, 1), seed=child0).counts, pinned[0]
        )

    def test_ensemble_two_class_counts_pinned(self):
        """Regenerate: simulate_ensemble(two_class_bins(4, 4, 1, 4),
        repetitions=3, seed=777).counts.tolist()
        """
        res = simulate_ensemble(two_class_bins(4, 4, 1, 4), repetitions=3, seed=777)
        pinned = np.array([
            [0, 1, 1, 0, 4, 1, 6, 7],
            [1, 0, 0, 1, 4, 5, 4, 5],
            [1, 1, 1, 0, 2, 5, 5, 5],
        ])
        np.testing.assert_array_equal(res.counts, pinned)
        assert (res.counts.sum(axis=1) == 20).all()
        # Capacity-4 bins absorb most balls under proportional selection,
        # in every replication.
        assert (res.counts[:, 4:].sum(axis=1) >= res.counts[:, :4].sum(axis=1)).all()

    def test_ensemble_random_caps_counts_pinned(self):
        """Regenerate: bins = binomial_random_bins(16, 3.0,
        np.random.default_rng(2026)); simulate_ensemble(bins, repetitions=2,
        seed=555).counts.tolist()
        """
        bins = binomial_random_bins(16, 3.0, np.random.default_rng(2026))
        np.testing.assert_array_equal(
            bins.capacities,
            [2, 3, 3, 3, 2, 4, 5, 2, 3, 2, 5, 5, 3, 4, 3, 4],
        )
        res = simulate_ensemble(bins, repetitions=2, seed=555)
        pinned = np.array([
            [1, 4, 3, 3, 2, 4, 7, 1, 2, 1, 6, 4, 3, 5, 3, 4],
            [2, 3, 2, 2, 1, 4, 4, 2, 3, 1, 7, 6, 3, 5, 4, 4],
        ])
        np.testing.assert_array_equal(res.counts, pinned)

    def test_batched_ensemble_counts_pinned(self):
        """Exact spawn-mode stale-view ensemble output.

        Regenerate: simulate_batched_ensemble(uniform_bins(8, 1),
        repetitions=3, batch_size=4, seed=12345).counts.tolist()
        """
        res = simulate_batched_ensemble(
            uniform_bins(8, 1), repetitions=3, batch_size=4, seed=12345
        )
        pinned = np.array([
            [1, 2, 2, 0, 1, 1, 1, 0],
            [2, 3, 0, 0, 0, 1, 2, 0],
            [2, 1, 1, 0, 1, 1, 1, 1],
        ])
        np.testing.assert_array_equal(res.counts, pinned)
        assert (res.counts.sum(axis=1) == 8).all()

    def test_weighted_ensemble_state_pinned(self):
        """Exact spawn-mode weighted ensemble output (counts and masses).

        Regenerate: bins = two_class_bins(3, 3, 1, 4);
        sizes = np.round(np.linspace(0.5, 2.0, 10), 3);
        res = simulate_weighted_ensemble(bins, sizes, repetitions=2, seed=777);
        res.counts.tolist(); res.masses.tolist()
        """
        bins = two_class_bins(3, 3, 1, 4)
        sizes = np.round(np.linspace(0.5, 2.0, 10), 3)
        res = simulate_weighted_ensemble(bins, sizes, repetitions=2, seed=777)
        np.testing.assert_array_equal(
            res.counts, [[0, 0, 1, 0, 3, 6], [0, 0, 0, 4, 2, 4]]
        )
        np.testing.assert_allclose(
            res.masses,
            [[0.0, 0.0, 1.667, 0.0, 3.333, 7.5],
             [0.0, 0.0, 0.0, 5.834, 1.333, 5.333]],
            rtol=1e-12,
        )
        np.testing.assert_allclose(
            res.masses.sum(axis=1), float(sizes.sum()), rtol=1e-12
        )

    def test_ring_ensemble_counts_pinned(self):
        """Exact spawn-mode ring-allocation ensemble output.

        Regenerate: ring = ConsistentHashRing.random(6,
        seed=np.random.default_rng(2026));
        allocate_requests_ensemble(ring, 30, repetitions=2, d=2,
        capacity_aware=True, seed=555).counts.tolist()  (and .capacities)
        """
        from repro.p2p import allocate_requests_ensemble
        from repro.p2p.ring import ConsistentHashRing

        ring = ConsistentHashRing.random(6, seed=np.random.default_rng(2026))
        res = allocate_requests_ensemble(
            ring, 30, repetitions=2, d=2, capacity_aware=True, seed=555
        )
        np.testing.assert_array_equal(
            res.capacities, [115, 70, 220, 354, 203, 38]
        )
        np.testing.assert_array_equal(
            res.counts, [[2, 2, 7, 12, 7, 0], [3, 2, 6, 11, 7, 1]]
        )

    def test_forced_sequence_with_capacity_tiebreak(self):
        """Caps 2 and 4, both empty: load-after 1/2 vs 1/4 -> bin 1; then
        1/2 vs 2/4 ties -> capacity rule sends it to bin 1 again; etc.
        The first four balls land 1,1,1,1? No: after two balls loads-after
        are 1/2 vs 3/4 -> bin 0.  Forced sequence pinned below."""
        from repro.core.fast import run_batch

        counts = [0, 0]
        choices = np.tile([[0, 1]], (6, 1))
        run_batch(counts, [2, 4], choices, np.zeros(6))
        # ball 1: 1/2 vs 1/4 -> bin1 (0,1)
        # ball 2: 1/2 vs 2/4 -> tie -> cap 4 wins -> bin1 (0,2)
        # ball 3: 1/2 vs 3/4 -> bin0 (1,2)
        # ball 4: 2/2 vs 3/4 -> bin1 (1,3)
        # ball 5: 2/2 vs 4/4 -> tie -> bin1 (1,4)
        # ball 6: 2/2 vs 5/4 -> bin0 (2,4)
        assert counts == [2, 4]


class TestGoldenEnsembleFigures:
    """Ensemble-engine goldens for every figure migrated after fig01/02–05/16.

    Blocked-mode ensemble results are deterministic in (seed, block_size);
    every pin below uses the experiments' shared default seed 20260612 and
    the executor's default block partitioning, so any drift in the lockstep
    kernels, the blocked seeding, or the per-experiment reducers moves these
    exact numbers.  Regenerate any pin with the snippet in its docstring
    (the `ensemble_series` helper at the top of this module) and say so in
    the commit message.
    """

    def test_fig06_fig07_pinned(self):
        """Regenerate: ensemble_series("fig06", repetitions=5, n=100,
        step_pct=50)["max_load"].tolist() — and the same call for "fig07"
        / "pct_small_has_max"."""
        fig06 = ensemble_series("fig06", repetitions=5, n=100, step_pct=50)
        np.testing.assert_allclose(
            fig06["max_load"], [2.6, 1.24, 1.1800000000000002], rtol=1e-12
        )
        fig07 = ensemble_series("fig07", repetitions=5, n=100, step_pct=50)
        np.testing.assert_allclose(
            fig07["pct_small_has_max"], [100.0, 0.0, 0.0], rtol=1e-12
        )

    def test_fig08_fig09_pinned(self):
        """Regenerate: ensemble_series("fig08", repetitions=8, n=200,
        mean_cap_grid=(1.0, 4.0))["max_load"].tolist() — and
        ensemble_series("fig09", repetitions=8, n=200,
        mean_cap_grid=(1.0, 6.0))."""
        fig08 = ensemble_series("fig08", repetitions=8, n=200, mean_cap_grid=(1.0, 4.0))
        np.testing.assert_allclose(
            fig08["max_load"], [2.625, 1.4625000000000001], rtol=1e-12
        )
        fig09 = ensemble_series("fig09", repetitions=8, n=200, mean_cap_grid=(1.0, 6.0))
        np.testing.assert_allclose(fig09["max_in_size_1"], [100.0, 0.0], rtol=1e-12)
        np.testing.assert_allclose(fig09["max_in_size_6"], [0.0, 87.5], rtol=1e-12)

    def test_fig10_fig12_pinned(self):
        """Regenerate: ensemble_series("fig10", repetitions=4)
        ["32x2-bins"][:3].tolist() — and ensemble_series("fig12",
        repetitions=3)["10000x8-bins"][:2].tolist()."""
        fig10 = ensemble_series("fig10", repetitions=4)
        np.testing.assert_allclose(
            fig10["32x2-bins"][:3], [1.5, 1.5, 1.5], rtol=1e-12
        )
        fig12 = ensemble_series("fig12", repetitions=3)
        np.testing.assert_allclose(
            fig12["10000x8-bins"][:2], [1.3333333333333333, 1.2916666666666667],
            rtol=1e-12,
        )

    def test_fig14_fig15_pinned(self):
        """Regenerate: ensemble_series("fig14", repetitions=4, max_bins=62)
        ["lin a=4"].tolist() — and the same call for "fig15" / "exp b=1.4"."""
        fig14 = ensemble_series("fig14", repetitions=4, max_bins=62)
        np.testing.assert_allclose(
            fig14["lin a=4"],
            [1.0, 1.2916666666666665, 1.2, 1.1690476190476191],
            rtol=1e-12,
        )
        fig15 = ensemble_series("fig15", repetitions=4, max_bins=62)
        np.testing.assert_allclose(
            fig15["exp b=1.4"],
            [1.125, 1.5416666666666667, 1.4166666666666665, 1.4083333333333332],
            rtol=1e-12,
        )

    def test_fig17_fig18_pinned(self):
        """Regenerate: ensemble_series("fig18", repetitions=20,
        capacities=(3,), t_grid=(1.0, 2.0))["capacities 1 and 3"].tolist()
        — and the same call for "fig17" / "optimal_exponent"."""
        fig18 = ensemble_series(
            "fig18", repetitions=20, capacities=(3,), t_grid=(1.0, 2.0)
        )
        np.testing.assert_allclose(fig18["capacities 1 and 3"], [1.9, 1.75], rtol=1e-12)
        fig17 = ensemble_series(
            "fig17", repetitions=20, capacities=(3,), t_grid=(1.0, 2.0)
        )
        np.testing.assert_allclose(fig17["optimal_exponent"], [2.0], rtol=1e-12)

    def test_ablations_pinned(self):
        """Regenerate: ensemble_series("abl_tiebreak", repetitions=5, n=100,
        fractions=(30, 70)) — likewise "abl_probability" (large_caps=(2, 8)),
        "abl_d" (d_values=(1, 2)), "abl_staleness" (batch_sizes=(1, 100))."""
        tie = ensemble_series("abl_tiebreak", repetitions=5, n=100, fractions=(30, 70))
        np.testing.assert_allclose(tie["max_capacity"], [2.0, 2.1], rtol=1e-12)
        np.testing.assert_allclose(tie["uniform"], [2.2, 2.1], rtol=1e-12)
        prob = ensemble_series("abl_probability", repetitions=5, n=100, large_caps=(2, 8))
        np.testing.assert_allclose(prob["proportional"], [2.1, 2.2], rtol=1e-12)
        np.testing.assert_allclose(prob["uniform"], [2.8, 3.0], rtol=1e-12)
        abl_d = ensemble_series("abl_d", repetitions=5, n=100, d_values=(1, 2))
        np.testing.assert_allclose(abl_d["measured"], [3.6, 1.45], rtol=1e-12)
        stale = ensemble_series("abl_staleness", repetitions=5, n=100, batch_sizes=(1, 100))
        np.testing.assert_allclose(stale["max_load"], [2.8, 4.0], rtol=1e-12)

    def test_related_work_pinned(self):
        """Regenerate: ensemble_series("rw_ring", repetitions=8, n_peers=20,
        requests_per_peer=5, d_values=(1, 2)) — and
        ensemble_series("abl_weighted", repetitions=8, n=20,
        sigmas=(0.0, 1.0))["max_over_avg_load"].tolist()."""
        ring = ensemble_series(
            "rw_ring", repetitions=8, n_peers=20, requests_per_peer=5, d_values=(1, 2)
        )
        np.testing.assert_allclose(
            ring["plain peers (max/avg requests)"], [4.05, 2.1], rtol=1e-12
        )
        np.testing.assert_allclose(
            ring["capacity-aware (max/avg load)"],
            [2.0441857738095237, 1.311281943459766], rtol=1e-12,
        )
        weighted = ensemble_series("abl_weighted", repetitions=8, n=20, sigmas=(0.0, 1.0))
        np.testing.assert_allclose(
            weighted["max_over_avg_load"], [1.25, 1.887137329354299], rtol=1e-12
        )
