"""Tests for placement metrics and the scenario simulator."""

import numpy as np
import pytest

from repro.storage import (
    Cluster,
    GreedyTwoChoice,
    RoundRobinBySlots,
    SingleChoice,
    compare_strategies,
    evaluate_placement,
    expansion_study,
    uniform_objects,
    unit_objects,
)


class TestEvaluatePlacement:
    def test_fill_computation(self):
        cluster = Cluster.homogeneous(2, 2)
        objs = unit_objects(4, rng=0)
        report = evaluate_placement([0, 0, 0, 1], objs, cluster)
        np.testing.assert_allclose(report.fill, [1.5, 0.5])
        assert report.max_fill == 1.5
        assert report.average_fill == 1.0

    def test_read_load_uses_popularity_and_bandwidth(self):
        from repro.storage import Disk, ObjectSet

        cluster = Cluster([Disk(1, bandwidth=1.0), Disk(1, bandwidth=4.0)])
        objs = ObjectSet(sizes=[1.0, 1.0], popularity=[0.5, 0.5])
        report = evaluate_placement([0, 1], objs, cluster)
        np.testing.assert_allclose(report.read_load, [0.5, 0.125])

    def test_objects_per_disk(self):
        cluster = Cluster.homogeneous(3)
        objs = unit_objects(5, rng=0)
        report = evaluate_placement([0, 0, 1, 1, 1], objs, cluster)
        np.testing.assert_array_equal(report.objects_per_disk, [2, 3, 0])

    def test_rejects_bad_assignment_shape(self):
        cluster = Cluster.homogeneous(2)
        objs = unit_objects(3, rng=0)
        with pytest.raises(ValueError):
            evaluate_placement([0, 1], objs, cluster)

    def test_rejects_out_of_range(self):
        cluster = Cluster.homogeneous(2)
        objs = unit_objects(2, rng=0)
        with pytest.raises(ValueError):
            evaluate_placement([0, 5], objs, cluster)

    def test_imbalance_one_when_perfect(self):
        cluster = Cluster.homogeneous(2, 2)
        objs = unit_objects(4, rng=0)
        report = evaluate_placement([0, 0, 1, 1], objs, cluster)
        assert report.fill_imbalance == pytest.approx(1.0)


class TestCompareStrategies:
    def test_reports_all_strategies(self):
        cluster = Cluster.homogeneous(10, 2)
        objs = unit_objects(cluster.total_capacity, rng=0)
        cmp_ = compare_strategies(
            [GreedyTwoChoice(), SingleChoice(), RoundRobinBySlots()],
            objs, cluster, repetitions=3, seed=1,
        )
        assert set(cmp_.reports) == {"greedy-2-choice", "single-choice", "round-robin"}
        assert cmp_.repetitions == 3

    def test_greedy_beats_single_choice(self):
        cluster = Cluster.homogeneous(30, 1).expand(10, 10)
        objs = unit_objects(cluster.total_capacity, rng=0)
        cmp_ = compare_strategies(
            [GreedyTwoChoice(), SingleChoice()], objs, cluster, repetitions=5, seed=2
        )
        assert cmp_.best_by("max_fill") == "greedy-2-choice"

    def test_rejects_non_strategy(self):
        cluster = Cluster.homogeneous(2)
        objs = unit_objects(2, rng=0)
        with pytest.raises(TypeError):
            compare_strategies(["not-a-strategy"], objs, cluster)

    def test_rejects_empty(self):
        cluster = Cluster.homogeneous(2)
        objs = unit_objects(2, rng=0)
        with pytest.raises(ValueError):
            compare_strategies([], objs, cluster)

    def test_table_rows(self):
        cluster = Cluster.homogeneous(4)
        objs = unit_objects(4, rng=0)
        cmp_ = compare_strategies([RoundRobinBySlots()], objs, cluster, repetitions=2, seed=0)
        rows = cmp_.table_rows()
        assert rows[0][0] == "round-robin"
        assert len(rows[0]) == 4


class TestExpansionStudy:
    def test_basic_outcome(self):
        cluster = Cluster.homogeneous(20, 2)
        objs = unit_objects(40, rng=0)
        study = expansion_study(
            cluster, objs, new_disks=5, new_capacity=8, seed=1
        )
        assert study.balls_moved_incremental >= 0
        assert study.balls_displaced_scratch >= study.balls_moved_incremental
        assert 0.0 <= study.migration_savings <= 1.0

    def test_incremental_fill_balanced(self):
        cluster = Cluster.homogeneous(10, 2)
        objs = unit_objects(20, rng=0)
        study = expansion_study(cluster, objs, new_disks=2, new_capacity=10, seed=2)
        fills = study.after_incremental.fill
        assert fills.max() - fills.min() <= 1.0

    def test_rejects_non_unit_objects(self):
        cluster = Cluster.homogeneous(4)
        objs = uniform_objects(4, rng=0)
        with pytest.raises(ValueError, match="unit-size"):
            expansion_study(cluster, objs, new_disks=1, new_capacity=4)
