"""Tests for placement metrics and the scenario simulator."""

import numpy as np
import pytest

from repro.storage import (
    Cluster,
    GreedyTwoChoice,
    RoundRobinBySlots,
    SingleChoice,
    compare_strategies,
    evaluate_placement,
    expansion_study,
    uniform_objects,
    unit_objects,
)


class TestEvaluatePlacement:
    def test_fill_computation(self):
        cluster = Cluster.homogeneous(2, 2)
        objs = unit_objects(4, rng=0)
        report = evaluate_placement([0, 0, 0, 1], objs, cluster)
        np.testing.assert_allclose(report.fill, [1.5, 0.5])
        assert report.max_fill == 1.5
        assert report.average_fill == 1.0

    def test_read_load_uses_popularity_and_bandwidth(self):
        from repro.storage import Disk, ObjectSet

        cluster = Cluster([Disk(1, bandwidth=1.0), Disk(1, bandwidth=4.0)])
        objs = ObjectSet(sizes=[1.0, 1.0], popularity=[0.5, 0.5])
        report = evaluate_placement([0, 1], objs, cluster)
        np.testing.assert_allclose(report.read_load, [0.5, 0.125])

    def test_objects_per_disk(self):
        cluster = Cluster.homogeneous(3)
        objs = unit_objects(5, rng=0)
        report = evaluate_placement([0, 0, 1, 1, 1], objs, cluster)
        np.testing.assert_array_equal(report.objects_per_disk, [2, 3, 0])

    def test_rejects_bad_assignment_shape(self):
        cluster = Cluster.homogeneous(2)
        objs = unit_objects(3, rng=0)
        with pytest.raises(ValueError):
            evaluate_placement([0, 1], objs, cluster)

    def test_rejects_out_of_range(self):
        cluster = Cluster.homogeneous(2)
        objs = unit_objects(2, rng=0)
        with pytest.raises(ValueError):
            evaluate_placement([0, 5], objs, cluster)

    def test_imbalance_one_when_perfect(self):
        cluster = Cluster.homogeneous(2, 2)
        objs = unit_objects(4, rng=0)
        report = evaluate_placement([0, 0, 1, 1], objs, cluster)
        assert report.fill_imbalance == pytest.approx(1.0)


class TestReadImbalanceBandwidthWeighting:
    """read_imbalance divides by the bandwidth-weighted ideal share.

    The pre-fix code divided the max read load by the *uniform* ideal
    (``Σ read_load / n``), so on heterogeneous clusters a fast disk
    legitimately carrying proportionally more traffic was reported as
    imbalance.
    """

    def _cluster(self):
        from repro.storage import Disk

        return Cluster([Disk(1, bandwidth=1.0), Disk(1, bandwidth=4.0)])

    def test_fast_disk_carrying_all_traffic(self):
        from repro.storage import ObjectSet

        # All popularity on the 4x-bandwidth disk: its read load is
        # 1/4 = 0.25 against a fair share of 1/(1+4) = 0.2, so the true
        # imbalance is 1.25.  The pre-fix uniform-ideal formula reported
        # 0.25 * 2 / 0.25 = 2.0.
        objs = ObjectSet(sizes=[1.0, 1.0], popularity=[0.0, 1.0])
        report = evaluate_placement([0, 1], objs, self._cluster())
        assert report.read_imbalance == pytest.approx(1.25)

    def test_bandwidth_proportional_traffic_is_perfect(self):
        from repro.storage import ObjectSet

        objs = ObjectSet(sizes=[1.0, 1.0], popularity=[0.2, 0.8])
        report = evaluate_placement([0, 1], objs, self._cluster())
        assert report.read_imbalance == pytest.approx(1.0)

    def test_slow_disk_overloaded_scores_higher_than_uniform_ideal(self):
        from repro.storage import ObjectSet

        # Half the traffic on the slow disk: read loads [0.5, 0.125],
        # fair per-bandwidth rate 0.2, so 0.5/0.2 = 2.5 (the uniform
        # ideal under-reported this as 1.6).
        objs = ObjectSet(sizes=[1.0, 1.0], popularity=[0.5, 0.5])
        report = evaluate_placement([0, 1], objs, self._cluster())
        assert report.read_imbalance == pytest.approx(2.5)

    def test_homogeneous_cluster_unchanged(self):
        # On equal bandwidths the bandwidth-weighted ideal equals the
        # uniform one, so homogeneous numbers are identical pre/post fix.
        cluster = Cluster.homogeneous(4, 1)
        objs = unit_objects(8, zipf_s=1.0, rng=3)
        report = evaluate_placement([0, 0, 0, 1, 1, 2, 2, 3], objs, cluster)
        uniform_ideal = report.read_load.max() * 4 / report.read_load.sum()
        assert report.read_imbalance == pytest.approx(uniform_ideal)


class TestMetricsEdgeCases:
    def test_single_disk_cluster(self):
        cluster = Cluster.homogeneous(1, 4)
        objs = unit_objects(3, rng=0)
        report = evaluate_placement([0, 0, 0], objs, cluster)
        assert report.read_imbalance == pytest.approx(1.0)
        assert report.fill_imbalance == pytest.approx(1.0)
        assert report.max_fill == pytest.approx(0.75)

    def test_zero_read_traffic_reports_zero(self):
        import numpy as np

        from repro.storage import PlacementReport

        report = PlacementReport(
            fill=np.zeros(2),
            read_load=np.zeros(2),
            stored_mass=np.zeros(2),
            objects_per_disk=np.zeros(2, dtype=np.int64),
            total_capacity=2.0,
            bandwidths=np.asarray([1.0, 4.0]),
        )
        assert report.read_imbalance == 0.0
        assert report.fill_imbalance == 0.0

    def test_empty_assignment_rejected_with_shape_error(self):
        # An ObjectSet is never empty, so the only "empty assignment" a
        # caller can produce is a shape mismatch — which must raise, not
        # silently report zeros.
        cluster = Cluster.homogeneous(2)
        objs = unit_objects(1, rng=0)
        with pytest.raises(ValueError, match="shape"):
            evaluate_placement([], objs, cluster)


class TestCompareStrategies:
    def test_reports_all_strategies(self):
        cluster = Cluster.homogeneous(10, 2)
        objs = unit_objects(cluster.total_capacity, rng=0)
        cmp_ = compare_strategies(
            [GreedyTwoChoice(), SingleChoice(), RoundRobinBySlots()],
            objs, cluster, repetitions=3, seed=1,
        )
        assert set(cmp_.reports) == {"greedy-2-choice", "single-choice", "round-robin"}
        assert cmp_.repetitions == 3

    def test_greedy_beats_single_choice(self):
        cluster = Cluster.homogeneous(30, 1).expand(10, 10)
        objs = unit_objects(cluster.total_capacity, rng=0)
        cmp_ = compare_strategies(
            [GreedyTwoChoice(), SingleChoice()], objs, cluster, repetitions=5, seed=2
        )
        assert cmp_.best_by("max_fill") == "greedy-2-choice"

    def test_rejects_non_strategy(self):
        cluster = Cluster.homogeneous(2)
        objs = unit_objects(2, rng=0)
        with pytest.raises(TypeError):
            compare_strategies(["not-a-strategy"], objs, cluster)

    def test_rejects_empty(self):
        cluster = Cluster.homogeneous(2)
        objs = unit_objects(2, rng=0)
        with pytest.raises(ValueError):
            compare_strategies([], objs, cluster)

    def test_table_rows(self):
        cluster = Cluster.homogeneous(4)
        objs = unit_objects(4, rng=0)
        cmp_ = compare_strategies([RoundRobinBySlots()], objs, cluster, repetitions=2, seed=0)
        rows = cmp_.table_rows()
        assert rows[0][0] == "round-robin"
        assert len(rows[0]) == 4


class TestExpansionStudy:
    def test_basic_outcome(self):
        cluster = Cluster.homogeneous(20, 2)
        objs = unit_objects(40, rng=0)
        study = expansion_study(
            cluster, objs, new_disks=5, new_capacity=8, seed=1
        )
        assert study.balls_moved_incremental >= 0
        assert study.balls_displaced_scratch >= study.balls_moved_incremental
        assert 0.0 <= study.migration_savings <= 1.0

    def test_incremental_fill_balanced(self):
        cluster = Cluster.homogeneous(10, 2)
        objs = unit_objects(20, rng=0)
        study = expansion_study(cluster, objs, new_disks=2, new_capacity=10, seed=2)
        fills = study.after_incremental.fill
        assert fills.max() - fills.min() <= 1.0

    def test_rejects_non_unit_objects(self):
        cluster = Cluster.homogeneous(4)
        objs = uniform_objects(4, rng=0)
        with pytest.raises(ValueError, match="unit-size"):
            expansion_study(cluster, objs, new_disks=1, new_capacity=4)
