"""Tests for disks and clusters."""

import numpy as np
import pytest

from repro.bins import BinArray, LinearGrowthModel
from repro.storage import Cluster, Disk


class TestDisk:
    def test_defaults(self):
        d = Disk(capacity=4)
        assert d.effective_bandwidth == 4.0
        assert d.generation == 0

    def test_explicit_bandwidth(self):
        assert Disk(capacity=4, bandwidth=100.0).effective_bandwidth == 100.0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            Disk(capacity=0)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            Disk(capacity=1, bandwidth=0.0)


class TestCluster:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Cluster([])

    def test_homogeneous(self):
        c = Cluster.homogeneous(5, 3)
        assert c.n_disks == 5
        assert c.total_capacity == 15

    def test_bin_array_view(self):
        c = Cluster([Disk(1), Disk(2, generation=1)])
        bins = c.bin_array()
        assert isinstance(bins, BinArray)
        assert list(bins) == [1, 2]
        assert bins.labels == (0, 1)

    def test_bandwidths(self):
        c = Cluster([Disk(2), Disk(4, bandwidth=10.0)])
        np.testing.assert_allclose(c.bandwidths(), [2.0, 10.0])

    def test_expand_generations(self):
        c = Cluster.homogeneous(3, 2).expand(2, 8)
        gens = [d.generation for d in c.disks]
        assert gens == [0, 0, 0, 1, 1]
        assert c.total_capacity == 6 + 16

    def test_expand_rejects_zero(self):
        with pytest.raises(ValueError):
            Cluster.homogeneous(2).expand(0, 4)

    def test_from_bin_array_round_trip(self):
        bins = BinArray([1, 2, 3], labels=(0, 1, 2))
        c = Cluster.from_bin_array(bins)
        assert c.bin_array() == bins

    def test_from_growth_model(self):
        model = LinearGrowthModel(offset=2, initial_bins=2, batch_size=4)
        c = Cluster.from_growth_model(model, 10)
        assert c.n_disks == 10
        assert {d.generation for d in c.disks} == {0, 1, 2}

    def test_repr(self):
        assert "n_disks=2" in repr(Cluster.homogeneous(2))
