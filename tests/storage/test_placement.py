"""Tests for placement strategies."""

import numpy as np
import pytest

from repro.storage import (
    Cluster,
    GreedyTwoChoice,
    LeastLoaded,
    RoundRobinBySlots,
    SingleChoice,
    evaluate_placement,
    uniform_objects,
    unit_objects,
)


@pytest.fixture
def cluster():
    return Cluster.homogeneous(10, 2).expand(5, 8)


class TestGreedyTwoChoice:
    def test_assignment_shape_and_range(self, cluster):
        objs = unit_objects(cluster.total_capacity, rng=0)
        a = GreedyTwoChoice().place(objs, cluster, seed=1)
        assert a.shape == (objs.count,)
        assert a.min() >= 0 and a.max() < cluster.n_disks

    def test_reproducible(self, cluster):
        objs = unit_objects(40, rng=0)
        s = GreedyTwoChoice()
        np.testing.assert_array_equal(
            s.place(objs, cluster, seed=5), s.place(objs, cluster, seed=5)
        )

    def test_name_includes_d(self):
        assert GreedyTwoChoice(d=3).name == "greedy-3-choice"

    def test_rejects_bad_d(self):
        with pytest.raises(ValueError):
            GreedyTwoChoice(d=0)

    def test_matches_simulate_statistically(self, cluster):
        """Unit objects through the placement API give the same max-fill
        distribution as the core engine."""
        from repro.core import simulate

        bins = cluster.bin_array()
        objs = unit_objects(bins.total_capacity, rng=0)
        place_max = np.mean([
            evaluate_placement(
                GreedyTwoChoice().place(objs, cluster, seed=s), objs, cluster
            ).max_fill
            for s in range(15)
        ])
        engine_max = np.mean([simulate(bins, seed=100 + s).max_load for s in range(15)])
        assert place_max == pytest.approx(engine_max, abs=0.3)

    def test_weighted_objects_path(self, cluster):
        objs = uniform_objects(60, rng=1)
        a = GreedyTwoChoice().place(objs, cluster, seed=2)
        report = evaluate_placement(a, objs, cluster)
        assert report.stored_mass.sum() == pytest.approx(objs.total_size)


class TestSingleChoice:
    def test_proportional_hits(self, cluster):
        objs = unit_objects(20_000, rng=0)
        a = SingleChoice().place(objs, cluster, seed=3)
        counts = np.bincount(a, minlength=cluster.n_disks)
        caps = cluster.capacities()
        big_share = counts[caps == 8].sum() / objs.count
        expected = caps[caps == 8].sum() / caps.sum()
        assert big_share == pytest.approx(expected, abs=0.02)

    def test_worse_than_greedy(self, cluster):
        objs = unit_objects(cluster.total_capacity, rng=0)
        single = np.mean([
            evaluate_placement(SingleChoice().place(objs, cluster, seed=s), objs, cluster).max_fill
            for s in range(10)
        ])
        greedy = np.mean([
            evaluate_placement(GreedyTwoChoice().place(objs, cluster, seed=s), objs, cluster).max_fill
            for s in range(10)
        ])
        assert greedy < single


class TestRoundRobin:
    def test_perfect_fill_for_full_load(self, cluster):
        objs = unit_objects(cluster.total_capacity, rng=0)
        a = RoundRobinBySlots().place(objs, cluster)
        report = evaluate_placement(a, objs, cluster)
        assert report.max_fill == pytest.approx(1.0)

    def test_deterministic(self, cluster):
        objs = unit_objects(33, rng=0)
        s = RoundRobinBySlots()
        np.testing.assert_array_equal(s.place(objs, cluster), s.place(objs, cluster))


class TestLeastLoaded:
    def test_optimal_unit_fill(self, cluster):
        objs = unit_objects(cluster.total_capacity, rng=0)
        a = LeastLoaded().place(objs, cluster)
        report = evaluate_placement(a, objs, cluster)
        assert report.max_fill <= 1.0 + 1e-9

    def test_lower_bounds_greedy(self, cluster):
        objs = unit_objects(cluster.total_capacity, rng=0)
        omni = evaluate_placement(LeastLoaded().place(objs, cluster), objs, cluster).max_fill
        greedy = evaluate_placement(
            GreedyTwoChoice().place(objs, cluster, seed=0), objs, cluster
        ).max_fill
        assert omni <= greedy + 1e-9

    def test_weighted_objects(self, cluster):
        objs = uniform_objects(100, rng=2)
        a = LeastLoaded().place(objs, cluster)
        report = evaluate_placement(a, objs, cluster)
        # near-perfect balance: max fill close to average fill
        assert report.max_fill <= report.average_fill + 2.0 / cluster.capacities().min()
