"""Tests for storage object populations."""

import numpy as np
import pytest

from repro.storage import ObjectSet, lognormal_objects, uniform_objects, unit_objects


class TestObjectSet:
    def test_popularity_normalised(self):
        s = ObjectSet(sizes=[1.0, 1.0], popularity=[2.0, 6.0])
        np.testing.assert_allclose(s.popularity, [0.25, 0.75])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ObjectSet(sizes=[], popularity=[])

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            ObjectSet(sizes=[0.0], popularity=[1.0])

    def test_rejects_negative_popularity(self):
        with pytest.raises(ValueError):
            ObjectSet(sizes=[1.0], popularity=[-1.0])

    def test_rejects_zero_total_popularity(self):
        with pytest.raises(ValueError):
            ObjectSet(sizes=[1.0], popularity=[0.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            ObjectSet(sizes=[1.0, 1.0], popularity=[1.0])

    def test_counts_and_total(self):
        s = ObjectSet(sizes=[1.0, 2.0], popularity=[1, 1])
        assert s.count == 2
        assert s.total_size == 3.0

    def test_sample_reads_range(self):
        s = unit_objects(10, rng=0)
        reads = s.sample_reads(100, rng=1)
        assert reads.min() >= 0 and reads.max() < 10

    def test_sample_reads_follow_popularity(self):
        s = ObjectSet(sizes=[1.0, 1.0], popularity=[0.0, 1.0])
        reads = s.sample_reads(500, rng=2)
        assert (reads == 1).all()

    def test_sample_reads_rejects_negative(self):
        with pytest.raises(ValueError):
            unit_objects(3, rng=0).sample_reads(-1)


class TestGenerators:
    def test_unit_sizes(self):
        s = unit_objects(50, rng=0)
        assert (s.sizes == 1.0).all()

    def test_unit_uniform_popularity(self):
        s = unit_objects(4, rng=0)
        np.testing.assert_allclose(s.popularity, [0.25] * 4)

    def test_zipf_popularity_is_skewed(self):
        s = unit_objects(1000, zipf_s=1.2, rng=1)
        assert s.popularity.max() > 10 * s.popularity.mean()

    def test_zipf_rejects_bad_s(self):
        with pytest.raises(ValueError):
            unit_objects(10, zipf_s=0.0, rng=0)

    def test_uniform_objects_range(self):
        s = uniform_objects(200, low=0.5, high=2.0, rng=2)
        assert s.sizes.min() >= 0.5
        assert s.sizes.max() <= 2.0

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(ValueError):
            uniform_objects(10, low=2.0, high=1.0)

    def test_lognormal_positive(self):
        s = lognormal_objects(100, rng=3)
        assert (s.sizes > 0).all()

    def test_lognormal_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            lognormal_objects(10, sigma=0.0)

    def test_generators_reject_zero_count(self):
        for gen in (unit_objects, uniform_objects, lognormal_objects):
            with pytest.raises(ValueError):
                gen(0)

    def test_reproducible(self):
        a = lognormal_objects(20, rng=7)
        b = lognormal_objects(20, rng=7)
        np.testing.assert_array_equal(a.sizes, b.sizes)
