"""Cross-module property tests: invariants that must hold across every
configuration of the public simulation API.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bins import BinArray
from repro.core import simulate, simulate_batched, simulate_ensemble
from repro.core.loadvectors import normalized_slot_load_vector, slot_load_vector
from repro.core.majorization import majorizes
from repro.sampling import PowerProbability
from repro.sampling.rngutils import spawn_seed_sequences

# Strategy: small random bin arrays.
bin_arrays = st.lists(
    st.integers(min_value=1, max_value=12), min_size=1, max_size=10
).map(BinArray)


@settings(max_examples=40, deadline=None)
@given(
    bins=bin_arrays,
    m=st.integers(min_value=0, max_value=80),
    d=st.integers(min_value=1, max_value=4),
    tie=st.sampled_from(["max_capacity", "uniform", "min_capacity"]),
    seed=st.integers(min_value=0, max_value=2**30),
)
def test_simulate_conservation_all_configs(bins, m, d, tie, seed):
    """Conservation + non-negativity for every tie-break and d."""
    res = simulate(bins, m=m, d=d, tie_break=tie, seed=seed)
    assert res.counts.sum() == m
    assert (res.counts >= 0).all()
    assert res.max_load >= res.average_load - 1e-12 or m == 0


@settings(max_examples=30, deadline=None)
@given(
    bins=bin_arrays,
    m=st.integers(min_value=0, max_value=60),
    t=st.floats(min_value=-2.0, max_value=4.0),
    seed=st.integers(min_value=0, max_value=2**30),
)
def test_simulate_power_model_conservation(bins, m, t, seed):
    """Power-exponent selection never breaks conservation."""
    res = simulate(bins, m=m, probabilities=PowerProbability(t), seed=seed)
    assert res.counts.sum() == m


@settings(max_examples=30, deadline=None)
@given(
    bins=bin_arrays,
    m=st.integers(min_value=0, max_value=60),
    batch=st.integers(min_value=1, max_value=60),
    seed=st.integers(min_value=0, max_value=2**30),
)
def test_batched_conservation(bins, m, batch, seed):
    """Batched arrivals conserve balls for any batch size."""
    res = simulate_batched(bins, m=m, batch_size=batch, seed=seed)
    assert res.counts.sum() == m


@settings(max_examples=40, deadline=None)
@given(
    bins=bin_arrays,
    m=st.integers(min_value=0, max_value=80),
    seed=st.integers(min_value=0, max_value=2**30),
)
def test_slot_vector_consistent_with_counts(bins, m, seed):
    """The slot expansion of a simulation outcome preserves totals and the
    normalised slot vector majorises the flat average vector."""
    res = simulate(bins, m=m, seed=seed)
    sv = slot_load_vector(res.counts, bins.capacities)
    assert sv.sum() == m
    norm = normalized_slot_load_vector(res.counts, bins.capacities)
    flat = np.full(norm.size, m / norm.size)
    assert majorizes(norm, flat)


@settings(max_examples=25, deadline=None)
@given(
    bins=bin_arrays,
    seed=st.integers(min_value=0, max_value=2**30),
)
def test_heights_bounded_by_running_max(bins, seed):
    """No ball's height can exceed the final maximum load plus one
    ball's worth of any bin (heights are loads at earlier times)."""
    res = simulate(bins, track_heights=True, seed=seed)
    if res.m == 0:
        return
    assert res.heights.max() <= res.max_load + 1e-12
    assert res.heights.min() > 0


@settings(max_examples=25, deadline=None)
@given(
    caps=st.lists(st.integers(min_value=1, max_value=8), min_size=2, max_size=8),
    seed=st.integers(min_value=0, max_value=2**30),
)
def test_threshold_model_respects_support(caps, seed):
    """Threshold routing puts zero balls outside its support."""
    from repro.sampling import ThresholdProbability

    bins = BinArray(caps)
    q = int(bins.capacities.max())
    res = simulate(bins, probabilities=ThresholdProbability(q), seed=seed)
    outside = bins.capacities < q
    assert res.counts[outside].sum() == 0


@settings(max_examples=30, deadline=None)
@given(
    bins=bin_arrays,
    m=st.integers(min_value=0, max_value=80),
    d=st.integers(min_value=1, max_value=4),
    tie=st.sampled_from(["max_capacity", "uniform", "min_capacity"]),
    reps=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**30),
)
def test_ensemble_conservation_all_configs(bins, m, d, tie, reps, seed):
    """Every replication of the lockstep engine conserves balls, for every
    tie-break, d, and seed mode."""
    for mode in ("spawn", "blocked"):
        res = simulate_ensemble(
            bins, repetitions=reps, m=m, d=d, tie_break=tie, seed=seed, seed_mode=mode
        )
        assert (res.counts.sum(axis=1) == m).all()
        assert (res.counts >= 0).all()


@settings(max_examples=25, deadline=None)
@given(
    bins=bin_arrays,
    m=st.integers(min_value=1, max_value=60),
    d=st.integers(min_value=1, max_value=3),
    reps=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**30),
)
def test_ensemble_max_load_matches_scalar_under_shared_seeds(bins, m, d, reps, seed):
    """Under shared spawned seeds the ensemble max-load *distribution* is not
    merely close to the scalar engine's — it is the same numbers."""
    ens = simulate_ensemble(bins, repetitions=reps, m=m, d=d, seed=seed)
    scalar = np.array([
        simulate(bins, m=m, d=d, seed=child).max_load
        for child in spawn_seed_sequences(seed, reps)
    ])
    np.testing.assert_array_equal(ens.max_loads, scalar)


@settings(max_examples=15, deadline=None)
@given(
    bins=bin_arrays,
    m=st.integers(min_value=2, max_value=60),
    seed=st.integers(min_value=0, max_value=2**30),
)
def test_ensemble_snapshots_agree_with_scalar(bins, m, seed):
    """Snapshots agree at every recorded ball count, replication by
    replication, against scalar runs under the shared spawned seeds."""
    reps = 3
    points = sorted({0, 1, m // 2, m})
    ens = simulate_ensemble(bins, repetitions=reps, m=m, seed=seed, snapshot_at=points)
    children = spawn_seed_sequences(seed, reps)
    for r in range(reps):
        sc = simulate(bins, m=m, seed=children[r], snapshot_at=points)
        assert [s.balls_thrown for s in ens.snapshots] == [s.balls_thrown for s in sc.snapshots]
        for es, ss in zip(ens.snapshots, sc.snapshots):
            assert es.max_loads[r] == ss.max_load
            assert es.average_load == ss.average_load


@settings(max_examples=20, deadline=None)
@given(
    bins=bin_arrays,
    m=st.integers(min_value=1, max_value=50),
    seed=st.integers(min_value=0, max_value=2**30),
)
def test_snapshot_final_matches_result(bins, m, seed):
    """A snapshot at m equals the final statistics."""
    res = simulate(bins, m=m, snapshot_at=[m], seed=seed)
    snap = res.snapshots[-1]
    assert snap.balls_thrown == m
    assert snap.max_load == pytest.approx(res.max_load)
    assert snap.average_load == pytest.approx(res.average_load)
