# Convenience entry points; see ROADMAP.md for the engine matrix and
# scripts/ci.sh for what `check` runs.

PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test check bench equivalence

# Tier-1 suite only (ROADMAP's verify command).
test:
	PYTHONPATH=$(PYTHONPATH) python -m pytest -x -q

# Routine pipeline: tier-1 + quick ensemble benchmarks (5x/3x floors) +
# adaptive-precision smoke (<=50% budget floor + store round trip) +
# allocation-service replay bench (d=2 vs d=1 baseline -> BENCH_service.json)
# and live-endpoint smoke (incl. fault-injected retry pass) + crash-recovery
# smoke (SIGKILL -> WAL restart, bit-identical) + reduced-budget
# cross-engine equivalence sweep.
check:
	bash scripts/ci.sh

# Full benchmark harness (figure regeneration at reduced scale).
bench:
	PYTHONPATH=$(PYTHONPATH) python -m pytest benchmarks/ -q

# Full-budget cross-engine equivalence sweep.
equivalence:
	PYTHONPATH=$(PYTHONPATH) python scripts/check_equivalence.py
