"""Bin-array substrate: value types, generators, classification, growth."""

from .arrays import BinArray
from .classify import BigSmallSplit, big_small_split, bigness_threshold
from .generators import (
    binomial_random_bins,
    geometric_bins,
    multi_class_bins,
    two_class_bins,
    two_class_mix_bins,
    uniform_bins,
    zipf_bins,
)
from .growth import (
    BaselineGrowthModel,
    ExponentialGrowthModel,
    GrowthModel,
    LinearGrowthModel,
)
from .spec import BinSpecError, format_bin_spec, parse_bin_spec

__all__ = [
    "BinArray",
    "BigSmallSplit",
    "big_small_split",
    "bigness_threshold",
    "uniform_bins",
    "two_class_bins",
    "two_class_mix_bins",
    "multi_class_bins",
    "binomial_random_bins",
    "geometric_bins",
    "zipf_bins",
    "GrowthModel",
    "LinearGrowthModel",
    "ExponentialGrowthModel",
    "BaselineGrowthModel",
    "parse_bin_spec",
    "format_bin_spec",
    "BinSpecError",
]
