"""Disk-batch growth models (Section 4.3).

The paper's cloud/HPC scenario: a storage system starts small and grows in
batches of disks; each generation of disks is larger than the previous one,
and old disks stay in the system.  Two models are simulated:

* **linear** — batch ``i`` has per-disk capacity ``start + i * a``
  (offsets ``a`` of 1, 2, 4, 6 in Figure 14);
* **exponential** — batch ``i`` has per-disk capacity
  ``round(start * b**i)`` (factors ``b`` of 1.005/1.05, 1.1, 1.2, 1.4 in
  Figure 15);
* **baseline** — every batch has the same capacity (the "no growth" curve in
  both figures).

A model yields the sequence of :class:`~repro.bins.arrays.BinArray` system
states as batches are added; the paper re-allocates all data from scratch at
every state (so does our Figure 14/15 experiment).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator

import numpy as np

from .arrays import BinArray

__all__ = [
    "GrowthModel",
    "LinearGrowthModel",
    "ExponentialGrowthModel",
    "BaselineGrowthModel",
]


class GrowthModel(ABC):
    """Abstract disk-batch growth schedule.

    Parameters
    ----------
    initial_bins:
        Number of disks the system starts with (the paper starts at 2).
    batch_size:
        Disks added per batch (the paper adds 20 at a time).
    start_capacity:
        Per-disk capacity of the first generation (paper: 2).
    """

    def __init__(self, initial_bins: int = 2, batch_size: int = 20, start_capacity: int = 2):
        if initial_bins <= 0:
            raise ValueError(f"initial_bins must be positive, got {initial_bins}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if start_capacity <= 0:
            raise ValueError(f"start_capacity must be positive, got {start_capacity}")
        self.initial_bins = initial_bins
        self.batch_size = batch_size
        self.start_capacity = start_capacity

    @abstractmethod
    def batch_capacity(self, batch_index: int) -> int:
        """Per-disk capacity of generation *batch_index* (0 = initial)."""

    def states(self, max_bins: int) -> Iterator[BinArray]:
        """Yield system states from ``initial_bins`` up to *max_bins* disks.

        The first state holds ``initial_bins`` disks of generation 0; each
        subsequent state appends ``batch_size`` disks of the next generation.
        Generation indices are recorded as bin labels.
        """
        if max_bins < self.initial_bins:
            raise ValueError(
                f"max_bins ({max_bins}) must be at least initial_bins ({self.initial_bins})"
            )
        caps = [self.batch_capacity(0)] * self.initial_bins
        labels = [0] * self.initial_bins
        state = BinArray(np.asarray(caps, dtype=np.int64), labels=tuple(labels))
        yield state
        batch = 1
        while state.n + self.batch_size <= max_bins:
            cap = self.batch_capacity(batch)
            state = state.with_appended(
                np.full(self.batch_size, cap, dtype=np.int64),
                labels=(batch,) * self.batch_size,
            )
            yield state
            batch += 1

    def final_state(self, max_bins: int) -> BinArray:
        """The last state produced by :meth:`states`."""
        last = None
        for last in self.states(max_bins):
            pass
        assert last is not None
        return last


class LinearGrowthModel(GrowthModel):
    """Generation ``i`` has capacity ``start_capacity + i * offset`` (Fig 14)."""

    def __init__(self, offset: int, **kwargs):
        super().__init__(**kwargs)
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        self.offset = offset

    def batch_capacity(self, batch_index: int) -> int:
        if batch_index < 0:
            raise ValueError(f"batch_index must be non-negative, got {batch_index}")
        return self.start_capacity + batch_index * self.offset

    def __repr__(self) -> str:
        return f"LinearGrowthModel(offset={self.offset}, start={self.start_capacity})"


class ExponentialGrowthModel(GrowthModel):
    """Generation ``i`` has capacity ``round(start_capacity * factor**i)`` (Fig 15).

    Capacities are rounded to the nearest integer and floored at 1 because
    the model requires integral capacities; with the paper's factors and
    ``start_capacity=2`` the floor never binds.
    """

    def __init__(self, factor: float, **kwargs):
        super().__init__(**kwargs)
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        self.factor = factor

    def batch_capacity(self, batch_index: int) -> int:
        if batch_index < 0:
            raise ValueError(f"batch_index must be non-negative, got {batch_index}")
        return max(1, round(self.start_capacity * self.factor**batch_index))

    def __repr__(self) -> str:
        return f"ExponentialGrowthModel(factor={self.factor}, start={self.start_capacity})"


class BaselineGrowthModel(GrowthModel):
    """Every generation has the same capacity — the figures' "base" curve."""

    def batch_capacity(self, batch_index: int) -> int:
        if batch_index < 0:
            raise ValueError(f"batch_index must be non-negative, got {batch_index}")
        return self.start_capacity

    def __repr__(self) -> str:
        return f"BaselineGrowthModel(capacity={self.start_capacity})"
