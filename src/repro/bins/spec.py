"""Textual bin-array specifications.

One compact string describes a system — used by the CLI, convenient in
configs and experiment provenance records.  Grammar (comma-separated
items, whitespace ignored):

* ``<capacity>x<count>`` — explicit class, e.g. ``1x500,10x500``;
* ``uniform:n=<n>,c=<c>`` — n identical bins;
* ``binom:n=<n>,c=<mean>[,seed=<s>]`` — the Section-4.2 random construction;
* ``zipf:n=<n>,alpha=<a>[,max=<cap>][,seed=<s>]`` — heavy-tailed capacities;
* ``geom:n=<n>,ratio=<r>[,levels=<k>][,seed=<s>]`` — geometric generations.

Items concatenate: ``"1x100,binom:n=50,c=4"`` builds 100 unit bins followed
by 50 random ones.  :func:`format_bin_spec` round-trips explicit classes.
"""

from __future__ import annotations

import numpy as np

from .arrays import BinArray
from .generators import binomial_random_bins, geometric_bins, uniform_bins, zipf_bins

__all__ = ["parse_bin_spec", "format_bin_spec", "BinSpecError"]


class BinSpecError(ValueError):
    """Raised for malformed bin specifications."""


def _parse_params(body: str, item: str) -> dict[str, float]:
    params: dict[str, float] = {}
    for part in body.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise BinSpecError(f"bad parameter {part!r} in {item!r}; expected key=value")
        key, _, value = part.partition("=")
        try:
            params[key.strip()] = float(value)
        except ValueError:
            raise BinSpecError(f"non-numeric value in {part!r} of {item!r}") from None
    return params


def _require(params: dict, keys: tuple[str, ...], item: str) -> None:
    missing = [k for k in keys if k not in params]
    if missing:
        raise BinSpecError(f"{item!r} is missing required parameter(s): {missing}")


def _int_param(params: dict, key: str, item: str) -> int:
    value = params[key]
    if value != int(value):
        raise BinSpecError(f"{key}={value} in {item!r} must be an integer")
    return int(value)


_CLASS_RE = __import__("re").compile(r"^\d+\s*x\s*\d+$")


def _split_items(spec: str) -> list[str]:
    """Split on the commas that separate items.

    Generator items carry comma-separated ``key=value`` parameters, so a
    chunk containing ``=`` (and no ``:``) continues the previous generator
    item rather than starting a new one.
    """
    items: list[str] = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        starts_generator = ":" in chunk
        starts_class = bool(_CLASS_RE.match(chunk))
        if starts_generator or starts_class or not items:
            items.append(chunk)
        elif "=" in chunk:
            items[-1] = items[-1] + "," + chunk
        else:
            items.append(chunk)  # malformed; reported by the item parser
    return items


def parse_bin_spec(spec: str, *, default_seed: int = 0) -> BinArray:
    """Parse *spec* into a :class:`BinArray` (see module docstring)."""
    if not isinstance(spec, str):
        raise BinSpecError(f"spec must be a string, got {type(spec).__name__}")
    items = _split_items(spec)
    if not items:
        raise BinSpecError("empty bin spec")

    parts: list[np.ndarray] = []
    for item in items:
        if ":" in item:
            kind, _, body = item.partition(":")
            kind = kind.strip().lower()
            params = _parse_params(body, item)
            seed = int(params.get("seed", default_seed))
            if kind == "uniform":
                _require(params, ("n", "c"), item)
                arr = uniform_bins(_int_param(params, "n", item), _int_param(params, "c", item))
            elif kind == "binom":
                _require(params, ("n", "c"), item)
                arr = binomial_random_bins(
                    _int_param(params, "n", item), params["c"], rng=seed
                )
            elif kind == "zipf":
                _require(params, ("n", "alpha"), item)
                arr = zipf_bins(
                    _int_param(params, "n", item),
                    alpha=params["alpha"],
                    max_capacity=int(params.get("max", 64)),
                    rng=seed,
                )
            elif kind == "geom":
                _require(params, ("n", "ratio"), item)
                arr = geometric_bins(
                    _int_param(params, "n", item),
                    ratio=params["ratio"],
                    levels=int(params.get("levels", 4)),
                    rng=seed,
                )
            else:
                raise BinSpecError(
                    f"unknown generator {kind!r}; expected uniform/binom/zipf/geom"
                )
            parts.append(arr.capacities)
            continue
        # explicit class: <capacity>x<count>
        pieces = item.split("x")
        if len(pieces) != 2:
            raise BinSpecError(
                f"bad item {item!r}; expected '<capacity>x<count>' or a generator"
            )
        try:
            cap, count = int(pieces[0]), int(pieces[1])
        except ValueError:
            raise BinSpecError(f"non-integer capacity/count in {item!r}") from None
        if cap <= 0 or count <= 0:
            raise BinSpecError(f"capacity and count must be positive in {item!r}")
        parts.append(np.full(count, cap, dtype=np.int64))

    return BinArray(np.concatenate(parts))


def format_bin_spec(bins: BinArray) -> str:
    """Render *bins* as an explicit-class spec (sorted by capacity).

    The result parses back to an array with the same multiset of
    capacities (ordering within the spec is by capacity, ascending).
    """
    counts = bins.size_class_counts()
    return ",".join(f"{cap}x{counts[cap]}" for cap in sorted(counts))
