"""The :class:`BinArray` value type.

A bin array is the static description of a system: the (positive integer)
capacity of every bin, plus derived bookkeeping that nearly every consumer
needs — total capacity ``C``, the distinct size classes, and index lookup by
class.  Instances are immutable; the simulation engine keeps its mutable ball
counts separately.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

__all__ = ["BinArray"]


class BinArray:
    """Immutable description of ``n`` bins with positive integer capacities.

    Parameters
    ----------
    capacities:
        Sequence of positive integers (floats with integral values are
        accepted and converted).  Order is meaningful: bin ``i`` keeps index
        ``i`` throughout a simulation.
    labels:
        Optional per-bin labels (e.g. the growth batch a disk belongs to).
        Stored as-is; not interpreted by the library.

    Notes
    -----
    The paper requires integer capacities ("bins are not uniform, but ...
    come with an integer capacity").  We enforce that here; the *loads*
    derived from them are of course fractional.
    """

    __slots__ = ("_capacities", "_total", "_labels")

    def __init__(self, capacities, labels=None):
        caps = np.asarray(capacities)
        if caps.ndim != 1:
            raise ValueError(f"capacities must be one-dimensional, got shape {caps.shape}")
        if caps.size == 0:
            raise ValueError("a BinArray needs at least one bin")
        as_int = np.asarray(caps, dtype=np.int64)
        if not np.allclose(caps, as_int, rtol=0, atol=0):
            raise ValueError("capacities must be integers (the paper's model)")
        if np.any(as_int <= 0):
            raise ValueError("capacities must be positive")
        as_int.flags.writeable = False
        self._capacities = as_int
        self._total = int(as_int.sum())
        if labels is not None:
            labels = tuple(labels)
            if len(labels) != as_int.size:
                raise ValueError(
                    f"labels has length {len(labels)} but there are {as_int.size} bins"
                )
        self._labels = labels

    # -- basic accessors ---------------------------------------------------

    @property
    def capacities(self) -> np.ndarray:
        """Per-bin capacities as a read-only ``int64`` array."""
        return self._capacities

    @property
    def n(self) -> int:
        """Number of bins."""
        return int(self._capacities.size)

    @property
    def total_capacity(self) -> int:
        """``C``, the sum of all capacities (= default ball count ``m``)."""
        return self._total

    @property
    def labels(self):
        """Optional per-bin labels, or ``None``."""
        return self._labels

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, i: int) -> int:
        return int(self._capacities[i])

    def __iter__(self):
        return iter(int(c) for c in self._capacities)

    def __eq__(self, other) -> bool:
        if not isinstance(other, BinArray):
            return NotImplemented
        return (
            np.array_equal(self._capacities, other._capacities)
            and self._labels == other._labels
        )

    def __hash__(self) -> int:
        return hash((self._capacities.tobytes(), self._labels))

    def __repr__(self) -> str:
        classes = self.size_class_counts()
        summary = ", ".join(f"{cnt}x{cap}" for cap, cnt in sorted(classes.items()))
        return f"BinArray(n={self.n}, C={self._total}, classes=[{summary}])"

    # -- derived structure ---------------------------------------------------

    def size_classes(self) -> np.ndarray:
        """Sorted distinct capacities present in the array."""
        return np.unique(self._capacities)

    def size_class_counts(self) -> Mapping[int, int]:
        """Mapping ``capacity -> number of bins of that capacity``."""
        values, counts = np.unique(self._capacities, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def indices_of_capacity(self, capacity: int) -> np.ndarray:
        """Indices of all bins of exactly *capacity*."""
        return np.flatnonzero(self._capacities == capacity)

    def is_uniform(self) -> bool:
        """True when all bins share the same capacity."""
        return bool(self._capacities.min() == self._capacities.max())

    def average_capacity(self) -> float:
        """Mean capacity ``C / n``."""
        return self._total / self.n

    # -- construction helpers -----------------------------------------------

    def with_appended(self, capacities, labels=None) -> "BinArray":
        """Return a new array with extra bins appended (used by growth models)."""
        extra = np.asarray(capacities, dtype=np.int64)
        new_caps = np.concatenate([self._capacities, np.atleast_1d(extra)])
        if self._labels is None and labels is None:
            new_labels = None
        else:
            old = self._labels if self._labels is not None else (None,) * self.n
            added = tuple(labels) if labels is not None else (None,) * int(np.atleast_1d(extra).size)
            new_labels = tuple(old) + added
        return BinArray(new_caps, labels=new_labels)

    def slot_owner(self) -> np.ndarray:
        """Map each of the ``C`` slots to its owning bin index.

        Implements the paper's slot view (Section 2): bin ``i`` of capacity
        ``c_i`` owns ``c_i`` consecutive unit slots.  Used by the slot-vector
        analysis and by Lemma 1's coupling experiments.
        """
        return np.repeat(np.arange(self.n, dtype=np.int64), self._capacities)
