"""Constructors for the bin arrays used throughout the paper's evaluation.

Each generator returns a :class:`~repro.bins.arrays.BinArray` and corresponds
to a concrete Section-4 setting:

* :func:`uniform_bins` — Figures 1–5 (uniform capacity arrays).
* :func:`two_class_bins` — Figures 6–7 and 10–13 (mixes of two sizes).
* :func:`multi_class_bins` — arbitrary mixes given as ``{capacity: count}``.
* :func:`binomial_random_bins` — Figures 8–9 and 16: capacity
  ``1 + X`` with ``X ~ Bin(7, (c-1)/7)`` so the expected mean capacity is
  ``c`` and the expected total is ``c * n``.
* :func:`geometric_bins`, :func:`zipf_bins` — additional heterogeneity
  profiles for examples and robustness tests (not in the paper's figures but
  natural stress cases for the same code paths).
"""

from __future__ import annotations

import numpy as np

from ..sampling.rngutils import make_rng
from .arrays import BinArray

__all__ = [
    "uniform_bins",
    "two_class_bins",
    "two_class_mix_bins",
    "multi_class_bins",
    "binomial_random_bins",
    "geometric_bins",
    "zipf_bins",
]


def uniform_bins(n: int, capacity: int = 1) -> BinArray:
    """``n`` bins, all of the same *capacity* (Figures 1–5)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    return BinArray(np.full(n, capacity, dtype=np.int64))


def two_class_bins(
    n_small: int,
    n_large: int,
    small_capacity: int = 1,
    large_capacity: int = 10,
    *,
    interleave: bool = False,
    rng=None,
) -> BinArray:
    """A mix of ``n_small`` small and ``n_large`` large bins (Figures 6–13).

    By default the small bins occupy the leading indices (which matches how
    the paper plots per-class profiles side by side); with
    ``interleave=True`` the positions are randomly permuted, which is the
    statistically equivalent arrangement — the protocol is position-blind.
    """
    if n_small < 0 or n_large < 0:
        raise ValueError("bin counts must be non-negative")
    if n_small + n_large == 0:
        raise ValueError("need at least one bin")
    if small_capacity <= 0 or large_capacity <= 0:
        raise ValueError("capacities must be positive")
    if small_capacity >= large_capacity:
        raise ValueError(
            f"small_capacity ({small_capacity}) must be smaller than "
            f"large_capacity ({large_capacity})"
        )
    caps = np.concatenate(
        [
            np.full(n_small, small_capacity, dtype=np.int64),
            np.full(n_large, large_capacity, dtype=np.int64),
        ]
    )
    if interleave:
        caps = make_rng(rng).permutation(caps)
    return BinArray(caps)


def two_class_mix_bins(
    n: int,
    n_large: int,
    small_capacity: int = 1,
    large_capacity: int = 10,
) -> BinArray:
    """A two-class array by total size and large count, endpoints included.

    The class-mix sweeps (Figures 6/7 and 10–13) walk ``n_large`` from 0 to
    ``n``; at the endpoints the array degenerates to a uniform profile of
    the surviving class.  Small bins occupy the leading indices — the
    per-class restriction masks of Figures 12/13 rely on this layout.
    """
    if not 0 <= n_large <= n:
        raise ValueError(f"n_large must be in [0, {n}], got {n_large}")
    if n_large == 0:
        return uniform_bins(n, small_capacity)
    if n_large == n:
        return uniform_bins(n, large_capacity)
    return two_class_bins(n - n_large, n_large, small_capacity, large_capacity)


def multi_class_bins(class_counts: dict, *, interleave: bool = False, rng=None) -> BinArray:
    """Bins from a ``{capacity: count}`` mapping, capacities ascending."""
    if not class_counts:
        raise ValueError("class_counts must be non-empty")
    parts = []
    for capacity in sorted(class_counts):
        count = class_counts[capacity]
        if count < 0:
            raise ValueError(f"count for capacity {capacity} is negative")
        if count:
            if capacity <= 0:
                raise ValueError(f"capacity must be positive, got {capacity}")
            parts.append(np.full(count, capacity, dtype=np.int64))
    if not parts:
        raise ValueError("all class counts are zero")
    caps = np.concatenate(parts)
    if interleave:
        caps = make_rng(rng).permutation(caps)
    return BinArray(caps)


def binomial_random_bins(n: int, mean_capacity: float, rng=None) -> BinArray:
    """Random capacities ``1 + Bin(7, (c-1)/7)`` (Figures 8–9 and 16).

    *mean_capacity* is the paper's ``c`` in ``[1, 8]``; the expected total
    capacity is ``c * n`` ("it will be very close to it with high
    probability").
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not 1.0 <= mean_capacity <= 8.0:
        raise ValueError(
            f"mean_capacity must be in [1, 8] (the paper's construction), got {mean_capacity}"
        )
    gen = make_rng(rng)
    p = (mean_capacity - 1.0) / 7.0
    caps = 1 + gen.binomial(7, p, size=n)
    return BinArray(caps.astype(np.int64))


def geometric_bins(n: int, ratio: float = 2.0, levels: int = 4, rng=None) -> BinArray:
    """Capacities drawn uniformly from ``{ratio^0, .., ratio^(levels-1)}``.

    Models hardware generations that double (or *ratio*-fold) in size; useful
    for examples and stress tests of very skewed arrays.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if ratio < 1.0:
        raise ValueError(f"ratio must be >= 1, got {ratio}")
    if levels <= 0:
        raise ValueError(f"levels must be positive, got {levels}")
    gen = make_rng(rng)
    exponents = gen.integers(0, levels, size=n)
    caps = np.maximum(1, np.round(ratio**exponents)).astype(np.int64)
    return BinArray(caps)


def zipf_bins(n: int, alpha: float = 1.2, max_capacity: int = 64, rng=None) -> BinArray:
    """Heavy-tailed capacities: Zipf(alpha) truncated at *max_capacity*.

    Gives a few very large bins among many unit bins — the adversarial regime
    for proportional probabilities that Section 4.5 motivates.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if alpha <= 1.0:
        raise ValueError(f"alpha must be > 1 for a proper Zipf law, got {alpha}")
    if max_capacity < 1:
        raise ValueError(f"max_capacity must be >= 1, got {max_capacity}")
    gen = make_rng(rng)
    caps = np.minimum(gen.zipf(alpha, size=n), max_capacity).astype(np.int64)
    return BinArray(caps)
