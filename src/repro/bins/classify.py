"""Big/small bin classification (Section 3 definitions).

The analysis splits bins at capacity ``r * ln(n)``: a bin is *big* when its
capacity is at least that threshold and *small* otherwise.  Derived
quantities — ``C_b``, ``C_s``, the index sets — appear in Observation 1,
Lemma 2 and Theorems 1–2, and the theorem applicability checkers in
:mod:`repro.theory.conditions` are built on this module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .arrays import BinArray

__all__ = ["BigSmallSplit", "big_small_split", "bigness_threshold"]

#: Paper's constant ``r`` in the bigness threshold ``r * ln(n)``.  The proofs
#: only need r to be a sufficiently large constant; 1.0 is the conventional
#: reference value and callers can override it.
DEFAULT_R = 1.0


def bigness_threshold(n: int, r: float = DEFAULT_R) -> float:
    """The capacity threshold ``r * ln(n)`` separating big from small bins."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if r <= 0:
        raise ValueError(f"r must be positive, got {r}")
    return r * math.log(n) if n > 1 else 0.0


@dataclass(frozen=True)
class BigSmallSplit:
    """Result of classifying a bin array into big and small bins.

    Attributes
    ----------
    threshold:
        The capacity cut-off ``r * ln(n)`` used.
    big_indices / small_indices:
        Index arrays into the original bin array.
    big_capacity / small_capacity:
        ``C_b`` and ``C_s``, the total capacities of each group.
    """

    threshold: float
    big_indices: np.ndarray
    small_indices: np.ndarray
    big_capacity: int
    small_capacity: int

    @property
    def n_big(self) -> int:
        """Number of big bins."""
        return int(self.big_indices.size)

    @property
    def n_small(self) -> int:
        """Number of small bins."""
        return int(self.small_indices.size)

    @property
    def total_capacity(self) -> int:
        """``C = C_b + C_s``."""
        return self.big_capacity + self.small_capacity

    def small_ball_probability(self, d: int) -> float:
        """``(C_s / C)^d`` — probability a ball draws *only* small bins.

        This is the quantity Lemma 2 bounds; a ball with all ``d`` choices
        among small bins belongs to the set ``B_s``.
        """
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        if self.total_capacity == 0:
            raise ValueError("empty split")
        return (self.small_capacity / self.total_capacity) ** d


def big_small_split(bins: BinArray, r: float = DEFAULT_R) -> BigSmallSplit:
    """Classify *bins* into big (capacity >= ``r ln n``) and small bins."""
    thr = bigness_threshold(bins.n, r)
    caps = bins.capacities
    big_mask = caps >= thr
    big_idx = np.flatnonzero(big_mask)
    small_idx = np.flatnonzero(~big_mask)
    return BigSmallSplit(
        threshold=thr,
        big_indices=big_idx,
        small_indices=small_idx,
        big_capacity=int(caps[big_mask].sum()),
        small_capacity=int(caps[~big_mask].sum()),
    )
