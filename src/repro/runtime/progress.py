"""Lightweight progress reporting for long experiment runs.

No external dependency: a :class:`ProgressReporter` prints rate-limited
single-line updates to ``stderr``; a :class:`NullReporter` silences them.
Experiments accept either through a common ``progress`` argument.
"""

from __future__ import annotations

import sys
import time

__all__ = ["ProgressReporter", "NullReporter", "make_reporter"]


class NullReporter:
    """Reporter that discards everything (the default in library code)."""

    def start(self, total: int, label: str = "") -> None:
        """Begin a task of *total* steps."""

    def advance(self, steps: int = 1) -> None:
        """Record completed steps."""

    def finish(self) -> None:
        """Mark the task done."""


class ProgressReporter(NullReporter):
    """Prints ``label: done/total (pct)`` to stderr, at most every *interval* seconds."""

    def __init__(self, interval: float = 1.0, stream=None):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.stream = stream if stream is not None else sys.stderr
        self._total = 0
        self._done = 0
        self._label = ""
        self._last_emit = 0.0

    def start(self, total: int, label: str = "") -> None:
        self._total = max(int(total), 0)
        self._done = 0
        self._label = label
        self._last_emit = 0.0
        self._emit(force=True)

    def advance(self, steps: int = 1) -> None:
        self._done += int(steps)
        self._emit()

    def finish(self) -> None:
        self._emit(force=True)
        print(file=self.stream)

    def _emit(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_emit < self.interval:
            return
        self._last_emit = now
        if self._total:
            pct = 100.0 * self._done / self._total
            msg = f"\r{self._label}: {self._done}/{self._total} ({pct:5.1f}%)"
        else:
            msg = f"\r{self._label}: {self._done}"
        print(msg, end="", file=self.stream, flush=True)


def make_reporter(progress) -> NullReporter:
    """Coerce ``progress`` into a reporter.

    ``True`` → default :class:`ProgressReporter`; ``None``/``False`` →
    :class:`NullReporter`; a reporter instance is passed through.
    """
    if progress is True:
        return ProgressReporter()
    if progress in (None, False):
        return NullReporter()
    if isinstance(progress, NullReporter):
        return progress
    raise TypeError(f"progress must be a bool, None or a reporter, got {type(progress)!r}")
