"""Experiment runtime: repetition fan-out, seed trees, progress reporting."""

from .executor import (
    block_parameter_rng,
    run_ensemble_blocks,
    run_ensemble_reduced,
    run_repetitions,
    run_tasks,
)
from .progress import NullReporter, ProgressReporter, make_reporter
from .seeding import SeedTree

__all__ = [
    "run_repetitions",
    "run_ensemble_blocks",
    "run_ensemble_reduced",
    "run_tasks",
    "block_parameter_rng",
    "SeedTree",
    "NullReporter",
    "ProgressReporter",
    "make_reporter",
]
