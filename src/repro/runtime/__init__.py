"""Experiment runtime: repetition fan-out, seed trees, progress reporting."""

from .executor import (
    TaskError,
    block_parameter_rng,
    run_ensemble_blocks,
    run_ensemble_reduced,
    run_repetitions,
    run_tasks,
    shared_param_block_size,
)
from .progress import NullReporter, ProgressReporter, make_reporter
from .seeding import SeedTree

__all__ = [
    "run_repetitions",
    "run_ensemble_blocks",
    "run_ensemble_reduced",
    "run_tasks",
    "block_parameter_rng",
    "shared_param_block_size",
    "TaskError",
    "SeedTree",
    "NullReporter",
    "ProgressReporter",
    "make_reporter",
]
