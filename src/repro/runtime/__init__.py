"""Experiment runtime: repetition fan-out, seed trees, progress reporting."""

from .executor import (
    TaskError,
    block_parameter_rng,
    block_seed_spec,
    run_ensemble_blocks,
    run_ensemble_reduced,
    run_repetitions,
    run_tasks,
    seeds_from_spec,
    shared_param_block_size,
)
from .fabric import FabricSession, current_fabric
from .progress import NullReporter, ProgressReporter, make_reporter
from .seeding import SeedTree

__all__ = [
    "run_repetitions",
    "run_ensemble_blocks",
    "run_ensemble_reduced",
    "run_tasks",
    "block_parameter_rng",
    "block_seed_spec",
    "seeds_from_spec",
    "shared_param_block_size",
    "TaskError",
    "FabricSession",
    "current_fabric",
    "SeedTree",
    "NullReporter",
    "ProgressReporter",
    "make_reporter",
]
