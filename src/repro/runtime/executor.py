"""Repetition fan-out: serial, multiprocessing, and lockstep-ensemble execution.

Monte-Carlo repetitions are embarrassingly parallel; the executor takes a
picklable task ``task(seed_sequence) -> result`` and runs it once per
repetition with independent :class:`~numpy.random.SeedSequence` streams.
``workers=1`` (the default) runs in-process; ``workers>1`` fans out over a
``multiprocessing`` pool; ``workers=None`` uses all CPUs.

For a task with extra parameters, pass a top-level function plus ``kwargs``
(lambdas and closures do not pickle under the default ``spawn``/``fork``
start methods on all platforms).

Seed contract
-------------
All execution paths consume the **same** ``SeedSequence.spawn`` order: the
master seed is spawned into ``repetitions`` child sequences exactly once, and
child ``i`` always belongs to repetition ``i`` —

* the scalar path hands child ``i`` to ``task`` call ``i``;
* the ensemble path (``ensemble=True`` or :func:`run_ensemble_blocks`)
  partitions the *same* child list into contiguous blocks, and block ``b``
  covering repetitions ``[i0, i1)`` receives exactly ``children[i0:i1]``.

An ensemble task that feeds its seed slice to
:func:`repro.core.ensemble.simulate_ensemble` via ``seeds=`` therefore
reproduces the scalar repetitions bit-for-bit; a task that instead runs in
``seed_mode="blocked"`` conventionally uses ``seeds[0]`` of its slice as the
block master (fast path — statistically equivalent, not stream-matched).
Neither ``workers`` nor ``block_size`` changes which child seed a repetition
owns, and block boundaries are derived from ``block_size`` alone — never
from ``workers`` — so ``workers`` cannot change any result, and blocked-mode
results are deterministic in ``(seed, block_size)``.

Shared parameters per block
---------------------------
Experiments whose scalar repetitions each draw random *parameters* (a
capacity vector, a ball-size multiset, a hashing ring) before simulating
use the blocked-mode corollary of the contract: the block derives **one**
generator from its first child seed via :func:`block_parameter_rng`, draws
the block's shared parameters from it, and hands the *same* generator to
the lockstep engine as the block master.  Parameter randomness is then
sampled once per block instead of once per repetition; blocks are
independent (disjoint children of one spawn), so the estimator over
replications stays unbiased — see :mod:`repro.core.ensemble` for the full
argument.  Crucially the hook never re-spawns or reorders children: which
child a repetition owns is fixed before any parameter draw happens, so
adding or removing parameter draws inside a block cannot perturb another
block's streams.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import traceback
from collections.abc import Callable, Sequence

import numpy as np

from ..core.compiled import THREADS_ENV_VAR, set_threads, worker_thread_budget
from ..sampling.rngutils import spawn_seed_sequences
from .progress import make_reporter

__all__ = [
    "run_repetitions",
    "run_ensemble_blocks",
    "run_ensemble_reduced",
    "run_tasks",
    "block_parameter_rng",
    "block_seed_spec",
    "seeds_from_spec",
    "shared_param_block_size",
    "TaskError",
]


def _active_fabric():
    """The activated fabric session, if any (lazy import: fabric → executor
    is the module-level direction; the reverse would cycle)."""
    try:
        from .fabric.launcher import current_fabric
    except Exception:  # pragma: no cover — fabric package half-imported
        return None
    return current_fabric()


class TaskError(RuntimeError):
    """A repetition task failed, serially or inside the worker pool.

    Raised by :func:`run_tasks` in place of the bare traceback the task (or
    ``multiprocessing.Pool.imap``) would otherwise surface; the message names
    the failing task (experiment label and block bounds where the caller
    provided them) and carries the task-side traceback text.  Serial and
    pool failures wrap identically, so error reports do not change shape
    with ``workers``; the original exception stays reachable as
    ``__cause__`` on the serial path.
    """


class _TaskFailure:
    """Picklable capture of a worker-side exception (internal sentinel)."""

    __slots__ = ("message", "traceback")

    def __init__(self, message: str, tb: str):
        self.message = message
        self.traceback = tb

#: Default replications per lockstep block: wide enough to amortise the
#: per-ball vectorisation, small enough to bound the ``(R, n)`` working set.
#: Deliberately *not* derived from ``workers``: block boundaries determine
#: which child seed a blocked-mode task draws from, so a workers-dependent
#: default would make ``--workers`` change results at a fixed seed.  Pass an
#: explicit smaller ``block_size`` when a pool needs more blocks to chew on.
DEFAULT_BLOCK_SIZE = 128


def block_parameter_rng(seeds) -> np.random.Generator:
    """The block's parameter-and-stream master generator (see module docs).

    A blocked-mode ensemble task that needs shared random parameters calls
    this exactly once on its seed slice, draws the parameters from the
    returned generator, and passes the same generator on as
    ``simulate_ensemble(..., seed=rng, seed_mode="blocked")`` — mirroring how
    the matching scalar task derives both its parameters and its simulation
    stream from one per-repetition generator.  The generator is a function of
    ``seeds[0]`` alone, so the executor's spawn contract (child ``i`` belongs
    to repetition ``i``, blocks get contiguous slices) is untouched by any
    number of parameter draws.
    """
    seeds = list(seeds)
    if not seeds:
        raise ValueError("a parameter rng needs a non-empty block seed slice")
    return np.random.default_rng(seeds[0])


def shared_param_block_size(
    repetitions: int, block_size: int | None = None, *, min_blocks: int = 8
) -> int:
    """Block width for shared-params-per-block experiments.

    Those runners (fig08/09, fig16, ``rw_ring``, ``abl_weighted``) draw one
    random parameter set per block, so the parameter randomness is averaged
    over the number of blocks: keep at least ``min_blocks`` of them instead
    of taking the width-optimised :data:`DEFAULT_BLOCK_SIZE`.  An explicit
    ``block_size`` (e.g. pinned by a RunRequest) always wins.
    """
    if block_size is not None:
        return block_size
    return min(DEFAULT_BLOCK_SIZE, max(1, repetitions // min_blocks))


def _invoke(payload):
    task, seed, kwargs = payload
    return task(seed, **kwargs)


def _invoke_captured(payload):
    """Pool-side wrapper: capture task exceptions instead of letting the
    pool machinery re-raise them bare in the parent (satisfying callers who
    need the failing task identified — see :class:`TaskError`)."""
    try:
        return _invoke(payload)
    except Exception as exc:  # noqa: BLE001 — re-raised with context parent-side
        return _TaskFailure(repr(exc), traceback.format_exc())


def _pool_initializer(thread_budget: str) -> None:
    """Pin a pool worker's compiled-tier thread budget (oversubscription
    guard).

    The pool already parallelises across workers, so a worker whose
    ``REPRO_THREADS`` resolves to ``"auto"`` would expand to the whole
    machine and the fleet would run ``workers × cores`` threads.  Each
    worker therefore starts with the parent's
    :func:`~repro.core.compiled.worker_thread_budget` — ``"1"`` under
    ``"auto"``, the explicit value when the caller forced one — written to
    its environment, and any fork-inherited in-process override cleared so
    the env value is what :func:`~repro.core.compiled.get_threads` sees.
    """
    set_threads(None)
    os.environ[THREADS_ENV_VAR] = thread_budget


def _resolve_blocks(repetitions: int, block_size: int | None) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` block bounds covering all repetitions."""
    if block_size is None:
        block_size = DEFAULT_BLOCK_SIZE
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    return [
        (start, min(start + block_size, repetitions))
        for start in range(0, repetitions, block_size)
    ]


def run_repetitions(
    task: Callable,
    repetitions: int,
    *,
    seed=None,
    workers: int | None = 1,
    kwargs: dict | None = None,
    progress=None,
    chunksize: int = 1,
    ensemble: bool = False,
    block_size: int | None = None,
    label: str | None = None,
) -> list:
    """Run *task* once per repetition; return results in repetition order.

    Scalar path (default): ``task(seed_sequence, **kwargs) -> result``, one
    call per repetition.

    Ensemble fast path (``ensemble=True``): ``task(seed_sequences, **kwargs)
    -> sequence of per-repetition results``, one call per contiguous block of
    repetitions — vectorise inside the task (lockstep across the block),
    multiprocess across blocks.  The flattened result list is positionally
    identical to the scalar path's, and the seed contract (module docstring)
    guarantees a stream-matched task reproduces scalar results exactly.

    Results are deterministic in ``seed`` regardless of ``workers``:
    repetition ``i`` always owns child seed ``i`` of the master sequence,
    and block boundaries never depend on the pool size.  (A blocked-mode
    task's results additionally depend on ``block_size``, since each block
    draws from one master stream.)
    """
    if repetitions < 0:
        raise ValueError(f"repetitions must be non-negative, got {repetitions}")
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1 or None, got {workers}")
    kwargs = kwargs or {}
    if not ensemble:
        seeds = spawn_seed_sequences(seed, repetitions)
        payloads = [(task, s, kwargs) for s in seeds]
        prefix = f"{label} " if label else ""
        return run_tasks(
            payloads,
            workers=workers,
            progress=progress,
            chunksize=chunksize,
            describe=lambda i: f"{prefix}repetition {i}",
        )

    block_results = run_ensemble_blocks(
        task,
        repetitions,
        seed=seed,
        workers=workers,
        block_size=block_size,
        kwargs=kwargs,
        progress=progress,
        chunksize=chunksize,
        label=label,
    )
    bounds = _resolve_blocks(repetitions, block_size)
    results: list = []
    for (start, stop), block in zip(bounds, block_results):
        block = list(block)
        if len(block) != stop - start:
            raise ValueError(
                f"ensemble task returned {len(block)} results for the "
                f"{stop - start}-repetition block [{start}, {stop})"
            )
        results.extend(block)
    return results


def run_ensemble_blocks(
    task: Callable,
    repetitions: int,
    *,
    seed=None,
    workers: int | None = 1,
    block_size: int | None = None,
    kwargs: dict | None = None,
    progress=None,
    chunksize: int = 1,
    label: str | None = None,
) -> list:
    """Run a block-level ensemble task over contiguous repetition blocks.

    ``task(seed_sequences, **kwargs)`` receives the child seeds of one block
    (a slice of the master spawn, per the module-docstring contract) and may
    return anything — typically a small *reduced* summary (e.g. a
    :class:`repro.analysis.aggregate.StreamingProfile`) so that large
    ``(R, n)`` replication matrices never leave the worker.  Returns the list
    of block results in block order.
    """
    if repetitions < 0:
        raise ValueError(f"repetitions must be non-negative, got {repetitions}")
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1 or None, got {workers}")
    kwargs = kwargs or {}
    children = spawn_seed_sequences(seed, repetitions)
    bounds = _resolve_blocks(repetitions, block_size)
    payloads = [(task, children[start:stop], kwargs) for start, stop in bounds]
    return run_tasks(
        payloads,
        workers=workers,
        progress=progress,
        chunksize=chunksize,
        weights=[stop - start for start, stop in bounds],
        total=repetitions,
        describe=_block_describer(label, bounds),
    )


def _block_describer(label: str | None, bounds: Sequence[tuple[int, int]]):
    """Error-message namer for block payloads: experiment label + bounds."""

    def describe(i: int) -> str:
        start, stop = bounds[i]
        prefix = f"{label} " if label else ""
        return f"{prefix}ensemble block [{start}, {stop})"

    return describe


def _contains_ndarray(value) -> bool:
    """Whether *value* is — or transitively holds — a numpy array."""
    if isinstance(value, np.ndarray):
        return True
    if isinstance(value, (list, tuple, set, frozenset)):
        return any(_contains_ndarray(v) for v in value)
    if isinstance(value, dict):
        return any(_contains_ndarray(v) for v in value.values())
    return False


def _fingerprint_value(value) -> str:
    """Canonical fingerprint text for one kwargs value.

    Plain values keep their legacy ``repr`` form (so pre-existing
    checkpoints of array-free runs still resume).  Arrays — bare or nested
    in containers — are hashed over their full ``(dtype, shape, bytes)``
    content instead: ``repr`` truncates large arrays (``...``), so two runs
    differing only in the middle of a long capacity vector would otherwise
    share a fingerprint and resume from each other's checkpoints unsoundly.
    """
    if not _contains_ndarray(value):
        return repr(value)
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        digest = hashlib.sha256(arr.tobytes()).hexdigest()
        return f"ndarray[{arr.dtype.str}{arr.shape}]:{digest}"
    if isinstance(value, (list, tuple)):
        kind = "list" if isinstance(value, list) else "tuple"
        return f"{kind}({','.join(_fingerprint_value(v) for v in value)})"
    if isinstance(value, (set, frozenset)):
        inner = sorted(_fingerprint_value(v) for v in value)
        return f"set({','.join(inner)})"
    # dict (the only remaining container _contains_ndarray recurses into)
    items = sorted(
        (repr(k), _fingerprint_value(v)) for k, v in value.items()
    )
    return f"dict({','.join(f'{k}:{v}' for k, v in items)})"


def _checkpoint_fingerprint(task, repetitions, block_size, seed, kwargs, until=None) -> str:
    """Identity of one reduced ensemble run, for checkpoint validity.

    A checkpoint written under a different task, repetition count, block
    layout, seed, kwargs, or early-stop rule must never be resumed from;
    the fingerprint is a cheap text guard (checkpoints are already
    namespaced per cache key, so a mismatch only happens when experiment
    internals changed without a ``version`` bump — in which case the run
    silently starts fresh rather than resuming unsoundly).  Values are
    fingerprinted via :func:`_fingerprint_value`: ``repr`` for plain
    values, full content hashes for numpy arrays.
    """
    if isinstance(seed, np.random.SeedSequence):
        seed_repr = f"ss:{seed.entropy!r}:{tuple(seed.spawn_key)!r}"
    else:
        seed_repr = repr(seed)
    kw_repr = sorted((k, _fingerprint_value(v)) for k, v in (kwargs or {}).items())
    task_name = getattr(task, "__qualname__", repr(task))
    if until is None:
        # Keep the pre-adaptive 5-tuple form so fixed-budget checkpoints
        # written before the early-stop hook existed still resume.
        return repr((task_name, int(repetitions), block_size, seed_repr, kw_repr))
    describe = getattr(until, "fingerprint", None)
    until_repr = describe() if callable(describe) else repr(until)
    return repr((task_name, int(repetitions), block_size, seed_repr, kw_repr, until_repr))


def block_seed_spec(seed) -> dict:
    """Picklable description of the master seed's child-spawn geometry.

    The returned dict — ``{"entropy", "spawn_key", "pool_size", "base"}`` —
    is everything :func:`seeds_from_spec` needs to rebuild any block's child
    seeds, anywhere: the same ``(entropy, spawn_key + (base + j,))``
    construction ``SeedSequence.spawn`` would use, honoring a
    caller-supplied parent's ``n_children_spawned`` offset.  This is how the
    sweep fabric ships the seed contract to worker processes as plain data
    instead of a live ``SeedSequence``.  A ``seed=None`` parent resolves to
    fresh OS entropy here, exactly once, so all consumers of one spec share
    one (irreproducible but consistent) stream family.
    """
    parent = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return {
        "entropy": parent.entropy,
        "spawn_key": tuple(parent.spawn_key),
        "pool_size": parent.pool_size,
        "base": parent.n_children_spawned,
    }


def seeds_from_spec(spec: dict, i0: int, i1: int) -> list[np.random.SeedSequence]:
    """Child seeds of repetitions ``[i0, i1)`` under a :func:`block_seed_spec`.

    Bit-equivalent to slicing ``spawn_seed_sequences(seed, repetitions)``
    at ``[i0:i1]`` — repetition ``j`` always owns child ``base + j`` of the
    parent, regardless of which process asks.
    """
    spawn_key = tuple(spec["spawn_key"])
    base = int(spec["base"])
    return [
        np.random.SeedSequence(
            entropy=spec["entropy"],
            spawn_key=spawn_key + (base + j,),
            pool_size=int(spec["pool_size"]),
        )
        for j in range(i0, i1)
    ]


def _iter_block_seeds(seed, bounds):
    """Lazily yield each block's child-seed slice (executor seed contract).

    Children are constructed directly from the parent's
    ``(entropy, spawn_key)`` — exactly what ``SeedSequence.spawn`` slices
    would contain, block ``[i0, i1)`` getting children ``i0..i1-1`` — so an
    early-stopped adaptive run never pays for spawning children of blocks
    it does not reach, and a caller-supplied ``SeedSequence`` parent is not
    mutated (its ``n_children_spawned`` offset is still honored, matching
    :func:`repro.sampling.rngutils.spawn_seed_sequences` semantics).
    """
    spec = block_seed_spec(seed)
    for i0, i1 in bounds:
        yield seeds_from_spec(spec, i0, i1)


def run_ensemble_reduced(
    task: Callable,
    repetitions: int,
    *,
    seed=None,
    workers: int | None = 1,
    block_size: int | None = None,
    kwargs: dict | None = None,
    progress=None,
    chunksize: int = 1,
    label: str | None = None,
    checkpoint=None,
    until=None,
):
    """Run a reducer-returning ensemble task and merge the block reducers.

    ``task`` must return an object with a ``merge(other)`` method (e.g. a
    :class:`repro.analysis.aggregate.StreamingProfile`); the merged reducer
    over all blocks is returned.  Requires ``repetitions >= 1``.

    Resume hook
    -----------
    ``checkpoint`` is a slot provider (duck-typed; in practice a
    :class:`repro.io.store.Checkpointer`): each ``run_ensemble_reduced``
    call claims the next slot via ``checkpoint.slot()`` — call order inside
    an experiment is deterministic, so slot numbering is stable across
    retries — and after every completed block the merged-so-far reducer is
    persisted with ``slot.save(reducer, blocks_done, fingerprint)``.  On the
    next attempt ``slot.load(fingerprint)`` hands back that state and only
    the remaining blocks run.  Soundness rests on the seed contract (module
    docstring): block boundaries and each block's child seeds are functions
    of ``(seed, repetitions, block_size)`` alone, so the skipped blocks'
    contribution is exactly what the checkpoint recorded, and blocks are
    merged left-to-right either way — the resumed result is bit-identical
    to an uninterrupted run.  A literal ``seed=None`` run is not
    reproducible and therefore never checkpointed.

    Early-stop hook
    ---------------
    ``until`` (duck-typed; in practice a
    :class:`repro.analysis.precision.SequentialMonitor`) turns
    ``repetitions`` from a fixed budget into a *maximum*: after every
    completed block the merged-so-far pipeline calls
    ``until.observe(block_reducer, reps_done)`` and stops consuming blocks
    as soon as it returns ``True``.  Blocks are then generated lazily —
    child seeds for unreached blocks are never spawned — and the pool path
    dispatches bounded look-ahead waves (one pool-width at a time), so at
    most one wave of extra blocks is ever computed past the stopping
    point (and never merged).  The stop decision is a pure function of the
    observed block prefix, so serial and pool runs stop at the same block
    and yield bit-identical reducers.  With a ``checkpoint``, the
    monitor's state is persisted next to the merged reducer
    (``until.state_dict()`` / ``until.load_state_dict(...)``) and the
    monitor identity joins the fingerprint (``until.fingerprint()``), so a
    killed adaptive run resumes to the same stopping block bit-identically.
    """
    if repetitions < 1:
        raise ValueError(f"need at least one repetition, got {repetitions}")
    kwargs = kwargs or {}
    bounds = _resolve_blocks(repetitions, block_size)
    slot = None
    fingerprint = None
    merged = None
    start_block = 0
    if checkpoint is not None and seed is not None:
        slot = checkpoint.slot()
        fingerprint = _checkpoint_fingerprint(
            task, repetitions, block_size, seed, kwargs, until
        )
        state = slot.load(fingerprint)
        if state is not None:
            merged, start_block, monitor_state = state
            start_block = min(int(start_block), len(bounds))
            if until is not None and monitor_state is not None:
                until.load_state_dict(monitor_state)
    pending = bounds[start_block:]

    holder = {"reducer": merged}

    def _absorb(i: int, block_reducer) -> bool:
        """Merge pending block *i*; observe + checkpoint; report stop."""
        if holder["reducer"] is None:
            holder["reducer"] = block_reducer
        else:
            holder["reducer"].merge(block_reducer)
        stop = False
        if until is not None:
            # pending[i] ends at global repetition index i1 == reps done.
            stop = bool(until.observe(block_reducer, pending[i][1]))
        if slot is not None:
            slot.save(
                holder["reducer"],
                start_block + i + 1,
                fingerprint,
                monitor=None if until is None else until.state_dict(),
            )
        return stop

    if until is None:
        fabric = _active_fabric()
        if fabric is not None and pending:
            # Fixed-budget blocks are leased to fabric workers; the parked
            # block reducers come back in deterministic block order and run
            # through the same `_absorb` closure the local paths use, so the
            # merge (and any checkpointing) is bit-identical to a serial
            # run regardless of worker placement or deaths.
            for i, block_reducer in enumerate(
                fabric.run_blocks(
                    task,
                    pending,
                    seed=seed,
                    repetitions=repetitions,
                    block_size=block_size,
                    kwargs=kwargs,
                    label=label,
                    progress=progress,
                )
            ):
                _absorb(i, block_reducer)
            return holder["reducer"]
        children = spawn_seed_sequences(seed, repetitions)
        payloads = [(task, children[i0:i1], kwargs) for i0, i1 in pending]
        run_tasks(
            payloads,
            workers=workers,
            progress=progress,
            chunksize=chunksize,
            weights=[i1 - i0 for i0, i1 in pending],
            total=sum(i1 - i0 for i0, i1 in pending),
            describe=_block_describer(label, pending),
            on_result=_absorb,
        )
        return holder["reducer"]

    # Adaptive path: a resumed run whose restored monitor is already
    # satisfied stopped at an earlier block — return without running more.
    if not pending or until.should_stop():
        return holder["reducer"]
    _run_adaptive_blocks(
        task,
        pending,
        seed=seed,
        workers=workers,
        kwargs=kwargs,
        progress=progress,
        chunksize=chunksize,
        label=label,
        absorb=_absorb,
    )
    return holder["reducer"]


def _run_adaptive_blocks(
    task,
    pending: Sequence[tuple[int, int]],
    *,
    seed,
    workers,
    kwargs,
    progress,
    chunksize,
    label,
    absorb,
):
    """Consume pending blocks in order until *absorb* reports a stop.

    Serial execution is fully lazy (one block at a time); pool execution
    submits bounded waves of one pool-width so the stop signal is honored
    within at most one wave of look-ahead (wasted blocks are computed but
    never merged — results stay bit-identical to the serial path).
    """
    reporter = make_reporter(progress)
    reporter.start(sum(i1 - i0 for i0, i1 in pending), label="repetitions")
    describe = _block_describer(label, pending)
    seed_iter = _iter_block_seeds(seed, pending)
    if workers == 1 or len(pending) <= 1:
        for i, ((i0, i1), seeds) in enumerate(zip(pending, seed_iter)):
            try:
                block_reducer = task(seeds, **kwargs)
            except Exception as exc:
                raise TaskError(
                    f"{describe(i)} failed in a serial task: {exc!r}\n"
                    f"--- task traceback ---\n{traceback.format_exc()}"
                ) from exc
            stop = absorb(i, block_reducer)
            reporter.advance(i1 - i0)
            if stop:
                break
    else:
        pool_size = workers if workers is not None else multiprocessing.cpu_count()
        pool_size = min(pool_size, len(pending))
        stopped = False
        with multiprocessing.Pool(
            pool_size,
            initializer=_pool_initializer,
            initargs=(worker_thread_budget(),),
        ) as pool:
            idx = 0
            while idx < len(pending) and not stopped:
                wave = pending[idx:idx + pool_size]
                payloads = [(task, next(seed_iter), kwargs) for _ in wave]
                iterator = pool.imap(
                    _invoke_captured, payloads, chunksize=max(chunksize, 1)
                )
                for j, (i0, i1) in enumerate(wave):
                    try:
                        res = next(iterator)
                    except Exception as exc:  # pool plumbing failure
                        raise TaskError(
                            f"{describe(idx + j)}: worker pool failed before "
                            f"returning a result: {exc!r}"
                        ) from exc
                    if isinstance(res, _TaskFailure):
                        raise TaskError(
                            f"{describe(idx + j)} failed in a pool worker: "
                            f"{res.message}\n--- worker traceback ---\n"
                            f"{res.traceback}"
                        ) from None
                    stopped = absorb(idx + j, res)
                    reporter.advance(i1 - i0)
                    if stopped:
                        break
                idx += len(wave)
    reporter.finish()


def run_tasks(
    payloads: Sequence,
    *,
    workers: int | None = 1,
    progress=None,
    chunksize: int = 1,
    weights: Sequence[int] | None = None,
    total: int | None = None,
    describe: Callable[[int], str] | None = None,
    on_result: Callable[[int, object], None] | None = None,
) -> list:
    """Execute ``(task, seed, kwargs)`` payloads, serially or in a pool.

    ``weights``/``total`` let a caller whose payloads cover several
    repetitions each (ensemble blocks) report progress in repetitions
    rather than payloads.

    ``describe(i)`` names payload ``i`` for error messages (experiment id
    plus block bounds); when a pool worker raises, the run fails fast with a
    :class:`TaskError` carrying that name and the worker traceback instead
    of the pool's bare pickling/traceback noise.  ``on_result(i, result)``
    is invoked in payload order as each result arrives (parent-side), which
    is what lets :func:`run_ensemble_reduced` merge and checkpoint blocks
    incrementally instead of after the fact.
    """
    if weights is not None and len(weights) != len(payloads):
        raise ValueError(
            f"weights has {len(weights)} entries for {len(payloads)} payloads"
        )

    def _name(i: int) -> str:
        if describe is not None:
            return describe(i)
        return f"task {i + 1}/{len(payloads)}"

    reporter = make_reporter(progress)
    reporter.start(total if total is not None else len(payloads), label="repetitions")
    steps = weights if weights is not None else [1] * len(payloads)
    results: list = []
    if workers == 1 or len(payloads) <= 1:
        for i, (p, step) in enumerate(zip(payloads, steps)):
            try:
                res = _invoke(p)
            except Exception as exc:
                raise TaskError(
                    f"{_name(i)} failed in a serial task: {exc!r}\n"
                    f"--- task traceback ---\n{traceback.format_exc()}"
                ) from exc
            results.append(res)
            if on_result is not None:
                on_result(i, res)
            reporter.advance(step)
    else:
        pool_size = workers if workers is not None else multiprocessing.cpu_count()
        pool_size = min(pool_size, max(len(payloads), 1))
        with multiprocessing.Pool(
            pool_size,
            initializer=_pool_initializer,
            initargs=(worker_thread_budget(),),
        ) as pool:
            iterator = pool.imap(_invoke_captured, payloads, chunksize=max(chunksize, 1))
            for i, step in enumerate(steps):
                try:
                    res = next(iterator)
                except Exception as exc:  # pool plumbing (e.g. unpicklable result)
                    raise TaskError(
                        f"{_name(i)}: worker pool failed before returning a "
                        f"result: {exc!r}"
                    ) from exc
                if isinstance(res, _TaskFailure):
                    raise TaskError(
                        f"{_name(i)} failed in a pool worker: {res.message}\n"
                        f"--- worker traceback ---\n{res.traceback}"
                    ) from None
                results.append(res)
                if on_result is not None:
                    on_result(i, res)
                reporter.advance(step)
    reporter.finish()
    return results
