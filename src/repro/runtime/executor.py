"""Repetition fan-out: serial and multiprocessing execution.

Monte-Carlo repetitions are embarrassingly parallel; the executor takes a
picklable task ``task(seed_sequence) -> result`` and runs it once per
repetition with independent :class:`~numpy.random.SeedSequence` streams.
``workers=1`` (the default) runs in-process; ``workers>1`` fans out over a
``multiprocessing`` pool; ``workers=None`` uses all CPUs.

For a task with extra parameters, pass a top-level function plus ``kwargs``
(lambdas and closures do not pickle under the default ``spawn``/``fork``
start methods on all platforms).
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Callable, Sequence

import numpy as np

from ..sampling.rngutils import spawn_seed_sequences
from .progress import make_reporter

__all__ = ["run_repetitions", "run_tasks"]


def _invoke(payload):
    task, seed, kwargs = payload
    return task(seed, **kwargs)


def run_repetitions(
    task: Callable,
    repetitions: int,
    *,
    seed=None,
    workers: int | None = 1,
    kwargs: dict | None = None,
    progress=None,
    chunksize: int = 1,
) -> list:
    """Run ``task(seed_sequence, **kwargs)`` *repetitions* times.

    Returns the list of results in repetition order.  Results are
    deterministic in ``seed`` regardless of ``workers``: repetition ``i``
    always receives child seed ``i`` of the master sequence.
    """
    if repetitions < 0:
        raise ValueError(f"repetitions must be non-negative, got {repetitions}")
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1 or None, got {workers}")
    kwargs = kwargs or {}
    seeds = spawn_seed_sequences(seed, repetitions)
    payloads = [(task, s, kwargs) for s in seeds]
    return run_tasks(payloads, workers=workers, progress=progress, chunksize=chunksize)


def run_tasks(
    payloads: Sequence,
    *,
    workers: int | None = 1,
    progress=None,
    chunksize: int = 1,
) -> list:
    """Execute ``(task, seed, kwargs)`` payloads, serially or in a pool."""
    reporter = make_reporter(progress)
    reporter.start(len(payloads), label="repetitions")
    results: list = []
    if workers == 1 or len(payloads) <= 1:
        for p in payloads:
            results.append(_invoke(p))
            reporter.advance()
    else:
        pool_size = workers if workers is not None else multiprocessing.cpu_count()
        pool_size = min(pool_size, max(len(payloads), 1))
        with multiprocessing.Pool(pool_size) as pool:
            for res in pool.imap(_invoke, payloads, chunksize=max(chunksize, 1)):
                results.append(res)
                reporter.advance()
    reporter.finish()
    return results
