"""Repetition fan-out: serial, multiprocessing, and lockstep-ensemble execution.

Monte-Carlo repetitions are embarrassingly parallel; the executor takes a
picklable task ``task(seed_sequence) -> result`` and runs it once per
repetition with independent :class:`~numpy.random.SeedSequence` streams.
``workers=1`` (the default) runs in-process; ``workers>1`` fans out over a
``multiprocessing`` pool; ``workers=None`` uses all CPUs.

For a task with extra parameters, pass a top-level function plus ``kwargs``
(lambdas and closures do not pickle under the default ``spawn``/``fork``
start methods on all platforms).

Seed contract
-------------
All execution paths consume the **same** ``SeedSequence.spawn`` order: the
master seed is spawned into ``repetitions`` child sequences exactly once, and
child ``i`` always belongs to repetition ``i`` —

* the scalar path hands child ``i`` to ``task`` call ``i``;
* the ensemble path (``ensemble=True`` or :func:`run_ensemble_blocks`)
  partitions the *same* child list into contiguous blocks, and block ``b``
  covering repetitions ``[i0, i1)`` receives exactly ``children[i0:i1]``.

An ensemble task that feeds its seed slice to
:func:`repro.core.ensemble.simulate_ensemble` via ``seeds=`` therefore
reproduces the scalar repetitions bit-for-bit; a task that instead runs in
``seed_mode="blocked"`` conventionally uses ``seeds[0]`` of its slice as the
block master (fast path — statistically equivalent, not stream-matched).
Neither ``workers`` nor ``block_size`` changes which child seed a repetition
owns, and block boundaries are derived from ``block_size`` alone — never
from ``workers`` — so ``workers`` cannot change any result, and blocked-mode
results are deterministic in ``(seed, block_size)``.

Shared parameters per block
---------------------------
Experiments whose scalar repetitions each draw random *parameters* (a
capacity vector, a ball-size multiset, a hashing ring) before simulating
use the blocked-mode corollary of the contract: the block derives **one**
generator from its first child seed via :func:`block_parameter_rng`, draws
the block's shared parameters from it, and hands the *same* generator to
the lockstep engine as the block master.  Parameter randomness is then
sampled once per block instead of once per repetition; blocks are
independent (disjoint children of one spawn), so the estimator over
replications stays unbiased — see :mod:`repro.core.ensemble` for the full
argument.  Crucially the hook never re-spawns or reorders children: which
child a repetition owns is fixed before any parameter draw happens, so
adding or removing parameter draws inside a block cannot perturb another
block's streams.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Callable, Sequence

import numpy as np

from ..sampling.rngutils import spawn_seed_sequences
from .progress import make_reporter

__all__ = [
    "run_repetitions",
    "run_ensemble_blocks",
    "run_ensemble_reduced",
    "run_tasks",
    "block_parameter_rng",
]

#: Default replications per lockstep block: wide enough to amortise the
#: per-ball vectorisation, small enough to bound the ``(R, n)`` working set.
#: Deliberately *not* derived from ``workers``: block boundaries determine
#: which child seed a blocked-mode task draws from, so a workers-dependent
#: default would make ``--workers`` change results at a fixed seed.  Pass an
#: explicit smaller ``block_size`` when a pool needs more blocks to chew on.
DEFAULT_BLOCK_SIZE = 128


def block_parameter_rng(seeds) -> np.random.Generator:
    """The block's parameter-and-stream master generator (see module docs).

    A blocked-mode ensemble task that needs shared random parameters calls
    this exactly once on its seed slice, draws the parameters from the
    returned generator, and passes the same generator on as
    ``simulate_ensemble(..., seed=rng, seed_mode="blocked")`` — mirroring how
    the matching scalar task derives both its parameters and its simulation
    stream from one per-repetition generator.  The generator is a function of
    ``seeds[0]`` alone, so the executor's spawn contract (child ``i`` belongs
    to repetition ``i``, blocks get contiguous slices) is untouched by any
    number of parameter draws.
    """
    seeds = list(seeds)
    if not seeds:
        raise ValueError("a parameter rng needs a non-empty block seed slice")
    return np.random.default_rng(seeds[0])


def _invoke(payload):
    task, seed, kwargs = payload
    return task(seed, **kwargs)


def _resolve_blocks(repetitions: int, block_size: int | None) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` block bounds covering all repetitions."""
    if block_size is None:
        block_size = DEFAULT_BLOCK_SIZE
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    return [
        (start, min(start + block_size, repetitions))
        for start in range(0, repetitions, block_size)
    ]


def run_repetitions(
    task: Callable,
    repetitions: int,
    *,
    seed=None,
    workers: int | None = 1,
    kwargs: dict | None = None,
    progress=None,
    chunksize: int = 1,
    ensemble: bool = False,
    block_size: int | None = None,
) -> list:
    """Run *task* once per repetition; return results in repetition order.

    Scalar path (default): ``task(seed_sequence, **kwargs) -> result``, one
    call per repetition.

    Ensemble fast path (``ensemble=True``): ``task(seed_sequences, **kwargs)
    -> sequence of per-repetition results``, one call per contiguous block of
    repetitions — vectorise inside the task (lockstep across the block),
    multiprocess across blocks.  The flattened result list is positionally
    identical to the scalar path's, and the seed contract (module docstring)
    guarantees a stream-matched task reproduces scalar results exactly.

    Results are deterministic in ``seed`` regardless of ``workers``:
    repetition ``i`` always owns child seed ``i`` of the master sequence,
    and block boundaries never depend on the pool size.  (A blocked-mode
    task's results additionally depend on ``block_size``, since each block
    draws from one master stream.)
    """
    if repetitions < 0:
        raise ValueError(f"repetitions must be non-negative, got {repetitions}")
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1 or None, got {workers}")
    kwargs = kwargs or {}
    if not ensemble:
        seeds = spawn_seed_sequences(seed, repetitions)
        payloads = [(task, s, kwargs) for s in seeds]
        return run_tasks(payloads, workers=workers, progress=progress, chunksize=chunksize)

    block_results = run_ensemble_blocks(
        task,
        repetitions,
        seed=seed,
        workers=workers,
        block_size=block_size,
        kwargs=kwargs,
        progress=progress,
        chunksize=chunksize,
    )
    bounds = _resolve_blocks(repetitions, block_size)
    results: list = []
    for (start, stop), block in zip(bounds, block_results):
        block = list(block)
        if len(block) != stop - start:
            raise ValueError(
                f"ensemble task returned {len(block)} results for the "
                f"{stop - start}-repetition block [{start}, {stop})"
            )
        results.extend(block)
    return results


def run_ensemble_blocks(
    task: Callable,
    repetitions: int,
    *,
    seed=None,
    workers: int | None = 1,
    block_size: int | None = None,
    kwargs: dict | None = None,
    progress=None,
    chunksize: int = 1,
) -> list:
    """Run a block-level ensemble task over contiguous repetition blocks.

    ``task(seed_sequences, **kwargs)`` receives the child seeds of one block
    (a slice of the master spawn, per the module-docstring contract) and may
    return anything — typically a small *reduced* summary (e.g. a
    :class:`repro.analysis.aggregate.StreamingProfile`) so that large
    ``(R, n)`` replication matrices never leave the worker.  Returns the list
    of block results in block order.
    """
    if repetitions < 0:
        raise ValueError(f"repetitions must be non-negative, got {repetitions}")
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1 or None, got {workers}")
    kwargs = kwargs or {}
    children = spawn_seed_sequences(seed, repetitions)
    bounds = _resolve_blocks(repetitions, block_size)
    payloads = [(task, children[start:stop], kwargs) for start, stop in bounds]
    return run_tasks(
        payloads,
        workers=workers,
        progress=progress,
        chunksize=chunksize,
        weights=[stop - start for start, stop in bounds],
        total=repetitions,
    )


def run_ensemble_reduced(
    task: Callable,
    repetitions: int,
    *,
    seed=None,
    workers: int | None = 1,
    block_size: int | None = None,
    kwargs: dict | None = None,
    progress=None,
    chunksize: int = 1,
):
    """Run a reducer-returning ensemble task and merge the block reducers.

    ``task`` must return an object with a ``merge(other)`` method (e.g. a
    :class:`repro.analysis.aggregate.StreamingProfile`); the merged reducer
    over all blocks is returned.  Requires ``repetitions >= 1``.
    """
    if repetitions < 1:
        raise ValueError(f"need at least one repetition, got {repetitions}")
    blocks = run_ensemble_blocks(
        task, repetitions, seed=seed, workers=workers, block_size=block_size,
        kwargs=kwargs, progress=progress, chunksize=chunksize,
    )
    reducer = blocks[0]
    for other in blocks[1:]:
        reducer.merge(other)
    return reducer


def run_tasks(
    payloads: Sequence,
    *,
    workers: int | None = 1,
    progress=None,
    chunksize: int = 1,
    weights: Sequence[int] | None = None,
    total: int | None = None,
) -> list:
    """Execute ``(task, seed, kwargs)`` payloads, serially or in a pool.

    ``weights``/``total`` let a caller whose payloads cover several
    repetitions each (ensemble blocks) report progress in repetitions
    rather than payloads.
    """
    if weights is not None and len(weights) != len(payloads):
        raise ValueError(
            f"weights has {len(weights)} entries for {len(payloads)} payloads"
        )
    reporter = make_reporter(progress)
    reporter.start(total if total is not None else len(payloads), label="repetitions")
    steps = weights if weights is not None else [1] * len(payloads)
    results: list = []
    if workers == 1 or len(payloads) <= 1:
        for p, step in zip(payloads, steps):
            results.append(_invoke(p))
            reporter.advance(step)
    else:
        pool_size = workers if workers is not None else multiprocessing.cpu_count()
        pool_size = min(pool_size, max(len(payloads), 1))
        with multiprocessing.Pool(pool_size) as pool:
            for res, step in zip(
                pool.imap(_invoke, payloads, chunksize=max(chunksize, 1)), steps
            ):
                results.append(res)
                reporter.advance(step)
    reporter.finish()
    return results
