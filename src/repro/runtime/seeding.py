"""Seed trees for experiments.

An experiment is addressed by ``(sweep point, repetition)``; this module
derives one independent seed per cell from a single master seed, in a way
that is stable under changes to the number of repetitions or sweep points
executed (cell ``(i, j)`` always receives the same seed for the same master).
Built on :mod:`repro.sampling.rngutils`.
"""

from __future__ import annotations

import numpy as np

from ..sampling.rngutils import spawn_seed_sequences

__all__ = ["SeedTree"]


class SeedTree:
    """Two-level seed hierarchy: sweep points at level 1, repetitions at level 2.

    Examples
    --------
    >>> tree = SeedTree(1234, n_points=3)
    >>> ss = tree.repetition_seed(point=1, repetition=7)
    >>> isinstance(ss, np.random.SeedSequence)
    True
    """

    def __init__(self, master_seed, n_points: int):
        if n_points <= 0:
            raise ValueError(f"n_points must be positive, got {n_points}")
        self._point_seeds = spawn_seed_sequences(master_seed, n_points)
        self._rep_cache: dict[int, list[np.random.SeedSequence]] = {}
        self.n_points = n_points

    def point_seed(self, point: int) -> np.random.SeedSequence:
        """Seed of sweep point *point*."""
        return self._point_seeds[point]

    def repetition_seed(self, point: int, repetition: int) -> np.random.SeedSequence:
        """Seed of repetition *repetition* at sweep point *point*."""
        if repetition < 0:
            raise IndexError(f"repetition must be non-negative, got {repetition}")
        reps = self._rep_cache.setdefault(point, [])
        if repetition >= len(reps):
            # SeedSequence.spawn continues from the internal spawn counter,
            # so extending the cache preserves previously issued seeds.
            reps.extend(self._point_seeds[point].spawn(repetition + 1 - len(reps)))
        return reps[repetition]

    def repetition_seeds(self, point: int, count: int) -> list[np.random.SeedSequence]:
        """First *count* repetition seeds of a sweep point."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count:
            self.repetition_seed(point, count - 1)
        return list(self._rep_cache.get(point, []))[:count]
