"""Distributed sweep fabric: broker-leased ensemble blocks over workers.

The RunRequest → ResultStore → resumable-blocks pipeline already behaves
like a distributed system (content-addressed results, atomic writes,
per-block checkpoints); this package makes it one.  A broker thread leases
``(work-set token, block)`` items to worker *processes* over a
line-delimited JSON socket protocol (:mod:`.protocol`), workers park each
block's reducer in the shared :class:`~repro.io.store.ResultStore` scratch
namespace, and the driver merges the parked reducers in deterministic
block order — so the merged result is bit-identical to a serial
:func:`~repro.runtime.executor.run_ensemble_reduced` run regardless of
which worker ran which blocks or how many of them died mid-flight.

Package split (modelled on a server/client/protocol/launcher layout):

* :mod:`.protocol` — wire format plus the shared-medium conventions
  (work-set tokens, park-file paths and fingerprints);
* :mod:`.broker`   — the lease server: queue, lease expiry, heartbeats,
  re-queue on worker death, park-file completion detection;
* :mod:`.worker`   — the worker process (``python -m
  repro.runtime.fabric.worker --address HOST:PORT``);
* :mod:`.launcher` — :class:`FabricSession`: spawns broker + workers,
  exposes the ``activate()`` context the executor dispatches through.
"""

from .launcher import FabricSession, current_fabric

__all__ = ["FabricSession", "current_fabric"]
