"""The fabric's lease server.

A single-threaded ``selectors`` event loop (running in a daemon thread)
owns all connection state, the work queue, and the lease table — worker
messages and lease-expiry ticks are serialised through it, so there are no
locks around the scheduling decisions themselves.  Driver-side calls
(:meth:`Broker.submit`, :meth:`Broker.finish`) touch the shared structures
under one re-entrant lock.

Lease lifecycle::

    queued --request--> leased --done/park-detected--> done
       ^                  |
       +--expiry/death----+   (park file valid? -> done, else re-queue)

Two failure ledgers are kept per block, because death and failure mean
different things:

* a *lost* lease (worker died, socket closed, heartbeats stopped) is
  normal fabric weather — the block re-queues, up to ``max_requeues``
  times, and the broker first checks the park file (the work may have
  completed with only the ``done`` message lost);
* an explicit ``failed`` message means the task itself raised — that is a
  bug in the task, not the fabric, so it caps out at ``max_task_failures``
  and aborts the whole work set with the worker's traceback.
"""

from __future__ import annotations

import selectors
import socket
import threading
import time
from collections import deque

from ...io.store import CheckpointSlot
from .protocol import encode, park_fingerprint, park_path, split_lines

__all__ = ["Broker", "WorkSet"]

#: Per-block cap on explicit task failures before the work set aborts.
MAX_TASK_FAILURES = 3

#: Per-block cap on lost-lease re-queues (worker deaths, expiries) before
#: the work set aborts — a backstop against a block that kills every worker
#: it touches.
MAX_REQUEUES = 16


class WorkSet:
    """One submitted batch of blocks (all state owned by the broker loop).

    The driver holds the object to wait on ``event`` and read ``error`` /
    progress; everything else is broker-internal.
    """

    def __init__(self, token: str, directory, blocks):
        self.token = token
        self.directory = directory
        #: i0 -> (i0, i1) for every block this submission must complete.
        self.blocks = {int(i0): (int(i0), int(i1)) for i0, i1 in blocks}
        self.done: set[int] = set()
        self.failures: dict[int, int] = {}
        self.requeues: dict[int, int] = {}
        self.error: str | None = None
        #: Set when every block is done or the set aborted.
        self.event = threading.Event()

    def finished(self) -> bool:
        return self.error is not None or len(self.done) == len(self.blocks)

    def done_repetitions(self) -> int:
        """Total repetitions covered by completed blocks (progress)."""
        return sum(self.blocks[i0][1] - self.blocks[i0][0] for i0 in self.done)


class _Conn:
    """Per-connection broker state."""

    __slots__ = ("sock", "buffer", "worker", "leases")

    def __init__(self, sock):
        self.sock = sock
        self.buffer = b""
        self.worker = None  # id from hello
        self.leases: set[tuple[str, int]] = set()


class Broker:
    """Lease server over localhost TCP; start with :meth:`start`.

    ``lease_ttl`` bounds how long a silent worker may sit on a block before
    it re-queues; heartbeats (sent every ``lease_ttl / 3``, as told to the
    worker in ``welcome``) extend the deadline.  ``tick`` is the event-loop
    poll interval and therefore the expiry-detection granularity.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        *,
        lease_ttl: float = 10.0,
        tick: float = 0.05,
        max_task_failures: int = MAX_TASK_FAILURES,
        max_requeues: int = MAX_REQUEUES,
    ):
        self.lease_ttl = float(lease_ttl)
        self.tick = float(tick)
        self.max_task_failures = int(max_task_failures)
        self.max_requeues = int(max_requeues)
        self._listen = socket.create_server((host, 0))
        self._listen.setblocking(False)
        self.address: tuple[str, int] = self._listen.getsockname()[:2]
        self._sel = selectors.DefaultSelector()
        self._sel.register(self._listen, selectors.EVENT_READ, None)
        self._lock = threading.RLock()
        self._worksets: dict[str, WorkSet] = {}
        self._queue: deque[tuple[str, int]] = deque()
        #: (token, i0) -> (conn, monotonic deadline)
        self._leases: dict[tuple[str, int], tuple[_Conn, float]] = {}
        self._conns: list[_Conn] = []
        self._draining = False
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- driver-side API --------------------------------------------------

    def start(self) -> "Broker":
        self._thread = threading.Thread(
            target=self._serve, name="fabric-broker", daemon=True
        )
        self._thread.start()
        return self

    def submit(self, token: str, directory, blocks) -> WorkSet:
        """Register *blocks* of one work set and queue them for leasing."""
        ws = WorkSet(token, directory, blocks)
        with self._lock:
            self._worksets[token] = ws
            if not ws.blocks:
                ws.event.set()
            else:
                self._queue.extend((token, i0) for i0 in sorted(ws.blocks))
        return ws

    def finish(self, token: str) -> None:
        """Drop a collected (or abandoned) work set and purge its queue
        entries; in-flight leases of the set resolve to no-ops."""
        with self._lock:
            self._worksets.pop(token, None)
            self._queue = deque(item for item in self._queue if item[0] != token)
            for key in [k for k in self._leases if k[0] == token]:
                conn, _ = self._leases.pop(key)
                conn.leases.discard(key)

    def abort(self, token: str, reason: str) -> None:
        """Fail a work set from outside (e.g. the launcher noticed every
        worker process exited)."""
        with self._lock:
            ws = self._worksets.get(token)
            if ws is not None and not ws.finished():
                self._fail(ws, reason)

    def drain(self) -> None:
        """Answer every subsequent ``request`` with ``shutdown``."""
        with self._lock:
            self._draining = True

    def worker_count(self) -> int:
        """Connected workers that completed the hello handshake."""
        with self._lock:
            return sum(1 for c in self._conns if c.worker is not None)

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # -- event loop -------------------------------------------------------

    def _serve(self) -> None:
        try:
            while not self._stop.is_set():
                for key, _ in self._sel.select(self.tick):
                    if key.data is None:
                        self._accept()
                    else:
                        self._service(key.data)
                self._expire_leases()
        finally:
            with self._lock:
                for conn in list(self._conns):
                    self._drop(conn, reap_leases=False)
            self._sel.close()
            self._listen.close()

    def _accept(self) -> None:
        try:
            sock, _ = self._listen.accept()
        except OSError:
            return
        sock.setblocking(True)  # reads gated by select; replies are tiny
        conn = _Conn(sock)
        with self._lock:
            self._conns.append(conn)
        self._sel.register(sock, selectors.EVENT_READ, conn)

    def _service(self, conn: _Conn) -> None:
        try:
            data = conn.sock.recv(65536)
        except OSError:
            data = b""
        if not data:
            self._drop(conn)
            return
        conn.buffer += data
        messages, conn.buffer = split_lines(conn.buffer)
        for message in messages:
            reply = self._handle(conn, message)
            if reply is not None:
                try:
                    conn.sock.sendall(encode(reply))
                except OSError:
                    self._drop(conn)
                    return

    def _drop(self, conn: _Conn, *, reap_leases: bool = True) -> None:
        try:
            self._sel.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        with self._lock:
            if conn in self._conns:
                self._conns.remove(conn)
            if reap_leases:
                for key in list(conn.leases):
                    self._leases.pop(key, None)
                    conn.leases.discard(key)
                    self._lost(key, "worker disconnected")

    # -- message handling (broker-loop thread only) -----------------------

    def _handle(self, conn: _Conn, message: dict):
        kind = message.get("type")
        with self._lock:
            if kind == "hello":
                conn.worker = str(message.get("worker", "?"))
                return {"type": "welcome", "heartbeat": self.lease_ttl / 3.0}
            if kind == "heartbeat":
                deadline = time.monotonic() + self.lease_ttl
                for key in conn.leases:
                    self._leases[key] = (conn, deadline)
                return None  # fire-and-forget by protocol contract
            if kind == "request":
                return self._lease_next(conn)
            if kind == "done":
                self._mark_done(conn, message)
                return {"type": "ok"}
            if kind == "failed":
                self._mark_failed(conn, message)
                return {"type": "ok"}
        return {"type": "error", "error": f"unknown message type {kind!r}"}

    def _lease_next(self, conn: _Conn):
        if self._draining:
            return {"type": "shutdown"}
        while self._queue:
            token, i0 = self._queue.popleft()
            ws = self._worksets.get(token)
            if ws is None or ws.finished() or i0 in ws.done:
                continue
            key = (token, i0)
            if key in self._leases:  # already re-leased elsewhere
                continue
            self._leases[key] = (conn, time.monotonic() + self.lease_ttl)
            conn.leases.add(key)
            i0, i1 = ws.blocks[i0]
            return {
                "type": "lease",
                "token": token,
                "dir": str(ws.directory),
                "i0": i0,
                "i1": i1,
            }
        return {"type": "idle", "delay": self.tick}

    def _release(self, conn: _Conn, token: str, i0) -> tuple[WorkSet, int] | None:
        """Drop the lease named by a done/failed message; resolve its set."""
        if i0 is None:
            return None
        key = (token, int(i0))
        lease = self._leases.pop(key, None)
        if lease is not None:
            lease[0].leases.discard(key)
        conn.leases.discard(key)
        ws = self._worksets.get(token)
        if ws is None or ws.finished():
            return None
        return ws, int(i0)

    def _mark_done(self, conn: _Conn, message: dict) -> None:
        resolved = self._release(conn, str(message.get("token")), message.get("i0"))
        if resolved is None:
            return
        ws, i0 = resolved
        if i0 in ws.blocks:
            ws.done.add(i0)
            if ws.finished():
                ws.event.set()

    def _mark_failed(self, conn: _Conn, message: dict) -> None:
        resolved = self._release(conn, str(message.get("token")), message.get("i0"))
        if resolved is None:
            return
        ws, i0 = resolved
        if i0 not in ws.blocks:
            return
        ws.failures[i0] = ws.failures.get(i0, 0) + 1
        error = str(message.get("error", "task failed"))
        if ws.failures[i0] >= self.max_task_failures:
            self._fail(
                ws,
                f"block [{i0}, {ws.blocks[i0][1]}) failed "
                f"{ws.failures[i0]} times; last error:\n{error}",
            )
        else:
            self._queue.appendleft((ws.token, i0))

    # -- lease loss -------------------------------------------------------

    def _expire_leases(self) -> None:
        now = time.monotonic()
        with self._lock:
            expired = [k for k, (_, dl) in self._leases.items() if dl < now]
            for key in expired:
                conn, _ = self._leases.pop(key)
                conn.leases.discard(key)
                self._lost(key, "lease expired")

    def _lost(self, key: tuple[str, int], reason: str) -> None:
        """A leased block's worker went silent or away (lock held).

        The work may well have completed with only the ``done`` message
        lost — the park file is the ground truth, so check it before
        re-queueing (atomic writes mean it is either whole and
        fingerprint-valid or effectively absent).
        """
        token, i0 = key
        ws = self._worksets.get(token)
        if ws is None or ws.finished() or i0 not in ws.blocks or i0 in ws.done:
            return
        i0, i1 = ws.blocks[i0]
        slot = CheckpointSlot(park_path(ws.directory, i0))
        if slot.load(park_fingerprint(token, i0, i1)) is not None:
            ws.done.add(i0)
            if ws.finished():
                ws.event.set()
            return
        ws.requeues[i0] = ws.requeues.get(i0, 0) + 1
        if ws.requeues[i0] > self.max_requeues:
            self._fail(
                ws,
                f"block [{i0}, {i1}) was lost {ws.requeues[i0]} times "
                f"({reason}) — giving up",
            )
        else:
            self._queue.appendleft((token, i0))

    def _fail(self, ws: WorkSet, reason: str) -> None:
        ws.error = reason
        ws.event.set()
