"""Fabric wire protocol and shared-medium conventions.

Wire format
-----------
One JSON object per line (``\\n``-terminated, UTF-8) over a TCP stream.
Every worker→broker message carries exactly one reply **except**
``heartbeat``, which is fire-and-forget — the worker's heartbeat thread
shares the socket with its request loop, and an unreplied heartbeat is
what keeps the request/reply pairing trivial (one reply per non-heartbeat
send, read by the one thread that sent it).

Message types (worker → broker → reply):

=============  =====================================  ======================
``hello``      ``{worker}``                           ``welcome {heartbeat}``
``request``    ``{worker}``                           ``lease {token, dir,
                                                      i0, i1}`` | ``idle
                                                      {delay}`` |
                                                      ``shutdown {}``
``done``       ``{worker, token, i0}``                ``ok {}``
``failed``     ``{worker, token, i0, error}``         ``ok {}``
``heartbeat``  ``{worker}``                           *(no reply)*
=============  =====================================  ======================

Shared medium
-------------
Work sets are content-addressed: :func:`work_token` hashes the run's full
identity — task, repetitions, block layout, the resolved seed-spawn spec,
and content-hashed kwargs — so a restarted driver resubmits under the
*same* token and finds its parked blocks, while two distinct runs can
never share state.  Inside ``store.fabric_dir(token)``:

* ``spec.pkl`` — pickled ``{task, kwargs, seed_spec, label}`` (written
  atomically once; token-determined, so attempts never disagree on it);
* ``block-<i0>.pkl`` — one :class:`~repro.io.store.CheckpointSlot` per
  completed block, fingerprinted by :func:`park_fingerprint` so a torn or
  foreign file reads as "not done" rather than as a wrong result.
"""

from __future__ import annotations

import hashlib
import json
import select
import socket
import threading
from pathlib import Path

__all__ = [
    "encode",
    "split_lines",
    "Wire",
    "work_token",
    "spec_path",
    "park_path",
    "park_fingerprint",
]


def encode(message: dict) -> bytes:
    """One wire frame: compact JSON plus the line terminator."""
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def split_lines(buffer: bytes) -> tuple[list[dict], bytes]:
    """Decode every complete frame in *buffer*; return ``(messages, rest)``."""
    messages = []
    while True:
        line, sep, buffer = buffer.partition(b"\n")
        if not sep:
            return messages, line
        if line.strip():
            messages.append(json.loads(line))


class Wire:
    """Client-side framing over one blocking socket.

    ``send`` is lock-guarded so the heartbeat thread and the request loop
    can share the connection; ``recv`` is only ever called from the request
    loop (heartbeats get no reply), so reads need no lock.
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._buf = bytearray()
        self._send_lock = threading.Lock()

    def send(self, message: dict) -> None:
        with self._send_lock:
            self.sock.sendall(encode(message))

    def recv(self, timeout: float | None = None) -> dict:
        """Read the next frame; raises ``ConnectionError`` on EOF.

        *timeout* (seconds) bounds the wait for **more bytes to arrive**
        and raises ``TimeoutError`` when it elapses; ``None`` blocks
        forever (the pre-PR-10 behaviour).  The wait uses ``select`` on
        the shared socket rather than ``settimeout`` — a socket-level
        timeout is global and would also fire inside the heartbeat
        thread's concurrent ``sendall``.  Framing is buffered internally,
        so a timeout mid-frame loses nothing: the partial line stays in
        the buffer for the next call.
        """
        while True:
            i = self._buf.find(b"\n")
            if i >= 0:
                line = bytes(self._buf[:i])
                del self._buf[:i + 1]
                if not line.strip():
                    continue
                return json.loads(line)
            if timeout is not None:
                readable, _, _ = select.select([self.sock], [], [], timeout)
                if not readable:
                    raise TimeoutError(
                        f"no broker frame within {timeout:g}s")
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("broker closed the connection")
            self._buf.extend(chunk)

    def close(self) -> None:
        self.sock.close()


def work_token(task, repetitions: int, block_size, seed_spec: dict, kwargs) -> str:
    """Content address of one fixed-budget reduced run's block work.

    Mirrors the executor's checkpoint fingerprint — task identity,
    repetitions, block layout, kwargs (arrays content-hashed via
    :func:`~repro.runtime.executor._fingerprint_value`) — with the seed
    resolved to its spawn spec (:func:`~repro.runtime.executor.
    block_seed_spec`).  A ``seed=None`` run resolves to fresh OS entropy in
    the spec, so two irreproducible runs never collide on a token.
    """
    from ..executor import _fingerprint_value  # module-level would cycle

    task_name = getattr(task, "__qualname__", repr(task))
    module = getattr(task, "__module__", "")
    kw = sorted((k, _fingerprint_value(v)) for k, v in (kwargs or {}).items())
    text = repr((
        module,
        task_name,
        int(repetitions),
        block_size,
        ("seed-spec", seed_spec["entropy"], tuple(seed_spec["spawn_key"]),
         int(seed_spec["base"]), int(seed_spec["pool_size"])),
        kw,
    ))
    return hashlib.sha256(text.encode()).hexdigest()[:24]


def spec_path(directory) -> Path:
    """The work set's pickled ``{task, kwargs, seed_spec, label}`` file."""
    return Path(directory) / "spec.pkl"


def park_path(directory, i0: int) -> Path:
    """Where block ``[i0, ...)``'s reducer is parked (keyed by the block's
    first repetition index — stable across resume attempts whose pending
    suffix differs)."""
    return Path(directory) / f"block-{i0:08d}.pkl"


def park_fingerprint(token: str, i0: int, i1: int) -> str:
    """Fingerprint guarding one park file (token + exact block bounds)."""
    return f"{token}:block[{i0},{i1})"
