"""Fabric session: broker + worker fleet + the executor activation hook.

:class:`FabricSession` owns one :class:`~.broker.Broker` (daemon thread in
the driver process) and N worker subprocesses.  While a session is
*activated* (``with session.activate(): ...``),
:func:`~repro.runtime.executor.run_ensemble_reduced` routes every
fixed-budget block batch through :meth:`FabricSession.run_blocks` instead
of its local serial/pool paths — no experiment signature changes, the
dispatch is ambient, exactly like ``forced_backend``.

Bit-identity argument (the fabric clause of the seed contract): block
boundaries and child seeds are pure functions of ``(seed, repetitions,
block_size)``; workers rebuild each block's seeds from the pickled spawn
spec, so block ``[i0, i1)`` computes the same reducer on any worker; the
driver absorbs the parked reducers in block order through the same merge
closure the serial path uses.  Which worker ran a block, how many workers
there were, and how many died are all invisible to the numbers.

Adaptive (``until=``) runs do **not** dispatch to the fabric — their
stopping decision consumes the block stream sequentially, which is what
the local bounded-look-ahead path is for — and runs without pending blocks
skip the fabric trivially (checkpoint-complete resumes stay pure lookups).
"""

from __future__ import annotations

import contextlib
import os
import pickle
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from ...core.compiled import THREADS_ENV_VAR, worker_thread_budget
from ...io.atomicio import atomic_write
from ...io.store import CheckpointSlot, ResultStore, resolve_store
from ..progress import make_reporter
from .broker import Broker
from .protocol import park_fingerprint, park_path, spec_path, work_token

__all__ = ["FabricSession", "current_fabric"]

#: Activation stack (module-level, like ``forced_backend``'s): the executor
#: asks :func:`current_fabric` before every fixed-budget reduced run.
_ACTIVE: list["FabricSession"] = []


def current_fabric() -> "FabricSession | None":
    """The innermost activated session, or ``None`` (local execution)."""
    return _ACTIVE[-1] if _ACTIVE else None


class FabricSession:
    """One broker plus a fleet of local worker processes.

    ``store`` is the shared medium (any :func:`~repro.io.store.resolve_store`
    argument); without one the session owns a temporary store that vanishes
    on :meth:`close` — pass the sweep's store to get cross-restart resume
    of parked blocks.  ``lease_ttl`` is the silent-worker re-queue horizon
    (keep the default for real runs; tests shrink it to exercise expiry).

    Worker subprocesses inherit the driver's ``sys.path`` via
    ``PYTHONPATH`` so any task the driver can pickle, a worker can
    unpickle — including tasks defined in test modules.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        store=None,
        lease_ttl: float = 10.0,
        spawn_workers: bool = True,
    ):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self._own_root: Path | None = None
        if store is None:
            self._own_root = Path(tempfile.mkdtemp(prefix="repro-fabric-"))
            store = ResultStore(self._own_root)
        self.store = resolve_store(store)
        self.broker = Broker(lease_ttl=lease_ttl).start()
        self._procs: list[subprocess.Popen] = []
        self._closed = False
        if spawn_workers:
            self.spawn_workers(workers)

    # -- fleet management -------------------------------------------------

    def spawn_workers(self, count: int) -> list[int]:
        """Start *count* worker subprocesses; return their pids.

        Each worker is pinned to the driver's
        :func:`~repro.core.compiled.worker_thread_budget` — ``1`` compiled
        thread unless the driver explicitly forced a budget — so a fleet
        of N workers on one machine never runs ``N × cores`` threads (the
        same oversubscription guard the executor's pool initializer
        applies).
        """
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p or os.getcwd() for p in sys.path)
        env[THREADS_ENV_VAR] = worker_thread_budget()
        host, port = self.broker.address
        pids = []
        for _ in range(count):
            proc = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.runtime.fabric.worker",
                    "--address",
                    f"{host}:{port}",
                    # Let workers probe for a dead broker instead of
                    # blocking on recv forever (the broker thread lives
                    # in this driver process).
                    "--broker-pid",
                    str(os.getpid()),
                ],
                env=env,
            )
            self._procs.append(proc)
            pids.append(proc.pid)
        return pids

    @property
    def worker_pids(self) -> list[int]:
        """Pids of the workers this session spawned that are still alive."""
        return [p.pid for p in self._procs if p.poll() is None]

    def _fleet_is_gone(self) -> bool:
        """No spawned worker alive and nothing external connected."""
        return (
            all(p.poll() is not None for p in self._procs)
            and self.broker.worker_count() == 0
        )

    # -- activation -------------------------------------------------------

    @contextlib.contextmanager
    def activate(self):
        """Route fixed-budget reduced runs through this session's fleet."""
        if self._closed:
            raise RuntimeError("fabric session is closed")
        _ACTIVE.append(self)
        try:
            yield self
        finally:
            _ACTIVE.remove(self)

    # -- the work ---------------------------------------------------------

    def run_blocks(
        self,
        task,
        pending,
        *,
        seed,
        repetitions: int,
        block_size,
        kwargs,
        label=None,
        progress=None,
    ) -> list:
        """Run *pending* blocks on the fleet; return reducers in block order.

        Content-addressed end to end: blocks already parked under this
        work set's token (an earlier attempt that died, another driver of
        the same run) are collected without recomputation, the rest are
        leased out, and the scratch namespace is dropped only once every
        reducer is safely in hand.  Raises
        :class:`~repro.runtime.executor.TaskError` when a block's task
        keeps failing or the whole fleet dies.
        """
        from ..executor import TaskError, block_seed_spec

        pending = [(int(i0), int(i1)) for i0, i1 in pending]
        spec = block_seed_spec(seed)
        token = work_token(task, repetitions, block_size, spec, kwargs)
        directory = self.store.fabric_dir(token)
        prefix = f"{label} " if label else ""

        reporter = make_reporter(progress)
        reporter.start(sum(i1 - i0 for i0, i1 in pending), label="repetitions")
        results: dict[int, object] = {}
        todo = []
        for i0, i1 in pending:
            state = CheckpointSlot(park_path(directory, i0)).load(
                park_fingerprint(token, i0, i1)
            )
            if state is not None:
                results[i0] = state[0]
                reporter.advance(i1 - i0)
            else:
                todo.append((i0, i1))

        if todo:
            path = spec_path(directory)
            if not path.exists():  # token-determined: attempts agree on it
                with atomic_write(path, "wb") as fh:
                    pickle.dump(
                        {
                            "task": task,
                            "kwargs": kwargs or {},
                            "seed_spec": spec,
                            "label": label,
                        },
                        fh,
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
            ws = self.broker.submit(token, directory, todo)
            try:
                self._wait(ws, reporter, prefix)
            finally:
                self.broker.finish(token)
            for i0, i1 in todo:
                state = CheckpointSlot(park_path(directory, i0)).load(
                    park_fingerprint(token, i0, i1)
                )
                if state is None:
                    raise TaskError(
                        f"{prefix}ensemble block [{i0}, {i1}) reported done "
                        f"but its parked result is missing or invalid"
                    )
                results[i0] = state[0]
        reporter.finish()
        self.store.clear_fabric(token)
        return [results[i0] for i0, _ in pending]

    def _wait(self, ws, reporter, prefix: str) -> None:
        """Block until the work set completes; surface progress + failures."""
        from ..executor import TaskError

        reported = 0
        while not ws.event.wait(0.05):
            done = ws.done_repetitions()
            if done > reported:
                reporter.advance(done - reported)
                reported = done
            if self._fleet_is_gone():
                # Give the broker loop one tick to reap in-flight parks
                # before declaring the fleet dead.
                time.sleep(self.broker.tick * 2)
                if not ws.event.is_set() and self._fleet_is_gone():
                    self.broker.abort(
                        ws.token, "every fabric worker exited mid-flight"
                    )
        done = ws.done_repetitions()
        if done > reported:
            reporter.advance(done - reported)
        if ws.error is not None:
            raise TaskError(f"{prefix}fabric work set failed: {ws.error}")

    # -- teardown ---------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        """Drain the fleet (workers exit on their next request), stop the
        broker, and drop a session-owned temporary store."""
        if self._closed:
            return
        self._closed = True
        self.broker.drain()
        deadline = time.monotonic() + timeout
        for proc in self._procs:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining or 0.1)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self.broker.stop()
        if self._own_root is not None:
            shutil.rmtree(self._own_root, ignore_errors=True)

    def __enter__(self) -> "FabricSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
