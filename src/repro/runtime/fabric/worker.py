"""Fabric worker process: lease blocks, run them, park the reducers.

Run as ``python -m repro.runtime.fabric.worker --address HOST:PORT``.  The
worker is deliberately dumb: it holds no scheduling state, just a loop of

    request → (lease | idle | shutdown)
    lease   → load spec → rebuild the block's child seeds → run the task
            → park the reducer atomically → done (or failed, with the
              traceback)

A heartbeat daemon thread keeps the broker's lease deadline ahead of a
long-running block; it sends on the shared :class:`~.protocol.Wire` under
the wire's send lock and, per the protocol contract, never reads — only
the main loop consumes replies, so the request/reply pairing cannot skew.

Crash safety needs no code here: a worker killed mid-block simply never
parks, the lease expires, and the broker re-queues; a worker killed
*after* the atomic park but before ``done`` is detected by the broker's
park-file check.  A stale worker (e.g. resumed from ``SIGSTOP`` after its
lease was re-assigned) may park a duplicate — harmless, because the block
is a pure function of its seed slice, so the duplicate is bit-identical
and the park write is atomic either way.
"""

from __future__ import annotations

import argparse
import os
import pickle
import socket
import sys
import threading
import time
import traceback

from .protocol import Wire, park_fingerprint, park_path, spec_path

__all__ = ["main", "run_worker"]


def _load_spec(directory) -> dict:
    """Unpickle the work set's ``{task, kwargs, seed_spec, label}``."""
    with open(spec_path(directory), "rb") as fh:
        return pickle.load(fh)


def _run_lease(lease: dict, spec: dict):
    """Execute one leased block; return its reducer (exceptions propagate)."""
    from ..executor import seeds_from_spec  # import after spec unpickling

    i0, i1 = int(lease["i0"]), int(lease["i1"])
    seeds = seeds_from_spec(spec["seed_spec"], i0, i1)
    return spec["task"](seeds, **(spec["kwargs"] or {}))


def _park(lease: dict, reducer) -> None:
    from ...io.store import CheckpointSlot

    i0, i1 = int(lease["i0"]), int(lease["i1"])
    slot = CheckpointSlot(park_path(lease["dir"], i0))
    slot.save(reducer, 1, park_fingerprint(lease["token"], i0, i1))


def _heartbeat_loop(wire: Wire, worker_id: str, interval: float, stop) -> None:
    while not stop.wait(interval):
        try:
            wire.send({"type": "heartbeat", "worker": worker_id})
        except OSError:
            return  # main loop will notice the dead socket and exit


def run_worker(address: tuple[str, int], *, worker_id: str | None = None) -> int:
    """Connect to the broker at *address* and serve leases until shutdown.

    Returns the process exit code (0 = clean shutdown; 1 = lost broker).
    """
    if worker_id is None:
        worker_id = f"{socket.gethostname()}-{os.getpid()}"
    try:
        sock = socket.create_connection(address, timeout=10.0)
    except OSError as exc:
        print(f"fabric worker: cannot reach broker at {address}: {exc}",
              file=sys.stderr)
        return 1
    sock.settimeout(None)
    wire = Wire(sock)
    stop_heartbeats = threading.Event()
    try:
        wire.send({"type": "hello", "worker": worker_id})
        welcome = wire.recv()
        interval = float(welcome.get("heartbeat", 2.0))
        threading.Thread(
            target=_heartbeat_loop,
            args=(wire, worker_id, interval, stop_heartbeats),
            name="fabric-heartbeat",
            daemon=True,
        ).start()
        spec_cache: dict[str, dict] = {}
        while True:
            wire.send({"type": "request", "worker": worker_id})
            message = wire.recv()
            kind = message.get("type")
            if kind == "shutdown":
                return 0
            if kind == "idle":
                time.sleep(float(message.get("delay", 0.05)))
                continue
            if kind != "lease":
                continue  # future message types: ignore, keep serving
            token = message["token"]
            try:
                spec = spec_cache.get(token)
                if spec is None:
                    spec = spec_cache[token] = _load_spec(message["dir"])
                _park(message, _run_lease(message, spec))
            except Exception as exc:  # noqa: BLE001 — reported to the broker
                wire.send({
                    "type": "failed",
                    "worker": worker_id,
                    "token": token,
                    "i0": message["i0"],
                    "error": f"{exc!r}\n--- worker traceback ---\n"
                             f"{traceback.format_exc()}",
                })
            else:
                wire.send({
                    "type": "done",
                    "worker": worker_id,
                    "token": token,
                    "i0": message["i0"],
                })
            wire.recv()  # the ok for done/failed
    except (ConnectionError, OSError):
        return 1  # broker went away: nothing left to serve
    finally:
        stop_heartbeats.set()
        wire.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="repro fabric worker")
    parser.add_argument(
        "--address", required=True, metavar="HOST:PORT",
        help="broker address to connect to",
    )
    parser.add_argument(
        "--worker-id", default=None,
        help="identity reported to the broker (default: host-pid)",
    )
    args = parser.parse_args(argv)
    host, _, port = args.address.rpartition(":")
    if not host or not port.isdigit():
        parser.error(f"bad --address {args.address!r}; expected HOST:PORT")
    return run_worker((host, int(port)), worker_id=args.worker_id)


if __name__ == "__main__":
    sys.exit(main())
