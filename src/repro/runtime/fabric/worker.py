"""Fabric worker process: lease blocks, run them, park the reducers.

Run as ``python -m repro.runtime.fabric.worker --address HOST:PORT``.  The
worker is deliberately dumb: it holds no scheduling state, just a loop of

    request → (lease | idle | shutdown)
    lease   → load spec → rebuild the block's child seeds → run the task
            → park the reducer atomically → done (or failed, with the
              traceback)

A heartbeat daemon thread keeps the broker's lease deadline ahead of a
long-running block; it sends on the shared :class:`~.protocol.Wire` under
the wire's send lock and, per the protocol contract, never reads — only
the main loop consumes replies, so the request/reply pairing cannot skew.

Crash safety needs no code here: a worker killed mid-block simply never
parks, the lease expires, and the broker re-queues; a worker killed
*after* the atomic park but before ``done`` is detected by the broker's
park-file check.  A stale worker (e.g. resumed from ``SIGSTOP`` after its
lease was re-assigned) may park a duplicate — harmless, because the block
is a pure function of its seed slice, so the duplicate is bit-identical
and the park write is atomic either way.

The reverse direction — the *broker* dying under a live worker — is
handled by :func:`_recv_patiently`: every reply wait polls in short ticks
and, between ticks, probes the broker pid (``--broker-pid``, passed by the
launcher) with signal 0; a dead broker or an exhausted deadline raises
``ConnectionError`` and the worker exits 1 instead of blocking on ``recv``
forever (a SIGKILLed broker leaves the TCP connection half-open with no
RST, so without the probe the old blocking read could hang indefinitely).
"""

from __future__ import annotations

import argparse
import os
import pickle
import socket
import sys
import threading
import time
import traceback

from .protocol import Wire, park_fingerprint, park_path, spec_path

__all__ = ["main", "run_worker"]


def _load_spec(directory) -> dict:
    """Unpickle the work set's ``{task, kwargs, seed_spec, label}``."""
    with open(spec_path(directory), "rb") as fh:
        return pickle.load(fh)


def _run_lease(lease: dict, spec: dict):
    """Execute one leased block; return its reducer (exceptions propagate)."""
    from ..executor import seeds_from_spec  # import after spec unpickling

    i0, i1 = int(lease["i0"]), int(lease["i1"])
    seeds = seeds_from_spec(spec["seed_spec"], i0, i1)
    return spec["task"](seeds, **(spec["kwargs"] or {}))


def _park(lease: dict, reducer) -> None:
    from ...io.store import CheckpointSlot

    i0, i1 = int(lease["i0"]), int(lease["i1"])
    slot = CheckpointSlot(park_path(lease["dir"], i0))
    slot.save(reducer, 1, park_fingerprint(lease["token"], i0, i1))


def _heartbeat_loop(wire: Wire, worker_id: str, interval: float, stop) -> None:
    while not stop.wait(interval):
        try:
            wire.send({"type": "heartbeat", "worker": worker_id})
        except OSError:
            return  # main loop will notice the dead socket and exit


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


def _recv_patiently(
    wire: Wire,
    *,
    broker_pid: int | None,
    tick: float,
    deadline: float,
) -> dict:
    """One broker reply, or ``ConnectionError`` once the broker is gone.

    Waits in *tick*-second slices; after each empty slice, probes the
    broker pid (when known) and gives up outright once *deadline* seconds
    have passed with no reply — a broker that is alive but unresponsive
    for that long (wedged, or SIGSTOPped with the worker's lease long
    re-assigned) is as gone as a dead one.
    """
    waited = 0.0
    while True:
        try:
            return wire.recv(timeout=tick)
        except TimeoutError:
            waited += tick
            if broker_pid is not None and not _pid_alive(broker_pid):
                raise ConnectionError(
                    f"broker process {broker_pid} died") from None
            if waited >= deadline:
                raise ConnectionError(
                    f"no broker reply in {waited:.1f}s "
                    f"(deadline {deadline:g}s)") from None


def run_worker(
    address: tuple[str, int],
    *,
    worker_id: str | None = None,
    broker_pid: int | None = None,
    recv_tick: float = 1.0,
    recv_deadline: float = 30.0,
) -> int:
    """Connect to the broker at *address* and serve leases until shutdown.

    Returns the process exit code (0 = clean shutdown; 1 = lost broker).
    """
    if worker_id is None:
        worker_id = f"{socket.gethostname()}-{os.getpid()}"
    try:
        sock = socket.create_connection(address, timeout=10.0)
    except OSError as exc:
        print(f"fabric worker: cannot reach broker at {address}: {exc}",
              file=sys.stderr)
        return 1
    sock.settimeout(None)  # reply waits are bounded by _recv_patiently, not the socket
    wire = Wire(sock)
    stop_heartbeats = threading.Event()

    def recv() -> dict:
        return _recv_patiently(
            wire, broker_pid=broker_pid, tick=recv_tick, deadline=recv_deadline)

    try:
        wire.send({"type": "hello", "worker": worker_id})
        welcome = recv()
        interval = float(welcome.get("heartbeat", 2.0))
        threading.Thread(
            target=_heartbeat_loop,
            args=(wire, worker_id, interval, stop_heartbeats),
            name="fabric-heartbeat",
            daemon=True,
        ).start()
        spec_cache: dict[str, dict] = {}
        while True:
            wire.send({"type": "request", "worker": worker_id})
            message = recv()
            kind = message.get("type")
            if kind == "shutdown":
                return 0
            if kind == "idle":
                time.sleep(float(message.get("delay", 0.05)))
                continue
            if kind != "lease":
                continue  # future message types: ignore, keep serving
            token = message["token"]
            try:
                spec = spec_cache.get(token)
                if spec is None:
                    spec = spec_cache[token] = _load_spec(message["dir"])
                _park(message, _run_lease(message, spec))
            except Exception as exc:  # noqa: BLE001 — reported to the broker
                wire.send({
                    "type": "failed",
                    "worker": worker_id,
                    "token": token,
                    "i0": message["i0"],
                    "error": f"{exc!r}\n--- worker traceback ---\n"
                             f"{traceback.format_exc()}",
                })
            else:
                wire.send({
                    "type": "done",
                    "worker": worker_id,
                    "token": token,
                    "i0": message["i0"],
                })
            recv()  # the ok for done/failed
    except (ConnectionError, OSError) as exc:
        print(f"fabric worker {worker_id}: broker lost ({exc}); exiting",
              file=sys.stderr)
        return 1  # broker went away: nothing left to serve
    finally:
        stop_heartbeats.set()
        wire.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="repro fabric worker")
    parser.add_argument(
        "--address", required=True, metavar="HOST:PORT",
        help="broker address to connect to",
    )
    parser.add_argument(
        "--worker-id", default=None,
        help="identity reported to the broker (default: host-pid)",
    )
    parser.add_argument(
        "--broker-pid", type=int, default=None,
        help="broker process id; probed between recv ticks so a dead "
             "broker is detected even when its socket never resets",
    )
    parser.add_argument(
        "--recv-tick", type=float, default=1.0,
        help="seconds per reply-wait slice between liveness probes",
    )
    parser.add_argument(
        "--recv-deadline", type=float, default=30.0,
        help="give up after this many reply-less seconds even if the "
             "broker pid still exists",
    )
    args = parser.parse_args(argv)
    host, _, port = args.address.rpartition(":")
    if not host or not port.isdigit():
        parser.error(f"bad --address {args.address!r}; expected HOST:PORT")
    return run_worker(
        (host, int(port)),
        worker_id=args.worker_id,
        broker_pid=args.broker_pid,
        recv_tick=args.recv_tick,
        recv_deadline=args.recv_deadline,
    )


if __name__ == "__main__":
    sys.exit(main())
