"""Load-distribution views: histograms and per-class splits.

Figures 12 and 13 plot sorted load profiles restricted to one capacity
class; :func:`class_profiles` produces exactly those sub-profiles.
:func:`load_histogram` supports distribution-level comparisons between
strategies in the examples and ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LoadHistogram", "load_histogram", "class_profiles", "class_load_matrix"]


@dataclass(frozen=True)
class LoadHistogram:
    """Histogram over load values."""

    edges: np.ndarray
    counts: np.ndarray

    @property
    def total(self) -> int:
        """Total number of bins histogrammed."""
        return int(self.counts.sum())

    def densities(self) -> np.ndarray:
        """Counts normalised to sum to one."""
        t = self.total
        return self.counts / t if t else self.counts.astype(np.float64)


def load_histogram(loads, *, bin_width: float = 0.25) -> LoadHistogram:
    """Histogram the load values on a fixed-width grid starting at 0."""
    arr = np.asarray(loads, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("loads must be a non-empty 1-D sequence")
    if bin_width <= 0:
        raise ValueError(f"bin_width must be positive, got {bin_width}")
    top = max(float(arr.max()), bin_width)
    nbins = int(np.ceil(top / bin_width)) + 1
    edges = np.arange(nbins + 1) * bin_width
    counts, _ = np.histogram(arr, bins=edges)
    return LoadHistogram(edges=edges, counts=counts)


def class_profiles(counts, capacities) -> dict[int, np.ndarray]:
    """Sorted (descending) load profile restricted to each capacity class.

    Returns ``{capacity: sorted loads of the bins of that capacity}`` — one
    run's version of Figures 12/13.
    """
    cnt = np.asarray(counts, dtype=np.int64)
    cap = np.asarray(capacities, dtype=np.int64)
    if cnt.shape != cap.shape or cnt.ndim != 1:
        raise ValueError("counts and capacities must be equal-length 1-D vectors")
    loads = cnt / cap
    return {
        int(c): np.sort(loads[cap == c])[::-1]
        for c in np.unique(cap)
    }


def class_load_matrix(load_matrix, capacities, capacity: int) -> np.ndarray:
    """Restrict a ``(reps, n)`` load matrix to the columns of one class.

    The result feeds :func:`repro.analysis.aggregate.mean_sorted_profile` to
    build the averaged per-class curves of Figures 12–13.
    """
    arr = np.asarray(load_matrix, dtype=np.float64)
    cap = np.asarray(capacities, dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != cap.size:
        raise ValueError(
            f"load_matrix {arr.shape} must be (reps, n) with n == len(capacities) == {cap.size}"
        )
    cols = cap == capacity
    if not cols.any():
        raise ValueError(f"no bins of capacity {capacity}")
    return arr[:, cols]
