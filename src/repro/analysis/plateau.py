"""Plateau detection in max-load curves.

Section 4.2 discusses the plateau phenomenon in Figure 6: as the fraction of
large bins grows, the (averaged) maximum load stays nearly flat over a range
before dropping — the paper links it to the "horizontally growing plateau"
effect of uniform games.  These helpers locate such flat stretches so tests
and EXPERIMENTS.md can report them quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Plateau", "find_plateaus", "longest_plateau"]


@dataclass(frozen=True)
class Plateau:
    """A maximal index range over which a curve is (nearly) constant."""

    start: int
    stop: int  # inclusive
    level: float

    @property
    def length(self) -> int:
        """Number of consecutive points on the plateau."""
        return self.stop - self.start + 1


def find_plateaus(values, *, tolerance: float = 0.05, min_length: int = 3) -> list[Plateau]:
    """Maximal runs where consecutive values stay within *tolerance* of the
    run's running mean.

    Parameters
    ----------
    values:
        The curve (e.g. mean max load per sweep point).
    tolerance:
        Maximum absolute deviation from the plateau's mean for a point to
        join it.
    min_length:
        Minimum number of points for a run to count as a plateau.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"values must be 1-D, got shape {arr.shape}")
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    if min_length < 2:
        raise ValueError(f"min_length must be >= 2, got {min_length}")
    plateaus: list[Plateau] = []
    i = 0
    n = arr.size
    while i < n:
        j = i
        total = arr[i]
        count = 1
        while j + 1 < n:
            mean = total / count
            if abs(arr[j + 1] - mean) <= tolerance:
                j += 1
                total += arr[j]
                count += 1
            else:
                break
        if count >= min_length:
            plateaus.append(Plateau(start=i, stop=j, level=float(total / count)))
        i = j + 1
    return plateaus


def longest_plateau(values, *, tolerance: float = 0.05, min_length: int = 3) -> Plateau | None:
    """The longest plateau of the curve, or ``None`` if none qualifies."""
    plateaus = find_plateaus(values, tolerance=tolerance, min_length=min_length)
    if not plateaus:
        return None
    return max(plateaus, key=lambda p: (p.length, -p.start))
