"""Statistics over runs and aggregation across repetitions."""

from .aggregate import (
    MeanProfile,
    ReducerBundle,
    ScalarAggregate,
    StreamingProfile,
    StreamingScalar,
    aggregate_scalar,
    fraction_true,
    mean_profile_by_position,
    mean_sorted_profile,
)
from .distribution import (
    LoadHistogram,
    class_load_matrix,
    class_profiles,
    load_histogram,
)
from .convergence import AdaptiveEstimate, run_until_ci
from .optimize import ExponentSearchResult, exponent_sweep, optimal_exponent
from .precision import (
    AdaptiveRecorder,
    PrecisionError,
    PrecisionTarget,
    SequentialMonitor,
    default_block_statistics,
    student_t_quantile,
)
from .plateau import Plateau, find_plateaus, longest_plateau
from .stats import (
    LoadStats,
    argmax_bins,
    load_gap,
    load_stats,
    max_load,
    max_load_location_by_class,
    max_load_location_by_class_matrix,
    per_class_max_loads,
)

__all__ = [
    "LoadStats",
    "load_stats",
    "max_load",
    "load_gap",
    "argmax_bins",
    "max_load_location_by_class",
    "max_load_location_by_class_matrix",
    "per_class_max_loads",
    "MeanProfile",
    "mean_sorted_profile",
    "mean_profile_by_position",
    "ScalarAggregate",
    "aggregate_scalar",
    "fraction_true",
    "StreamingProfile",
    "StreamingScalar",
    "ReducerBundle",
    "Plateau",
    "find_plateaus",
    "longest_plateau",
    "ExponentSearchResult",
    "exponent_sweep",
    "optimal_exponent",
    "AdaptiveEstimate",
    "run_until_ci",
    "PrecisionTarget",
    "PrecisionError",
    "SequentialMonitor",
    "AdaptiveRecorder",
    "default_block_statistics",
    "student_t_quantile",
    "LoadHistogram",
    "load_histogram",
    "class_profiles",
    "class_load_matrix",
]
