"""Adaptive precision: CI-driven sequential stopping over ensemble blocks.

Every experiment used to burn a fixed repetition budget whether the
estimator converged after 200 replications or needed 20,000.  This module
supplies the statistical layer that lets a run stop as soon as its
estimates are *tight enough*:

* :class:`PrecisionTarget` — the declarative goal (per-series relative
  and/or absolute confidence-interval half-width at a confidence level,
  plus replication bounds), parseable from the CLI's
  ``--precision rel=0.01,conf=0.95`` syntax and canonicalizable into a
  :meth:`repro.experiments.request.RunRequest.cache_key`;
* :class:`SequentialMonitor` — the stopping rule.  It consumes the
  per-block reducers the ensemble pipeline already produces
  (:class:`~repro.analysis.aggregate.StreamingProfile` /
  :class:`~repro.analysis.aggregate.StreamingScalar` /
  :class:`~repro.analysis.aggregate.ReducerBundle`) and answers
  continue/stop after every completed block — the ``until=`` hook of
  :func:`repro.runtime.executor.run_ensemble_reduced`;
* :class:`AdaptiveRecorder` — per-experiment bookkeeping: one fresh
  monitor per ``run_ensemble_reduced`` call, summarized into
  ``result.extra["adaptive"]`` provenance.

Batch-means argument
--------------------
The monitor never looks at individual replications: its samples are the
**block aggregates** (one scalar per block per monitored series).  Under
the executor's shared-params-per-block convention blocks are i.i.d. —
each block owns a disjoint slice of one ``SeedSequence.spawn`` and any
shared random parameters are drawn per block — even when replications
*within* a block are correlated through those shared parameters.  The
batch-means sample mean is therefore an unbiased estimator with an
honest variance estimate, and the Student-``t`` interval over ``k`` block
means is valid where a per-replication normal interval would be
anticonservative.  The ``min_blocks`` floor (default 8) keeps the
``t``-interval out of the tiny-``k`` regime and damps the sequential
"peeking" bias of testing after every block; the statistical validity
test in ``tests/analysis/test_precision.py`` pins the achieved coverage.

Determinism
-----------
A stopping decision is a pure function of the observed block-aggregate
prefix, so serial and pool execution stop at the same block, and a
killed run that resumes from a checkpointed ``(reducer, monitor)`` pair
reaches the same stopping block bit-identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = [
    "PrecisionTarget",
    "PrecisionError",
    "SequentialMonitor",
    "AdaptiveRecorder",
    "default_block_statistics",
    "student_t_quantile",
]


class PrecisionError(ValueError):
    """An invalid precision target (bad parse, bad field values)."""


# -- Student-t critical values (pure numpy/math; no scipy dependency) -----

_BETACF_MAX_ITER = 300
_BETACF_EPS = 3e-16
_BETACF_FPMIN = 1e-300


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta function (Lentz)."""
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < _BETACF_FPMIN:
        d = _BETACF_FPMIN
    d = 1.0 / d
    h = d
    for m in range(1, _BETACF_MAX_ITER + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < _BETACF_FPMIN:
            d = _BETACF_FPMIN
        c = 1.0 + aa / c
        if abs(c) < _BETACF_FPMIN:
            c = _BETACF_FPMIN
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < _BETACF_FPMIN:
            d = _BETACF_FPMIN
        c = 1.0 + aa / c
        if abs(c) < _BETACF_FPMIN:
            c = _BETACF_FPMIN
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _BETACF_EPS:
            break
    return h


def _betainc(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function ``I_x(a, b)``."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_bt = (
        math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
        + a * math.log(x) + b * math.log1p(-x)
    )
    bt = math.exp(ln_bt)
    if x < (a + 1.0) / (a + b + 2.0):
        return bt * _betacf(a, b, x) / a
    return 1.0 - bt * _betacf(b, a, 1.0 - x) / b


@lru_cache(maxsize=1024)
def student_t_quantile(confidence: float, df: int) -> float:
    """Two-sided Student-``t`` critical value: ``P(|T_df| <= t) = confidence``.

    Computed by bisecting the exact ``t`` CDF (incomplete-beta form), so
    the result is deterministic and accurate to ~1e-12 without a scipy
    dependency; values are cached per ``(confidence, df)``.
    """
    if not 0.0 < confidence < 1.0:
        raise PrecisionError(f"confidence must be in (0, 1), got {confidence}")
    if df < 1:
        raise PrecisionError(f"degrees of freedom must be >= 1, got {df}")
    p = 0.5 * (1.0 + confidence)  # one-sided CDF level of the two-sided value

    def cdf(t: float) -> float:
        return 1.0 - 0.5 * _betainc(df / 2.0, 0.5, df / (df + t * t))

    lo, hi = 0.0, 2.0
    while cdf(hi) < p:
        hi *= 2.0
        if hi > 1e12:  # pragma: no cover - unreachable for valid inputs
            break
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if cdf(mid) < p:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


# -- the declarative target -----------------------------------------------

#: ``parse`` key aliases → dataclass field names.
_PARSE_KEYS = {
    "rel": "rel",
    "abs": "absolute",
    "absolute": "absolute",
    "conf": "confidence",
    "confidence": "confidence",
    "min_reps": "min_reps",
    "max_reps": "max_reps",
    "min_blocks": "min_blocks",
}

_INT_FIELDS = {"min_reps", "max_reps", "min_blocks"}


@dataclass(frozen=True)
class PrecisionTarget:
    """Per-series CI half-width goal for an adaptive run.

    A monitored series is *converged* once its batch-means half-width at
    ``confidence`` drops to ``max(absolute, rel * |mean|)`` (whichever of
    the two targets is provided; with both, meeting either suffices).  A
    run stops at the first block boundary where **every** monitored
    series is converged, subject to ``min_reps`` / ``min_blocks`` floors,
    or unconditionally once ``max_reps`` replications ran (the executor's
    ``repetitions`` budget is always a second, outer cap).
    """

    rel: float | None = None
    absolute: float | None = None
    confidence: float = 0.95
    min_reps: int = 0
    max_reps: int | None = None
    min_blocks: int = 8

    def __post_init__(self):
        if self.rel is None and self.absolute is None:
            raise PrecisionError(
                "a precision target needs at least one of rel= / abs="
            )
        for name in ("rel", "absolute"):
            value = getattr(self, name)
            if value is not None and not value > 0:
                raise PrecisionError(f"{name} must be positive, got {value}")
        if not 0.0 < self.confidence < 1.0:
            raise PrecisionError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        if self.min_blocks < 2:
            raise PrecisionError(
                f"min_blocks must be >= 2 (the batch-means variance needs at "
                f"least two block aggregates), got {self.min_blocks}"
            )
        if self.min_reps < 0:
            raise PrecisionError(f"min_reps must be >= 0, got {self.min_reps}")
        if self.max_reps is not None and self.max_reps < max(self.min_reps, 1):
            raise PrecisionError(
                f"max_reps={self.max_reps} is below min_reps={self.min_reps}"
            )

    @classmethod
    def parse(cls, text: str) -> "PrecisionTarget":
        """Parse the CLI syntax: ``"rel=0.01,conf=0.95[,abs=...,...]"``.

        Keys: ``rel``, ``abs``, ``conf``/``confidence``, ``min_reps``,
        ``max_reps``, ``min_blocks``.
        """
        fields: dict = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip().lower()
            if not sep or key not in _PARSE_KEYS:
                known = ",".join(sorted(set(_PARSE_KEYS)))
                raise PrecisionError(
                    f"bad precision item {part!r}; expected key=value with "
                    f"keys in {{{known}}}"
                )
            field = _PARSE_KEYS[key]
            try:
                fields[field] = (
                    int(value) if field in _INT_FIELDS else float(value)
                )
            except ValueError:
                raise PrecisionError(
                    f"bad precision value for {key}: {value!r}"
                ) from None
        if not fields:
            raise PrecisionError("empty precision spec")
        return cls(**fields)

    # -- persistence / canonical form ----------------------------------

    def to_payload(self) -> dict:
        """Canonical JSON-encodable form (feeds the request cache key)."""
        return {
            "rel": None if self.rel is None else float(self.rel),
            "abs": None if self.absolute is None else float(self.absolute),
            "conf": float(self.confidence),
            "min_reps": int(self.min_reps),
            "max_reps": None if self.max_reps is None else int(self.max_reps),
            "min_blocks": int(self.min_blocks),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "PrecisionTarget":
        """Inverse of :meth:`to_payload` (unknown keys rejected)."""
        unknown = set(payload) - {"rel", "abs", "conf", "min_reps",
                                  "max_reps", "min_blocks"}
        if unknown:
            raise PrecisionError(
                f"unknown precision payload keys: {sorted(unknown)}"
            )
        kwargs: dict = {}
        if payload.get("rel") is not None:
            kwargs["rel"] = float(payload["rel"])
        if payload.get("abs") is not None:
            kwargs["absolute"] = float(payload["abs"])
        if payload.get("conf") is not None:
            kwargs["confidence"] = float(payload["conf"])
        for key in _INT_FIELDS:
            if payload.get(key) is not None:
                kwargs[key] = int(payload[key])
        return cls(**kwargs)

    # -- semantics ------------------------------------------------------

    def tolerance(self, mean: float) -> float:
        """The half-width this target allows for a series at *mean*."""
        candidates = []
        if self.absolute is not None:
            candidates.append(self.absolute)
        if self.rel is not None:
            candidates.append(self.rel * abs(mean))
        return max(candidates)

    def monitor(self, extract=None) -> "SequentialMonitor":
        """A fresh :class:`SequentialMonitor` for one reduced ensemble run."""
        return SequentialMonitor(self, extract=extract)


# -- block-aggregate extraction ------------------------------------------

def default_block_statistics(reducer) -> dict[str, float]:
    """The per-block aggregates the monitor tracks, by reducer type.

    * :class:`~repro.analysis.aggregate.StreamingScalar` → ``{"mean": …}``
      (the block's mean of the scalar statistic);
    * :class:`~repro.analysis.aggregate.StreamingProfile` → ``{"rank0": …}``
      (the block-mean load at sorted rank 0 — the profile's headline
      maximum-load position);
    * :class:`~repro.analysis.aggregate.ReducerBundle` → the union over
      members, names prefixed ``"<key>.<name>"``.
    """
    from .aggregate import ReducerBundle, StreamingProfile, StreamingScalar

    if isinstance(reducer, StreamingScalar):
        return {"mean": float(reducer.mean)}
    if isinstance(reducer, StreamingProfile):
        return {"rank0": float(reducer.profile().mean[0])}
    if isinstance(reducer, ReducerBundle):
        out: dict[str, float] = {}
        for key, sub in reducer.reducers.items():
            for name, value in default_block_statistics(sub).items():
                out[f"{key}.{name}"] = value
        return out
    raise TypeError(
        f"no default block statistic for reducer type {type(reducer)!r}; "
        f"pass an explicit extract= callable"
    )


# -- the stopping rule ----------------------------------------------------

class SequentialMonitor:
    """Continue/stop decisions over a stream of block reducers.

    The executor (:func:`repro.runtime.executor.run_ensemble_reduced`)
    calls :meth:`observe` with each completed block's reducer; the monitor
    extracts the block aggregates, folds them into per-series batch-means
    moments, and returns ``True`` once every series meets the target (see
    the module docstring for the batch-means soundness argument).

    State is tiny and picklable: :meth:`state_dict` /
    :meth:`load_state_dict` let the resume pipeline checkpoint the monitor
    alongside the merged reducer, so a killed adaptive run stops at the
    same block as an uninterrupted one.
    """

    def __init__(self, target: PrecisionTarget, extract=None):
        self.target = target
        self._extract = extract if extract is not None else default_block_statistics
        # name -> [k, sum of block means, sum of squared block means]
        self._series: dict[str, list[float]] = {}
        self.reps_done = 0

    # -- observation ----------------------------------------------------

    def observe(self, block_reducer, reps_done: int) -> bool:
        """Fold one block's aggregates in; return the stop decision.

        ``reps_done`` is the cumulative replication count including this
        block.  The decision is a pure function of the observed prefix.
        """
        stats = self._extract(block_reducer)
        if not isinstance(stats, dict):
            stats = {"stat": float(stats)}
        for name, value in stats.items():
            entry = self._series.setdefault(name, [0, 0.0, 0.0])
            value = float(value)
            entry[0] += 1
            entry[1] += value
            entry[2] += value * value
        self.reps_done = int(reps_done)
        return self.should_stop()

    # -- decision -------------------------------------------------------

    def _halfwidth(self, k: int, total: float, sumsq: float) -> float:
        """Batch-means t-interval half-width over *k* block aggregates."""
        if k < 2:
            return float("inf")
        mean = total / k
        var = max((sumsq - k * mean * mean) / (k - 1), 0.0)
        crit = student_t_quantile(self.target.confidence, k - 1)
        return crit * math.sqrt(var / k)

    def should_stop(self) -> bool:
        """Current decision (no side effects; safe to re-query on resume).

        A series whose block aggregates are NaN never converges — the run
        then simply spends its full budget.
        """
        target = self.target
        if target.max_reps is not None and self.reps_done >= target.max_reps:
            return True
        if not self._series or self.reps_done < target.min_reps:
            return False
        for k, total, sumsq in self._series.values():
            if k < target.min_blocks:
                return False
            hw = self._halfwidth(k, total, sumsq)
            if not hw <= target.tolerance(total / k):
                return False
        return True

    # -- reporting ------------------------------------------------------

    def series_report(self) -> dict[str, dict]:
        """Achieved mean / half-width / tolerance per monitored series."""
        out: dict[str, dict] = {}
        for name, (k, total, sumsq) in self._series.items():
            mean = total / k
            hw = self._halfwidth(int(k), total, sumsq)
            tol = self.target.tolerance(mean)
            out[name] = {
                "mean": float(mean),
                "halfwidth": float(hw),
                "tolerance": float(tol),
                "blocks": int(k),
                "converged": bool(k >= self.target.min_blocks and hw <= tol),
            }
        return out

    def summary(self) -> dict:
        """Provenance for one reduced run (replications used + CI state)."""
        series = self.series_report()
        return {
            "replications": int(self.reps_done),
            "converged": bool(series) and all(
                s["converged"] for s in series.values()
            ),
            "series": series,
        }

    # -- resume state ---------------------------------------------------

    def state_dict(self) -> dict:
        """Picklable state for block checkpoints (exact float moments)."""
        return {
            "series": {k: list(v) for k, v in self._series.items()},
            "reps_done": int(self.reps_done),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (resume path)."""
        self._series = {k: list(v) for k, v in state["series"].items()}
        self.reps_done = int(state["reps_done"])

    def fingerprint(self) -> str:
        """Identity for the executor's checkpoint fingerprint: a resumed
        run must carry the same target and extraction rule."""
        extract = getattr(self._extract, "__qualname__", repr(self._extract))
        return f"SequentialMonitor({sorted(self.target.to_payload().items())}, {extract})"


# -- per-experiment bookkeeping ------------------------------------------

class AdaptiveRecorder:
    """One experiment's adaptive-run bookkeeping.

    Experiments run several reduced ensemble sub-runs (one per capacity
    class / grid point); each gets a fresh monitor via :meth:`monitor`,
    and :meth:`annotate` folds every monitor's summary into
    ``result.extra["adaptive"]`` so replications-used and achieved
    half-widths travel with the result (and through the store).

    With ``target=None`` the recorder is inert: :meth:`monitor` returns
    ``None`` (no ``until`` hook) and :meth:`annotate` is a no-op — the
    fixed-budget path is untouched.
    """

    def __init__(self, target: PrecisionTarget | None, *, engine: str | None = None):
        if target is not None and engine is not None and engine != "ensemble":
            raise ValueError(
                "adaptive precision rides the ensemble block stream; "
                f"engine={engine!r} cannot honor a precision target "
                "(run with engine='ensemble')"
            )
        self.target = target
        self.monitors: dict[str, SequentialMonitor] = {}

    def monitor(self, label: str, extract=None) -> SequentialMonitor | None:
        """A fresh monitor registered under *label* (None when inert)."""
        if self.target is None:
            return None
        if label in self.monitors:
            raise ValueError(f"duplicate adaptive sub-run label {label!r}")
        mon = self.target.monitor(extract=extract)
        self.monitors[label] = mon
        return mon

    def block_size(self, repetitions: int, block_size: int | None) -> int | None:
        """Effective lockstep block width for an adaptive sub-run.

        An explicit ``block_size`` (e.g. pinned by a RunRequest) always
        wins, and fixed-budget runs keep the executor default untouched.
        For an adaptive run with no pinned width, the default
        :data:`~repro.runtime.executor.DEFAULT_BLOCK_SIZE` is shrunk so the
        budget spans at least ``4 * min_blocks`` block aggregates —
        otherwise the monitor could never accumulate ``min_blocks`` batch
        means before the budget ran out and ``--precision`` would silently
        degenerate to a fixed-budget run.  The width is a pure function of
        ``(repetitions, target)``, so results and checkpoints stay
        deterministic.
        """
        if block_size is not None or self.target is None:
            return block_size
        from ..runtime.executor import shared_param_block_size

        return shared_param_block_size(
            repetitions, None, min_blocks=4 * self.target.min_blocks
        )

    def annotate(self, extra: dict, *, budget_per_run: int) -> dict:
        """Write the ``"adaptive"`` provenance block into *extra*."""
        if self.target is None:
            return extra
        runs: dict[str, dict] = {}
        used = 0
        for label, mon in self.monitors.items():
            summary = mon.summary()
            summary["budget"] = int(budget_per_run)
            summary["stopped_early"] = summary["replications"] < budget_per_run
            runs[label] = summary
            used += summary["replications"]
        budget = int(budget_per_run) * len(self.monitors)
        extra["adaptive"] = {
            "target": self.target.to_payload(),
            "replication_budget": budget,
            "replications_used": int(used),
            "early_stopped": used < budget,
            "runs": runs,
        }
        return extra
