"""Adaptive repetition control: run until the estimate is tight enough.

The paper fixes 10,000 repetitions everywhere; for library users a better
contract is "give me the mean max load to ±0.05 with 95% confidence".
:func:`run_until_ci` keeps spawning independent repetitions of a scalar
task until the normal-approximation confidence interval shrinks below the
requested half-width (or a budget is exhausted), returning the estimate
with its achieved precision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sampling.rngutils import spawn_seed_sequences

__all__ = ["AdaptiveEstimate", "run_until_ci"]


@dataclass(frozen=True)
class AdaptiveEstimate:
    """Result of an adaptive Monte-Carlo estimation."""

    mean: float
    ci_halfwidth: float
    repetitions: int
    converged: bool
    samples: np.ndarray

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return float(self.samples.std(ddof=1)) if self.repetitions > 1 else 0.0


def run_until_ci(
    task,
    *,
    target_halfwidth: float,
    confidence_z: float = 1.96,
    min_repetitions: int = 10,
    max_repetitions: int = 10_000,
    batch: int = 10,
    seed=None,
    kwargs: dict | None = None,
) -> AdaptiveEstimate:
    """Repeat ``task(seed_sequence, **kwargs) -> float`` until the CI is tight.

    Parameters
    ----------
    target_halfwidth:
        Stop once ``z * std / sqrt(reps) <= target_halfwidth``.
    confidence_z:
        Normal quantile (1.96 = 95%).
    min_repetitions / max_repetitions:
        Floor before testing convergence / hard budget.
    batch:
        Repetitions added per round (amortises the convergence check).
    """
    if target_halfwidth <= 0:
        raise ValueError(f"target_halfwidth must be positive, got {target_halfwidth}")
    if min_repetitions < 2:
        raise ValueError(f"min_repetitions must be >= 2, got {min_repetitions}")
    if max_repetitions < min_repetitions:
        raise ValueError("max_repetitions must be >= min_repetitions")
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    kwargs = kwargs or {}

    # Pre-spawn the whole budget so sample i is the same regardless of
    # where convergence stops (reproducible partial sequences).
    seeds = spawn_seed_sequences(seed, max_repetitions)
    samples: list[float] = []
    converged = False
    while len(samples) < max_repetitions:
        take = min(batch, max_repetitions - len(samples))
        if len(samples) < min_repetitions:
            take = max(take, min_repetitions - len(samples))
            take = min(take, max_repetitions - len(samples))
        for ss in seeds[len(samples) : len(samples) + take]:
            samples.append(float(task(ss, **kwargs)))
        if len(samples) >= min_repetitions:
            arr = np.asarray(samples)
            hw = confidence_z * arr.std(ddof=1) / np.sqrt(arr.size)
            if hw <= target_halfwidth:
                converged = True
                break
    arr = np.asarray(samples)
    hw = (
        confidence_z * arr.std(ddof=1) / np.sqrt(arr.size)
        if arr.size > 1
        else float("inf")
    )
    return AdaptiveEstimate(
        mean=float(arr.mean()),
        ci_halfwidth=float(hw),
        repetitions=int(arr.size),
        converged=converged,
        samples=arr,
    )
