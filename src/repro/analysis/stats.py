"""Per-run load statistics (Section 4's measured quantities).

Small, pure functions over ``(counts, capacities)`` pairs; everything the
figure experiments report is assembled from these.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LoadStats",
    "load_stats",
    "max_load",
    "load_gap",
    "argmax_bins",
    "max_load_location_by_class",
    "max_load_location_by_class_matrix",
    "per_class_max_loads",
]


def _loads(counts, capacities) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    cnt = np.asarray(counts, dtype=np.int64)
    cap = np.asarray(capacities, dtype=np.int64)
    if cnt.shape != cap.shape or cnt.ndim != 1:
        raise ValueError(
            f"counts {cnt.shape} and capacities {cap.shape} must be equal-length 1-D vectors"
        )
    return cnt / cap, cnt, cap


@dataclass(frozen=True)
class LoadStats:
    """One run's headline numbers."""

    max_load: float
    average_load: float
    min_load: float
    std_load: float

    @property
    def gap(self) -> float:
        """``ℓ_max − m/C``, the Figure 16 quantity."""
        return self.max_load - self.average_load


def load_stats(counts, capacities) -> LoadStats:
    """Compute :class:`LoadStats` for one allocation."""
    loads, cnt, cap = _loads(counts, capacities)
    return LoadStats(
        max_load=float(loads.max()),
        average_load=float(cnt.sum() / cap.sum()),
        min_load=float(loads.min()),
        std_load=float(loads.std()),
    )


def max_load(counts, capacities) -> float:
    """``ℓ_max = max_i m_i / c_i``."""
    loads, _, _ = _loads(counts, capacities)
    return float(loads.max())


def load_gap(counts, capacities) -> float:
    """Deviation of the maximum load from the average ``m / C``."""
    loads, cnt, cap = _loads(counts, capacities)
    return float(loads.max() - cnt.sum() / cap.sum())


def argmax_bins(counts, capacities, *, rtol: float = 0.0) -> np.ndarray:
    """Indices of all maximally loaded bins.

    With the default ``rtol=0`` only exact maxima are returned; loads are
    ratios of int64s, so bins of equal load compare exactly equal whenever
    the ratio is representable, and ties across equal-capacity bins (the
    common case in the figures) are always detected.  A small ``rtol``
    widens the set to near-maximal bins.
    """
    loads, _, _ = _loads(counts, capacities)
    top = loads.max()
    return np.flatnonzero(loads >= top * (1.0 - rtol) if top > 0 else loads >= top)


def max_load_location_by_class(counts, capacities) -> dict[int, bool]:
    """For each capacity class: does it contain a maximally loaded bin?

    This is Figure 7/9's per-run measurement ("was a small bin among the
    maximally loaded?"), generalised to every size class.
    """
    loads, _, cap = _loads(counts, capacities)
    winners = argmax_bins(counts, capacities)
    winner_caps = set(int(c) for c in cap[winners])
    return {int(c): (int(c) in winner_caps) for c in np.unique(cap)}


def max_load_location_by_class_matrix(counts, capacities) -> dict[int, np.ndarray]:
    """Replication-wise :func:`max_load_location_by_class` over ``(R, n)`` counts.

    For each capacity class ``c``, returns an ``(R,)`` boolean vector whose
    entry ``r`` says whether replication ``r``'s maximally loaded bins include
    a bin of capacity ``c`` — replication by replication identical to calling
    :func:`max_load_location_by_class` on each row (loads are int64 ratios, so
    exact equality detects exactly the same winner sets).
    """
    cnt = np.asarray(counts, dtype=np.int64)
    cap = np.asarray(capacities, dtype=np.int64)
    if cnt.ndim != 2 or cap.ndim != 1 or cnt.shape[1] != cap.size:
        raise ValueError(
            f"counts must be (R, n) against (n,) capacities, got {cnt.shape} vs {cap.shape}"
        )
    loads = cnt / cap
    is_max = loads == loads.max(axis=1, keepdims=True)
    return {int(c): is_max[:, cap == c].any(axis=1) for c in np.unique(cap)}


def per_class_max_loads(counts, capacities) -> dict[int, float]:
    """Maximum load inside each capacity class."""
    loads, _, cap = _loads(counts, capacities)
    return {
        int(c): float(loads[cap == c].max())
        for c in np.unique(cap)
    }
