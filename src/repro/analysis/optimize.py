"""Searching for the best probability distribution (paper's future work).

The conclusions single out "the problem of choosing the best probability
distribution for a given heterogeneous bin array" as future work; Section
4.5 solves it empirically for two-class arrays inside the power family
``p ~ c^t``.  This module generalises that search to *any* bin array:

* :func:`exponent_sweep` — mean max load over a grid of exponents;
* :func:`optimal_exponent` — golden-section refinement of the best ``t``
  (the objective is noisy, so the search averages repeated simulations and
  the result carries its grid/valley context for honesty about precision).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..bins.arrays import BinArray
from ..core.simulation import simulate
from ..sampling.distributions import PowerProbability
from ..sampling.rngutils import spawn_seed_sequences

__all__ = ["ExponentSearchResult", "exponent_sweep", "optimal_exponent"]

_GOLDEN = (math.sqrt(5.0) - 1.0) / 2.0


def _mean_max_load(bins: BinArray, t: float, repetitions: int, seed, d: int) -> float:
    seeds = spawn_seed_sequences(seed, repetitions)
    model = PowerProbability(t)
    return float(
        np.mean([simulate(bins, d=d, probabilities=model, seed=s).max_load for s in seeds])
    )


def exponent_sweep(
    bins: BinArray,
    t_grid,
    *,
    repetitions: int = 100,
    d: int = 2,
    seed=None,
) -> dict[float, float]:
    """Mean max load for each exponent in *t_grid* (shared seed tree)."""
    if repetitions < 1:
        raise ValueError(f"repetitions must be positive, got {repetitions}")
    grid = [float(t) for t in t_grid]
    if not grid:
        raise ValueError("t_grid must be non-empty")
    seeds = spawn_seed_sequences(seed, len(grid))
    return {
        t: _mean_max_load(bins, t, repetitions, s, d)
        for t, s in zip(grid, seeds)
    }


@dataclass(frozen=True)
class ExponentSearchResult:
    """Outcome of :func:`optimal_exponent`."""

    best_t: float
    best_load: float
    coarse_curve: dict[float, float]
    refinement_interval: tuple[float, float]

    def improvement_over_proportional(self) -> float:
        """Mean-max-load gain of ``t*`` over ``t = 1`` on the coarse grid.

        Positive when the optimum beats proportional selection.  Uses the
        grid point closest to 1.
        """
        ts = np.asarray(list(self.coarse_curve))
        t1 = float(ts[np.argmin(np.abs(ts - 1.0))])
        return self.coarse_curve[t1] - self.best_load


def optimal_exponent(
    bins: BinArray,
    *,
    t_min: float = 0.0,
    t_max: float = 4.0,
    coarse_points: int = 9,
    refine_iterations: int = 10,
    repetitions: int = 100,
    d: int = 2,
    seed=None,
) -> ExponentSearchResult:
    """Find the exponent minimising the mean maximum load.

    Two phases: a coarse grid locates the valley, then golden-section
    search refines inside the bracketing interval.  The objective is a
    Monte-Carlo estimate, so precision is limited by ``repetitions``; the
    returned interval communicates the residual bracket width.
    """
    if t_max <= t_min:
        raise ValueError(f"need t_min < t_max, got [{t_min}, {t_max}]")
    if coarse_points < 3:
        raise ValueError(f"coarse_points must be >= 3, got {coarse_points}")
    if refine_iterations < 0:
        raise ValueError("refine_iterations must be non-negative")

    parent = spawn_seed_sequences(seed, 2)
    grid = np.linspace(t_min, t_max, coarse_points)
    curve = exponent_sweep(bins, grid, repetitions=repetitions, d=d, seed=parent[0])

    ts = np.asarray(list(curve))
    ys = np.asarray([curve[t] for t in ts])
    k = int(np.argmin(ys))
    lo = float(ts[max(0, k - 1)])
    hi = float(ts[min(len(ts) - 1, k + 1)])

    # Golden-section refinement with fresh evaluation seeds per probe.
    eval_seeds = iter(spawn_seed_sequences(parent[1], max(refine_iterations, 1) * 2 + 2))
    a, b = lo, hi
    x1 = b - _GOLDEN * (b - a)
    x2 = a + _GOLDEN * (b - a)
    f1 = _mean_max_load(bins, x1, repetitions, next(eval_seeds), d)
    f2 = _mean_max_load(bins, x2, repetitions, next(eval_seeds), d)
    for _ in range(refine_iterations):
        if f1 <= f2:
            b, x2, f2 = x2, x1, f1
            x1 = b - _GOLDEN * (b - a)
            f1 = _mean_max_load(bins, x1, repetitions, next(eval_seeds), d)
        else:
            a, x1, f1 = x1, x2, f2
            x2 = a + _GOLDEN * (b - a)
            f2 = _mean_max_load(bins, x2, repetitions, next(eval_seeds), d)
    if f1 <= f2:
        best_t, best_load = x1, f1
    else:
        best_t, best_load = x2, f2
    # The coarse minimum may still beat the refined probe under noise.
    if ys[k] < best_load:
        best_t, best_load = float(ts[k]), float(ys[k])
    return ExponentSearchResult(
        best_t=float(best_t),
        best_load=float(best_load),
        coarse_curve={float(t): float(curve[t]) for t in ts},
        refinement_interval=(float(a), float(b)),
    )
