"""Aggregation across repetitions.

The paper's figures plot averages over many independent runs — e.g.
Figure 1's "load distribution" is, for each *rank* position, the mean over
10,000 runs of the load of the bin at that position of the sorted load
vector; Figures 6/8/14–16 average scalar statistics.  This module provides
both patterns, plus simple normal-approximation confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "MeanProfile",
    "mean_sorted_profile",
    "mean_profile_by_position",
    "ScalarAggregate",
    "aggregate_scalar",
    "fraction_true",
]


@dataclass(frozen=True)
class MeanProfile:
    """Mean (and spread) of sorted per-bin load profiles over repetitions."""

    mean: np.ndarray
    std: np.ndarray
    repetitions: int

    def __len__(self) -> int:
        return int(self.mean.size)


def mean_sorted_profile(load_matrix) -> MeanProfile:
    """Average sorted (descending) load profile over repetitions.

    ``load_matrix`` has shape ``(repetitions, n)``; each row is sorted in
    non-increasing order before averaging, matching how the paper plots
    "load vs (sorted) bin index".
    """
    arr = np.asarray(load_matrix, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"load_matrix must be 2-D (reps, n), got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise ValueError("need at least one repetition")
    sorted_rows = -np.sort(-arr, axis=1)
    return MeanProfile(
        mean=sorted_rows.mean(axis=0),
        std=sorted_rows.std(axis=0),
        repetitions=int(arr.shape[0]),
    )


def mean_profile_by_position(load_matrix) -> MeanProfile:
    """Average load per *original bin index* (no sorting) over repetitions.

    Used when bin identity matters, e.g. per-class sub-profiles where the
    class layout is fixed across runs (Figures 12–13).
    """
    arr = np.asarray(load_matrix, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"load_matrix must be 2-D (reps, n), got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise ValueError("need at least one repetition")
    return MeanProfile(mean=arr.mean(axis=0), std=arr.std(axis=0), repetitions=int(arr.shape[0]))


@dataclass(frozen=True)
class ScalarAggregate:
    """Mean/CI of a scalar statistic over repetitions."""

    mean: float
    std: float
    repetitions: int
    minimum: float
    maximum: float

    def ci_halfwidth(self, z: float = 1.96) -> float:
        """Half-width of the normal-approximation confidence interval."""
        if self.repetitions <= 1:
            return float("inf")
        return z * self.std / np.sqrt(self.repetitions)


def aggregate_scalar(values) -> ScalarAggregate:
    """Aggregate one scalar statistic's repetition samples."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("values must be a non-empty 1-D sequence")
    return ScalarAggregate(
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        repetitions=int(arr.size),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def fraction_true(flags) -> float:
    """Fraction of repetitions in which a Boolean event occurred.

    Figure 7's y-axis ("percentage of cases where a small bin has max
    load") is ``100 * fraction_true(...)``.
    """
    arr = np.asarray(flags, dtype=bool)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("flags must be a non-empty 1-D sequence")
    return float(arr.mean())
