"""Aggregation across repetitions.

The paper's figures plot averages over many independent runs — e.g.
Figure 1's "load distribution" is, for each *rank* position, the mean over
10,000 runs of the load of the bin at that position of the sorted load
vector; Figures 6/8/14–16 average scalar statistics.  This module provides
both patterns, plus simple normal-approximation confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "MeanProfile",
    "mean_sorted_profile",
    "mean_profile_by_position",
    "ScalarAggregate",
    "aggregate_scalar",
    "fraction_true",
    "StreamingProfile",
    "StreamingScalar",
    "ReducerBundle",
]


@dataclass(frozen=True)
class MeanProfile:
    """Mean (and spread) of sorted per-bin load profiles over repetitions."""

    mean: np.ndarray
    std: np.ndarray
    repetitions: int

    def __len__(self) -> int:
        return int(self.mean.size)


def mean_sorted_profile(load_matrix) -> MeanProfile:
    """Average sorted (descending) load profile over repetitions.

    ``load_matrix`` has shape ``(repetitions, n)``; each row is sorted in
    non-increasing order before averaging, matching how the paper plots
    "load vs (sorted) bin index".
    """
    arr = np.asarray(load_matrix, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"load_matrix must be 2-D (reps, n), got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise ValueError("need at least one repetition")
    sorted_rows = -np.sort(-arr, axis=1)
    return MeanProfile(
        mean=sorted_rows.mean(axis=0),
        std=sorted_rows.std(axis=0),
        repetitions=int(arr.shape[0]),
    )


def mean_profile_by_position(load_matrix) -> MeanProfile:
    """Average load per *original bin index* (no sorting) over repetitions.

    Used when bin identity matters, e.g. per-class sub-profiles where the
    class layout is fixed across runs (Figures 12–13).
    """
    arr = np.asarray(load_matrix, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"load_matrix must be 2-D (reps, n), got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise ValueError("need at least one repetition")
    return MeanProfile(mean=arr.mean(axis=0), std=arr.std(axis=0), repetitions=int(arr.shape[0]))


@dataclass(frozen=True)
class ScalarAggregate:
    """Mean/CI of a scalar statistic over repetitions."""

    mean: float
    std: float
    repetitions: int
    minimum: float
    maximum: float

    def ci_halfwidth(self, z: float = 1.96) -> float:
        """Half-width of the normal-approximation confidence interval."""
        if self.repetitions <= 1:
            return float("inf")
        return z * self.std / np.sqrt(self.repetitions)


def aggregate_scalar(values) -> ScalarAggregate:
    """Aggregate one scalar statistic's repetition samples."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("values must be a non-empty 1-D sequence")
    return ScalarAggregate(
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        repetitions=int(arr.size),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


class StreamingProfile:
    """Streaming reducer for ``(R, n)`` load-profile blocks.

    The lockstep ensemble engine produces replications in blocks of ``R``
    rows; paper-scale experiments run thousands of replications, so the full
    ``(repetitions, n)`` matrix must never be materialised.  This reducer
    keeps only first and second moments per position — feed it each block
    with :meth:`update`, combine worker-side partials with :meth:`merge`
    (it is small and picklable, so workers can reduce locally and ship the
    reducer instead of their replication matrices), and read the result with
    :meth:`profile`.

    With ``sort=True`` (default) each row is sorted in non-increasing order
    before accumulation, matching :func:`mean_sorted_profile`; ``sort=False``
    matches :func:`mean_profile_by_position`.  The population-``std``
    convention of those two functions is preserved exactly.
    """

    def __init__(self, n: int, *, sort: bool = True):
        if n < 1:
            raise ValueError(f"n must be positive, got {n}")
        self.n = int(n)
        self.sort = bool(sort)
        self.repetitions = 0
        self._sum = np.zeros(self.n, dtype=np.float64)
        self._sumsq = np.zeros(self.n, dtype=np.float64)

    def update(self, load_matrix) -> "StreamingProfile":
        """Accumulate one ``(R, n)`` block of per-replication load rows."""
        arr = np.asarray(load_matrix, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2 or arr.shape[1] != self.n:
            raise ValueError(
                f"load block must have shape (R, {self.n}), got {arr.shape}"
            )
        if self.sort:
            arr = -np.sort(-arr, axis=1)
        self._sum += arr.sum(axis=0)
        self._sumsq += np.square(arr).sum(axis=0)
        self.repetitions += int(arr.shape[0])
        return self

    def merge(self, other: "StreamingProfile") -> "StreamingProfile":
        """Fold another reducer (e.g. from a worker process) into this one."""
        if not isinstance(other, StreamingProfile):
            raise TypeError(f"can only merge StreamingProfile, got {type(other)!r}")
        if other.n != self.n or other.sort != self.sort:
            raise ValueError(
                f"incompatible reducers: (n={self.n}, sort={self.sort}) "
                f"vs (n={other.n}, sort={other.sort})"
            )
        self._sum += other._sum
        self._sumsq += other._sumsq
        self.repetitions += other.repetitions
        return self

    def __eq__(self, other) -> bool:
        """Bit-exact state equality (moments compared byte-for-byte).

        Reducers are checkpointed mid-run by the resume pipeline
        (:func:`repro.runtime.executor.run_ensemble_reduced`); equality is
        deliberately exact, not approximate, because a resumed run promises
        *bit-identical* final results.  Pickling round-trips the state
        exactly, so ``loads(dumps(r)) == r`` always holds.
        """
        if not isinstance(other, StreamingProfile):
            return NotImplemented
        return (
            self.n == other.n
            and self.sort == other.sort
            and self.repetitions == other.repetitions
            and self._sum.tobytes() == other._sum.tobytes()
            and self._sumsq.tobytes() == other._sumsq.tobytes()
        )

    __hash__ = None  # mutable reducer

    def profile(self) -> MeanProfile:
        """Finalise into a :class:`MeanProfile` (needs >= 1 replication)."""
        if self.repetitions == 0:
            raise ValueError("need at least one repetition")
        mean = self._sum / self.repetitions
        var = np.maximum(self._sumsq / self.repetitions - mean**2, 0.0)
        return MeanProfile(mean=mean, std=np.sqrt(var), repetitions=self.repetitions)


class StreamingScalar:
    """Streaming reducer for per-replication scalar statistics.

    Accumulates mean/std/min/max of a scalar (e.g. the gap, or the maximum
    load) over replication blocks without keeping the samples, mirroring
    :func:`aggregate_scalar`'s sample-``std`` (``ddof=1``) convention.
    """

    def __init__(self):
        self.repetitions = 0
        self._sum = 0.0
        self._sumsq = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def update(self, values) -> "StreamingScalar":
        """Accumulate a batch of per-replication scalar samples."""
        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size == 0:
            return self
        self._sum += float(arr.sum())
        self._sumsq += float(np.square(arr).sum())
        self._min = min(self._min, float(arr.min()))
        self._max = max(self._max, float(arr.max()))
        self.repetitions += int(arr.size)
        return self

    def merge(self, other: "StreamingScalar") -> "StreamingScalar":
        """Fold another reducer into this one."""
        if not isinstance(other, StreamingScalar):
            raise TypeError(f"can only merge StreamingScalar, got {type(other)!r}")
        self._sum += other._sum
        self._sumsq += other._sumsq
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self.repetitions += other.repetitions
        return self

    def __eq__(self, other) -> bool:
        """Bit-exact state equality (see :meth:`StreamingProfile.__eq__`).

        Compared at the byte level so NaN-valued moments (a reducer fed NaN
        samples) still satisfy ``loads(dumps(r)) == r``.
        """
        if not isinstance(other, StreamingScalar):
            return NotImplemented
        if self.repetitions != other.repetitions:
            return False
        mine = np.array([self._sum, self._sumsq, self._min, self._max])
        theirs = np.array([other._sum, other._sumsq, other._min, other._max])
        return mine.tobytes() == theirs.tobytes()

    __hash__ = None  # mutable reducer

    @property
    def mean(self) -> float:
        """Mean of all samples seen so far."""
        if self.repetitions == 0:
            raise ValueError("need at least one sample")
        return self._sum / self.repetitions

    def aggregate(self) -> ScalarAggregate:
        """Finalise into a :class:`ScalarAggregate` (needs >= 1 sample)."""
        if self.repetitions == 0:
            raise ValueError("need at least one sample")
        mean = self._sum / self.repetitions
        if self.repetitions > 1:
            # Sample variance from moments, guarded against float cancellation.
            var = max(
                (self._sumsq - self.repetitions * mean**2) / (self.repetitions - 1),
                0.0,
            )
        else:
            var = 0.0
        return ScalarAggregate(
            mean=mean,
            std=float(np.sqrt(var)),
            repetitions=self.repetitions,
            minimum=self._min,
            maximum=self._max,
        )


class ReducerBundle:
    """Named bundle of streaming reducers that merges key-by-key.

    Several figures reduce more than one statistic per replication block
    (e.g. Figure 6/7's mean maximum load *and* where-the-maximum-sits flags,
    Figure 8/9's per-class flags).  An ensemble block task builds one bundle
    per block; :func:`repro.runtime.executor.run_ensemble_reduced` then folds
    the bundles with :meth:`merge` exactly as it does single reducers.  Every
    member must itself expose ``merge`` (:class:`StreamingProfile`,
    :class:`StreamingScalar`, or a nested bundle).
    """

    def __init__(self, **reducers):
        if not reducers:
            raise ValueError("a ReducerBundle needs at least one reducer")
        self.reducers = dict(reducers)

    def __getitem__(self, key):
        return self.reducers[key]

    def merge(self, other: "ReducerBundle") -> "ReducerBundle":
        """Fold another bundle into this one, key by key."""
        if not isinstance(other, ReducerBundle):
            raise TypeError(f"can only merge ReducerBundle, got {type(other)!r}")
        if set(other.reducers) != set(self.reducers):
            raise ValueError(
                f"incompatible bundles: keys {sorted(self.reducers)} "
                f"vs {sorted(other.reducers)}"
            )
        for key, reducer in self.reducers.items():
            reducer.merge(other.reducers[key])
        return self

    def __eq__(self, other) -> bool:
        """Bit-exact state equality, key by key."""
        if not isinstance(other, ReducerBundle):
            return NotImplemented
        return self.reducers == other.reducers

    __hash__ = None  # mutable reducer


def fraction_true(flags) -> float:
    """Fraction of repetitions in which a Boolean event occurred.

    Figure 7's y-axis ("percentage of cases where a small bin has max
    load") is ``100 * fraction_true(...)``.
    """
    arr = np.asarray(flags, dtype=bool)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("flags must be a non-empty 1-D sequence")
    return float(arr.mean())
