"""Command-line interface.

Commands
--------
``repro list``
    Show every registered figure experiment.
``repro run <id> [--scale S] [--seed N] [--workers W] [--engine E] [--block-size B]
[--precision SPEC] [--store [DIR]] [--out DIR] [--no-plot]``
    Run an experiment; print the ASCII rendition and save CSV/JSON.
    ``--engine ensemble`` selects the lockstep replication engine.
    ``--precision rel=0.01,conf=0.95`` makes the repetition budget a
    maximum: an adaptive experiment stops at the first block boundary
    where every monitored series' batch-means CI half-width meets the
    target (requires ``--engine ensemble``).
    ``--store`` routes the run through the content-addressed result store
    (``DIR``, else ``$REPRO_STORE``, else ``./.repro-store``): a repeated
    request is a cache hit doing zero simulation work, and an interrupted
    ensemble run resumes from its block checkpoints.
    ``--threads N`` (also on ``sweep`` and ``simulate``) sets the
    compiled-tier thread budget — ``auto`` (default) or a positive
    integer; the prange kernels parallelise over replications only, so no
    budget can change a number.
``repro sweep <ids|all> [--scales S1,S2] [--seeds N1,N2] [--engines E1,E2] ...``
    Run a grid of run requests (ids × scales × seeds × engines) through the
    store and print a hit/miss/resume summary table (with an
    early-stopped-at-R column under ``--precision``).  Killing a sweep
    loses nothing: completed cells are cache hits on the rerun and the
    interrupted cell resumes from its last completed block slab.  A grid
    cell whose run raises is reported as ``error`` in the table and the
    sweep exits nonzero after finishing the remaining cells.
    ``--fabric N`` leases each cell's ensemble blocks to ``N``
    broker-managed worker processes (one fleet for the whole sweep) —
    bit-identical to local execution by the executor seed contract, with
    dead workers' blocks re-queued and parked block results surviving a
    killed sweep.
``repro describe <spec>``
    Parse a bin-array spec (``"1x500,10x500"`` = 500 bins of capacity 1 and
    500 of capacity 10), report its structure and which theorems apply.
``repro simulate <spec> [--balls M] [--d D] [--seed N]``
    One allocation run on the given array; print load statistics.
``repro tune <spec> [--reps R] [--seed N]``
    Search the power family ``p ~ c^t`` for the exponent minimising the
    mean maximum load on the given array (Section 4.5 / future work).
``repro replay [--requests M] [--peers N] [--d D] [--refresh-every T] ...``
    Deterministically replay a generated open-loop trace (heavy-tailed
    popularity, diurnal rate) against the live allocation service with
    optional churn; print the replay report (``--json`` for machines).
    Same seed + spec ⇒ bit-identical placement digest and final counts.
``repro serve [--host H] [--port P] [--peers N] [--d D] ...``
    Run the allocation service as a line-delimited-JSON TCP endpoint
    with ``alloc`` / ``stats`` / ``churn`` / ``ping`` operations until
    interrupted.
"""

from __future__ import annotations

import argparse
import sys

from .analysis.stats import load_stats, per_class_max_loads
from .core.compiled import set_threads
from .core.simulation import simulate
from .experiments.base import list_experiments
from .experiments.runner import run_experiment
from .runtime.progress import ProgressReporter
from .theory.conditions import applicable_theorems

__all__ = ["main", "parse_bin_spec"]


def parse_bin_spec(spec: str):
    """Parse a bin spec string (full grammar in :mod:`repro.bins.spec`).

    Supports explicit classes (``"1x500,10x500"``) and generators
    (``"binom:n=1000,c=4"``); errors surface as ``SystemExit`` with a
    user-facing message.
    """
    from .bins.spec import BinSpecError
    from .bins.spec import parse_bin_spec as _parse

    try:
        return _parse(spec)
    except BinSpecError as exc:
        raise SystemExit(f"bad bin spec: {exc}") from None


def _parse_precision(text):
    """Parse a ``--precision`` spec with a user-facing error."""
    if text is None:
        return None
    from .analysis.precision import PrecisionError, PrecisionTarget

    try:
        return PrecisionTarget.parse(text)
    except PrecisionError as exc:
        raise SystemExit(f"bad --precision: {exc}") from None


def _adaptive_summary(result):
    """The ``extra['adaptive']`` provenance block, if the run carried one."""
    info = result.extra.get("adaptive")
    return info if isinstance(info, dict) else None


def _cmd_list(_args) -> int:
    for spec in list_experiments():
        print(f"{spec.experiment_id:8s} {spec.figure:10s} {spec.title}")
        print(f"{'':8s} {'':10s} {spec.description}")
    return 0


def _cmd_run(args) -> int:
    from .experiments.base import EngineNotSupportedError, PrecisionNotSupportedError
    from .experiments.runner import as_run_request, execute_request

    progress = ProgressReporter() if args.progress else None
    request = as_run_request(
        args.experiment,
        scale=args.scale,
        seed=args.seed,
        engine=args.engine,
        workers=args.workers,
        block_size=args.block_size,
        precision=_parse_precision(args.precision),
    )
    try:
        outcome = execute_request(
            request, progress=progress, out_dir=args.out, store=args.store
        )
    except (EngineNotSupportedError, PrecisionNotSupportedError) as exc:
        raise SystemExit(str(exc)) from None
    result = outcome.result
    if args.store is not None:
        status = "hit" if outcome.cache_hit else (
            "miss (resumed from checkpoints)" if outcome.resumed else "miss"
        )
        print(f"store: cache {status} [{outcome.key[:12]}]")
    adaptive = _adaptive_summary(result)
    if adaptive is not None:
        used = adaptive["replications_used"]
        budget = adaptive["replication_budget"]
        if adaptive["early_stopped"]:
            print(f"adaptive: early-stopped at R={used} of {budget} budgeted "
                  f"replications")
        else:
            print(f"adaptive: spent the full budget (R={used}) without "
                  f"meeting every target")
    if not args.no_plot:
        print(result.render())
    else:
        print(f"{result.experiment_id}: {result.title}")
        for name, lo, hi, first, last in result.summary_rows():
            print(f"  {name}: min={lo:.4f} max={hi:.4f} first={first:.4f} last={last:.4f}")
    if args.out:
        print(f"\nsaved {result.experiment_id}.csv / .json under {args.out}")
    if "wall_seconds" in result.extra:
        print(f"wall time: {result.extra['wall_seconds']}s")
    return 0


def _cmd_describe(args) -> int:
    bins = parse_bin_spec(args.spec)
    print(bins)
    print(f"total capacity C = {bins.total_capacity}, average = {bins.average_capacity():.3f}")
    for report in applicable_theorems(bins, d=args.d):
        print()
        print(report.explain())
    return 0


def _cmd_report(args) -> int:
    from pathlib import Path

    from .experiments.runner import run_all
    from .io.markdown import results_to_report

    progress = ProgressReporter() if args.progress else None
    results = run_all(
        scale=args.scale,
        seed=args.seed,
        workers=args.workers,
        progress=progress,
        out_dir=args.out,
        only=args.only.split(",") if args.only else None,
        engine=args.engine,
        store=args.store,
    )
    report = results_to_report(results, title=args.title)
    path = Path(args.out or ".") / "REPORT.md"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(report)
    print(f"wrote {path} covering {len(results)} experiment(s)")
    return 0


def _parse_csl(text, convert, what):
    """Parse a comma-separated option list with a clear error."""
    items = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            items.append(convert(part))
        except ValueError:
            raise SystemExit(f"bad {what} value: {part!r}") from None
    if not items:
        raise SystemExit(f"empty {what} list")
    return items


def _cmd_sweep(args) -> int:
    from itertools import product
    from pathlib import Path

    from .experiments.base import (
        ENGINES,
        EngineNotSupportedError,
        PrecisionNotSupportedError,
        get_experiment,
    )
    from .experiments.request import RunRequest
    from .experiments.runner import execute_request
    from .io.asciiplot import ascii_table
    from .io.store import resolve_store

    if args.experiments == "all":
        ids = [spec.experiment_id for spec in list_experiments()]
    else:
        ids = _parse_csl(args.experiments, str, "experiment id")
    scales = _parse_csl(args.scales, float, "scale") if args.scales else [None]
    seeds = _parse_csl(args.seeds, int, "seed") if args.seeds else [None]
    engines = _parse_csl(args.engines, str, "engine") if args.engines else [None]
    for engine in engines:
        if engine is not None and engine not in ENGINES:
            raise SystemExit(f"unknown engine {engine!r}; expected one of {ENGINES}")
    precision = _parse_precision(args.precision)
    overrides = {}
    if args.repetitions is not None:
        overrides["repetitions"] = args.repetitions
    store = resolve_store(args.store if args.store is not None else True)
    progress = ProgressReporter() if args.progress else None
    fabric = None
    if getattr(args, "fabric", None) is not None:
        if args.fabric < 1:
            raise SystemExit(f"--fabric needs at least 1 worker, got {args.fabric}")
        from .runtime.fabric import FabricSession

        # One fleet for the whole sweep: the store is the shared medium, so
        # a killed sweep's parked blocks are found again on the rerun.
        fabric = FabricSession(args.fabric, store=store)

    rows = []
    failures = []
    try:
        for eid, scale, seed, engine in product(ids, scales, seeds, engines):
            request = RunRequest(
                experiment_id=eid,
                scale=scale,
                seed=seed,
                engine=engine,
                workers=args.workers,
                block_size=args.block_size,
                overrides=overrides,
                precision=precision,
            )
            spec_version = get_experiment(eid).version
            out_dir = None
            if args.out is not None:
                # One subdirectory per grid cell: flat <id>.csv naming would
                # let cells differing only in seed/scale/engine overwrite
                # each other.
                cell = request.cache_key(version=spec_version)[:12]
                out_dir = Path(args.out) / f"{eid}-{cell}"
            cell_row = [
                eid,
                "-" if scale is None else f"{scale:g}",
                "-" if seed is None else seed,
                engine or "scalar",
            ]
            try:
                outcome = execute_request(
                    request, progress=progress, out_dir=out_dir, store=store,
                    fabric=fabric,
                )
            except (EngineNotSupportedError, PrecisionNotSupportedError) as exc:
                # A request the registry can never satisfy is a usage error:
                # abort the whole sweep with the message, like before.
                raise SystemExit(str(exc)) from None
            except Exception as exc:  # noqa: BLE001 — reported per cell below
                # One bad grid cell must not take down the rest of the sweep,
                # but it must not hide behind a zero exit either.
                failures.append((cell_row[:4], exc))
                rows.append([*cell_row, "error", 0.0, "-", "-"])
                continue
            status = "hit" if outcome.cache_hit else (
                "resumed" if outcome.resumed else "miss"
            )
            adaptive = _adaptive_summary(outcome.result)
            if adaptive is None:
                stopped = "-"
            elif adaptive["early_stopped"]:
                stopped = f"early@R={adaptive['replications_used']}"
            else:
                stopped = f"full@R={adaptive['replications_used']}"
            rows.append([
                *cell_row,
                status,
                outcome.wall_seconds,
                stopped,
                outcome.key[:12],
            ])
    finally:
        if fabric is not None:
            fabric.close()
    print(ascii_table(
        ["experiment", "scale", "seed", "engine", "status", "wall_s",
         "stopped", "key"],
        rows,
        float_format="{:.3f}",
    ))
    stats = store.stats()
    hits = sum(1 for r in rows if r[4] == "hit")
    print(
        f"\n{len(rows)} run(s): {hits} cache hit(s), {len(rows) - hits} "
        f"computed; store {stats.root} holds {stats.entries} entr"
        f"{'y' if stats.entries == 1 else 'ies'} "
        f"({stats.total_bytes / 1024:.1f} KiB)"
    )
    if failures:
        print(f"\n{len(failures)} grid cell(s) FAILED:", file=sys.stderr)
        for cell, exc in failures:
            name = "/".join(str(c) for c in cell)
            print(f"  {name}: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_verify(args) -> int:
    from .io.asciiplot import ascii_table
    from .theory.selfcheck import verify_all

    outcomes = verify_all(n=args.n, seed=args.seed if args.seed is not None else 20260612)
    print(ascii_table(
        ["claim", "predicted", "measured", "status"],
        [o.row() for o in outcomes],
        float_format="{:.3f}",
    ))
    failed = [o for o in outcomes if not o.passed]
    if failed:
        print(f"\n{len(failed)} check(s) FAILED")
        return 1
    print(f"\nall {len(outcomes)} checks passed")
    return 0


def _cmd_tune(args) -> int:
    from .analysis.optimize import optimal_exponent

    bins = parse_bin_spec(args.spec)
    print(bins)
    result = optimal_exponent(
        bins,
        t_min=args.t_min,
        t_max=args.t_max,
        repetitions=args.reps,
        seed=args.seed,
        d=args.d,
    )
    print("\ncoarse sweep (mean max load per exponent):")
    for t, load in sorted(result.coarse_curve.items()):
        marker = "  <- proportional" if abs(t - 1.0) < 1e-9 else ""
        print(f"  t = {t:5.2f}: {load:.4f}{marker}")
    print(f"\nbest exponent t* = {result.best_t:.3f} "
          f"(mean max load {result.best_load:.4f})")
    gain = result.improvement_over_proportional()
    print(f"improvement over proportional selection: {gain:+.4f}")
    return 0


def _service_from_args(args):
    from .service import AllocationService

    return AllocationService(
        [f"peer-{i}" for i in range(args.peers)],
        d=args.d,
        refresh_every=args.refresh_every,
        virtual_nodes=args.virtual_nodes,
        seed=args.seed,
    )


def _cmd_replay(args) -> int:
    import json as _json

    from .service import TraceSpec, generate_churn_schedule, generate_trace

    if args.peers < 1:
        raise SystemExit(f"--peers must be positive, got {args.peers}")
    try:
        spec = TraceSpec(
            requests=args.requests,
            users=args.users,
            objects=args.objects,
            zipf_s=args.zipf,
            rate=args.rate,
            diurnal_amplitude=args.amplitude,
            seed=args.seed,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    trace = generate_trace(spec)
    schedule = generate_churn_schedule(
        args.churn_events, trace.duration, seed=args.seed
    )
    service = _service_from_args(args)
    report = service.replay(trace, schedule, pace=args.pace)
    if args.json:
        payload = {
            "requests": report.requests,
            "placement_digest": report.placement_digest,
            "trace_digest": report.trace_digest,
            "max_load": report.max_load,
            "mean_load": report.mean_load,
            "max_over_mean": report.max_over_mean,
            "joins": report.joins,
            "leaves": report.leaves,
            "skips": report.skips,
            "view_refreshes": report.view_refreshes,
            "wall_seconds": report.wall_seconds,
            "stats": service.stats(),
        }
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"replayed {report.requests} requests over {args.peers} starting "
          f"peers (d={args.d}, refresh_every={args.refresh_every})")
    print(f"trace digest     = {report.trace_digest}")
    print(f"placement digest = {report.placement_digest}")
    print(f"max load         = {report.max_load}")
    print(f"mean load        = {report.mean_load:.4f}")
    print(f"max/mean         = {report.max_over_mean:.4f}")
    print(f"churn            = {report.joins} join(s), {report.leaves} "
          f"leave(s), {report.skips} skip(s)")
    print(f"view refreshes   = {report.view_refreshes}")
    stats = service.stats()
    p50, p99 = stats["latency"]["p50_ms"], stats["latency"]["p99_ms"]
    if p50 is None:
        print("placement latency: no samples")
    else:
        print(f"placement latency p50 = {p50:.4f} ms, p99 = {p99:.4f} ms")
    print(f"wall time        = {report.wall_seconds:.3f}s")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .service import AllocationService, FaultPlan, WalError, WriteAheadLog, run_server

    if args.peers < 1:
        raise SystemExit(f"--peers must be positive, got {args.peers}")

    faults = None
    if args.fault_plan:
        try:
            faults = FaultPlan.parse(args.fault_plan)
        except ValueError as exc:
            raise SystemExit(f"bad --fault-plan: {exc}") from None

    recovered = 0
    if args.wal:
        wal = WriteAheadLog(args.wal, sync_every=args.wal_sync_every)
        try:
            if wal.scan().records:
                # Restart: the log's meta record wins over --peers/--d/...
                service = AllocationService.recover(
                    wal, sync_every=args.wal_sync_every)
                recovered = service.recovered_records
            else:
                service = AllocationService(
                    [f"peer-{i}" for i in range(args.peers)],
                    d=args.d,
                    refresh_every=args.refresh_every,
                    virtual_nodes=args.virtual_nodes,
                    seed=args.seed,
                    wal=wal,
                )
        except WalError as exc:
            raise SystemExit(str(exc)) from None
    else:
        service = _service_from_args(args)

    def announce(addr):
        host, port = addr
        extras = ""
        if args.wal:
            extras = (f", wal={args.wal}"
                      + (f" ({recovered} record(s) recovered, digest "
                         f"{service.placement_digest()[:16]}...)" if recovered else ""))
        print(f"allocation service on {host}:{port} "
              f"({len(service.peer_ids)} peers, d={service.d}, "
              f"refresh_every={service.refresh_every}{extras}); ops: "
              f"alloc/stats/churn/ping, one JSON object per line",
              flush=True)

    try:
        asyncio.run(run_server(
            service, args.host, args.port, ready=announce, faults=faults))
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        service.close_wal()
    return 0


def _cmd_recover(args) -> int:
    import json as _json

    from .service import AllocationService, WalError

    try:
        service = AllocationService.recover(args.wal)
    except (WalError, OSError) as exc:
        raise SystemExit(str(exc)) from None
    service.close_wal()  # offline inspection only: never append
    stats = service.stats()
    if args.json:
        print(_json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(f"recovered {service.recovered_records} record(s) from {args.wal}")
    print(f"requests         = {stats['requests']}")
    print(f"placement digest = {stats['placement_digest']}")
    print(f"churn            = {service.joins} join(s), {service.leaves} "
          f"leave(s), {service.skips} skip(s)")
    print(f"peers ({stats['peers']}):")
    for pid, count in stats["load"]["per_peer"].items():
        print(f"  {pid:<12} {count}")
    return 0


def _cmd_simulate(args) -> int:
    bins = parse_bin_spec(args.spec)
    m = args.balls if args.balls is not None else bins.total_capacity
    result = simulate(bins, m=m, d=args.d, seed=args.seed)
    stats = load_stats(result.counts, bins.capacities)
    print(bins)
    print(f"m = {m} balls, d = {args.d}")
    print(f"max load      = {stats.max_load:.4f}")
    print(f"average load  = {stats.average_load:.4f}")
    print(f"gap           = {stats.gap:.4f}")
    print(f"min load      = {stats.min_load:.4f}")
    print("per-class max loads:")
    for cap, ml in sorted(per_class_max_loads(result.counts, bins.capacities).items()):
        print(f"  capacity {cap}: {ml:.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Balls into Non-uniform Bins' — experiments and tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered figure experiments")

    p_run = sub.add_parser("run", help="run one figure experiment")
    p_run.add_argument("experiment", help="experiment id, e.g. fig06")
    p_run.add_argument("--scale", type=float, default=None,
                       help="repetition scale (1.0 = paper scale)")
    p_run.add_argument("--seed", type=int, default=None, help="master seed")
    p_run.add_argument("--workers", type=int, default=1,
                       help="parallel worker processes (default 1)")
    p_run.add_argument("--engine", choices=["scalar", "ensemble"], default=None,
                       help="repetition engine: scalar loop or lockstep ensemble")
    p_run.add_argument("--block-size", type=int, default=None,
                       help="replications per lockstep block (ensemble engine)")
    p_run.add_argument("--precision", default=None, metavar="SPEC",
                       help="adaptive early-stop target, e.g. "
                            "'rel=0.01,conf=0.95' (requires --engine ensemble; "
                            "keys: rel, abs, conf, min_reps, max_reps, "
                            "min_blocks)")
    p_run.add_argument("--store", nargs="?", const=True, default=None, metavar="DIR",
                       help="cache through the result store at DIR "
                            "(default: $REPRO_STORE or ./.repro-store)")
    p_run.add_argument("--threads", default=None, metavar="N",
                       help="compiled-tier thread budget: 'auto' "
                            "(min(cores, R), tiny batches stay serial) or a "
                            "positive integer — never changes a number "
                            "(default: $REPRO_THREADS, else auto)")
    p_run.add_argument("--out", default=None, help="directory for CSV/JSON results")
    p_run.add_argument("--no-plot", action="store_true", help="skip the ASCII plot")
    p_run.add_argument("--progress", action="store_true", help="print progress to stderr")

    p_sweep = sub.add_parser(
        "sweep",
        help="run a grid of requests through the result store (resumable)",
    )
    p_sweep.add_argument("experiments",
                         help="comma-separated experiment ids, or 'all'")
    p_sweep.add_argument("--scales", default=None,
                         help="comma-separated repetition scales")
    p_sweep.add_argument("--seeds", default=None, help="comma-separated seeds")
    p_sweep.add_argument("--engines", default=None,
                         help="comma-separated engines (scalar,ensemble)")
    p_sweep.add_argument("--repetitions", type=int, default=None,
                         help="repetition-count override for every cell")
    p_sweep.add_argument("--workers", type=int, default=1, help="worker processes")
    p_sweep.add_argument("--block-size", type=int, default=None,
                         help="replications per lockstep block (ensemble engine)")
    p_sweep.add_argument("--precision", default=None, metavar="SPEC",
                         help="adaptive early-stop target applied to every "
                              "cell, e.g. 'rel=0.01,conf=0.95' (requires "
                              "--engines ensemble)")
    p_sweep.add_argument("--store", nargs="?", const=True, default=None, metavar="DIR",
                         help="result store location (default: $REPRO_STORE or "
                              "./.repro-store); the sweep always uses a store")
    p_sweep.add_argument("--fabric", type=int, default=None, metavar="N",
                         help="lease ensemble blocks to N broker-managed "
                              "worker processes (bit-identical to local "
                              "execution; killed workers re-queue)")
    p_sweep.add_argument("--threads", default=None, metavar="N",
                         help="compiled-tier thread budget for the driver "
                              "process: 'auto' or a positive integer "
                              "(pool/fabric workers stay at 1 thread unless "
                              "an explicit budget is set here)")
    p_sweep.add_argument("--out", default=None,
                         help="also save CSV/JSON per run, one "
                              "<id>-<key> subdirectory per grid cell")
    p_sweep.add_argument("--progress", action="store_true", help="print progress")

    p_desc = sub.add_parser("describe", help="analyse a bin-array spec against the theorems")
    p_desc.add_argument("spec", help="bin spec like '1x500,10x500'")
    p_desc.add_argument("--d", type=int, default=2, help="choices per ball")

    p_sim = sub.add_parser("simulate", help="run one allocation and print statistics")
    p_sim.add_argument("spec", help="bin spec like '1x500,10x500'")
    p_sim.add_argument("--balls", type=int, default=None, help="number of balls (default C)")
    p_sim.add_argument("--d", type=int, default=2, help="choices per ball")
    p_sim.add_argument("--seed", type=int, default=None, help="RNG seed")
    p_sim.add_argument("--threads", default=None, metavar="N",
                       help="compiled-tier thread budget: 'auto' or a "
                            "positive integer (a scalar run auto-resolves "
                            "to 1; explicit budgets are honored)")

    p_report = sub.add_parser("report", help="run experiments and write a markdown report")
    p_report.add_argument("--scale", type=float, default=None, help="repetition scale")
    p_report.add_argument("--seed", type=int, default=None, help="master seed")
    p_report.add_argument("--workers", type=int, default=1, help="worker processes")
    p_report.add_argument("--engine", choices=["scalar", "ensemble"], default=None,
                          help="repetition engine where supported (see ROADMAP engine matrix)")
    p_report.add_argument("--store", nargs="?", const=True, default=None, metavar="DIR",
                          help="cache runs through the result store at DIR "
                               "(default: $REPRO_STORE or ./.repro-store)")
    p_report.add_argument("--out", default="results", help="output directory")
    p_report.add_argument("--only", default=None, help="comma-separated experiment ids")
    p_report.add_argument("--title", default="Balls into non-uniform bins — experiment report")
    p_report.add_argument("--progress", action="store_true", help="print progress")

    p_verify = sub.add_parser("verify", help="check every analytical claim against simulation")
    p_verify.add_argument("--n", type=int, default=1000, help="problem size for the checks")
    p_verify.add_argument("--seed", type=int, default=None, help="master seed")

    def add_service_options(p):
        p.add_argument("--peers", type=int, default=16,
                       help="initial peer count (default 16)")
        p.add_argument("--d", type=int, default=2, help="choices per request")
        p.add_argument("--refresh-every", type=int, default=64, metavar="T",
                       help="staleness bound: placements per load snapshot")
        p.add_argument("--virtual-nodes", type=int, default=1,
                       help="virtual positions per peer")
        p.add_argument("--seed", type=int, default=0,
                       help="root seed (traces, tie-breaking, churn victims)")

    p_replay = sub.add_parser(
        "replay", help="deterministically replay an open-loop trace"
    )
    add_service_options(p_replay)
    p_replay.add_argument("--requests", type=int, default=10_000,
                          help="trace length (default 10000)")
    p_replay.add_argument("--users", type=int, default=1_000_000,
                          help="simulated user universe")
    p_replay.add_argument("--objects", type=int, default=100_000,
                          help="object universe for popularity")
    p_replay.add_argument("--zipf", type=float, default=1.1,
                          help="Zipf popularity exponent")
    p_replay.add_argument("--rate", type=float, default=10_000.0,
                          help="mean arrival rate (req/s of simulated time)")
    p_replay.add_argument("--amplitude", type=float, default=0.5,
                          help="diurnal modulation amplitude in [0,1)")
    p_replay.add_argument("--churn-events", type=int, default=0,
                          help="membership changes spread over the trace")
    p_replay.add_argument("--pace", type=float, default=0.0,
                          help="replay speed multiple of real time (0 = flat out)")
    p_replay.add_argument("--json", action="store_true",
                          help="print the report as JSON")

    p_serve = sub.add_parser(
        "serve", help="run the allocation service over TCP until interrupted"
    )
    add_service_options(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument("--port", type=int, default=7421,
                         help="bind port (0 = ephemeral)")
    p_serve.add_argument("--wal", default=None, metavar="PATH",
                         help="write-ahead log for crash-safe serving; an "
                              "existing log restarts the service from it "
                              "(service options then come from the log)")
    p_serve.add_argument("--wal-sync-every", type=int, default=1, metavar="N",
                         help="fsync once per N appends (1 = every record "
                              "durable before its reply)")
    p_serve.add_argument("--fault-plan", default=None, metavar="JSON|PATH",
                         help="inject a deterministic fault plan "
                              "(service.faults.FaultPlan JSON, inline or a "
                              "file) into the server loop")

    p_recover = sub.add_parser(
        "recover", help="rebuild service state from a write-ahead log and print it"
    )
    p_recover.add_argument("wal", help="path to the write-ahead log")
    p_recover.add_argument("--json", action="store_true",
                           help="print the recovered stats as JSON")

    p_tune = sub.add_parser("tune", help="search for the optimal probability exponent")
    p_tune.add_argument("spec", help="bin spec like '1x50,3x50'")
    p_tune.add_argument("--reps", type=int, default=100, help="simulations per grid point")
    p_tune.add_argument("--t-min", type=float, default=0.0, help="lower end of the sweep")
    p_tune.add_argument("--t-max", type=float, default=4.0, help="upper end of the sweep")
    p_tune.add_argument("--d", type=int, default=2, help="choices per ball")
    p_tune.add_argument("--seed", type=int, default=None, help="RNG seed")

    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "threads", None) is not None:
        try:
            set_threads(args.threads)
        except ValueError as exc:
            parser.error(str(exc))
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "describe": _cmd_describe,
        "simulate": _cmd_simulate,
        "tune": _cmd_tune,
        "verify": _cmd_verify,
        "report": _cmd_report,
        "replay": _cmd_replay,
        "serve": _cmd_serve,
        "recover": _cmd_recover,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
