"""The live allocation service: d-choice placement behind an asyncio front.

:class:`AllocationService` is the synchronous core — membership via a
:class:`~repro.p2p.dht.DHT`, placement via :class:`~.views.DChoicePlacer`
over a :class:`~.views.StaleLoadView`, stats via :mod:`~.metrics` — and is
deliberately event-loop-free so deterministic replay and tests need no
asyncio at all.  :func:`run_server` wraps it in a line-delimited-JSON TCP
endpoint (the fabric's wire idiom) with ``alloc`` / ``stats`` / ``churn``
/ ``ping`` operations; ``stats`` is the `/metrics`-style scrape.

Determinism contract (see ROADMAP conventions): given the same seed, the
same trace, and the same churn schedule, :meth:`AllocationService.replay`
produces a bit-identical placement sequence — pinned by the running
sha256 ``placement_digest`` — and identical final per-peer counts,
regardless of replay pacing or how many times the stats endpoint is
scraped.  Wall-clock latencies are observability only and are excluded.

Crash-recovery clause: with a :class:`~.wal.WriteAheadLog` attached, every
placement and resolved churn event is logged *before* the state mutates,
and :meth:`AllocationService.recover` rebuilds the exact service — per-peer
counters, ring/placer, both RNG stream positions, the placement digest,
and the per-client dedup table — by replaying the log through this same
code path (divergence is a :class:`~.wal.WalError`, not silent drift).
Mutating requests may carry a ``(client, seq)`` pair; the service answers
a replayed ``seq`` from its dedup table without consuming any RNG, so a
client retry after a lost reply never double-places and never shifts the
tie stream.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass, field

from ..p2p.dht import DHT
from ..sampling.rngutils import make_rng, spawn_seed_sequences
from .faults import FaultController, FaultPlan
from .metrics import LatencyRecorder, service_stats
from .traces import ChurnAction, Trace
from .views import DChoicePlacer, StaleLoadView
from .wal import WalError, WriteAheadLog

__all__ = [
    "AllocationService",
    "ReplayReport",
    "ServiceError",
    "StaleSequenceError",
    "run_server",
]

#: Format tag of the WAL meta record; bump on incompatible record changes.
WAL_FORMAT = "repro.service.wal/1"

#: Default bound on one request line at the server (bytes, sans newline).
MAX_LINE_BYTES = 65536


class ServiceError(Exception):
    """A request the service cannot serve (reported, not fatal)."""


class StaleSequenceError(ServiceError):
    """A (client, seq) pair below the client's last applied sequence —
    the cached reply for it is gone, so the request cannot be answered
    idempotently."""


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of one deterministic trace replay."""

    requests: int
    placement_digest: str
    trace_digest: str
    final_loads: dict[str, int]
    max_load: int
    mean_load: float
    joins: int
    leaves: int
    skips: int
    view_refreshes: int
    wall_seconds: float
    placements: tuple[str, ...] = field(default=(), repr=False)

    @property
    def max_over_mean(self) -> float:
        """The paper's imbalance measure over the final counts."""
        return self.max_load / self.mean_load if self.mean_load > 0 else 0.0


class AllocationService:
    """Capacity-aware d-choice allocator with bounded-staleness views.

    Parameters
    ----------
    peers:
        Initial peer ids.
    d:
        Choices per request (``1`` = plain consistent hashing baseline).
    refresh_every:
        Staleness bound ``T``: placements served per load snapshot.
    replication, virtual_nodes:
        Forwarded to the underlying :class:`~repro.p2p.dht.DHT`.
    resolution:
        Arc-quantisation resolution for capacities.
    seed:
        Root seed; tie-breaking and churn-victim streams are spawned from
        it, so the whole decision sequence is a function of (seed, trace,
        churn schedule).
    wal:
        Optional write-ahead log (a :class:`~.wal.WriteAheadLog` or a
        path) to make the service crash-safe.  The log must be fresh or
        empty — restarting over an existing log goes through
        :meth:`recover` instead, which rebuilds state from it.  Requires
        an integer ``seed`` (recovery re-derives the RNG streams from it).
    """

    def __init__(
        self,
        peers,
        *,
        d: int = 2,
        refresh_every: int = 64,
        replication: int = 1,
        virtual_nodes: int = 1,
        resolution: int = 1000,
        seed=0,
        wal=None,
    ):
        self.d = d
        self.refresh_every = refresh_every
        self.resolution = resolution
        self._dht = DHT(peers, replication=replication, virtual_nodes=virtual_nodes)
        if wal is not None:
            seed = self._require_int_seed(seed)
        self.seed = seed
        tie_seed, churn_seed = spawn_seed_sequences(seed, 2)
        self._tie_rng = make_rng(tie_seed)
        self._churn_rng = make_rng(churn_seed)
        self._loads: dict[str, int] = {pid: 0 for pid in self._dht.peer_ids}
        self._view = StaleLoadView(lambda: self._loads, refresh_every)
        self._placer = DChoicePlacer(self._dht.ring, d=d, resolution=resolution)
        self._latency = LatencyRecorder()
        self._digest = hashlib.sha256()
        self.requests = 0
        self.joins = 0
        self.leaves = 0
        self.skips = 0
        self.dedup_hits = 0
        self.recovered_records = 0
        self.errors = {"oversized": 0, "bad_json": 0, "handler": 0, "stale_seq": 0}
        self._join_counter = 0
        self._dedup: dict[str, tuple[int, dict]] = {}
        self._initial_peers = [str(p) for p in peers]
        self._wal: WriteAheadLog | None = None
        if wal is not None:
            self._attach_fresh_wal(wal)

    # -- write-ahead log -------------------------------------------------------

    @staticmethod
    def _require_int_seed(seed) -> int:
        try:
            out = int(seed)
        except (TypeError, ValueError):
            out = None
        if out is None or out != seed:
            raise WalError(
                f"a WAL-backed service needs an integer seed (got {seed!r}) — "
                "recovery re-derives the RNG streams from it"
            )
        return out

    def _meta_record(self) -> dict:
        return {
            "t": "meta",
            "format": WAL_FORMAT,
            "peers": self._initial_peers,
            "d": self.d,
            "refresh_every": self.refresh_every,
            "replication": self._dht.replication,
            "virtual_nodes": self._dht.virtual_nodes,
            "resolution": self.resolution,
            "seed": self.seed,
        }

    def _attach_fresh_wal(self, wal) -> None:
        if not isinstance(wal, WriteAheadLog):
            wal = WriteAheadLog(wal)
        scan = wal.scan()
        if scan.records:
            raise WalError(
                f"{wal.path} already holds {len(scan.records)} record(s); "
                "use AllocationService.recover() to restart from it"
            )
        if not scan.clean:
            wal.repair(scan)
        self._wal = wal
        wal.append(self._meta_record())
        wal.flush()

    def _wal_append(self, record: dict) -> None:
        if self._wal is not None:
            self._wal.append(record)

    def flush_wal(self) -> None:
        """Force the WAL's group commit (no-op without a WAL)."""
        if self._wal is not None:
            self._wal.flush()

    def close_wal(self) -> None:
        """Flush and detach the WAL; the service keeps serving unlogged."""
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    @classmethod
    def recover(cls, wal, *, sync_every: int | None = None) -> "AllocationService":
        """Rebuild a service bit-identically from its write-ahead log.

        Scans the log, quarantines any torn tail (truncate-and-continue),
        reconstructs the service from the meta record, and replays every
        logged placement and churn event through the normal
        :meth:`allocate` / :meth:`apply_churn` paths — advancing the RNG
        streams, counters, digest, and dedup table exactly as the original
        process did.  Each replayed decision is checked against the logged
        outcome; a mismatch means the log and this build disagree and
        raises :class:`~.wal.WalError` rather than serving drifted state.
        The repaired log is then re-attached for appending.
        """
        if not isinstance(wal, WriteAheadLog):
            wal = WriteAheadLog(wal, sync_every=sync_every or 1)
        elif sync_every is not None:
            wal.sync_every = int(sync_every)
        scan = wal.scan()
        if not scan.records:
            raise WalError(f"{wal.path}: empty write-ahead log, nothing to recover")
        meta = scan.records[0]
        if meta.get("t") != "meta" or meta.get("format") != WAL_FORMAT:
            raise WalError(
                f"{wal.path}: first record is not a {WAL_FORMAT} meta record"
            )
        scan = wal.repair(scan)
        service = cls(
            meta["peers"],
            d=meta["d"],
            refresh_every=meta["refresh_every"],
            replication=meta["replication"],
            virtual_nodes=meta["virtual_nodes"],
            resolution=meta["resolution"],
            seed=meta["seed"],
        )
        service._replay_wal_records(scan.records[1:])
        service.recovered_records = len(scan.records) - 1
        service._wal = wal
        return service

    def _replay_wal_records(self, records) -> None:
        """Re-run logged events through the live code paths (WAL detached)."""
        assert self._wal is None
        for i, rec in enumerate(records, start=1):
            kind = rec.get("t")
            if kind == "alloc":
                pid = self.allocate(rec["k"], client=rec.get("c"), seq=rec.get("s"))
                if pid != rec.get("p"):
                    raise WalError(
                        f"record {i}: replayed placement {pid!r} != logged "
                        f"{rec.get('p')!r} — the log does not match this "
                        "build's decision pipeline"
                    )
            elif kind == "churn":
                action = ChurnAction(time=0.0, kind=rec["kind"], peer_id=rec.get("sched"))
                resolved = self.apply_churn(
                    action, client=rec.get("c"), seq=rec.get("s")
                )
                if (resolved["kind"], resolved["peer_id"]) != (rec.get("res"), rec.get("peer")):
                    raise WalError(
                        f"record {i}: replayed churn "
                        f"{(resolved['kind'], resolved['peer_id'])!r} != logged "
                        f"{(rec.get('res'), rec.get('peer'))!r}"
                    )
            else:
                raise WalError(f"record {i}: unknown record type {kind!r}")

    # -- idempotency -----------------------------------------------------------

    def _dedup_lookup(self, client, seq):
        """The cached reply for an already-applied (client, seq), if any.

        Runs *before* any RNG consumption so a duplicate request leaves
        the tie/churn streams untouched.  A sequence id below the client's
        last applied one raises :class:`StaleSequenceError` — its cached
        reply is gone (only the latest is kept), so idempotency cannot be
        honoured.
        """
        if client is None or seq is None:
            return None
        entry = self._dedup.get(str(client))
        seq = int(seq)
        if entry is None or seq > entry[0]:
            return None
        if seq == entry[0]:
            self.dedup_hits += 1
            return entry[1]
        raise StaleSequenceError(
            f"client {client!r} seq {seq} is below the last applied seq "
            f"{entry[0]} (out-of-order or reused sequence id)"
        )

    def _remember(self, client, seq, payload: dict) -> None:
        if client is not None and seq is not None:
            self._dedup[str(client)] = (int(seq), payload)

    # -- placement -------------------------------------------------------------

    @property
    def peer_ids(self) -> tuple[str, ...]:
        """Current membership."""
        return self._dht.peer_ids

    def allocate(self, key, *, client=None, seq=None) -> str:
        """Place one request; returns the chosen peer id.

        Decisions read the stale view; the live counter advances
        immediately (so the *next* snapshot sees it), exactly the
        ``simulate_batched`` regime with ``batch_size = refresh_every``.
        With a ``(client, seq)`` pair the placement is idempotent: a
        duplicate sequence id returns the originally chosen peer without
        placing again (or consuming the tie stream), and the decision is
        WAL-logged before any state mutates.
        """
        cached = self._dedup_lookup(client, seq)
        if cached is not None:
            return cached["peer"]
        if self._dht.n_peers < 1:
            raise ServiceError("no peers available to place on")
        t0 = time.perf_counter()
        tie_u = float(self._tie_rng.random())
        pid = self._placer.place(key, self._view, tie_u)
        self._wal_append({
            "t": "alloc",
            "c": None if client is None else str(client),
            "s": None if seq is None else int(seq),
            "k": key,
            "p": pid,
        })
        self._loads[pid] += 1
        self._view.tick()
        self._digest.update(pid.encode("utf-8"))
        self._digest.update(b"\n")
        self.requests += 1
        self._latency.record(time.perf_counter() - t0)
        self._remember(client, seq, {"peer": pid})
        return pid

    def placement_digest(self) -> str:
        """Running sha256 over the chosen-peer sequence so far."""
        return self._digest.hexdigest()

    # -- churn -----------------------------------------------------------------

    def apply_churn(self, action: ChurnAction, *, client=None, seq=None) -> dict:
        """Resolve one membership change; returns the resolved event.

        Joins mint a fresh ``churn-N`` peer starting at load 0.  Leaves
        evict a uniformly drawn victim (from the churn stream) unless an
        explicit ``peer_id`` was scheduled; a leave that would drop the
        membership below the replication floor is recorded as a ``skip``
        and changes nothing — the same explicit semantics as
        :func:`repro.p2p.churn.run_churn` (note the victim draw *is*
        consumed before the floor check, so the churn stream position is a
        function of the event sequence alone).  Any membership change
        rebuilds the placer and forces a view refresh (the ring changed,
        so serving decisions against the old snapshot would mix
        topologies).  The fully resolved event is WAL-logged before any
        mutation, and a ``(client, seq)`` duplicate returns the original
        resolution without re-drawing.
        """
        cached = self._dedup_lookup(client, seq)
        if cached is not None:
            return dict(cached)
        if action.kind == "join":
            pid = self._next_join_id()
            outcome = "join"
        else:
            if action.peer_id is not None:
                if action.peer_id not in self._dht.peer_ids:
                    raise KeyError(f"peer {action.peer_id!r} not present")
                pid = action.peer_id
            else:
                idx = int(self._churn_rng.integers(0, self._dht.n_peers))
                pid = self._dht.peer_ids[idx]
            if self._dht.n_peers <= self._dht.replication:
                outcome = "skip"
            else:
                outcome = "leave"
        self._wal_append({
            "t": "churn",
            "c": None if client is None else str(client),
            "s": None if seq is None else int(seq),
            "kind": action.kind,
            "sched": action.peer_id,
            "peer": pid,
            "res": outcome,
        })
        if outcome == "join":
            moved = self._dht.join(pid)
            self._loads[pid] = 0
            self.joins += 1
            resolved = {"kind": "join", "peer_id": pid, "copies_moved": moved}
        elif outcome == "leave":
            moved = self._dht.leave(pid)
            self._loads.pop(pid, None)
            self.leaves += 1
            resolved = {"kind": "leave", "peer_id": pid, "copies_moved": moved}
        else:
            self.skips += 1
            resolved = {"kind": "skip", "peer_id": pid, "copies_moved": 0}
            self._remember(client, seq, resolved)
            return dict(resolved)
        self._placer = DChoicePlacer(
            self._dht.ring, d=self.d, resolution=self.resolution
        )
        self._view.refresh()
        self._remember(client, seq, resolved)
        return dict(resolved)

    def _next_join_id(self) -> str:
        while True:
            pid = f"churn-{self._join_counter}"
            self._join_counter += 1
            if pid not in self._dht.peer_ids:
                return pid

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict:
        """The `/metrics`-style stats dict (JSON-ready)."""
        wal_info = None
        if self._wal is not None:
            wal_info = {
                "path": str(self._wal.path),
                "sync_every": self._wal.sync_every,
                "appended": self._wal.appended,
                "fsyncs": self._wal.fsyncs,
                "recovered": self.recovered_records,
            }
        return service_stats(
            requests=self.requests,
            loads=self._loads,
            latency=self._latency,
            staleness_age=self._view.age,
            refresh_every=self.refresh_every,
            view_refreshes=self._view.refreshes,
            joins=self.joins,
            leaves=self.leaves,
            skips=self.skips,
            d=self.d,
            placement_digest=self.placement_digest(),
            errors=self.errors,
            dedup_hits=self.dedup_hits,
            wal=wal_info,
        )

    # -- deterministic replay --------------------------------------------------

    def replay(
        self,
        trace: Trace,
        churn_schedule=(),
        *,
        pace: float = 0.0,
        keep_placements: bool = False,
    ) -> ReplayReport:
        """Replay *trace* against the service, interleaving churn by time.

        A churn action fires before the first request whose arrival time
        is ``>=`` its own; actions past the last arrival fire at the end.
        ``pace`` throttles wall-clock replay to ``pace`` times real time
        (``0`` = as fast as possible, the virtual-clock deterministic
        mode).  The placement sequence and final counts are invariant to
        ``pace`` — only the latency telemetry differs.
        """
        if pace < 0:
            raise ValueError(f"pace must be non-negative, got {pace}")
        schedule = sorted(churn_schedule, key=lambda a: a.time)
        placements: list[str] = [] if keep_placements else None
        t_start = time.perf_counter()
        c = 0
        keys = trace.keys()
        for j in range(trace.count):
            t_arrival = float(trace.times[j])
            while c < len(schedule) and schedule[c].time <= t_arrival:
                self.apply_churn(schedule[c])
                c += 1
            if pace > 0:
                lag = t_arrival / pace - (time.perf_counter() - t_start)
                if lag > 0:
                    time.sleep(lag)
            pid = self.allocate(next(keys))
            if placements is not None:
                placements.append(pid)
        while c < len(schedule):
            self.apply_churn(schedule[c])
            c += 1
        wall = time.perf_counter() - t_start

        loads = dict(self._loads)
        values = list(loads.values())
        mean = sum(values) / len(values) if values else 0.0
        return ReplayReport(
            requests=trace.count,
            placement_digest=self.placement_digest(),
            trace_digest=trace.digest(),
            final_loads=loads,
            max_load=max(values) if values else 0,
            mean_load=mean,
            joins=self.joins,
            leaves=self.leaves,
            skips=self.skips,
            view_refreshes=self._view.refreshes,
            wall_seconds=wall,
            placements=tuple(placements) if placements is not None else (),
        )


# -- asyncio front end ----------------------------------------------------------


def _encode(obj: dict) -> bytes:
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode("utf-8")


class _LineStream:
    """Bounded line framing over a StreamReader.

    asyncio's own ``readline`` raises once a line exceeds the stream
    limit, which would kill the connection on the first oversized request.
    This reader instead *consumes and discards* the oversized line in
    O(limit) memory and reports it, so the server can answer a structured
    error and keep serving the connection.

    ``readline()`` returns ``(line, overflowed)``: a complete line within
    the bound as ``(bytes, False)``, an oversized line as ``(b"",
    True)`` once its terminating newline (or EOF) arrives, and EOF as
    ``(None, False)``.
    """

    _CHUNK = 65536

    def __init__(self, reader, limit: int):
        self._reader = reader
        self._limit = int(limit)
        self._buf = bytearray()
        self._eof = False

    async def readline(self):
        discarding = False
        while True:
            i = self._buf.find(b"\n")
            if i >= 0:
                line = bytes(self._buf[:i])
                del self._buf[:i + 1]
                if discarding or len(line) > self._limit:
                    return b"", True
                return line, False
            if len(self._buf) > self._limit:
                # No newline yet and already over the bound: drop what we
                # have and keep draining until the line ends.
                discarding = True
                self._buf.clear()
            if self._eof:
                if discarding or not self._buf:
                    return None, False
                line = bytes(self._buf)
                self._buf.clear()
                return line, False
            chunk = await self._reader.read(self._CHUNK)
            if not chunk:
                self._eof = True
                continue
            self._buf.extend(chunk)


def _handle_request(service: AllocationService, msg: dict) -> dict:
    op = msg.get("op")
    if op == "ping":
        return {"ok": True, "pong": True}
    if op == "stats":
        return {"ok": True, "stats": service.stats()}
    client, seq = msg.get("client"), msg.get("seq")
    if (client is None) != (seq is None):
        return {"ok": False,
                "error": "idempotent requests need both 'client' and 'seq'"}
    if seq is not None and (not isinstance(seq, int) or isinstance(seq, bool)):
        return {"ok": False, "error": "'seq' must be an integer"}
    if op == "alloc":
        key = msg.get("key")
        if key is None:
            return {"ok": False, "error": "alloc requires a 'key'"}
        before = service.requests
        try:
            peer = service.allocate(key, client=client, seq=seq)
        except StaleSequenceError as exc:
            service.errors["stale_seq"] += 1
            return {"ok": False, "error": str(exc)}
        reply = {"ok": True, "peer": peer}
        if seq is not None:
            reply["seq"] = seq
            reply["dup"] = service.requests == before
        return reply
    if op == "churn":
        kind = msg.get("kind")
        if kind not in ("join", "leave"):
            return {"ok": False, "error": "churn requires kind 'join' or 'leave'"}
        before = service.dedup_hits
        try:
            action = ChurnAction(time=0.0, kind=kind, peer_id=msg.get("peer_id"))
            resolved = service.apply_churn(action, client=client, seq=seq)
        except StaleSequenceError as exc:
            service.errors["stale_seq"] += 1
            return {"ok": False, "error": str(exc)}
        except (KeyError, ValueError) as exc:
            return {"ok": False, "error": str(exc)}
        reply = {"ok": True, **resolved}
        if seq is not None:
            reply["seq"] = seq
            reply["dup"] = service.dedup_hits > before
        return reply
    return {"ok": False, "error": f"unknown op {op!r}"}


async def _serve_connection(
    service: AllocationService,
    reader,
    writer,
    *,
    faults: FaultController | None = None,
    max_line_bytes: int = MAX_LINE_BYTES,
) -> None:
    stream = _LineStream(reader, max_line_bytes)
    try:
        while True:
            line, overflowed = await stream.readline()
            if line is None:
                break
            if overflowed:
                service.errors["oversized"] += 1
                writer.write(_encode({
                    "ok": False,
                    "error": f"request line exceeds {max_line_bytes} bytes",
                }))
                await writer.drain()
                continue
            if not line.strip():
                continue
            try:
                msg = json.loads(line)
            except json.JSONDecodeError as exc:
                service.errors["bad_json"] += 1
                writer.write(_encode({"ok": False, "error": f"bad json: {exc}"}))
                await writer.drain()
                continue
            if not isinstance(msg, dict):
                service.errors["bad_json"] += 1
                writer.write(_encode({
                    "ok": False, "error": "request must be a JSON object",
                }))
                await writer.drain()
                continue
            decision = faults.next_decision() if faults is not None else None
            if decision is not None and decision.any:
                for j in range(decision.storm):
                    service.apply_churn(ChurnAction(
                        time=0.0, kind="join" if j % 2 == 0 else "leave"))
                if decision.delay > 0.0:
                    await asyncio.sleep(decision.delay)
                if decision.kill:
                    # Durable state first, then die like a real crash —
                    # no cleanup, no replies, connections torn mid-flight.
                    service.flush_wal()
                    os.kill(os.getpid(), signal.SIGKILL)
                if decision.drop_before:
                    return
            try:
                reply = _handle_request(service, msg)
            except Exception as exc:  # noqa: BLE001 — one request never kills the connection
                service.errors["handler"] += 1
                reply = {"ok": False, "error": f"internal error: {exc!r}"}
            if decision is not None and decision.drop_after:
                return
            writer.write(_encode(reply))
            await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def run_server(
    service: AllocationService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    ready=None,
    faults=None,
    max_line_bytes: int = MAX_LINE_BYTES,
):
    """Serve *service* over line-delimited JSON TCP until cancelled.

    ``port = 0`` binds an ephemeral port; the bound ``(host, port)`` is
    published through the optional *ready* callback (used by the smoke
    test and the CLI banner).  All operations run on the event loop
    thread, so the synchronous core needs no locking.  ``faults`` is an
    optional :class:`~.faults.FaultPlan` (or a live
    :class:`~.faults.FaultController`, when the caller wants to read the
    trigger counts afterwards) injected per decoded request.
    """
    controller = None
    if faults is not None:
        controller = (faults if isinstance(faults, FaultController)
                      else FaultController(FaultPlan.from_json(faults)
                                           if not isinstance(faults, FaultPlan)
                                           else faults))
    server = await asyncio.start_server(
        lambda r, w: _serve_connection(
            service, r, w, faults=controller, max_line_bytes=max_line_bytes),
        host, port,
    )
    bound = server.sockets[0].getsockname()[:2]
    if ready is not None:
        ready(bound)
    async with server:
        await server.serve_forever()
