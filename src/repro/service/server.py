"""The live allocation service: d-choice placement behind an asyncio front.

:class:`AllocationService` is the synchronous core — membership via a
:class:`~repro.p2p.dht.DHT`, placement via :class:`~.views.DChoicePlacer`
over a :class:`~.views.StaleLoadView`, stats via :mod:`~.metrics` — and is
deliberately event-loop-free so deterministic replay and tests need no
asyncio at all.  :func:`run_server` wraps it in a line-delimited-JSON TCP
endpoint (the fabric's wire idiom) with ``alloc`` / ``stats`` / ``churn``
/ ``ping`` operations; ``stats`` is the `/metrics`-style scrape.

Determinism contract (see ROADMAP conventions): given the same seed, the
same trace, and the same churn schedule, :meth:`AllocationService.replay`
produces a bit-identical placement sequence — pinned by the running
sha256 ``placement_digest`` — and identical final per-peer counts,
regardless of replay pacing or how many times the stats endpoint is
scraped.  Wall-clock latencies are observability only and are excluded.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from dataclasses import dataclass, field

from ..p2p.dht import DHT
from ..sampling.rngutils import make_rng, spawn_seed_sequences
from .metrics import LatencyRecorder, service_stats
from .traces import ChurnAction, Trace
from .views import DChoicePlacer, StaleLoadView

__all__ = ["AllocationService", "ReplayReport", "run_server"]


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of one deterministic trace replay."""

    requests: int
    placement_digest: str
    trace_digest: str
    final_loads: dict[str, int]
    max_load: int
    mean_load: float
    joins: int
    leaves: int
    skips: int
    view_refreshes: int
    wall_seconds: float
    placements: tuple[str, ...] = field(default=(), repr=False)

    @property
    def max_over_mean(self) -> float:
        """The paper's imbalance measure over the final counts."""
        return self.max_load / self.mean_load if self.mean_load > 0 else 0.0


class AllocationService:
    """Capacity-aware d-choice allocator with bounded-staleness views.

    Parameters
    ----------
    peers:
        Initial peer ids.
    d:
        Choices per request (``1`` = plain consistent hashing baseline).
    refresh_every:
        Staleness bound ``T``: placements served per load snapshot.
    replication, virtual_nodes:
        Forwarded to the underlying :class:`~repro.p2p.dht.DHT`.
    resolution:
        Arc-quantisation resolution for capacities.
    seed:
        Root seed; tie-breaking and churn-victim streams are spawned from
        it, so the whole decision sequence is a function of (seed, trace,
        churn schedule).
    """

    def __init__(
        self,
        peers,
        *,
        d: int = 2,
        refresh_every: int = 64,
        replication: int = 1,
        virtual_nodes: int = 1,
        resolution: int = 1000,
        seed=0,
    ):
        self.d = d
        self.refresh_every = refresh_every
        self.resolution = resolution
        self._dht = DHT(peers, replication=replication, virtual_nodes=virtual_nodes)
        tie_seed, churn_seed = spawn_seed_sequences(seed, 2)
        self._tie_rng = make_rng(tie_seed)
        self._churn_rng = make_rng(churn_seed)
        self._loads: dict[str, int] = {pid: 0 for pid in self._dht.peer_ids}
        self._view = StaleLoadView(lambda: self._loads, refresh_every)
        self._placer = DChoicePlacer(self._dht.ring, d=d, resolution=resolution)
        self._latency = LatencyRecorder()
        self._digest = hashlib.sha256()
        self.requests = 0
        self.joins = 0
        self.leaves = 0
        self.skips = 0
        self._join_counter = 0

    # -- placement -------------------------------------------------------------

    @property
    def peer_ids(self) -> tuple[str, ...]:
        """Current membership."""
        return self._dht.peer_ids

    def allocate(self, key) -> str:
        """Place one request; returns the chosen peer id.

        Decisions read the stale view; the live counter advances
        immediately (so the *next* snapshot sees it), exactly the
        ``simulate_batched`` regime with ``batch_size = refresh_every``.
        """
        t0 = time.perf_counter()
        tie_u = float(self._tie_rng.random())
        pid = self._placer.place(key, self._view, tie_u)
        self._loads[pid] += 1
        self._view.tick()
        self._digest.update(pid.encode("utf-8"))
        self._digest.update(b"\n")
        self.requests += 1
        self._latency.record(time.perf_counter() - t0)
        return pid

    def placement_digest(self) -> str:
        """Running sha256 over the chosen-peer sequence so far."""
        return self._digest.hexdigest()

    # -- churn -----------------------------------------------------------------

    def apply_churn(self, action: ChurnAction) -> dict:
        """Resolve one membership change; returns the resolved event.

        Joins mint a fresh ``churn-N`` peer starting at load 0.  Leaves
        evict a uniformly drawn victim (from the churn stream) unless an
        explicit ``peer_id`` was scheduled; a leave that would drop the
        membership below the replication floor is recorded as a ``skip``
        and changes nothing — the same explicit semantics as
        :func:`repro.p2p.churn.run_churn`.  Any membership change rebuilds
        the placer and forces a view refresh (the ring changed, so serving
        decisions against the old snapshot would mix topologies).
        """
        if action.kind == "join":
            pid = self._next_join_id()
            moved = self._dht.join(pid)
            self._loads[pid] = 0
            self.joins += 1
            resolved = {"kind": "join", "peer_id": pid, "copies_moved": moved}
        else:
            if action.peer_id is not None:
                if action.peer_id not in self._dht.peer_ids:
                    raise KeyError(f"peer {action.peer_id!r} not present")
                pid = action.peer_id
            else:
                idx = int(self._churn_rng.integers(0, self._dht.n_peers))
                pid = self._dht.peer_ids[idx]
            if self._dht.n_peers <= self._dht.replication:
                self.skips += 1
                return {"kind": "skip", "peer_id": pid, "copies_moved": 0}
            moved = self._dht.leave(pid)
            self._loads.pop(pid, None)
            self.leaves += 1
            resolved = {"kind": "leave", "peer_id": pid, "copies_moved": moved}
        self._placer = DChoicePlacer(
            self._dht.ring, d=self.d, resolution=self.resolution
        )
        self._view.refresh()
        return resolved

    def _next_join_id(self) -> str:
        while True:
            pid = f"churn-{self._join_counter}"
            self._join_counter += 1
            if pid not in self._dht.peer_ids:
                return pid

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict:
        """The `/metrics`-style stats dict (JSON-ready)."""
        return service_stats(
            requests=self.requests,
            loads=self._loads,
            latency=self._latency,
            staleness_age=self._view.age,
            refresh_every=self.refresh_every,
            view_refreshes=self._view.refreshes,
            joins=self.joins,
            leaves=self.leaves,
            skips=self.skips,
            d=self.d,
            placement_digest=self.placement_digest(),
        )

    # -- deterministic replay --------------------------------------------------

    def replay(
        self,
        trace: Trace,
        churn_schedule=(),
        *,
        pace: float = 0.0,
        keep_placements: bool = False,
    ) -> ReplayReport:
        """Replay *trace* against the service, interleaving churn by time.

        A churn action fires before the first request whose arrival time
        is ``>=`` its own; actions past the last arrival fire at the end.
        ``pace`` throttles wall-clock replay to ``pace`` times real time
        (``0`` = as fast as possible, the virtual-clock deterministic
        mode).  The placement sequence and final counts are invariant to
        ``pace`` — only the latency telemetry differs.
        """
        if pace < 0:
            raise ValueError(f"pace must be non-negative, got {pace}")
        schedule = sorted(churn_schedule, key=lambda a: a.time)
        placements: list[str] = [] if keep_placements else None
        t_start = time.perf_counter()
        c = 0
        keys = trace.keys()
        for j in range(trace.count):
            t_arrival = float(trace.times[j])
            while c < len(schedule) and schedule[c].time <= t_arrival:
                self.apply_churn(schedule[c])
                c += 1
            if pace > 0:
                lag = t_arrival / pace - (time.perf_counter() - t_start)
                if lag > 0:
                    time.sleep(lag)
            pid = self.allocate(next(keys))
            if placements is not None:
                placements.append(pid)
        while c < len(schedule):
            self.apply_churn(schedule[c])
            c += 1
        wall = time.perf_counter() - t_start

        loads = dict(self._loads)
        values = list(loads.values())
        mean = sum(values) / len(values) if values else 0.0
        return ReplayReport(
            requests=trace.count,
            placement_digest=self.placement_digest(),
            trace_digest=trace.digest(),
            final_loads=loads,
            max_load=max(values) if values else 0,
            mean_load=mean,
            joins=self.joins,
            leaves=self.leaves,
            skips=self.skips,
            view_refreshes=self._view.refreshes,
            wall_seconds=wall,
            placements=tuple(placements) if placements is not None else (),
        )


# -- asyncio front end ----------------------------------------------------------


def _encode(obj: dict) -> bytes:
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode("utf-8")


def _handle_request(service: AllocationService, msg: dict) -> dict:
    op = msg.get("op")
    if op == "ping":
        return {"ok": True, "pong": True}
    if op == "stats":
        return {"ok": True, "stats": service.stats()}
    if op == "alloc":
        key = msg.get("key")
        if key is None:
            return {"ok": False, "error": "alloc requires a 'key'"}
        peer = service.allocate(key)
        return {"ok": True, "peer": peer}
    if op == "churn":
        kind = msg.get("kind")
        if kind not in ("join", "leave"):
            return {"ok": False, "error": "churn requires kind 'join' or 'leave'"}
        try:
            action = ChurnAction(time=0.0, kind=kind, peer_id=msg.get("peer_id"))
            resolved = service.apply_churn(action)
        except (KeyError, ValueError) as exc:
            return {"ok": False, "error": str(exc)}
        return {"ok": True, **resolved}
    return {"ok": False, "error": f"unknown op {op!r}"}


async def _serve_connection(service: AllocationService, reader, writer) -> None:
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                msg = json.loads(line)
            except json.JSONDecodeError as exc:
                writer.write(_encode({"ok": False, "error": f"bad json: {exc}"}))
                await writer.drain()
                continue
            writer.write(_encode(_handle_request(service, msg)))
            await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def run_server(
    service: AllocationService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    ready=None,
):
    """Serve *service* over line-delimited JSON TCP until cancelled.

    ``port = 0`` binds an ephemeral port; the bound ``(host, port)`` is
    published through the optional *ready* callback (used by the smoke
    test and the CLI banner).  All operations run on the event loop
    thread, so the synchronous core needs no locking.
    """
    server = await asyncio.start_server(
        lambda r, w: _serve_connection(service, r, w), host, port
    )
    bound = server.sockets[0].getsockname()[:2]
    if ready is not None:
        ready(bound)
    async with server:
        await server.serve_forever()
