"""Append-only, CRC-framed write-ahead log for the allocation service.

The WAL is the service's durability contract: every placement and every
resolved churn event is framed, checksummed, and appended *before* the
state change is applied (and, with ``sync_every = 1``, fsynced before the
reply leaves the process), so :meth:`repro.service.AllocationService.recover`
can rebuild the exact in-memory state — per-peer counters, the ring and
placer, the tie/churn RNG stream positions, the running sha256 placement
digest, and the per-client dedup table — by replaying the log through the
same decision pipeline that wrote it.

Frame format (after a file-level magic header)::

    <u32 payload-length> <u32 crc32(payload)> <payload: compact JSON>

A crash can tear the tail of the file mid-frame; :meth:`WriteAheadLog.scan`
stops at the first frame that fails its length/CRC/JSON checks and reports
how many bytes were good, and :meth:`WriteAheadLog.repair` quarantines the
unreadable suffix into a ``.corrupt-<offset>`` sidecar (the same
rename-out-of-the-way discipline as ``ResultStore.get``) and truncates the
log so appends continue from the last good frame.  A file that does not
start with the magic header is *foreign* and is never truncated — that is
a :class:`WalError`, not a repair.

Durability is fsync-batched: ``sync_every = 1`` (the server default) makes
every record durable before its reply; larger values group-commit for
throughput at the cost of the last ``sync_every - 1`` acknowledged records
after a power loss (a process SIGKILL loses nothing either way — the bytes
are already in the page cache).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

__all__ = ["WriteAheadLog", "WalScan", "WalError", "WAL_MAGIC"]

#: File-level magic: identifies (and versions) a repro WAL.
WAL_MAGIC = b"REPROWAL\x01\n"

#: Per-frame header: payload byte length, crc32 over the payload.
_FRAME_HEADER = struct.Struct("<II")

#: Sanity bound on a frame's declared payload length — a larger value can
#: only come from corruption (records are small JSON objects), and trusting
#: it would make the scan walk off the end of the file.
MAX_FRAME_BYTES = 1 << 20


class WalError(Exception):
    """A write-ahead log that cannot be used (foreign file, bad meta,
    replay divergence, nothing to recover)."""


@dataclass(frozen=True)
class WalScan:
    """Outcome of one read pass over a WAL file."""

    records: tuple[dict, ...]
    good_bytes: int   #: offset of the first unreadable byte (= size when clean)
    total_bytes: int  #: file size at scan time

    @property
    def torn_bytes(self) -> int:
        """Bytes past the last whole frame (0 for a clean log)."""
        return self.total_bytes - self.good_bytes

    @property
    def clean(self) -> bool:
        """Whether every byte belongs to a valid frame."""
        return self.good_bytes == self.total_bytes


def _scan_frames(blob: bytes) -> tuple[list[dict], int]:
    """Decode whole valid frames from the front; return ``(records, good)``.

    Stops at the first frame whose header is short, whose length field is
    implausible, whose payload is short or fails its CRC, or whose payload
    is not a JSON object — everything from there on is unreadable (framing
    is lost once one frame is bad).
    """
    records: list[dict] = []
    offset = len(WAL_MAGIC)
    end = len(blob)
    while offset < end:
        header = blob[offset:offset + _FRAME_HEADER.size]
        if len(header) < _FRAME_HEADER.size:
            break
        length, crc = _FRAME_HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            break
        start = offset + _FRAME_HEADER.size
        payload = blob[start:start + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            break
        try:
            record = json.loads(payload)
        except ValueError:
            break
        if not isinstance(record, dict):
            break
        records.append(record)
        offset = start + length
    return records, offset


class WriteAheadLog:
    """One append-only log file (see the module docstring for the format).

    Construction touches nothing on disk; the file is created (with its
    magic header) on the first :meth:`append`.  ``sync_every`` is the
    group-commit knob: fsync once per that many appends (:meth:`flush`
    forces one).  ``appended`` / ``fsyncs`` are this instance's telemetry
    counters (they do not include records already on disk).
    """

    def __init__(self, path, *, sync_every: int = 1):
        if sync_every < 1:
            raise ValueError(f"sync_every must be >= 1, got {sync_every}")
        self.path = Path(path)
        self.sync_every = int(sync_every)
        self._fh = None
        self._unsynced = 0
        self.appended = 0
        self.fsyncs = 0

    # -- reading ---------------------------------------------------------

    def scan(self) -> WalScan:
        """Read every whole frame; report the torn/corrupt suffix, if any.

        A missing or empty file scans as an empty, clean log.  A file that
        does not begin with the WAL magic raises :class:`WalError` — it is
        not ours to interpret (or to repair).
        """
        if self._fh is not None:
            self._fh.flush()  # make our own unsynced appends visible
        try:
            blob = self.path.read_bytes()
        except FileNotFoundError:
            return WalScan((), 0, 0)
        if not blob:
            return WalScan((), 0, 0)
        if not blob.startswith(WAL_MAGIC):
            if WAL_MAGIC.startswith(blob):
                # Crash during creation: a prefix of the magic alone.
                return WalScan((), 0, len(blob))
            raise WalError(
                f"{self.path} is not a repro write-ahead log (bad magic)"
            )
        records, good = _scan_frames(blob)
        return WalScan(tuple(records), good, len(blob))

    def repair(self, scan: WalScan | None = None) -> WalScan:
        """Quarantine any unreadable suffix and truncate to the good prefix.

        The torn bytes move to a ``<name>.corrupt-<offset>`` sidecar next
        to the log (kept for post-mortem inspection, named by offset so
        repeated crashes never overwrite each other), exactly the
        quarantine discipline of ``ResultStore.get``.  Returns the clean
        scan.  Must be called before this instance starts appending.
        """
        if self._fh is not None:
            raise WalError("repair() must run before the log is opened for append")
        if scan is None:
            scan = self.scan()
        if scan.clean:
            return scan
        blob = self.path.read_bytes()
        sidecar = self.path.with_name(
            f"{self.path.name}.corrupt-{scan.good_bytes}"
        )
        sidecar.write_bytes(blob[scan.good_bytes:])
        with open(self.path, "r+b") as fh:
            fh.truncate(scan.good_bytes)
            fh.flush()
            os.fsync(fh.fileno())
        return WalScan(scan.records, scan.good_bytes, scan.good_bytes)

    # -- appending -------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._fh is not None:
            return
        if self.path.parent != Path("."):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.is_file() and self.path.stat().st_size > 0:
            with open(self.path, "rb") as fh:
                if fh.read(len(WAL_MAGIC)) != WAL_MAGIC:
                    raise WalError(
                        f"{self.path} is not a repro write-ahead log (bad magic)"
                    )
        self._fh = open(self.path, "ab")
        if self._fh.tell() == 0:
            self._fh.write(WAL_MAGIC)

    def append(self, record: dict) -> None:
        """Frame, checksum, and append one record (fsync per the batch
        policy)."""
        payload = json.dumps(
            record, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
        if len(payload) > MAX_FRAME_BYTES:
            raise WalError(
                f"record of {len(payload)} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte frame bound"
            )
        self._ensure_open()
        self._fh.write(_FRAME_HEADER.pack(len(payload), zlib.crc32(payload)))
        self._fh.write(payload)
        self.appended += 1
        self._unsynced += 1
        if self._unsynced >= self.sync_every:
            self.flush()

    def flush(self) -> None:
        """Force the group commit: flush and fsync any unsynced appends."""
        if self._fh is None:
            return
        self._fh.flush()
        if self._unsynced:
            os.fsync(self._fh.fileno())
            self.fsyncs += 1
            self._unsynced = 0

    def close(self) -> None:
        """Flush and release the file handle (the log can be reopened)."""
        if self._fh is None:
            return
        try:
            self.flush()
        finally:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
