"""Retrying line-JSON client for the allocation service.

:class:`RetryingClient` survives the failure modes the fault harness
injects (dropped connections, lost replies, delayed replies, a server
that dies and restarts from its WAL) without ever double-placing:

* every mutating request (``alloc``, ``churn``) carries this client's id
  and a monotonically increasing sequence number, which the server dedups
  from its WAL-rebuilt table — a retry after a lost reply gets the cached
  reply back (flagged ``dup``) instead of a second placement;
* each attempt is bounded by a per-request socket timeout;
* failed attempts back off exponentially with a cap and *deterministically
  seeded* jitter, so a faulted smoke run produces the same retry schedule
  every time.

The client is intentionally synchronous and single-connection: the
service's determinism contract is defined over a serial request
transcript, and a blocking client keeps the transcript obvious.
"""

from __future__ import annotations

import json
import socket
import time

from ..sampling.rngutils import make_rng

__all__ = ["RetryingClient", "ClientError"]


class ClientError(Exception):
    """All retry attempts for one request were exhausted."""


class RetryingClient:
    """Blocking client with timeouts, capped backoff, and idempotent ops.

    ``address`` is ``(host, port)``.  ``client_id`` names this client in
    the server's dedup table; two concurrent clients must use distinct
    ids.  ``jitter_seed`` seeds the backoff jitter stream (same seed, same
    retry schedule).  ``sleep`` is injectable for tests.
    """

    def __init__(self, address, *, client_id: str, timeout: float = 2.0,
                 max_attempts: int = 8, backoff_base: float = 0.05,
                 backoff_cap: float = 1.0, jitter_seed=0, sleep=None):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.address = (str(address[0]), int(address[1]))
        self.client_id = str(client_id)
        self.timeout = float(timeout)
        self.max_attempts = int(max_attempts)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self._jitter_rng = make_rng(jitter_seed)
        self._sleep = sleep if sleep is not None else time.sleep
        self._sock = None
        self._io = None
        self._seq = 0
        self.retries = 0
        self.reconnects = 0
        self.dup_replies = 0

    # -- connection management -------------------------------------------

    def _connect(self):
        self._disconnect()
        sock = socket.create_connection(self.address, timeout=self.timeout)
        self._sock = sock
        self._io = sock.makefile("rw", encoding="utf-8", newline="\n")

    def _disconnect(self):
        for closer in (self._io, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._io = None
        self._sock = None

    def close(self):
        self._disconnect()

    def __enter__(self) -> "RetryingClient":
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- request plumbing ------------------------------------------------

    def _backoff(self, attempt: int) -> float:
        # min(cap, base * 2^attempt), jittered into [0.5x, 1.5x) so herds
        # of clients spread out — but from a seeded stream, so a given
        # client's schedule is reproducible.
        base = min(self.backoff_cap, self.backoff_base * (2.0 ** attempt))
        return base * (0.5 + float(self._jitter_rng.random()))

    def _attempt(self, request: dict) -> dict:
        if self._io is None:
            self._connect()
        self._io.write(json.dumps(request) + "\n")
        self._io.flush()
        line = self._io.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def _call(self, request: dict) -> dict:
        """Send one request, retrying through timeouts/drops/restarts."""
        failures = []
        for attempt in range(self.max_attempts):
            if attempt:
                self.retries += 1
                self._sleep(self._backoff(attempt - 1))
            try:
                reply = self._attempt(request)
            except (ConnectionError, TimeoutError, OSError, json.JSONDecodeError) as exc:
                failures.append(f"attempt {attempt + 1}: {exc!r}")
                self._disconnect()
                self.reconnects += 1
                continue
            if reply.get("dup"):
                self.dup_replies += 1
            return reply
        raise ClientError(
            f"{request.get('op', '?')} to {self.address[0]}:{self.address[1]} "
            f"failed after {self.max_attempts} attempt(s): "
            + "; ".join(failures[-3:])
        )

    def _checked(self, reply: dict) -> dict:
        if not reply.get("ok"):
            raise ClientError(f"server error: {reply.get('error', reply)!r}")
        return reply

    # -- operations ------------------------------------------------------

    def alloc(self, key: str) -> str:
        """Idempotently place ``key``; returns the chosen peer id."""
        self._seq += 1
        reply = self._checked(self._call({
            "op": "alloc", "key": key,
            "client": self.client_id, "seq": self._seq,
        }))
        return reply["peer"]

    def churn(self, kind: str, peer_id=None) -> dict:
        """Idempotently apply one churn event; returns the resolved event."""
        self._seq += 1
        request = {"op": "churn", "kind": kind,
                   "client": self.client_id, "seq": self._seq}
        if peer_id is not None:
            request["peer_id"] = peer_id
        reply = self._checked(self._call(request))
        return {k: reply[k] for k in ("kind", "peer_id", "copies_moved")}

    def stats(self) -> dict:
        return self._checked(self._call({"op": "stats"}))["stats"]

    def ping(self) -> bool:
        return bool(self._checked(self._call({"op": "ping"})).get("pong"))
