"""Bounded-staleness load views and the capacity-aware placer.

The live service cannot afford perfectly fresh load information on every
request — exactly the regime :mod:`repro.core.rounds` models.  A
:class:`StaleLoadView` freezes the per-peer load counters and serves that
snapshot to every placement decision until ``refresh_every`` requests have
gone by (or churn forces a refresh); the placer therefore behaves like
``simulate_batched`` with ``batch_size = refresh_every``, and
``refresh_every = 1`` recovers the fully-sequential greedy protocol.

:class:`DChoicePlacer` is the paper's capacity-aware Algorithm 1 lifted
onto a ring snapshot: each key hashes to ``d`` independent ring points
(Byers et al.'s d-point scheme), their anti-clockwise owners are the
candidate peers, and the winner minimises ``(load + 1) / capacity`` over
the *stale* counts using the same exact integer cross-multiplication,
first-occurrence tie dedup, max-capacity tie filter, and position-aligned
uniform tie pick as the core kernels — so a replay against a static ring
with ``refresh_every = 1`` is bit-comparable to the theory path.
Capacities are the ring arcs quantised through
:meth:`~repro.p2p.ring.ConsistentHashRing.as_bin_array`.
"""

from __future__ import annotations

import numpy as np

from ..p2p.hashing import point_sequence
from ..p2p.ring import ConsistentHashRing

__all__ = ["StaleLoadView", "DChoicePlacer"]


class StaleLoadView:
    """A frozen snapshot of per-peer loads, refreshed every T requests.

    Parameters
    ----------
    source:
        Zero-argument callable returning the *live* ``{peer_id: load}``
        mapping.  The view copies it on refresh; decisions in between see
        the copy.
    refresh_every:
        Number of placements served by one snapshot (the staleness bound
        ``T``).  Must be ``>= 1``.
    """

    def __init__(self, source, refresh_every: int = 1):
        if refresh_every < 1:
            raise ValueError(f"refresh_every must be >= 1, got {refresh_every}")
        self._source = source
        self.refresh_every = refresh_every
        self._snapshot: dict[str, int] = dict(source())
        self.age = 0
        self.refreshes = 0

    def load_of(self, peer_id: str) -> int:
        """Snapshot load of *peer_id* (0 for peers unseen at snapshot time,
        e.g. freshly joined ones — the natural optimistic prior)."""
        return self._snapshot.get(peer_id, 0)

    def tick(self) -> None:
        """Account one served placement; refresh when the bound is hit."""
        self.age += 1
        if self.age >= self.refresh_every:
            self.refresh()

    def refresh(self) -> None:
        """Re-snapshot the live loads immediately (also used on churn)."""
        self._snapshot = dict(self._source())
        self.age = 0
        self.refreshes += 1


class DChoicePlacer:
    """Capacity-aware d-choice placement over one ring snapshot.

    The placer is immutable per ring; the service rebuilds it whenever
    churn changes the membership.  Peer identity is by ``peer_id`` string,
    so load counters survive ring rebuilds (ring indices do not).
    """

    def __init__(self, ring: ConsistentHashRing, d: int = 2, resolution: int = 1000):
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        self.ring = ring
        self.d = d
        self.resolution = max(resolution, ring.n_peers)
        caps = ring.as_bin_array(self.resolution).capacities
        self._caps = {
            ring.peers[i].peer_id: int(caps[i]) for i in range(ring.n_peers)
        }

    def capacity_of(self, peer_id: str) -> int:
        """Quantised arc capacity of *peer_id* in this snapshot."""
        return self._caps[peer_id]

    def candidates(self, key) -> list[str]:
        """The ``d`` candidate peer ids of *key* (duplicates possible)."""
        points = np.asarray(point_sequence(key, self.d))
        owners = self.ring.lookup_batch(points)
        return [self.ring.peers[int(i)].peer_id for i in owners]

    def place(self, key, view: StaleLoadView, tie_u: float) -> str:
        """Pick the winning peer for *key* against the stale *view*.

        ``tie_u`` is one uniform draw from the caller's tie stream; it is
        consumed positionally whether or not a tie occurs, mirroring the
        core kernels so the decision stream is reproducible independent of
        how often ties happen.
        """
        cands = self.candidates(key)
        best = [cands[0]]
        best_num = view.load_of(cands[0]) + 1
        best_den = self._caps[cands[0]]
        for pid in cands[1:]:
            num = view.load_of(pid) + 1
            den = self._caps[pid]
            lhs = num * best_den
            rhs = best_num * den
            if lhs < rhs:
                best = [pid]
                best_num = num
                best_den = den
            elif lhs == rhs and pid not in best:
                best.append(pid)
        if len(best) > 1:
            cmax = max(self._caps[p] for p in best)
            best = [p for p in best if self._caps[p] == cmax]
        return best[0] if len(best) == 1 else best[int(tie_u * len(best))]
