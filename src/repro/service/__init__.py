"""Live allocation service: open-loop traces, stale views, asyncio front end."""

from .metrics import LatencyRecorder, service_stats
from .server import AllocationService, ReplayReport, run_server
from .traces import (
    ChurnAction,
    Trace,
    TraceSpec,
    generate_churn_schedule,
    generate_trace,
)
from .views import DChoicePlacer, StaleLoadView

__all__ = [
    "TraceSpec",
    "Trace",
    "generate_trace",
    "ChurnAction",
    "generate_churn_schedule",
    "StaleLoadView",
    "DChoicePlacer",
    "LatencyRecorder",
    "service_stats",
    "AllocationService",
    "ReplayReport",
    "run_server",
]
