"""Live allocation service: open-loop traces, stale views, asyncio front end,
crash-safe write-ahead logging, retrying client, and fault injection."""

from .client import ClientError, RetryingClient
from .faults import FaultController, FaultDecision, FaultPlan
from .metrics import LatencyRecorder, service_stats
from .server import (
    AllocationService,
    ReplayReport,
    ServiceError,
    StaleSequenceError,
    run_server,
)
from .traces import (
    ChurnAction,
    Trace,
    TraceSpec,
    generate_churn_schedule,
    generate_trace,
)
from .views import DChoicePlacer, StaleLoadView
from .wal import WalError, WalScan, WriteAheadLog

__all__ = [
    "TraceSpec",
    "Trace",
    "generate_trace",
    "ChurnAction",
    "generate_churn_schedule",
    "StaleLoadView",
    "DChoicePlacer",
    "LatencyRecorder",
    "service_stats",
    "AllocationService",
    "ReplayReport",
    "ServiceError",
    "StaleSequenceError",
    "run_server",
    "WriteAheadLog",
    "WalScan",
    "WalError",
    "RetryingClient",
    "ClientError",
    "FaultPlan",
    "FaultDecision",
    "FaultController",
]
