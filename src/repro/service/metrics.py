"""Service-side observability: latency percentiles and load stats.

The stats surface is a plain dict (JSON-ready) in the `/metrics` spirit:
request counters, placement-latency percentiles, the balls-into-bins load
summary (max load, mean load, max/mean — the quantity the paper bounds),
a per-peer load histogram, staleness telemetry, and churn counters.

Latencies are wall-clock and therefore *excluded* from the determinism
contract (the placement digest covers decisions only); under the virtual
clock of deterministic replay they are recorded as zeros.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LatencyRecorder", "service_stats"]


class LatencyRecorder:
    """Bounded reservoir of latency samples with exact small-n percentiles.

    Keeps the first ``capacity`` samples and then overwrites in a
    deterministic ring — cheap, dependency-free, and good enough for p50
    and p99 over a service run (the tail of a stationary latency process
    is represented as long as the reservoir spans many refresh periods).
    """

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._buf = np.zeros(capacity, dtype=np.float64)
        self._capacity = capacity
        self._count = 0

    def record(self, seconds: float) -> None:
        """Add one latency sample (seconds)."""
        self._buf[self._count % self._capacity] = seconds
        self._count += 1

    @property
    def count(self) -> int:
        """Total samples recorded (may exceed the reservoir capacity)."""
        return self._count

    def percentile(self, q: float) -> float | None:
        """The *q*-th percentile over retained samples.

        ``None`` when no samples have been recorded — an idle server has
        no latency distribution, and reporting a fake ``0.0`` would make
        an idle endpoint look like an infinitely fast one on a dashboard
        (the stats surface serialises it as JSON ``null``).
        """
        n = min(self._count, self._capacity)
        if n == 0:
            return None
        return float(np.percentile(self._buf[:n], q))


def service_stats(
    *,
    requests: int,
    loads: dict[str, int],
    latency: LatencyRecorder,
    staleness_age: int,
    refresh_every: int,
    view_refreshes: int,
    joins: int,
    leaves: int,
    skips: int,
    d: int,
    placement_digest: str,
    errors: dict[str, int] | None = None,
    dedup_hits: int = 0,
    wal: dict | None = None,
) -> dict:
    """Assemble the `/metrics`-style stats dict from live service state."""
    values = np.asarray(list(loads.values()), dtype=np.float64)
    if values.size and values.sum() > 0:
        max_load = float(values.max())
        mean_load = float(values.mean())
        imbalance = max_load / mean_load
    else:
        max_load = 0.0
        mean_load = 0.0
        imbalance = 0.0
    p50 = latency.percentile(50.0)
    p99 = latency.percentile(99.0)
    return {
        "requests": requests,
        "peers": len(loads),
        "d": d,
        "latency": {
            "samples": latency.count,
            "p50_ms": None if p50 is None else p50 * 1e3,
            "p99_ms": None if p99 is None else p99 * 1e3,
        },
        "load": {
            "max": max_load,
            "mean": mean_load,
            "max_over_mean": imbalance,
            "per_peer": {pid: int(c) for pid, c in sorted(loads.items())},
        },
        "staleness": {
            "age": staleness_age,
            "refresh_every": refresh_every,
            "refreshes": view_refreshes,
        },
        "churn": {"joins": joins, "leaves": leaves, "skips": skips},
        "errors": dict(errors) if errors else
            {"oversized": 0, "bad_json": 0, "handler": 0, "stale_seq": 0},
        "dedup_hits": int(dedup_hits),
        "wal": wal,
        "placement_digest": placement_digest,
    }
