"""Open-loop traffic traces for the allocation service.

A trace is the *offered load*: arrival times, object keys, and user ids
generated ahead of time and replayed against the service at a configurable
rate, independent of how fast the service answers (open-loop arrivals — the
service never back-pressures the trace).  Three realism knobs:

* **heavy-tailed object popularity** — object keys are drawn Zipf(``s``)
  over a large object universe, with ranks shuffled so popularity is
  independent of id order (hot objects repeatedly probe the same ``d``
  ring points, which is exactly what stresses a placement protocol);
* **diurnal rate modulation** — arrivals follow a non-homogeneous Poisson
  process with instantaneous rate ``rate * (1 + amplitude *
  sin(2πt/period))``, sampled exactly by thinning;
* **large user populations** — every request carries a user id drawn
  uniformly from a universe of ``users`` simulated users (millions by
  default), so per-user bookkeeping downstream sees realistic cardinality.

Everything is a pure function of the spec (seed included): the same
:class:`TraceSpec` always yields the bit-identical trace, pinned by
:meth:`Trace.digest`.  Churn schedules are generated the same way —
timestamped join/leave actions the service resolves during replay.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..sampling.alias import AliasSampler
from ..sampling.rngutils import make_rng, spawn_seed_sequences

__all__ = [
    "TraceSpec",
    "Trace",
    "generate_trace",
    "ChurnAction",
    "generate_churn_schedule",
]


@dataclass(frozen=True)
class TraceSpec:
    """Declarative description of one open-loop trace.

    ``rate`` is the mean arrival rate in requests per second of simulated
    time; ``diurnal_amplitude`` in ``[0, 1)`` modulates it sinusoidally
    with period ``diurnal_period`` seconds.  ``zipf_s`` is the popularity
    exponent over the ``objects`` universe (``None`` = uniform).
    """

    requests: int
    users: int = 1_000_000
    objects: int = 100_000
    zipf_s: float | None = 1.1
    rate: float = 10_000.0
    diurnal_amplitude: float = 0.5
    diurnal_period: float = 86_400.0
    seed: int = 0

    def __post_init__(self):
        if self.requests < 0:
            raise ValueError(f"requests must be non-negative, got {self.requests}")
        if self.users < 1:
            raise ValueError(f"users must be positive, got {self.users}")
        if self.objects < 1:
            raise ValueError(f"objects must be positive, got {self.objects}")
        if self.zipf_s is not None and self.zipf_s <= 0:
            raise ValueError(f"zipf_s must be positive, got {self.zipf_s}")
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError(
                f"diurnal_amplitude must be in [0, 1), got {self.diurnal_amplitude}"
            )
        if self.diurnal_period <= 0:
            raise ValueError(
                f"diurnal_period must be positive, got {self.diurnal_period}"
            )


@dataclass(frozen=True)
class Trace:
    """A generated trace: parallel arrays, one row per request."""

    spec: TraceSpec
    times: np.ndarray    # float64, non-decreasing arrival seconds
    objects: np.ndarray  # int64 object ids in [0, spec.objects)
    users: np.ndarray    # int64 user ids in [0, spec.users)

    @property
    def count(self) -> int:
        """Number of requests."""
        return int(self.times.size)

    @property
    def duration(self) -> float:
        """Simulated seconds spanned by the arrivals (0 when empty)."""
        return float(self.times[-1]) if self.times.size else 0.0

    def keys(self):
        """Request keys in arrival order (object-id addressed)."""
        return (f"obj-{int(o)}" for o in self.objects)

    def digest(self) -> str:
        """sha256 over the trace arrays — the determinism pin."""
        h = hashlib.sha256()
        for arr in (self.times, self.objects, self.users):
            h.update(np.ascontiguousarray(arr).tobytes())
        return h.hexdigest()


def _zipf_weights(count: int, s: float | None, rng) -> np.ndarray:
    """Zipf(``s``) weights with ranks shuffled (uniform when ``s`` is None)."""
    if s is None:
        return np.full(count, 1.0 / count)
    weights = np.arange(1, count + 1, dtype=np.float64) ** -s
    rng.shuffle(weights)
    return weights / weights.sum()


def _thinned_arrivals(spec: TraceSpec, rng) -> np.ndarray:
    """Exact non-homogeneous Poisson arrival times by thinning.

    Candidate arrivals come from a homogeneous process at the peak rate
    ``rate * (1 + amplitude)``; a candidate at time ``t`` survives with
    probability ``λ(t)/λ_max``.  Candidates are drawn in fixed-size chunks
    so the accepted stream is a pure function of the seed regardless of
    how many chunks the target count needs.
    """
    if spec.requests == 0:
        return np.empty(0, dtype=np.float64)
    lam_max = spec.rate * (1.0 + spec.diurnal_amplitude)
    omega = 2.0 * np.pi / spec.diurnal_period
    out: list[np.ndarray] = []
    accepted = 0
    t_last = 0.0
    # Chunk sized for ~2 rounds in the common case; thinning accepts at
    # mean rate 1/(1+amplitude), so oversample accordingly.
    chunk = max(1024, int(spec.requests * (1.0 + spec.diurnal_amplitude) * 0.75))
    while accepted < spec.requests:
        gaps = rng.exponential(1.0 / lam_max, size=chunk)
        times = t_last + np.cumsum(gaps)
        u = rng.random(chunk)
        lam = spec.rate * (1.0 + spec.diurnal_amplitude * np.sin(omega * times))
        keep = times[u * lam_max < lam]
        out.append(keep)
        accepted += keep.size
        t_last = float(times[-1])
    return np.concatenate(out)[: spec.requests]


def generate_trace(spec: TraceSpec) -> Trace:
    """Generate the trace for *spec* (bit-identical per spec)."""
    arrival_seed, object_seed, user_seed = spawn_seed_sequences(spec.seed, 3)
    times = _thinned_arrivals(spec, make_rng(arrival_seed))

    object_rng = make_rng(object_seed)
    weights = _zipf_weights(spec.objects, spec.zipf_s, object_rng)
    if spec.requests:
        objects = AliasSampler(weights).sample(spec.requests, object_rng)
    else:
        objects = np.empty(0, dtype=np.int64)

    users = make_rng(user_seed).integers(0, spec.users, size=spec.requests)
    return Trace(spec=spec, times=times, objects=objects,
                 users=users.astype(np.int64))


@dataclass(frozen=True)
class ChurnAction:
    """One scheduled membership change.

    ``peer_id`` may be ``None`` for a leave, in which case the service
    resolves the victim deterministically from its churn stream at apply
    time (the peer set at that moment is not known when the schedule is
    generated).  A leave resolved at the replication floor is recorded as
    a skip, mirroring :func:`repro.p2p.churn.run_churn`.
    """

    time: float
    kind: str  # "join" or "leave"
    peer_id: str | None = None

    def __post_init__(self):
        if self.kind not in ("join", "leave"):
            raise ValueError(f"kind must be 'join' or 'leave', got {self.kind!r}")
        if self.time < 0:
            raise ValueError(f"time must be non-negative, got {self.time}")


def generate_churn_schedule(
    events: int,
    duration: float,
    *,
    join_probability: float = 0.5,
    seed=None,
) -> tuple[ChurnAction, ...]:
    """Random timestamped churn actions over ``[0, duration]``, sorted."""
    if events < 0:
        raise ValueError(f"events must be non-negative, got {events}")
    if duration < 0:
        raise ValueError(f"duration must be non-negative, got {duration}")
    if not 0.0 <= join_probability <= 1.0:
        raise ValueError(
            f"join_probability must be in [0, 1], got {join_probability}"
        )
    rng = make_rng(seed)
    times = np.sort(rng.random(events) * duration)
    kinds = rng.random(events) < join_probability
    return tuple(
        ChurnAction(time=float(t), kind="join" if j else "leave")
        for t, j in zip(times, kinds)
    )
