"""Deterministic fault injection for the allocation service.

A :class:`FaultPlan` is a *seeded, declarative* schedule of failures keyed
on the server's wire-request arrival counter (every decoded request frame,
across all connections, in arrival order).  The server asks its
:class:`FaultController` for a :class:`FaultDecision` per request and acts
on it — drop the connection before or after applying the request, delay
the reply, SIGKILL itself, or apply a churn storm first.  Because the plan
is data (JSON-serialisable) and the injection point is a deterministic
counter, every failure mode is a reproducible test, not a flake: the same
plan against the same client transcript yields the same faulted
transcript, byte for byte.

Fault kinds:

``drop_before``
    Close the connection after decoding the request but *before* applying
    it.  The client sees a dead connection and retries; nothing was
    placed, so the retry is the first application.
``drop_after``
    Apply the request (placement logged to the WAL, state mutated), then
    close the connection without replying — the lost-reply case.  The
    client's retry carries the same sequence id and is answered from the
    server's dedup table, so nothing is double-placed.
``delays``
    Sleep before handling, to exercise client timeouts.
``kill_at``
    Flush the WAL and ``SIGKILL`` the *server process* when the counter
    reaches this value (the request itself is never applied).  Only
    meaningful for subprocess servers — in-process test servers would kill
    the test runner.
``storms``
    Apply a burst of alternating join/leave churn events before handling
    the request.  Storm churn goes through the normal churn path, so it is
    WAL-logged and survives recovery like any other membership change.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..sampling.rngutils import make_rng

__all__ = ["FaultPlan", "FaultDecision", "FaultController"]


def _index_tuple(values, what: str) -> tuple[int, ...]:
    out = []
    for v in values:
        i = int(v)
        if i < 0:
            raise ValueError(f"{what} index must be >= 0, got {v!r}")
        out.append(i)
    return tuple(sorted(set(out)))


def _pair_tuple(values, what: str) -> tuple[tuple[int, float], ...]:
    out = {}
    for pair in values:
        i, x = pair
        i = int(i)
        x = float(x)
        if i < 0 or x < 0:
            raise ValueError(f"{what} entry must be non-negative, got {pair!r}")
        out[i] = x
    return tuple(sorted(out.items()))


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible failure schedule, keyed on wire-request indices."""

    drop_before: tuple[int, ...] = ()
    drop_after: tuple[int, ...] = ()
    delays: tuple[tuple[int, float], ...] = ()   #: (index, seconds)
    kill_at: int | None = None
    storms: tuple[tuple[int, int], ...] = ()     #: (index, churn events)

    def __post_init__(self):
        object.__setattr__(
            self, "drop_before", _index_tuple(self.drop_before, "drop_before"))
        object.__setattr__(
            self, "drop_after", _index_tuple(self.drop_after, "drop_after"))
        object.__setattr__(self, "delays", _pair_tuple(self.delays, "delays"))
        object.__setattr__(
            self, "storms",
            tuple((i, int(n)) for i, n in _pair_tuple(self.storms, "storms")))
        if self.kill_at is not None:
            kill = int(self.kill_at)
            if kill < 0:
                raise ValueError(f"kill_at must be >= 0, got {self.kill_at!r}")
            object.__setattr__(self, "kill_at", kill)

    # -- serialisation ---------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({
            "drop_before": list(self.drop_before),
            "drop_after": list(self.drop_after),
            "delays": [list(p) for p in self.delays],
            "kill_at": self.kill_at,
            "storms": [list(p) for p in self.storms],
        }, sort_keys=True)

    @classmethod
    def from_json(cls, data) -> "FaultPlan":
        if isinstance(data, (str, bytes)):
            data = json.loads(data)
        if not isinstance(data, dict):
            raise ValueError(f"fault plan must be a JSON object, got {type(data).__name__}")
        known = {"drop_before", "drop_after", "delays", "kill_at", "storms"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown fault plan field(s): {', '.join(unknown)}")
        return cls(
            drop_before=data.get("drop_before", ()),
            drop_after=data.get("drop_after", ()),
            delays=data.get("delays", ()),
            kill_at=data.get("kill_at"),
            storms=data.get("storms", ()),
        )

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """CLI form: inline JSON (``{...}``) or a path to a JSON file."""
        text = text.strip()
        if not text.startswith("{"):
            try:
                text = Path(text).read_text(encoding="utf-8")
            except OSError as exc:
                raise ValueError(f"cannot read fault plan file: {exc}") from exc
        try:
            return cls.from_json(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}") from exc

    # -- generation ------------------------------------------------------

    @classmethod
    def generate(cls, *, seed, requests: int,
                 drop_before_rate: float = 0.0,
                 drop_after_rate: float = 0.0,
                 delay_rate: float = 0.0,
                 delay_seconds: float = 0.02,
                 storm_count: int = 0,
                 storm_size: int = 4,
                 kill_at: int | None = None) -> "FaultPlan":
        """Draw a plan from a seed — same seed and arguments, same plan."""
        rng = make_rng(seed)
        u = rng.random((3, requests))
        storms = ()
        if storm_count:
            positions = np.unique(rng.integers(0, requests, size=storm_count))
            storms = tuple((int(i), int(storm_size)) for i in positions)
        return cls(
            drop_before=tuple(int(i) for i in np.flatnonzero(u[0] < drop_before_rate)),
            drop_after=tuple(int(i) for i in np.flatnonzero(u[1] < drop_after_rate)),
            delays=tuple((int(i), float(delay_seconds))
                         for i in np.flatnonzero(u[2] < delay_rate)),
            kill_at=kill_at,
            storms=storms,
        )


@dataclass(frozen=True)
class FaultDecision:
    """What to do to the request at wire index ``index``."""

    index: int
    drop_before: bool = False
    drop_after: bool = False
    delay: float = 0.0
    kill: bool = False
    storm: int = 0

    @property
    def any(self) -> bool:
        return (self.drop_before or self.drop_after or self.kill
                or self.delay > 0.0 or self.storm > 0)


class FaultController:
    """Stateful side of a plan: one shared wire-request counter.

    The counter spans connections — request index ``i`` is the ``i``-th
    request frame the server decoded since the controller was created,
    whichever connection carried it.  ``counts`` tallies triggered faults
    for assertions and smoke-report lines.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._drop_before = frozenset(plan.drop_before)
        self._drop_after = frozenset(plan.drop_after)
        self._delays = dict(plan.delays)
        self._storms = dict(plan.storms)
        self.requests_seen = 0
        self.counts = {
            "drop_before": 0, "drop_after": 0, "delay": 0, "kill": 0, "storm": 0,
        }

    def next_decision(self) -> FaultDecision:
        i = self.requests_seen
        self.requests_seen += 1
        decision = FaultDecision(
            index=i,
            drop_before=i in self._drop_before,
            drop_after=i in self._drop_after,
            delay=self._delays.get(i, 0.0),
            kill=self.plan.kill_at == i,
            storm=self._storms.get(i, 0),
        )
        if decision.drop_before:
            self.counts["drop_before"] += 1
        if decision.drop_after:
            self.counts["drop_after"] += 1
        if decision.delay > 0.0:
            self.counts["delay"] += 1
        if decision.kill:
            self.counts["kill"] += 1
        if decision.storm:
            self.counts["storm"] += 1
        return decision
