"""The paper's load-balancing protocol (Algorithm 1) — reference form.

For every ball:

1. independently choose a multiset ``B`` of ``d`` bins at random,
2. determine ``B_opt``, the bins of ``B`` with the lowest load *after* a
   hypothetical allocation of the ball (i.e. minimising ``(m_i + 1) / c_i``),
3. drop from ``B_opt`` every bin whose capacity is below the maximum
   capacity present in ``B_opt``,
4. allocate the ball to a bin chosen uniformly at random from what remains.

This module contains the *readable* single-ball implementation used by tests
and by anything that needs to instrument individual decisions.  Production
runs go through :mod:`repro.core.fast`, which realises the identical rule in
a tight loop; the test suite cross-validates the two against each other.

Loads are compared exactly with integer cross-multiplication —
``(m_a + 1) / c_a < (m_b + 1) / c_b`` iff
``(m_a + 1) * c_b < (m_b + 1) * c_a`` — so no floating-point tie ambiguity
can leak into allocation decisions.

Tie-breaking variants
---------------------
The paper's step 3 prefers the *largest* capacity among the least-loaded
candidates ("it is beneficial to move the load into the direction of these
bigger bins").  For ablation studies two alternatives are provided:

* ``"uniform"`` — skip step 3 and pick uniformly among all of ``B_opt``;
* ``"min_capacity"`` — the deliberately bad inverse rule.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..sampling.rngutils import make_rng

__all__ = ["TIE_BREAKS", "select_bin", "allocate_ball"]

#: Recognised tie-break policy names.
TIE_BREAKS = ("max_capacity", "uniform", "min_capacity")


def _validate_tie_break(tie_break: str) -> None:
    if tie_break not in TIE_BREAKS:
        raise ValueError(
            f"unknown tie_break {tie_break!r}; expected one of {TIE_BREAKS}"
        )


def select_bin(
    counts: Sequence[int],
    capacities: Sequence[int],
    candidates: Sequence[int],
    rng=None,
    *,
    tie_break: str = "max_capacity",
    tie_uniform: float | None = None,
) -> int:
    """Apply steps 2–4 of Algorithm 1 to *candidates* and return the chosen bin.

    ``counts`` are current ball counts; the function does not mutate them.
    ``candidates`` is the multiset ``B`` of step 1 (duplicates allowed — a
    ball may draw the same bin more than once).

    When *tie_uniform* (a float in ``[0, 1)``) is given, a surviving k-way tie
    resolves deterministically to the ``int(tie_uniform * k)``-th tied bin in
    first-encounter order instead of drawing from *rng*.  This is the shared
    randomness convention of :func:`repro.core.fast.run_batch` and
    :func:`repro.core.ensemble.run_batch_ensemble`, letting all three engines
    be compared bit-for-bit under one pre-drawn uniform stream.
    """
    _validate_tie_break(tie_break)
    if len(candidates) == 0:
        raise ValueError("candidates must be non-empty")

    # Step 2: B_opt = argmin over B of (m_i + 1) / c_i, compared exactly.
    best: list[int] = []
    best_num = best_den = None  # load-after of the current minimum, as num/den
    for b in candidates:
        num = counts[b] + 1
        den = capacities[b]
        if best_num is None:
            best, best_num, best_den = [b], num, den
            continue
        lhs = num * best_den
        rhs = best_num * den
        if lhs < rhs:
            best, best_num, best_den = [b], num, den
        elif lhs == rhs and b not in best:
            best.append(b)

    # Steps 3-4: capacity filter, then uniform choice.
    if tie_break == "max_capacity":
        cmax = max(capacities[b] for b in best)
        best = [b for b in best if capacities[b] == cmax]
    elif tie_break == "min_capacity":
        cmin = min(capacities[b] for b in best)
        best = [b for b in best if capacities[b] == cmin]
    if len(best) == 1:
        return best[0]
    if tie_uniform is not None:
        return best[int(tie_uniform * len(best))]
    gen = make_rng(rng)
    return best[int(gen.integers(0, len(best)))]


def allocate_ball(
    counts,
    capacities: Sequence[int],
    candidates: Sequence[int],
    rng=None,
    *,
    tie_break: str = "max_capacity",
    tie_uniform: float | None = None,
) -> int:
    """Run steps 2–4 and *commit* the ball: increments ``counts`` in place.

    Returns the index of the receiving bin.  ``counts`` must be a mutable
    sequence (list or ``ndarray``).
    """
    chosen = select_bin(
        counts, capacities, candidates, rng, tie_break=tie_break, tie_uniform=tie_uniform
    )
    counts[chosen] += 1
    return chosen


def reference_run(
    capacities: Sequence[int],
    choices: np.ndarray,
    rng=None,
    *,
    tie_break: str = "max_capacity",
    tie_uniforms: Sequence[float] | None = None,
    heights: list | None = None,
) -> np.ndarray:
    """Allocate every row of *choices* in order; return the final counts.

    This is the slow, obviously correct driver used to validate the fast
    engines: ``choices`` has shape ``(m, d)`` and row ``j`` is ball ``j``'s
    candidate multiset.

    With *tie_uniforms* (one float per ball, position-aligned like
    :func:`repro.core.fast.run_batch`'s) tie resolution is deterministic in
    the uniform stream, making the output directly comparable — bit for bit —
    with the fast scalar loop and the lockstep ensemble engine.  *heights*,
    when given, collects every ball's post-allocation load in arrival order.
    """
    gen = make_rng(rng) if tie_uniforms is None else None
    if tie_uniforms is not None and len(tie_uniforms) < len(choices):
        raise ValueError(
            f"need at least {len(choices)} tie uniforms, got {len(tie_uniforms)}"
        )
    counts = [0] * len(capacities)
    for j, row in enumerate(choices):
        chosen = allocate_ball(
            counts,
            capacities,
            [int(b) for b in row],
            gen,
            tie_break=tie_break,
            tie_uniform=None if tie_uniforms is None else float(tie_uniforms[j]),
        )
        if heights is not None:
            heights.append(counts[chosen] / capacities[chosen])
    return np.asarray(counts, dtype=np.int64)
