"""Core: the paper's greedy d-choice protocol and its analysis machinery."""

from .baselines import (
    greedy_uniform_probabilities,
    least_loaded_of_all,
    one_choice,
    standard_greedy,
)
from .compiled import (
    BACKEND_MODES,
    HAVE_NUMBA,
    THREADS_ENV_VAR,
    forced_backend,
    forced_threads,
    get_backend,
    get_threads,
    resolve_threads,
    run_batch_compiled,
    set_backend,
    set_threads,
    use_compiled,
    worker_thread_budget,
)
from .dynamics import DynamicsResult, simulate_insert_delete
from .ensemble import (
    EnsembleResult,
    EnsembleSnapshot,
    run_batch_ensemble,
    simulate_ensemble,
)
from .heights import HeightSummary, split_heights_by_big_contact, summarize_heights
from .loadvectors import (
    loads_from_counts,
    normalized_load_vector,
    normalized_slot_load_vector,
    slot_load_vector,
    slot_owners_by_position,
)
from .majorization import (
    CoupledRunResult,
    coupled_domination_run,
    empirical_max_load_domination,
    majorizes,
)
from .migration import (
    MigrationPlan,
    expected_displaced_from_scratch,
    migration_cost_from_scratch,
    rebalance_waterfill,
)
from .protocol import TIE_BREAKS, allocate_ball, select_bin
from .rounds import simulate_batched, simulate_batched_ensemble
from .simulation import SimulationResult, Snapshot, simulate
from .wavefront import (
    WAVEFRONT_MODES,
    WavefrontStats,
    WavefrontWorkspace,
    run_batch_wavefront,
    use_wavefront,
)
from .weighted import (
    WeightedEnsembleResult,
    WeightedResult,
    simulate_weighted,
    simulate_weighted_ensemble,
)

__all__ = [
    "simulate",
    "SimulationResult",
    "Snapshot",
    "simulate_ensemble",
    "run_batch_ensemble",
    "EnsembleResult",
    "EnsembleSnapshot",
    "run_batch_wavefront",
    "use_wavefront",
    "WavefrontStats",
    "WavefrontWorkspace",
    "WAVEFRONT_MODES",
    "run_batch_compiled",
    "use_compiled",
    "get_backend",
    "set_backend",
    "forced_backend",
    "BACKEND_MODES",
    "HAVE_NUMBA",
    "get_threads",
    "set_threads",
    "forced_threads",
    "resolve_threads",
    "worker_thread_budget",
    "THREADS_ENV_VAR",
    "select_bin",
    "allocate_ball",
    "TIE_BREAKS",
    "one_choice",
    "greedy_uniform_probabilities",
    "standard_greedy",
    "least_loaded_of_all",
    "loads_from_counts",
    "normalized_load_vector",
    "slot_load_vector",
    "normalized_slot_load_vector",
    "slot_owners_by_position",
    "majorizes",
    "coupled_domination_run",
    "CoupledRunResult",
    "empirical_max_load_domination",
    "HeightSummary",
    "summarize_heights",
    "split_heights_by_big_contact",
    "simulate_weighted",
    "WeightedResult",
    "simulate_weighted_ensemble",
    "WeightedEnsembleResult",
    "simulate_batched",
    "simulate_batched_ensemble",
    "DynamicsResult",
    "simulate_insert_delete",
    "MigrationPlan",
    "rebalance_waterfill",
    "migration_cost_from_scratch",
    "expected_displaced_from_scratch",
]
