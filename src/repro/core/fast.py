"""Optimised sequential allocation loops.

The greedy protocol is inherently sequential — ball ``j``'s decision depends
on the loads left behind by balls ``1..j-1`` — so the per-ball decision
cannot be vectorised away.  What *can* be hoisted out of the loop is all
randomness: the candidate choices for a whole batch of balls are drawn up
front through the vectorised samplers, and tie-breaks consume a pre-drawn
vector of uniforms.  The remaining loop body is pure integer arithmetic on
native Python lists (which beat NumPy scalar indexing by a wide margin for
this access pattern), with a dedicated ``d = 2`` fast path since that is the
paper's default everywhere.

Loads are compared exactly by integer cross-multiplication:
``(m_a + 1)/c_a < (m_b + 1)/c_b  iff  (m_a + 1)*c_b < (m_b + 1)*c_a``.

All functions mutate ``counts`` in place and are semantically identical to
:func:`repro.core.protocol.reference_run`; the test suite verifies this
equivalence on randomised inputs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["run_batch"]


def _run_batch_d2(counts, caps, choice_a, choice_b, tie_u, heights, mode):
    """d=2 inner loop.  ``mode``: 0=max_capacity, 1=uniform, 2=min_capacity."""
    record = heights is not None
    append = heights.append if record else None
    for j in range(len(choice_a)):
        a = choice_a[j]
        b = choice_b[j]
        if a == b:
            chosen = a
        else:
            ca = caps[a]
            cb = caps[b]
            la = (counts[a] + 1) * cb
            lb = (counts[b] + 1) * ca
            if la < lb:
                chosen = a
            elif lb < la:
                chosen = b
            elif mode == 0:  # prefer larger capacity
                if ca > cb:
                    chosen = a
                elif cb > ca:
                    chosen = b
                else:
                    chosen = a if tie_u[j] < 0.5 else b
            elif mode == 2:  # prefer smaller capacity (ablation)
                if ca < cb:
                    chosen = a
                elif cb < ca:
                    chosen = b
                else:
                    chosen = a if tie_u[j] < 0.5 else b
            else:  # uniform among the tied pair
                chosen = a if tie_u[j] < 0.5 else b
        counts[chosen] += 1
        if record:
            append(counts[chosen] / caps[chosen])
    return counts


def _run_batch_general(counts, caps, rows, tie_u, heights, mode):
    """General-d inner loop over candidate rows (lists of bin indices)."""
    record = heights is not None
    append = heights.append if record else None
    for j, row in enumerate(rows):
        first = row[0]
        best = [first]
        best_num = counts[first] + 1
        best_den = caps[first]
        for b in row[1:]:
            num = counts[b] + 1
            den = caps[b]
            lhs = num * best_den
            rhs = best_num * den
            if lhs < rhs:
                best = [b]
                best_num = num
                best_den = den
            elif lhs == rhs and b not in best:
                best.append(b)
        if len(best) > 1:
            if mode == 0:
                cmax = max(caps[b] for b in best)
                best = [b for b in best if caps[b] == cmax]
            elif mode == 2:
                cmin = min(caps[b] for b in best)
                best = [b for b in best if caps[b] == cmin]
        k = len(best)
        chosen = best[0] if k == 1 else best[int(tie_u[j] * k)]
        counts[chosen] += 1
        if record:
            append(counts[chosen] / caps[chosen])
    return counts


_MODES = {"max_capacity": 0, "uniform": 1, "min_capacity": 2}


def run_batch(
    counts: list,
    capacities: list,
    choices: np.ndarray,
    tie_uniforms: np.ndarray,
    *,
    tie_break: str = "max_capacity",
    heights: list | None = None,
) -> list:
    """Allocate one batch of balls, mutating and returning *counts*.

    Parameters
    ----------
    counts:
        Current per-bin ball counts as a Python ``list`` of ints (mutated).
    capacities:
        Per-bin capacities as a Python ``list`` of ints.
    choices:
        ``(k, d)`` integer array; row ``j`` is ball ``j``'s candidate multiset.
    tie_uniforms:
        ``k`` uniforms in ``[0, 1)`` consumed only when a tie must be broken
        randomly, so the loop itself never calls into the RNG.
    tie_break:
        One of ``"max_capacity"`` (the paper's rule), ``"uniform"``,
        ``"min_capacity"``.
    heights:
        Optional list; when given, the height (post-allocation load of the
        receiving bin) of every ball is appended in arrival order.
    """
    try:
        mode = _MODES[tie_break]
    except KeyError:
        raise ValueError(
            f"unknown tie_break {tie_break!r}; expected one of {tuple(_MODES)}"
        ) from None
    if choices.ndim != 2:
        raise ValueError(f"choices must have shape (k, d), got {choices.shape}")
    k, d = choices.shape
    if d < 1:
        raise ValueError("choices must have at least one column")
    if len(tie_uniforms) < k:
        raise ValueError(
            f"need at least {k} tie uniforms, got {len(tie_uniforms)}"
        )
    if k == 0:
        return counts
    tie_u = tie_uniforms.tolist()
    if d == 2:
        return _run_batch_d2(
            counts, capacities, choices[:, 0].tolist(), choices[:, 1].tolist(), tie_u, heights, mode
        )
    return _run_batch_general(counts, capacities, choices.tolist(), tie_u, heights, mode)
