"""Randomised cross-engine equivalence checking.

Several implementations of the paper's protocol coexist —
:func:`repro.core.protocol.reference_run` (readable),
:func:`repro.core.fast.run_batch` (optimised scalar),
:func:`repro.core.ensemble.run_batch_ensemble` (lockstep ensemble),
:func:`repro.core.wavefront.run_batch_wavefront` (vectorised conflict-free
waves) and :func:`repro.core.compiled.run_batch_compiled` (Numba tier with
interpreter fallback) — under one contract: given the same candidate matrix
and the same position-aligned tie-uniform stream, all of them produce the
same counts, ball for ball.  The protocol variants (stale-view batches,
weighted balls, ring allocation) carry the same contract between their
scalar and lockstep drivers.

This module has two layers:

* randomised *bit-exactness* sweeps over the kernels and spawn-mode drivers
  (:func:`check_kernel_equivalence`, :func:`check_driver_parity`,
  :func:`check_batched_parity`, :func:`check_weighted_parity`,
  :func:`check_ring_parity`);
* a *per-experiment* cross-engine matrix (:data:`EXPERIMENT_CASES`,
  :func:`check_experiment_equivalence`): every registered experiment runs on
  both engines at a pinned tiny configuration and the resulting figures must
  agree within a per-case tolerance.  Blocked-mode ensemble runs are
  statistically identical rather than stream-matched, so the figure-level
  comparison is a bounded-deviation check — deterministic for fixed seeds —
  while the bit-level guarantees live in the sweeps above.

It backs both the pytest suite (``tests/core/test_ensemble.py``) and the
larger-budget smoke script (``scripts/check_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bins.arrays import BinArray
from ..sampling.rngutils import spawn_seed_sequences
from .compiled import forced_backend, forced_threads, run_batch_compiled
from .ensemble import run_batch_ensemble, simulate_ensemble
from .fast import run_batch
from .protocol import TIE_BREAKS, reference_run
from .rounds import simulate_batched, simulate_batched_ensemble
from .simulation import simulate
from .wavefront import forced, run_batch_wavefront
from .weighted import simulate_weighted, simulate_weighted_ensemble

__all__ = [
    "SweepBudget",
    "check_kernel_equivalence",
    "check_wavefront_kernel_equivalence",
    "check_compiled_kernel_equivalence",
    "check_wavefront_driver_identity",
    "check_backend_driver_identity",
    "check_driver_parity",
    "check_batched_parity",
    "check_weighted_parity",
    "check_ring_parity",
    "ExperimentCase",
    "EXPERIMENT_CASES",
    "check_experiment_equivalence",
    "check_experiment_wavefront_identity",
    "check_experiment_backend_identity",
    "check_thread_identity",
    "check_fabric_serial_identity",
]


@dataclass(frozen=True)
class SweepBudget:
    """How many / how large the randomised draws are."""

    draws: int = 50
    max_n: int = 10
    max_m: int = 120
    max_d: int = 5
    max_r: int = 6


def _random_capacities(rng, n: int) -> np.ndarray:
    """One of the paper's capacity profiles, at random."""
    profile = rng.integers(0, 3)
    if profile == 0:  # uniform (Figures 1-5)
        return np.full(n, int(rng.integers(1, 9)), dtype=np.int64)
    if profile == 1:  # two-class (Figures 6-13)
        caps = np.where(np.arange(n) < n // 2, 1, int(rng.integers(2, 11)))
        return caps.astype(np.int64)
    return rng.integers(1, 13, size=n).astype(np.int64)  # random caps (8-9, 16)


def check_kernel_equivalence(master_seed: int, budget: SweepBudget = SweepBudget()) -> int:
    """Three-way bit-exactness sweep over randomised instances.

    For each draw, every replication of the ensemble kernel is compared
    against the fast scalar loop and the tie-stream-matched reference
    implementation — counts and heights both.  Returns the number of draws
    checked; raises ``AssertionError`` on the first mismatch.
    """
    rng = np.random.default_rng(master_seed)
    for trial in range(budget.draws):
        n = int(rng.integers(2, budget.max_n + 1))
        m = int(rng.integers(0, budget.max_m + 1))
        d = int(rng.integers(1, budget.max_d + 1))
        R = int(rng.integers(1, budget.max_r + 1))
        caps = _random_capacities(rng, n)
        tie_break = TIE_BREAKS[trial % len(TIE_BREAKS)]
        choices = rng.integers(0, n, size=(R, m, d))
        tie_u = rng.random((R, m))

        counts = np.zeros((R, n), dtype=np.int64)
        heights = np.empty((R, m), dtype=np.float64)
        run_batch_ensemble(
            counts, caps, choices, tie_u, tie_break=tie_break, heights=heights
        )

        caps_list = caps.tolist()
        label = f"trial={trial} n={n} m={m} d={d} R={R} tie={tie_break}"
        for r in range(R):
            fast_counts = [0] * n
            fast_heights: list[float] = []
            run_batch(
                fast_counts, caps_list, choices[r], tie_u[r],
                tie_break=tie_break, heights=fast_heights,
            )
            ref_heights: list[float] = []
            ref_counts = reference_run(
                caps_list, choices[r], tie_break=tie_break,
                tie_uniforms=tie_u[r], heights=ref_heights,
            )
            assert np.array_equal(counts[r], fast_counts), f"{label} rep={r} vs fast"
            assert np.array_equal(counts[r], ref_counts), f"{label} rep={r} vs reference"
            np.testing.assert_array_equal(
                heights[r], np.asarray(fast_heights),
                err_msg=f"{label} rep={r} heights vs fast",
            )
            np.testing.assert_array_equal(
                heights[r], np.asarray(ref_heights),
                err_msg=f"{label} rep={r} heights vs reference",
            )
    return budget.draws


def check_wavefront_kernel_equivalence(
    master_seed: int, budget: SweepBudget = SweepBudget()
) -> int:
    """Randomised bit-exactness sweep of the wavefront kernel.

    For each draw, :func:`~repro.core.wavefront.run_batch_wavefront` must
    reproduce :func:`~repro.core.ensemble.run_batch_ensemble` exactly —
    counts and heights, every replication — under a rotation of tie-break
    modes, capacity profiles (shared and per-replication), and tile widths
    including the degenerate ``1`` and the whole-batch width, so the tile
    boundaries, the deferred waves, and the tail-tile padding are all
    exercised.  Returns the number of draws checked.
    """
    rng = np.random.default_rng(master_seed)
    for trial in range(budget.draws):
        n = int(rng.integers(2, budget.max_n + 1))
        m = int(rng.integers(0, budget.max_m + 1))
        d = int(rng.integers(1, budget.max_d + 1))
        R = int(rng.integers(1, budget.max_r + 1))
        if trial % 4 == 3:
            caps = rng.integers(1, 9, size=(R, n)).astype(np.int64)
        else:
            caps = _random_capacities(rng, n)
        tie_break = TIE_BREAKS[trial % len(TIE_BREAKS)]
        choices = rng.integers(0, n, size=(R, m, d))
        tie_u = rng.random((R, m))

        base = np.zeros((R, n), dtype=np.int64)
        base_h = np.empty((R, m), dtype=np.float64)
        run_batch_ensemble(
            base, caps, choices, tie_u, tie_break=tie_break, heights=base_h
        )
        tiles = (None, 1, int(rng.integers(2, 8)), max(1, m))
        tile = tiles[trial % len(tiles)]
        wf = np.zeros((R, n), dtype=np.int64)
        wf_h = np.empty((R, m), dtype=np.float64)
        run_batch_wavefront(
            wf, caps, choices, tie_u, tie_break=tie_break, heights=wf_h,
            tile=tile,
        )
        label = f"trial={trial} n={n} m={m} d={d} R={R} tie={tie_break} tile={tile}"
        assert np.array_equal(base, wf), f"{label}: counts"
        np.testing.assert_array_equal(wf_h, base_h, err_msg=f"{label}: heights")
    return budget.draws


def check_compiled_kernel_equivalence(
    master_seed: int, budget: SweepBudget = SweepBudget()
) -> int:
    """Randomised bit-exactness sweep of the compiled-backend kernels.

    For each draw, :func:`~repro.core.compiled.run_batch_compiled` must
    reproduce :func:`~repro.core.ensemble.run_batch_ensemble` exactly —
    counts and heights, every replication — under a rotation of tie-break
    modes and capacity profiles (shared and per-replication), so all three
    compiled specialisations (``d = 2`` uniform, ``d = 2`` general,
    general ``d``) are exercised.  Without Numba the sweep runs the same
    kernel source through the interpreter, so the fallback path carries the
    identical guarantee.  Returns the number of draws checked.
    """
    rng = np.random.default_rng(master_seed)
    for trial in range(budget.draws):
        n = int(rng.integers(2, budget.max_n + 1))
        m = int(rng.integers(0, budget.max_m + 1))
        d = int(rng.integers(1, budget.max_d + 1))
        R = int(rng.integers(1, budget.max_r + 1))
        if trial % 4 == 3:
            caps = rng.integers(1, 9, size=(R, n)).astype(np.int64)
        else:
            caps = _random_capacities(rng, n)
        tie_break = TIE_BREAKS[trial % len(TIE_BREAKS)]
        choices = rng.integers(0, n, size=(R, m, d))
        tie_u = rng.random((R, m))

        base = np.zeros((R, n), dtype=np.int64)
        base_h = np.empty((R, m), dtype=np.float64)
        run_batch_ensemble(
            base, caps, choices, tie_u, tie_break=tie_break, heights=base_h
        )
        comp = np.zeros((R, n), dtype=np.int64)
        comp_h = np.empty((R, m), dtype=np.float64)
        run_batch_compiled(
            comp, caps, choices, tie_u, tie_break=tie_break, heights=comp_h
        )
        label = f"trial={trial} n={n} m={m} d={d} R={R} tie={tie_break}"
        assert np.array_equal(base, comp), f"{label}: counts"
        np.testing.assert_array_equal(comp_h, base_h, err_msg=f"{label}: heights")
    return budget.draws


def check_wavefront_driver_identity(master_seed: int, trials: int = 6) -> int:
    """Driver-level wavefront on/off bit-identity sweep.

    Each trial runs :func:`~repro.core.ensemble.simulate_ensemble` (both
    seed modes) and :func:`~repro.core.simulation.simulate` under
    ``forced("on")`` and ``forced("off")`` on the same configuration —
    cycling all three tie-break modes — and asserts identical counts,
    heights, and snapshots.  This is the guarantee the adaptive dispatch
    relies on: the kernels consume identical pre-drawn randomness, so the
    dispatch decision can never leak into the numbers.
    """
    rng = np.random.default_rng(master_seed)
    for trial in range(trials):
        n = int(rng.integers(2, 16))
        m = int(rng.integers(1, 250))
        d = int(rng.integers(1, 4))
        R = int(rng.integers(1, 5))
        bins = BinArray(_random_capacities(rng, n))
        tie_break = TIE_BREAKS[trial % len(TIE_BREAKS)]
        seed_mode = ("spawn", "blocked")[trial % 2]
        master = int(rng.integers(0, 2**31))
        snap = sorted({0, m // 3, m})
        label = f"trial={trial} n={n} m={m} d={d} R={R} tie={tie_break} {seed_mode}"

        results = []
        for mode in ("on", "off"):
            with forced(mode):
                results.append(
                    simulate_ensemble(
                        bins, repetitions=R, m=m, d=d, seed=master,
                        tie_break=tie_break, seed_mode=seed_mode,
                        track_heights=True, snapshot_at=snap,
                    )
                )
        on, off = results
        assert np.array_equal(on.counts, off.counts), f"{label}: ensemble counts"
        np.testing.assert_array_equal(
            on.heights, off.heights, err_msg=f"{label}: ensemble heights"
        )
        assert len(on.snapshots) == len(off.snapshots), label
        for a, b in zip(on.snapshots, off.snapshots):
            np.testing.assert_array_equal(
                a.max_loads, b.max_loads, err_msg=f"{label}: snapshot"
            )

        scalars = []
        for mode in ("on", "off"):
            with forced(mode):
                scalars.append(
                    simulate(
                        bins, m=m, d=d, seed=master, tie_break=tie_break,
                        track_heights=True, snapshot_at=snap,
                    )
                )
        s_on, s_off = scalars
        assert np.array_equal(s_on.counts, s_off.counts), f"{label}: scalar counts"
        np.testing.assert_array_equal(
            s_on.heights, s_off.heights, err_msg=f"{label}: scalar heights"
        )
        assert [s.max_load for s in s_on.snapshots] == [
            s.max_load for s in s_off.snapshots
        ], f"{label}: scalar snapshots"
    return trials


def check_backend_driver_identity(master_seed: int, trials: int = 6) -> int:
    """Driver-level compiled/NumPy backend bit-identity sweep.

    Each trial runs :func:`~repro.core.ensemble.simulate_ensemble` (both
    seed modes) and :func:`~repro.core.simulation.simulate` under
    ``forced_backend("compiled")`` and ``forced_backend("numpy")`` on the
    same configuration — cycling all three tie-break modes — and asserts
    identical counts, heights, and snapshots.  Like the wavefront check,
    this is the guarantee the ``REPRO_BACKEND`` dispatch relies on: every
    tier consumes identical pre-drawn randomness, so backend selection can
    never leak into the numbers.
    """
    rng = np.random.default_rng(master_seed)
    for trial in range(trials):
        n = int(rng.integers(2, 16))
        m = int(rng.integers(1, 250))
        d = int(rng.integers(1, 4))
        R = int(rng.integers(1, 5))
        bins = BinArray(_random_capacities(rng, n))
        tie_break = TIE_BREAKS[trial % len(TIE_BREAKS)]
        seed_mode = ("spawn", "blocked")[trial % 2]
        master = int(rng.integers(0, 2**31))
        snap = sorted({0, m // 3, m})
        label = f"trial={trial} n={n} m={m} d={d} R={R} tie={tie_break} {seed_mode}"

        results = []
        for backend in ("compiled", "numpy"):
            with forced_backend(backend):
                results.append(
                    simulate_ensemble(
                        bins, repetitions=R, m=m, d=d, seed=master,
                        tie_break=tie_break, seed_mode=seed_mode,
                        track_heights=True, snapshot_at=snap,
                    )
                )
        comp, base = results
        assert np.array_equal(comp.counts, base.counts), f"{label}: ensemble counts"
        np.testing.assert_array_equal(
            comp.heights, base.heights, err_msg=f"{label}: ensemble heights"
        )
        assert len(comp.snapshots) == len(base.snapshots), label
        for a, b in zip(comp.snapshots, base.snapshots):
            np.testing.assert_array_equal(
                a.max_loads, b.max_loads, err_msg=f"{label}: snapshot"
            )

        scalars = []
        for backend in ("compiled", "numpy"):
            with forced_backend(backend):
                scalars.append(
                    simulate(
                        bins, m=m, d=d, seed=master, tie_break=tie_break,
                        track_heights=True, snapshot_at=snap,
                    )
                )
        s_comp, s_base = scalars
        assert np.array_equal(s_comp.counts, s_base.counts), f"{label}: scalar counts"
        np.testing.assert_array_equal(
            s_comp.heights, s_base.heights, err_msg=f"{label}: scalar heights"
        )
        assert [s.max_load for s in s_comp.snapshots] == [
            s.max_load for s in s_base.snapshots
        ], f"{label}: scalar snapshots"
    return trials


def check_driver_parity(master_seed: int, trials: int = 6, repetitions: int = 4) -> int:
    """Spawn-mode driver parity sweep against the scalar driver.

    Each trial verifies that replication ``r`` of
    :func:`~repro.core.ensemble.simulate_ensemble` equals
    ``simulate(seed=child_r)`` exactly — counts, heights, and every snapshot
    — under the shared ``SeedSequence.spawn`` order.  Returns the number of
    trials checked; raises ``AssertionError`` on the first mismatch.
    """
    rng = np.random.default_rng(master_seed)
    for trial in range(trials):
        n = int(rng.integers(2, 16))
        m = int(rng.integers(1, 200))
        d = int(rng.integers(1, 4))
        bins = BinArray(_random_capacities(rng, n))
        master = int(rng.integers(0, 2**31))
        snap = sorted({0, m // 2, m})
        ens = simulate_ensemble(
            bins, repetitions=repetitions, m=m, d=d, seed=master,
            track_heights=True, snapshot_at=snap,
        )
        for r, child in enumerate(spawn_seed_sequences(master, repetitions)):
            sc = simulate(
                bins, m=m, d=d, seed=child, track_heights=True, snapshot_at=snap
            )
            label = f"trial={trial} rep={r} n={n} m={m} d={d}"
            assert np.array_equal(ens.counts[r], sc.counts), f"{label} counts"
            np.testing.assert_array_equal(
                ens.heights[r], sc.heights, err_msg=f"{label} heights"
            )
            assert len(ens.snapshots) == len(sc.snapshots), f"{label} snapshot count"
            for es, ss in zip(ens.snapshots, sc.snapshots):
                assert es.balls_thrown == ss.balls_thrown, label
                assert es.max_loads[r] == ss.max_load, f"{label} snapshot max"
                assert es.average_load == ss.average_load, label
    return trials


def check_batched_parity(master_seed: int, trials: int = 6, repetitions: int = 4) -> int:
    """Stale-view batched game: lockstep vs scalar, spawn-mode bit parity.

    Each trial verifies that replication ``r`` of
    :func:`~repro.core.rounds.simulate_batched_ensemble` equals
    ``simulate_batched(seed=child_r)`` exactly for a random batch size.
    """
    rng = np.random.default_rng(master_seed)
    for trial in range(trials):
        n = int(rng.integers(2, 14))
        m = int(rng.integers(0, 150))
        d = int(rng.integers(1, 4))
        batch = int(rng.integers(1, 50))
        bins = BinArray(_random_capacities(rng, n))
        master = int(rng.integers(0, 2**31))
        ens = simulate_batched_ensemble(
            bins, repetitions=repetitions, m=m, d=d, batch_size=batch, seed=master
        )
        for r, child in enumerate(spawn_seed_sequences(master, repetitions)):
            sc = simulate_batched(bins, m=m, d=d, batch_size=batch, seed=child)
            assert np.array_equal(ens.counts[r], sc.counts), (
                f"trial={trial} rep={r} n={n} m={m} d={d} batch={batch}"
            )
    return trials


def check_weighted_parity(master_seed: int, trials: int = 6, repetitions: int = 4) -> int:
    """Weighted balls: lockstep vs scalar, spawn-mode bit parity.

    Each trial draws a random positive size sequence and verifies that
    replication ``r`` of
    :func:`~repro.core.weighted.simulate_weighted_ensemble` equals
    ``simulate_weighted(seed=child_r)`` exactly — counts *and* float masses
    (the epsilon-guarded tie pipeline is arithmetic-identical).
    """
    rng = np.random.default_rng(master_seed)
    for trial in range(trials):
        n = int(rng.integers(2, 10))
        m = int(rng.integers(0, 80))
        d = int(rng.integers(1, 4))
        bins = BinArray(_random_capacities(rng, n))
        sigma = float(rng.uniform(0.0, 1.5))
        sizes = rng.lognormal(-0.5 * sigma * sigma, sigma, size=m)
        master = int(rng.integers(0, 2**31))
        ens = simulate_weighted_ensemble(
            bins, sizes, repetitions=repetitions, d=d, seed=master
        )
        for r, child in enumerate(spawn_seed_sequences(master, repetitions)):
            sc = simulate_weighted(bins, sizes, d=d, seed=child)
            label = f"trial={trial} rep={r} n={n} m={m} d={d}"
            assert np.array_equal(ens.counts[r], sc.counts), f"{label} counts"
            np.testing.assert_array_equal(
                ens.masses[r], sc.masses, err_msg=f"{label} masses"
            )
    return trials


def check_ring_parity(master_seed: int, trials: int = 6, repetitions: int = 4) -> int:
    """Ring allocation: lockstep vs scalar, spawn-mode bit parity.

    Each trial draws a random consistent-hashing ring and verifies that
    replication ``r`` of
    :func:`~repro.p2p.workload.allocate_requests_ensemble` equals
    ``allocate_requests(seed=child_r)`` exactly, in both the plain and
    capacity-aware accountings.
    """
    from ..p2p.ring import ConsistentHashRing
    from ..p2p.workload import allocate_requests, allocate_requests_ensemble

    rng = np.random.default_rng(master_seed)
    for trial in range(trials):
        n_peers = int(rng.integers(2, 24))
        ring = ConsistentHashRing.random(n_peers, seed=rng)
        m = int(rng.integers(0, 200))
        d = int(rng.integers(1, 4))
        aware = bool(rng.integers(0, 2))
        master = int(rng.integers(0, 2**31))
        ens = allocate_requests_ensemble(
            ring, m, repetitions=repetitions, d=d, capacity_aware=aware, seed=master
        )
        for r, child in enumerate(spawn_seed_sequences(master, repetitions)):
            sc = allocate_requests(ring, m, d=d, capacity_aware=aware, seed=child)
            assert np.array_equal(ens.counts[r], sc.counts), (
                f"trial={trial} rep={r} n_peers={n_peers} m={m} d={d} aware={aware}"
            )
    return trials


@dataclass(frozen=True)
class ExperimentCase:
    """One experiment's pinned cross-engine configuration.

    ``kwargs`` keep the run tiny; ``tol`` bounds the per-series absolute
    deviation between the engines (blocked-mode ensembles are independent
    draws, so the deviation is statistical; both runs are deterministic at
    the pinned seed).  Tolerances are calibrated with margin against the
    observed deviations at ``rep_factor`` in {1, 2, 4}.  For
    deterministic-instance experiments the deviation shrinks as
    ``rep_factor`` grows; for the shared-params-per-block experiments
    (fig08/09, fig16, rw_ring, abl_weighted) it does **not** — the
    parameter randomness is averaged over ~``reps // 8`` block draws
    (capped growth until reps exceed 8x the default block width), so those
    tolerances must absorb the few-draw parameter variance at every factor.
    ``x_rtol`` loosens the x-grid comparison for figures whose x axis is
    itself a random quantity (fig08/09's realised total capacity).
    ``wavefront_kwargs``, when set, replaces ``kwargs`` for the wavefront
    on/off identity check only — used to shrink workloads (fig05's
    ``m = 1000 C``) that are pathological with the wavefront *forced* on
    at a tiny ``n`` (the auto dispatch would never enter them).
    """

    kwargs: dict = field(default_factory=dict)
    tol: float = 0.5
    x_rtol: float = 0.0
    seed: int = 20260612
    wavefront_kwargs: dict | None = None


#: Pinned tiny configurations for the per-experiment cross-engine matrix.
#: Every id in the experiment registry must appear here —
#: ``tests/core/test_ensemble.py`` fails loudly on a registered experiment
#: that is missing, so a future experiment cannot skip migration silently.
EXPERIMENT_CASES: dict[str, ExperimentCase] = {
    "fig01": ExperimentCase({"repetitions": 4, "n": 300, "capacities": (1, 4)}, tol=1.0),
    "fig02": ExperimentCase({"repetitions": 4}, tol=1.0),
    "fig03": ExperimentCase({"repetitions": 4}, tol=1.2),
    "fig04": ExperimentCase({"repetitions": 4}, tol=1.2),
    "fig05": ExperimentCase(
        {"repetitions": 3}, tol=1.2,
        wavefront_kwargs={"repetitions": 2, "capacities": (1,)},
    ),
    "fig06": ExperimentCase({"repetitions": 6, "n": 100, "step_pct": 50}, tol=0.8),
    "fig07": ExperimentCase({"repetitions": 6, "n": 100, "step_pct": 50}, tol=60.0),
    "fig08": ExperimentCase(
        {"repetitions": 8, "n": 200, "mean_cap_grid": (1.0, 4.0)}, tol=0.7, x_rtol=0.2
    ),
    "fig09": ExperimentCase(
        {"repetitions": 8, "n": 200, "mean_cap_grid": (1.0, 6.0)}, tol=60.0, x_rtol=0.2
    ),
    "fig10": ExperimentCase({"repetitions": 6}, tol=1.0),
    "fig11": ExperimentCase({"repetitions": 3}, tol=0.8),
    "fig12": ExperimentCase({"repetitions": 3}, tol=0.6),
    "fig13": ExperimentCase({"repetitions": 3}, tol=1.2),
    "fig14": ExperimentCase({"repetitions": 4, "max_bins": 102}, tol=0.8),
    "fig15": ExperimentCase({"repetitions": 4, "max_bins": 102}, tol=0.8),
    "fig16": ExperimentCase(
        {"repetitions": 6, "n": 200, "cap_multipliers": (1, 5), "rounds": 6}, tol=0.8
    ),
    # fig17's series is an argmin over the t grid: the grid spans well past
    # the optimum (~2.1 at x=3) so a cross-engine flip to the far end of the
    # grid (deviation >= 1.0) fails while adjacent-gridpoint noise (0.5)
    # passes.
    "fig17": ExperimentCase(
        {"repetitions": 40, "capacities": (3,), "t_grid": (1.0, 1.5, 2.0, 2.5)},
        tol=0.6,
    ),
    "fig18": ExperimentCase(
        {"repetitions": 20, "capacities": (3,), "t_grid": (1.0, 2.0)}, tol=0.6
    ),
    "abl_tiebreak": ExperimentCase(
        {"repetitions": 6, "n": 100, "fractions": (30, 70)}, tol=0.8
    ),
    "abl_probability": ExperimentCase(
        {"repetitions": 6, "n": 100, "large_caps": (2, 8)}, tol=1.0
    ),
    "abl_d": ExperimentCase(
        {"repetitions": 6, "n": 100, "d_values": (1, 2, 4)}, tol=1.2
    ),
    "abl_staleness": ExperimentCase(
        {"repetitions": 6, "n": 100, "batch_sizes": (1, 16, 100)}, tol=1.0
    ),
    "rw_ring": ExperimentCase(
        {"repetitions": 8, "n_peers": 30, "requests_per_peer": 5, "d_values": (1, 2)},
        tol=1.5,
    ),
    "abl_weighted": ExperimentCase(
        {"repetitions": 8, "n": 40, "sigmas": (0.0, 0.5)}, tol=1.0
    ),
}


def check_experiment_equivalence(
    experiment_id: str, *, rep_factor: int = 1
) -> float:
    """Run one experiment on both engines and compare the figures.

    Uses the pinned :data:`EXPERIMENT_CASES` configuration (``rep_factor``
    multiplies the repetition count for larger-budget sweeps; the tolerance
    is unchanged since more repetitions only tighten the agreement).
    Checks structure exactly — x grid (up to ``x_rtol``), series names, NaN
    pattern — and every series value within the case tolerance.  Returns
    the largest per-series deviation observed; raises ``AssertionError`` on
    any mismatch.
    """
    from ..experiments import run_experiment

    try:
        case = EXPERIMENT_CASES[experiment_id]
    except KeyError:
        raise KeyError(
            f"experiment {experiment_id!r} has no cross-engine case: add it to "
            f"EXPERIMENT_CASES (and an ensemble path to the experiment) — "
            f"every registered experiment must support both engines"
        ) from None
    if rep_factor < 1:
        raise ValueError(f"rep_factor must be >= 1, got {rep_factor}")
    kwargs = dict(case.kwargs)
    if rep_factor > 1 and "repetitions" in kwargs:
        kwargs["repetitions"] = int(kwargs["repetitions"]) * rep_factor
    scalar = run_experiment(experiment_id, seed=case.seed, engine="scalar", **kwargs)
    ens = run_experiment(experiment_id, seed=case.seed, engine="ensemble", **kwargs)

    label = f"{experiment_id} cross-engine"
    assert scalar.parameters.get("engine") == "scalar", label
    assert ens.parameters.get("engine") == "ensemble", label
    assert scalar.x_name == ens.x_name, f"{label}: x_name"
    assert set(scalar.series) == set(ens.series), f"{label}: series names"
    if case.x_rtol:
        np.testing.assert_allclose(
            scalar.x_values, ens.x_values, rtol=case.x_rtol,
            err_msg=f"{label}: x grid",
        )
    else:
        np.testing.assert_array_equal(
            scalar.x_values, ens.x_values, err_msg=f"{label}: x grid"
        )
    worst = 0.0
    for name in scalar.series:
        a, b = scalar.series[name], ens.series[name]
        assert np.array_equal(np.isnan(a), np.isnan(b)), f"{label}: NaN pattern of {name!r}"
        finite = np.isfinite(a)
        if not finite.any():
            continue
        diff = float(np.max(np.abs(a[finite] - b[finite])))
        assert diff <= case.tol, (
            f"{label}: series {name!r} deviates by {diff:.4f} > tol {case.tol}"
        )
        worst = max(worst, diff)
    return worst


def check_experiment_wavefront_identity(experiment_id: str) -> int:
    """Run one experiment with the wavefront forced on and forced off, on
    both engines, and require *bit-identical* figures.

    Unlike the cross-engine comparison (bounded deviation between
    independent streams), this is an exact check: the wavefront kernels
    consume the same pre-drawn randomness as the per-ball loops, so every
    series must match to the last bit no matter which path the dispatch
    picks.  Uses the pinned :data:`EXPERIMENT_CASES` configuration;
    returns the number of engines checked.
    """
    from ..experiments import run_experiment

    try:
        case = EXPERIMENT_CASES[experiment_id]
    except KeyError:
        raise KeyError(
            f"experiment {experiment_id!r} has no cross-engine case: add it to "
            f"EXPERIMENT_CASES (and an ensemble path to the experiment) — "
            f"every registered experiment must support both engines"
        ) from None
    kwargs = case.wavefront_kwargs if case.wavefront_kwargs is not None else case.kwargs
    checked = 0
    for engine in ("scalar", "ensemble"):
        results = []
        for mode in ("on", "off"):
            with forced(mode):
                results.append(
                    run_experiment(
                        experiment_id, seed=case.seed, engine=engine,
                        **kwargs,
                    )
                )
        on, off = results
        label = f"{experiment_id} [{engine}] wavefront on vs off"
        np.testing.assert_array_equal(
            on.x_values, off.x_values, err_msg=f"{label}: x grid"
        )
        assert set(on.series) == set(off.series), f"{label}: series names"
        for name in on.series:
            a, b = on.series[name], off.series[name]
            both_nan = np.isnan(a) & np.isnan(b)
            assert np.array_equal(a[~both_nan], b[~both_nan]), (
                f"{label}: series {name!r} is not bit-identical"
            )
        checked += 1
    return checked


def check_fabric_serial_identity(
    experiment_id: str, *, workers: int = 2, fabric=None
) -> int:
    """Run one experiment's ensemble engine locally and over the sweep
    fabric, and require *bit-identical* figures.

    Exact by the fabric clause of the seed contract: block boundaries and
    child seeds are pure functions of ``(seed, repetitions, block_size)``,
    workers rebuild them from the pickled spawn spec, and the driver merges
    parked block reducers in block order through the same closure the
    serial path uses — so worker placement, fleet size, and worker deaths
    can never change a series value.  Uses the pinned
    :data:`EXPERIMENT_CASES` configuration (the trimmed
    ``wavefront_kwargs`` scale when present, to keep forced tiny workloads
    sane).  Pass an existing activated-ready ``fabric``
    (:class:`~repro.runtime.fabric.FabricSession`) to amortise fleet
    startup over many experiments; otherwise a throwaway *workers*-strong
    session is spawned and closed.  Returns the number of runs compared.
    """
    from ..experiments import run_experiment
    from ..runtime.fabric import FabricSession

    try:
        case = EXPERIMENT_CASES[experiment_id]
    except KeyError:
        raise KeyError(
            f"experiment {experiment_id!r} has no cross-engine case: add it to "
            f"EXPERIMENT_CASES (and an ensemble path to the experiment) — "
            f"every registered experiment must support both engines"
        ) from None
    kwargs = case.wavefront_kwargs if case.wavefront_kwargs is not None else case.kwargs
    serial = run_experiment(
        experiment_id, seed=case.seed, engine="ensemble", **kwargs
    )
    session = fabric if fabric is not None else FabricSession(workers)
    try:
        with session.activate():
            fabbed = run_experiment(
                experiment_id, seed=case.seed, engine="ensemble", **kwargs
            )
    finally:
        if fabric is None:
            session.close()
    label = f"{experiment_id} [ensemble] fabric vs serial"
    np.testing.assert_array_equal(
        serial.x_values, fabbed.x_values, err_msg=f"{label}: x grid"
    )
    assert set(serial.series) == set(fabbed.series), f"{label}: series names"
    for name in serial.series:
        a, b = serial.series[name], fabbed.series[name]
        both_nan = np.isnan(a) & np.isnan(b)
        assert np.array_equal(a[~both_nan], b[~both_nan]), (
            f"{label}: series {name!r} is not bit-identical"
        )
    return 2


def check_experiment_backend_identity(experiment_id: str) -> int:
    """Run one experiment under the compiled backend and the NumPy backend,
    on both engines, and require *bit-identical* figures.

    Exact by the same argument as the wavefront check: the compiled kernels
    consume the same pre-drawn randomness as every other tier, so the
    ``REPRO_BACKEND`` choice must never change a series value.  Without
    Numba the compiled tier runs its interpreter fallback, so the check
    remains meaningful (same source, different executor).  Uses the pinned
    :data:`EXPERIMENT_CASES` configuration — the trimmed
    ``wavefront_kwargs`` scale when present, since the interpreter fallback
    shares the wavefront's aversion to oversized forced workloads.
    Returns the number of engines checked.
    """
    from ..experiments import run_experiment

    try:
        case = EXPERIMENT_CASES[experiment_id]
    except KeyError:
        raise KeyError(
            f"experiment {experiment_id!r} has no cross-engine case: add it to "
            f"EXPERIMENT_CASES (and an ensemble path to the experiment) — "
            f"every registered experiment must support both engines"
        ) from None
    kwargs = case.wavefront_kwargs if case.wavefront_kwargs is not None else case.kwargs
    checked = 0
    for engine in ("scalar", "ensemble"):
        results = []
        for backend in ("compiled", "numpy"):
            with forced_backend(backend):
                results.append(
                    run_experiment(
                        experiment_id, seed=case.seed, engine=engine,
                        **kwargs,
                    )
                )
        comp, base = results
        label = f"{experiment_id} [{engine}] backend compiled vs numpy"
        np.testing.assert_array_equal(
            comp.x_values, base.x_values, err_msg=f"{label}: x grid"
        )
        assert set(comp.series) == set(base.series), f"{label}: series names"
        for name in comp.series:
            a, b = comp.series[name], base.series[name]
            both_nan = np.isnan(a) & np.isnan(b)
            assert np.array_equal(a[~both_nan], b[~both_nan]), (
                f"{label}: series {name!r} is not bit-identical"
            )
        checked += 1
    return checked


def check_thread_identity(
    experiment_id: str, thread_counts=(1, 2, 7)
) -> int:
    """Run one experiment under forced compiled-tier thread budgets and
    require every budget to reproduce the 1-thread figures *bit-identically*,
    on both engines.

    The threads axis of the backend matrix: the ``prange`` variants own
    whole replication rows with zero cross-row communication, so forcing
    1 vs 2 vs 7 threads (the default includes a budget above most test
    ``R``, exercising idle threads) must never change a series value —
    heights and snapshot series included, since the cases' series are
    computed from them.  Runs under ``forced_backend("compiled")`` (the
    only tier with a thread axis; without Numba ``prange`` is ``range``
    and the parallel family runs serially through the interpreter, same
    arithmetic).  Uses the pinned :data:`EXPERIMENT_CASES` configuration
    at the trimmed ``wavefront_kwargs`` scale when present, like the
    backend check.  Returns the number of (engine, thread-count)
    comparisons performed.
    """
    from ..experiments import run_experiment

    try:
        case = EXPERIMENT_CASES[experiment_id]
    except KeyError:
        raise KeyError(
            f"experiment {experiment_id!r} has no cross-engine case: add it to "
            f"EXPERIMENT_CASES (and an ensemble path to the experiment) — "
            f"every registered experiment must support both engines"
        ) from None
    kwargs = case.wavefront_kwargs if case.wavefront_kwargs is not None else case.kwargs
    thread_counts = tuple(thread_counts)
    if not thread_counts or thread_counts[0] != 1:
        raise ValueError(
            f"thread_counts must start with the serial baseline 1, "
            f"got {thread_counts!r}"
        )
    checked = 0
    with forced_backend("compiled"):
        for engine in ("scalar", "ensemble"):
            base = None
            for threads in thread_counts:
                with forced_threads(threads):
                    result = run_experiment(
                        experiment_id, seed=case.seed, engine=engine,
                        **kwargs,
                    )
                if base is None:
                    base = result
                    continue
                label = (f"{experiment_id} [{engine}] threads "
                         f"{threads} vs 1")
                np.testing.assert_array_equal(
                    result.x_values, base.x_values, err_msg=f"{label}: x grid"
                )
                assert set(result.series) == set(base.series), (
                    f"{label}: series names"
                )
                for name in result.series:
                    a, b = result.series[name], base.series[name]
                    both_nan = np.isnan(a) & np.isnan(b)
                    assert np.array_equal(a[~both_nan], b[~both_nan]), (
                        f"{label}: series {name!r} is not bit-identical"
                    )
                checked += 1
    return checked
