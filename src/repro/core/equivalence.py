"""Randomised cross-engine equivalence checking.

Three implementations of the paper's protocol coexist —
:func:`repro.core.protocol.reference_run` (readable),
:func:`repro.core.fast.run_batch` (optimised scalar) and
:func:`repro.core.ensemble.run_batch_ensemble` (lockstep ensemble) — under
one contract: given the same candidate matrix and the same position-aligned
tie-uniform stream, all three produce the same counts, ball for ball.

This module draws randomised instances (size, profile, tie mode, d, R) and
verifies the contract bit-for-bit, including the per-ball heights
instrumentation and the ensemble driver's per-replication stream parity with
:func:`repro.core.simulation.simulate`.  It backs both the pytest suite
(``tests/core/test_ensemble.py``) and the larger-budget smoke script
(``scripts/check_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bins.arrays import BinArray
from ..sampling.rngutils import spawn_seed_sequences
from .ensemble import run_batch_ensemble, simulate_ensemble
from .fast import run_batch
from .protocol import TIE_BREAKS, reference_run
from .simulation import simulate

__all__ = ["SweepBudget", "check_kernel_equivalence", "check_driver_parity"]


@dataclass(frozen=True)
class SweepBudget:
    """How many / how large the randomised draws are."""

    draws: int = 50
    max_n: int = 10
    max_m: int = 120
    max_d: int = 5
    max_r: int = 6


def _random_capacities(rng, n: int) -> np.ndarray:
    """One of the paper's capacity profiles, at random."""
    profile = rng.integers(0, 3)
    if profile == 0:  # uniform (Figures 1-5)
        return np.full(n, int(rng.integers(1, 9)), dtype=np.int64)
    if profile == 1:  # two-class (Figures 6-13)
        caps = np.where(np.arange(n) < n // 2, 1, int(rng.integers(2, 11)))
        return caps.astype(np.int64)
    return rng.integers(1, 13, size=n).astype(np.int64)  # random caps (8-9, 16)


def check_kernel_equivalence(master_seed: int, budget: SweepBudget = SweepBudget()) -> int:
    """Three-way bit-exactness sweep over randomised instances.

    For each draw, every replication of the ensemble kernel is compared
    against the fast scalar loop and the tie-stream-matched reference
    implementation — counts and heights both.  Returns the number of draws
    checked; raises ``AssertionError`` on the first mismatch.
    """
    rng = np.random.default_rng(master_seed)
    for trial in range(budget.draws):
        n = int(rng.integers(2, budget.max_n + 1))
        m = int(rng.integers(0, budget.max_m + 1))
        d = int(rng.integers(1, budget.max_d + 1))
        R = int(rng.integers(1, budget.max_r + 1))
        caps = _random_capacities(rng, n)
        tie_break = TIE_BREAKS[trial % len(TIE_BREAKS)]
        choices = rng.integers(0, n, size=(R, m, d))
        tie_u = rng.random((R, m))

        counts = np.zeros((R, n), dtype=np.int64)
        heights = np.empty((R, m), dtype=np.float64)
        run_batch_ensemble(
            counts, caps, choices, tie_u, tie_break=tie_break, heights=heights
        )

        caps_list = caps.tolist()
        label = f"trial={trial} n={n} m={m} d={d} R={R} tie={tie_break}"
        for r in range(R):
            fast_counts = [0] * n
            fast_heights: list[float] = []
            run_batch(
                fast_counts, caps_list, choices[r], tie_u[r],
                tie_break=tie_break, heights=fast_heights,
            )
            ref_heights: list[float] = []
            ref_counts = reference_run(
                caps_list, choices[r], tie_break=tie_break,
                tie_uniforms=tie_u[r], heights=ref_heights,
            )
            assert np.array_equal(counts[r], fast_counts), f"{label} rep={r} vs fast"
            assert np.array_equal(counts[r], ref_counts), f"{label} rep={r} vs reference"
            np.testing.assert_array_equal(
                heights[r], np.asarray(fast_heights),
                err_msg=f"{label} rep={r} heights vs fast",
            )
            np.testing.assert_array_equal(
                heights[r], np.asarray(ref_heights),
                err_msg=f"{label} rep={r} heights vs reference",
            )
    return budget.draws


def check_driver_parity(master_seed: int, trials: int = 6, repetitions: int = 4) -> int:
    """Spawn-mode driver parity sweep against the scalar driver.

    Each trial verifies that replication ``r`` of
    :func:`~repro.core.ensemble.simulate_ensemble` equals
    ``simulate(seed=child_r)`` exactly — counts, heights, and every snapshot
    — under the shared ``SeedSequence.spawn`` order.  Returns the number of
    trials checked; raises ``AssertionError`` on the first mismatch.
    """
    rng = np.random.default_rng(master_seed)
    for trial in range(trials):
        n = int(rng.integers(2, 16))
        m = int(rng.integers(1, 200))
        d = int(rng.integers(1, 4))
        bins = BinArray(_random_capacities(rng, n))
        master = int(rng.integers(0, 2**31))
        snap = sorted({0, m // 2, m})
        ens = simulate_ensemble(
            bins, repetitions=repetitions, m=m, d=d, seed=master,
            track_heights=True, snapshot_at=snap,
        )
        for r, child in enumerate(spawn_seed_sequences(master, repetitions)):
            sc = simulate(
                bins, m=m, d=d, seed=child, track_heights=True, snapshot_at=snap
            )
            label = f"trial={trial} rep={r} n={n} m={m} d={d}"
            assert np.array_equal(ens.counts[r], sc.counts), f"{label} counts"
            np.testing.assert_array_equal(
                ens.heights[r], sc.heights, err_msg=f"{label} heights"
            )
            assert len(ens.snapshots) == len(sc.snapshots), f"{label} snapshot count"
            for es, ss in zip(ens.snapshots, sc.snapshots):
                assert es.balls_thrown == ss.balls_thrown, label
                assert es.max_loads[r] == ss.max_load, f"{label} snapshot max"
                assert es.average_load == ss.average_load, label
    return trials
