"""Weighted balls — the model's general load semantics.

Section 1 defines the general notion the paper's analysis specialises: "when
a ball of size s is placed into a bin of capacity c, then the effective load
that this bin experiences is s/c".  The theorems assume unit balls, but the
protocol itself is well-defined for arbitrary positive ball sizes; this
module extends the engine accordingly (an explicit extension beyond the
paper's analysis, flagged as such in DESIGN.md).

Semantics: a ball of size ``s`` probes ``d`` bins as usual; the candidate
loads-after are ``(W_i + s) / c_i`` where ``W_i`` is the total ball mass
already in bin ``i``; ties are broken toward larger capacity.  Loads are
floats here (exact integer cross-multiplication no longer applies), with a
relative epsilon guarding the tie comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bins.arrays import BinArray
from ..sampling.distributions import probability_model
from ..sampling.rngutils import make_rng

__all__ = ["WeightedResult", "simulate_weighted"]

#: Relative tolerance under which two candidate loads count as tied.
_TIE_RTOL = 1e-12


@dataclass
class WeightedResult:
    """Outcome of a weighted-ball run."""

    bins: BinArray
    masses: np.ndarray
    counts: np.ndarray
    total_mass: float
    d: int

    @property
    def loads(self) -> np.ndarray:
        """Per-bin loads ``W_i / c_i``."""
        return self.masses / self.bins.capacities

    @property
    def max_load(self) -> float:
        """Maximum per-bin load."""
        return float(self.loads.max())

    @property
    def average_load(self) -> float:
        """``(Σ s) / C`` — the balanced optimum."""
        return self.total_mass / self.bins.total_capacity

    @property
    def gap(self) -> float:
        """``max − average``."""
        return self.max_load - self.average_load


def simulate_weighted(
    bins: BinArray,
    ball_sizes,
    d: int = 2,
    *,
    probabilities="proportional",
    seed=None,
) -> WeightedResult:
    """Allocate balls of the given sizes with the greedy d-choice protocol.

    Parameters
    ----------
    bins:
        Bin array (capacities define loads and default probabilities).
    ball_sizes:
        Positive sizes, processed in order (arrival order matters, exactly
        as for unit balls).
    d:
        Choices per ball.
    probabilities, seed:
        As in :func:`repro.core.simulation.simulate`.
    """
    if not isinstance(bins, BinArray):
        bins = BinArray(bins)
    sizes = np.asarray(ball_sizes, dtype=np.float64)
    if sizes.ndim != 1:
        raise ValueError(f"ball_sizes must be 1-D, got shape {sizes.shape}")
    if sizes.size and (not np.all(np.isfinite(sizes)) or np.any(sizes <= 0)):
        raise ValueError("ball sizes must be positive and finite")
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")

    model = probability_model(probabilities)
    sampler = model.sampler(bins.capacities)
    rng = make_rng(seed)
    m = sizes.size

    choices = sampler.sample((m, d), rng) if m else np.empty((0, d), dtype=np.int64)
    tie_u = rng.random(m)

    caps = bins.capacities.tolist()
    masses = [0.0] * bins.n
    counts = [0] * bins.n
    size_list = sizes.tolist()
    rows = choices.tolist()

    for j in range(m):
        s = size_list[j]
        row = rows[j]
        best = [row[0]]
        best_load = (masses[row[0]] + s) / caps[row[0]]
        for b in row[1:]:
            load = (masses[b] + s) / caps[b]
            if load < best_load * (1.0 - _TIE_RTOL):
                best = [b]
                best_load = load
            elif abs(load - best_load) <= _TIE_RTOL * max(abs(load), abs(best_load), 1.0):
                if b not in best:
                    best.append(b)
        if len(best) > 1:
            cmax = max(caps[b] for b in best)
            best = [b for b in best if caps[b] == cmax]
        chosen = best[0] if len(best) == 1 else best[int(tie_u[j] * len(best))]
        masses[chosen] += s
        counts[chosen] += 1

    return WeightedResult(
        bins=bins,
        masses=np.asarray(masses),
        counts=np.asarray(counts, dtype=np.int64),
        total_mass=float(sizes.sum()),
        d=d,
    )
