"""Weighted balls — the model's general load semantics.

Section 1 defines the general notion the paper's analysis specialises: "when
a ball of size s is placed into a bin of capacity c, then the effective load
that this bin experiences is s/c".  The theorems assume unit balls, but the
protocol itself is well-defined for arbitrary positive ball sizes; this
module extends the engine accordingly (an explicit extension beyond the
paper's analysis, flagged as such in DESIGN.md).

Semantics: a ball of size ``s`` probes ``d`` bins as usual; the candidate
loads-after are ``(W_i + s) / c_i`` where ``W_i`` is the total ball mass
already in bin ``i``; ties are broken toward larger capacity.  Loads are
floats here (exact integer cross-multiplication no longer applies), with a
relative epsilon guarding the tie comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bins.arrays import BinArray
from ..sampling.distributions import probability_model
from ..sampling.rngutils import make_rng, spawn_seed_sequences
from .ensemble import resolve_ensemble_seeds

__all__ = [
    "WeightedResult",
    "simulate_weighted",
    "WeightedEnsembleResult",
    "simulate_weighted_ensemble",
]

#: Relative tolerance under which two candidate loads count as tied.
_TIE_RTOL = 1e-12


@dataclass
class WeightedResult:
    """Outcome of a weighted-ball run."""

    bins: BinArray
    masses: np.ndarray
    counts: np.ndarray
    total_mass: float
    d: int

    @property
    def loads(self) -> np.ndarray:
        """Per-bin loads ``W_i / c_i``."""
        return self.masses / self.bins.capacities

    @property
    def max_load(self) -> float:
        """Maximum per-bin load."""
        return float(self.loads.max())

    @property
    def average_load(self) -> float:
        """``(Σ s) / C`` — the balanced optimum."""
        return self.total_mass / self.bins.total_capacity

    @property
    def gap(self) -> float:
        """``max − average``."""
        return self.max_load - self.average_load


def simulate_weighted(
    bins: BinArray,
    ball_sizes,
    d: int = 2,
    *,
    probabilities="proportional",
    seed=None,
) -> WeightedResult:
    """Allocate balls of the given sizes with the greedy d-choice protocol.

    Parameters
    ----------
    bins:
        Bin array (capacities define loads and default probabilities).
    ball_sizes:
        Positive sizes, processed in order (arrival order matters, exactly
        as for unit balls).
    d:
        Choices per ball.
    probabilities, seed:
        As in :func:`repro.core.simulation.simulate`.
    """
    if not isinstance(bins, BinArray):
        bins = BinArray(bins)
    sizes = np.asarray(ball_sizes, dtype=np.float64)
    if sizes.ndim != 1:
        raise ValueError(f"ball_sizes must be 1-D, got shape {sizes.shape}")
    if sizes.size and (not np.all(np.isfinite(sizes)) or np.any(sizes <= 0)):
        raise ValueError("ball sizes must be positive and finite")
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")

    model = probability_model(probabilities)
    sampler = model.sampler(bins.capacities)
    rng = make_rng(seed)
    m = sizes.size

    choices = sampler.sample((m, d), rng) if m else np.empty((0, d), dtype=np.int64)
    tie_u = rng.random(m)

    caps = bins.capacities.tolist()
    masses = [0.0] * bins.n
    counts = [0] * bins.n
    size_list = sizes.tolist()
    rows = choices.tolist()

    for j in range(m):
        s = size_list[j]
        row = rows[j]
        best = [row[0]]
        best_load = (masses[row[0]] + s) / caps[row[0]]
        for b in row[1:]:
            load = (masses[b] + s) / caps[b]
            if load < best_load * (1.0 - _TIE_RTOL):
                best = [b]
                best_load = load
            elif abs(load - best_load) <= _TIE_RTOL * max(abs(load), abs(best_load), 1.0):
                if b not in best:
                    best.append(b)
        if len(best) > 1:
            cmax = max(caps[b] for b in best)
            best = [b for b in best if caps[b] == cmax]
        chosen = best[0] if len(best) == 1 else best[int(tie_u[j] * len(best))]
        masses[chosen] += s
        counts[chosen] += 1

    return WeightedResult(
        bins=bins,
        masses=np.asarray(masses),
        counts=np.asarray(counts, dtype=np.int64),
        total_mass=float(sizes.sum()),
        d=d,
    )


@dataclass
class WeightedEnsembleResult:
    """Outcome of ``R`` lockstep weighted-ball replications."""

    bins: BinArray
    masses: np.ndarray
    counts: np.ndarray
    total_mass: float
    d: int
    repetitions: int
    seed_mode: str

    @property
    def loads(self) -> np.ndarray:
        """``(R, n)`` per-bin loads ``W_i / c_i``."""
        return self.masses / self.bins.capacities

    @property
    def max_loads(self) -> np.ndarray:
        """``(R,)`` per-replication maximum loads."""
        return self.loads.max(axis=1)

    @property
    def average_load(self) -> float:
        """``(Σ s) / C`` — shared by every replication."""
        return self.total_mass / self.bins.total_capacity


def _weighted_lockstep(masses, counts, caps, sizes, choices, tie_u):
    """Sequential weighted loop, vectorised across the replication axis.

    Reproduces :func:`simulate_weighted`'s float decision pipeline exactly
    per replication: the epsilon-guarded strict/tie comparison evolves a
    running best the same way the scalar candidate scan does (``best_load``
    only moves on a strict improvement), membership is every candidate at or
    after the last strict reset that ties the final ``best_load``
    (first-occurrence per bin), then max-capacity filter and the uniform
    pick via the position-aligned ``tie_u`` column.
    """
    R, m, d = choices.shape
    rbase = np.arange(R)
    dens = caps[choices]
    for j in range(m):
        idx = choices[:, j, :]
        den = dens[:, j, :]
        s = sizes[j]
        loads = (masses[rbase[:, None], idx] + s) / den
        best_load = loads[:, 0].copy()
        last_reset = np.zeros(R, dtype=np.int64)
        for i in range(1, d):
            better = loads[:, i] < best_load * (1.0 - _TIE_RTOL)
            np.copyto(best_load, loads[:, i], where=better)
            np.copyto(last_reset, i, where=better)
        # Membership: the reset candidate plus every later candidate within
        # the tie tolerance of the final best (earlier ones were flushed).
        scale = np.maximum(np.maximum(np.abs(loads), np.abs(best_load)[:, None]), 1.0)
        tie = np.abs(loads - best_load[:, None]) <= _TIE_RTOL * scale
        pos_idx = np.arange(d)
        mask = (pos_idx == last_reset[:, None]) | (
            (pos_idx > last_reset[:, None]) & tie
        )
        for i in range(1, d):
            dup = idx[:, i] == idx[:, 0]
            for i2 in range(1, i):
                dup |= idx[:, i] == idx[:, i2]
            mask[:, i] &= ~dup
        cmax = np.where(mask, den, -1).max(axis=1)
        mask &= den == cmax[:, None]
        tied = mask.sum(axis=1)
        sel = (tie_u[:, j] * tied).astype(np.int64)
        hit = (mask.cumsum(axis=1) == (sel + 1)[:, None]) & mask
        pos = hit.argmax(axis=1)
        chosen = idx[rbase, pos]
        masses[rbase, chosen] += s
        counts[rbase, chosen] += 1


def simulate_weighted_ensemble(
    bins: BinArray,
    ball_sizes,
    repetitions: int | None = None,
    d: int = 2,
    *,
    probabilities="proportional",
    seed=None,
    seeds=None,
    seed_mode: str = "spawn",
) -> WeightedEnsembleResult:
    """Allocate one shared ball-size sequence, ``R`` replications in lockstep.

    Parameters mirror :func:`simulate_weighted` plus the ensemble seeding
    knobs of :func:`repro.core.ensemble.simulate_ensemble`: with
    ``seed_mode="spawn"`` (or explicit ``seeds=``) replication ``r``
    reproduces ``simulate_weighted(bins, ball_sizes, seed=child_r, ...)``
    bit-exactly (same draw order, same epsilon tie handling, same float
    arithmetic); ``seed_mode="blocked"`` draws all replications' choices and
    tie uniforms from one generator.  All replications throw the *same*
    sizes in the same arrival order — per-repetition random sizes use the
    shared-params-per-block convention
    (:func:`repro.runtime.executor.block_parameter_rng`).
    """
    if not isinstance(bins, BinArray):
        bins = BinArray(bins)
    sizes = np.asarray(ball_sizes, dtype=np.float64)
    if sizes.ndim != 1:
        raise ValueError(f"ball_sizes must be 1-D, got shape {sizes.shape}")
    if sizes.size and (not np.all(np.isfinite(sizes)) or np.any(sizes <= 0)):
        raise ValueError("ball sizes must be positive and finite")
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    repetitions, seeds = resolve_ensemble_seeds(repetitions, seeds, seed_mode)

    R = repetitions
    m = sizes.size
    model = probability_model(probabilities)
    sampler = model.sampler(bins.capacities)
    choices = np.empty((R, m, d), dtype=np.int64)
    tie_u = np.empty((R, m), dtype=np.float64)
    if seed_mode == "spawn":
        if seeds is None:
            seeds = spawn_seed_sequences(seed, R)
        for r, s in enumerate(seeds):
            g = make_rng(s)
            # Match simulate_weighted's draw order: all choices, then all
            # tie uniforms, in one call each.
            choices[r] = (
                sampler.sample((m, d), g) if m else np.empty((0, d), dtype=np.int64)
            )
            tie_u[r] = g.random(m)
    else:
        block_rng = make_rng(seed)
        if m:
            choices[...] = sampler.sample((R, m, d), block_rng)
        tie_u[...] = block_rng.random((R, m))

    masses = np.zeros((R, bins.n), dtype=np.float64)
    counts = np.zeros((R, bins.n), dtype=np.int64)
    _weighted_lockstep(
        masses, counts, bins.capacities, sizes.tolist(), choices, tie_u
    )
    return WeightedEnsembleResult(
        bins=bins,
        masses=masses,
        counts=counts,
        total_mass=float(sizes.sum()),
        d=d,
        repetitions=R,
        seed_mode=seed_mode,
    )
