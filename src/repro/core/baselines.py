"""Baseline allocation strategies the paper compares against.

* :func:`one_choice` — the classical single-choice game (``d = 1``): every
  ball goes straight to its sampled bin.  No sequential dependency, so it is
  computed in one vectorised ``bincount``.
* :func:`greedy_uniform_probabilities` — the greedy ``d``-choice game with
  *uniform* selection probabilities over heterogeneous bins (the "natural
  1/n" alternative discussed in the introduction).
* :func:`standard_greedy` — Azar et al.'s Greedy[d] on unit bins: the
  standard game that Theorem 3 reduces to via Lemma 1.
* :func:`least_loaded_of_all` — the omniscient lower-bound strategy that
  inspects *every* bin for each ball (``d = n``); useful as an empirical
  floor in examples and ablations.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..bins.arrays import BinArray
from ..bins.generators import uniform_bins
from ..sampling.distributions import probability_model
from ..sampling.rngutils import make_rng
from .simulation import SimulationResult, simulate

__all__ = [
    "one_choice",
    "greedy_uniform_probabilities",
    "standard_greedy",
    "least_loaded_of_all",
]


def one_choice(
    bins: BinArray,
    m: int | None = None,
    *,
    probabilities="proportional",
    seed=None,
) -> SimulationResult:
    """Single-choice allocation: each ball lands on its one sampled bin.

    Because no decision depends on loads, the whole run vectorises into one
    sampling pass and a ``bincount``; the result is exchangeable with a
    ``simulate(..., d=1)`` run.
    """
    if not isinstance(bins, BinArray):
        bins = BinArray(bins)
    if m is None:
        m = bins.total_capacity
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")
    model = probability_model(probabilities)
    sampler = model.sampler(bins.capacities)
    rng = make_rng(seed)
    draws = sampler.sample(m, rng)
    counts = np.bincount(draws, minlength=bins.n).astype(np.int64)
    return SimulationResult(
        bins=bins,
        counts=counts,
        m=m,
        d=1,
        probability=model.name,
        tie_break="max_capacity",
    )


def greedy_uniform_probabilities(
    bins: BinArray,
    m: int | None = None,
    d: int = 2,
    *,
    seed=None,
    **kwargs,
) -> SimulationResult:
    """Greedy d-choice with uniform ``1/n`` selection probabilities.

    The introduction's alternative to capacity-proportional selection; with
    very skewed capacities it wastes most probes on small bins.
    """
    return simulate(bins, m, d, probabilities="uniform", seed=seed, **kwargs)


def standard_greedy(
    n: int,
    m: int | None = None,
    d: int = 2,
    *,
    seed=None,
    **kwargs,
) -> SimulationResult:
    """Azar et al.'s Greedy[d]: *n* unit bins, uniform choices.

    This is the process ``Q`` of Lemma 1 (with ``n = C``) and the reference
    point for Theorem 3's ``ln ln n / ln d`` bound.
    """
    return simulate(uniform_bins(n, 1), m, d, probabilities="uniform", seed=seed, **kwargs)


def least_loaded_of_all(
    bins: BinArray,
    m: int | None = None,
    *,
    seed=None,
) -> SimulationResult:
    """Allocate every ball to a globally least-loaded bin (``d = n``).

    Implements Algorithm 1's selection rule over *all* bins via a heap keyed
    by the post-allocation load, with the paper's max-capacity tie-break
    folded into the key (larger capacity first, then bin index, so the run
    is deterministic given the inputs — no randomness remains once every bin
    is a candidate).

    Heap keys use float loads; with the integral capacities of
    :class:`BinArray` and the tie-break fields appended, key collisions
    resolve deterministically and harmlessly.
    """
    if not isinstance(bins, BinArray):
        bins = BinArray(bins)
    if m is None:
        m = bins.total_capacity
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")
    del seed  # accepted for interface symmetry; the strategy is deterministic
    caps = bins.capacities
    counts = np.zeros(bins.n, dtype=np.int64)
    # (load_after, -capacity, index)
    heap = [(1.0 / caps[i], -int(caps[i]), i) for i in range(bins.n)]
    heapq.heapify(heap)
    for _ in range(m):
        _, neg_cap, i = heapq.heappop(heap)
        counts[i] += 1
        heapq.heappush(heap, ((counts[i] + 1.0) / caps[i], neg_cap, i))
    return SimulationResult(
        bins=bins,
        counts=counts,
        m=m,
        d=bins.n,
        probability="deterministic",
        tie_break="max_capacity",
    )
