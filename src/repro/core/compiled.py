"""Compiled kernel backend: the third engine tier, below the NumPy kernels.

PR 5 measured the ceiling of NumPy-call-granularity execution: at ``R = 64``
the per-ball lockstep kernel is ~40% memory-bound and the Python dispatch
loop costs ~0.2 µs per ball, so neither wider vectorisation nor deeper
wavefront tiling buys much more (ROADMAP "Wavefront kernels").  The
remaining headroom lives *below* NumPy: one compiled loop over the pre-drawn
``(R, k, d)`` choice batch touches each count exactly once, with no
per-ball Python frames and no temporary arrays at all.  This module
provides that tier — Numba-jitted when :mod:`numba` is importable, the same
functions as plain Python otherwise — for the per-ball reference kernel and
the three lockstep specialisations the wavefront kernels cover:

* **d=2 uniform** — equal capacities, the pure count comparison;
* **d=2 general** — heterogeneous capacities, shared ``(n,)`` or
  per-replication ``(R, n)`` matrices, exact integer cross-multiplication;
* **general d** — the tournament/tie-set reduction of
  :func:`repro.core.fast.run_batch`'s general loop.

Why there is no compiled *wavefront*: the wavefront decomposition exists to
amortise per-ball **call overhead** across conflict-free tiles.  A compiled
loop has no per-ball call overhead, so the conflict-free tiling degenerates
to the plain sequential commit order — which is exactly what the kernels
below execute.  They therefore realise the same decision sequence as both
the per-ball kernels and the wavefront kernels, and are held to the same
bit-identity bar (:func:`repro.core.equivalence.check_compiled_kernel_equivalence`,
:func:`repro.core.equivalence.check_experiment_backend_identity`).

Graceful fallback
-----------------
When Numba is absent the module stays fully importable and the kernels run
as ordinary Python functions — identical arithmetic, interpreter speed.
``"auto"`` dispatch (see below) only selects the compiled tier when Numba
is actually present, so a Numba-less installation never slows down; the
tests still force ``"compiled"`` at tiny scale to pin the fallback kernels
to the same bit-identity contract the jitted ones must meet.  Compilation
is cached on disk (``numba.njit(cache=True)``), so the one-time jit cost is
paid once per machine, not once per process — which is how ``make check``
keeps compiled warmup out of its timed sections.

Dispatch knob
-------------
``REPRO_BACKEND`` (environment) or :func:`set_backend` /
:func:`forced_backend` select ``"auto"`` (default: compiled iff Numba is
available), ``"numpy"`` (always the NumPy tier: wavefront/per-ball
dispatch as before this tier existed) or ``"compiled"`` (always these
kernels, jitted or not).  The drivers resolve the backend *before* the
wavefront heuristic — dispatch order is compiled > wavefront > per-ball —
and the equivalence suite runs every experiment under
``forced_backend("compiled")`` and ``forced_backend("numpy")`` on both
engines and asserts bit-identity, mirroring the ``REPRO_WAVEFRONT``
pattern of :mod:`repro.core.wavefront`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np

from .fast import _MODES
from .wavefront import validate_lockstep_batch

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba

    HAVE_NUMBA = True

    def _jit(func):
        """Disk-cached nopython jit; ``fastmath`` stays off — the contract
        is bit-identity, and reassociation would break the exact integer
        cross-multiplications' float height divisions."""
        return _numba.njit(cache=True, fastmath=False)(func)

except ImportError:  # pragma: no cover - the only path on numba-less CI
    HAVE_NUMBA = False

    def _jit(func):
        """Numba absent: run the kernel bodies as plain Python (identical
        arithmetic — the fallback the equivalence suite pins)."""
        return func


__all__ = [
    "HAVE_NUMBA",
    "BACKEND_MODES",
    "BACKEND_ENV_VAR",
    "get_backend",
    "set_backend",
    "forced_backend",
    "use_compiled",
    "warmup",
    "run_batch_compiled",
]

#: Recognised backend modes.
BACKEND_MODES = ("auto", "numpy", "compiled")

#: Environment knob, mirroring ``REPRO_WAVEFRONT``.
BACKEND_ENV_VAR = "REPRO_BACKEND"

_backend_override: str | None = None


def get_backend() -> str:
    """Current backend mode: the :func:`set_backend` override if set, else
    ``$REPRO_BACKEND``, else ``"auto"``."""
    if _backend_override is not None:
        return _backend_override
    mode = os.environ.get(BACKEND_ENV_VAR, "auto")
    return mode if mode in BACKEND_MODES else "auto"


def set_backend(mode: str | None) -> None:
    """Set (or with ``None`` clear) the process-wide backend override."""
    global _backend_override
    if mode is not None and mode not in BACKEND_MODES:
        raise ValueError(
            f"unknown backend {mode!r}; expected one of {BACKEND_MODES}"
        )
    _backend_override = mode


@contextmanager
def forced_backend(mode: str):
    """Pin the backend for a block (used by the equivalence suite to run
    identical workloads on the compiled and the NumPy tier)."""
    previous = _backend_override
    set_backend(mode)
    try:
        yield
    finally:
        set_backend(previous)


def use_compiled(mode: str | None = None) -> bool:
    """Backend dispatch predicate for the engine drivers.

    ``"compiled"`` forces these kernels (jitted when Numba is present,
    plain Python otherwise — correctness never depends on the jit);
    ``"numpy"`` forces the NumPy tier; ``"auto"`` selects the compiled
    tier exactly when Numba is importable.  No size heuristic is needed:
    with compilation disk-cached, the compiled loop wins from the first
    chunk at every scale the engines run.
    """
    mode = get_backend() if mode is None else mode
    if mode == "compiled":
        return True
    if mode == "numpy":
        return False
    return HAVE_NUMBA


# --------------------------------------------------------------------------
# Kernels.  Plain loops in numba-compatible form; ``_jit`` is the identity
# without numba.  All arithmetic mirrors repro.core.fast exactly: int64
# loads, exact cross-multiplication, tie coin ``tie_u < 0.5``, heights as
# the int64/int64 -> float64 division of the post-commit count — the same
# IEEE operations the NumPy kernels perform, hence bit-identical.
# --------------------------------------------------------------------------


def _kernel_d2_uniform(counts, cha, chb, tie_u, heights, record, capacity):
    """d=2, equal capacities: the pure count comparison (fig01–05 shape).

    Every tie-break mode degenerates to the fair coin when the candidate
    capacities are equal, so the mode does not enter.
    """
    R, k = cha.shape
    for r in range(R):
        row = counts[r]
        for j in range(k):
            a = cha[r, j]
            b = chb[r, j]
            na = row[a]
            nb = row[b]
            if nb < na:
                chosen = b
            elif na < nb:
                chosen = a
            else:
                chosen = a if tie_u[r, j] < 0.5 else b
            row[chosen] += 1
            if record:
                heights[r, j] = row[chosen] / capacity
    return counts


def _kernel_d2_general(counts, caps2, cha, chb, tie_u, mode, heights, record):
    """d=2, heterogeneous capacities (shared ``(1, n)`` or per-replication
    ``(R, n)`` rows), mirroring ``fast._run_batch_d2`` branch for branch."""
    R, k = cha.shape
    crows = caps2.shape[0]
    for r in range(R):
        row = counts[r]
        crow = caps2[r % crows]
        for j in range(k):
            a = cha[r, j]
            b = chb[r, j]
            if a == b:
                chosen = a
            else:
                ca = crow[a]
                cb = crow[b]
                la = (row[a] + 1) * cb
                lb = (row[b] + 1) * ca
                if la < lb:
                    chosen = a
                elif lb < la:
                    chosen = b
                elif mode == 0:  # prefer larger capacity
                    if ca > cb:
                        chosen = a
                    elif cb > ca:
                        chosen = b
                    else:
                        chosen = a if tie_u[r, j] < 0.5 else b
                elif mode == 2:  # prefer smaller capacity (ablation)
                    if ca < cb:
                        chosen = a
                    elif cb < ca:
                        chosen = b
                    else:
                        chosen = a if tie_u[r, j] < 0.5 else b
                else:  # uniform among the tied pair
                    chosen = a if tie_u[r, j] < 0.5 else b
            row[chosen] += 1
            if record:
                heights[r, j] = row[chosen] / crow[chosen]
    return counts


def _kernel_general(counts, caps2, choices, tie_u, mode, heights, record):
    """General ``d`` (and ``d = 1``): the tournament + first-occurrence tie
    set of ``fast._run_batch_general``, on a fixed-size scratch array."""
    R = counts.shape[0]
    k = choices.shape[1]
    d = choices.shape[2]
    crows = caps2.shape[0]
    best = np.empty(d, np.int64)
    for r in range(R):
        row = counts[r]
        crow = caps2[r % crows]
        for j in range(k):
            first = choices[r, j, 0]
            best[0] = first
            nb = 1
            best_num = row[first] + 1
            best_den = crow[first]
            for i in range(1, d):
                c = choices[r, j, i]
                num = row[c] + 1
                den = crow[c]
                lhs = num * best_den
                rhs = best_num * den
                if lhs < rhs:
                    best[0] = c
                    nb = 1
                    best_num = num
                    best_den = den
                elif lhs == rhs:
                    dup = False
                    for t in range(nb):
                        if best[t] == c:
                            dup = True
                            break
                    if not dup:
                        best[nb] = c
                        nb += 1
            if nb > 1:
                if mode == 0:
                    cbest = crow[best[0]]
                    for t in range(1, nb):
                        if crow[best[t]] > cbest:
                            cbest = crow[best[t]]
                    w = 0
                    for t in range(nb):
                        if crow[best[t]] == cbest:
                            best[w] = best[t]
                            w += 1
                    nb = w
                elif mode == 2:
                    cbest = crow[best[0]]
                    for t in range(1, nb):
                        if crow[best[t]] < cbest:
                            cbest = crow[best[t]]
                    w = 0
                    for t in range(nb):
                        if crow[best[t]] == cbest:
                            best[w] = best[t]
                            w += 1
                    nb = w
            if nb == 1:
                chosen = best[0]
            else:
                chosen = best[int(tie_u[r, j] * nb)]
            row[chosen] += 1
            if record:
                heights[r, j] = row[chosen] / crow[chosen]
    return counts


_kernel_d2_uniform = _jit(_kernel_d2_uniform)
_kernel_d2_general = _jit(_kernel_d2_general)
_kernel_general = _jit(_kernel_general)

#: Height placeholder handed to the kernels when no recording was asked
#: for; keeps every call signature identical so numba compiles each kernel
#: once per dtype layout instead of once per record flag.
_NO_HEIGHTS = np.empty((0, 0), dtype=np.float64)


def warmup(d_values=(1, 2, 3)) -> bool:
    """Force-compile (or cache-load) every kernel at toy scale.

    Benchmarks and CI call this outside their timed sections so the jit
    cost (first machine: ~seconds; cached: ~milliseconds) never pollutes a
    floor measurement.  Returns :data:`HAVE_NUMBA` — without numba this is
    a cheap no-op pass through the Python fallbacks.
    """
    for d in d_values:
        for caps in (np.ones(4, dtype=np.int64), np.arange(1, 5, dtype=np.int64)):
            counts = np.zeros((2, 4), dtype=np.int64)
            choices = np.tile(np.arange(d, dtype=np.int64) % 4, (2, 3, 1))
            tie_u = np.full((2, 3), 0.25)
            heights = np.empty((2, 3), dtype=np.float64)
            run_batch_compiled(counts, caps, choices, tie_u, heights=heights)
            run_batch_compiled(counts, caps, choices, tie_u)
    return HAVE_NUMBA


def run_batch_compiled(
    counts: np.ndarray,
    capacities,
    choices: np.ndarray,
    tie_uniforms: np.ndarray,
    *,
    tie_break: str = "max_capacity",
    heights: np.ndarray | None = None,
    workspace=None,
) -> np.ndarray:
    """Allocate one batch of balls with the compiled tier.

    Drop-in replacement for
    :func:`repro.core.ensemble.run_batch_ensemble` /
    :func:`repro.core.wavefront.run_batch_wavefront` — same parameters,
    same validation (shared via
    :func:`repro.core.wavefront.validate_lockstep_batch`), ``counts`` is
    the ``(R, n)`` int64 state mutated in place — dispatching to one of
    the three compiled specialisations (d=2 uniform, d=2 general incl.
    ``(R, n)`` capacity matrices, general d).  Bit-identical to the NumPy
    kernels for every replication, heights included; *workspace* is
    accepted for driver-call symmetry and ignored (the compiled loops
    need no temporaries).
    """
    del workspace
    mode, counts, caps, tie_uniforms = validate_lockstep_batch(
        counts, capacities, choices, tie_uniforms, tie_break, heights
    )
    R, n = counts.shape
    _, k, d = choices.shape
    if k == 0:
        return counts
    if choices.dtype != np.int64:
        choices = choices.astype(np.int64)
    if tie_uniforms.dtype != np.float64:
        tie_uniforms = tie_uniforms.astype(np.float64)
    caps2 = caps if caps.ndim == 2 else caps[None, :]
    record = heights is not None
    h = heights if record else _NO_HEIGHTS
    if d == 2:
        cha = np.ascontiguousarray(choices[:, :, 0])
        chb = np.ascontiguousarray(choices[:, :, 1])
        if caps.ndim == 1 and bool((caps == caps[0]).all()):
            _kernel_d2_uniform(
                counts, cha, chb, tie_uniforms, h, record, int(caps[0])
            )
        else:
            _kernel_d2_general(
                counts, caps2, cha, chb, tie_uniforms, np.int64(mode), h, record
            )
        return counts
    _kernel_general(
        counts, caps2, choices, tie_uniforms, np.int64(mode), h, record
    )
    return counts


# _MODES is imported for documentation symmetry with the sibling kernels
# (validate_lockstep_batch resolves tie modes through it); keep the name
# referenced so linters see the contract.
assert set(_MODES) == {"max_capacity", "uniform", "min_capacity"}
