"""Compiled kernel backend: the third engine tier, below the NumPy kernels.

PR 5 measured the ceiling of NumPy-call-granularity execution: at ``R = 64``
the per-ball lockstep kernel is ~40% memory-bound and the Python dispatch
loop costs ~0.2 µs per ball, so neither wider vectorisation nor deeper
wavefront tiling buys much more (ROADMAP "Wavefront kernels").  The
remaining headroom lives *below* NumPy: one compiled loop over the pre-drawn
``(R, k, d)`` choice batch touches each count exactly once, with no
per-ball Python frames and no temporary arrays at all.  This module
provides that tier — Numba-jitted when :mod:`numba` is importable, the same
functions as plain Python otherwise — for the per-ball reference kernel and
the three lockstep specialisations the wavefront kernels cover:

* **d=2 uniform** — equal capacities, the pure count comparison;
* **d=2 general** — heterogeneous capacities, shared ``(n,)`` or
  per-replication ``(R, n)`` matrices, exact integer cross-multiplication;
* **general d** — the tournament/tie-set reduction of
  :func:`repro.core.fast.run_batch`'s general loop.

Why there is no compiled *wavefront*: the wavefront decomposition exists to
amortise per-ball **call overhead** across conflict-free tiles.  A compiled
loop has no per-ball call overhead, so the conflict-free tiling degenerates
to the plain sequential commit order — which is exactly what the kernels
below execute.  They therefore realise the same decision sequence as both
the per-ball kernels and the wavefront kernels, and are held to the same
bit-identity bar (:func:`repro.core.equivalence.check_compiled_kernel_equivalence`,
:func:`repro.core.equivalence.check_experiment_backend_identity`).

Graceful fallback
-----------------
When Numba is absent the module stays fully importable and the kernels run
as ordinary Python functions — identical arithmetic, interpreter speed.
``"auto"`` dispatch (see below) only selects the compiled tier when Numba
is actually present, so a Numba-less installation never slows down; the
tests still force ``"compiled"`` at tiny scale to pin the fallback kernels
to the same bit-identity contract the jitted ones must meet.  Compilation
is cached on disk (``numba.njit(cache=True)``), so the one-time jit cost is
paid once per machine, not once per process — which is how ``make check``
keeps compiled warmup out of its timed sections.

Dispatch knob
-------------
``REPRO_BACKEND`` (environment) or :func:`set_backend` /
:func:`forced_backend` select ``"auto"`` (default: compiled iff Numba is
available), ``"numpy"`` (always the NumPy tier: wavefront/per-ball
dispatch as before this tier existed) or ``"compiled"`` (always these
kernels, jitted or not).  The drivers resolve the backend *before* the
wavefront heuristic — dispatch order is compiled > wavefront > per-ball —
and the equivalence suite runs every experiment under
``forced_backend("compiled")`` and ``forced_backend("numpy")`` on both
engines and asserts bit-identity, mirroring the ``REPRO_WAVEFRONT``
pattern of :mod:`repro.core.wavefront`.

Replication-parallel execution
------------------------------
Every Monte-Carlo replication is an independent row of the ``(R, n)``
counts matrix, so the compiled tier also ships ``numba.prange`` variants
of all three specialisations that parallelise over the ``R`` axis *only*:
each thread owns whole replication rows (counts, heights), there is zero
cross-row communication, and the per-row arithmetic is byte-for-byte the
serial kernels' — **no thread count can ever change a number**.  The
serial kernels remain the numba-less same-source fallback (without numba
``prange`` is plain ``range``, so the parallel variants run serially
through the interpreter with identical arithmetic).

``REPRO_THREADS`` (environment) or :func:`set_threads` /
:func:`forced_threads` pick the per-process thread budget: ``"auto"``
(default) resolves to ``min(cpu_count, R)`` with a work-size floor
(:data:`PARALLEL_MIN_WORK`) so tiny batches stay serial; an explicit
``N >= 1`` forces that budget at every scale (``N = 1`` pins the serial
kernels).  The drivers (:func:`repro.core.simulation.simulate`,
:func:`repro.core.ensemble.simulate_ensemble`) resolve the budget once
per run alongside ``REPRO_BACKEND``.  Fleet safety: worker pools
(:func:`repro.runtime.executor.run_tasks`) and fabric-spawned workers
(:mod:`repro.runtime.fabric.launcher`) pin their children to
:func:`worker_thread_budget` — ``1`` unless the parent explicitly chose a
budget — so ``workers × threads`` never oversubscribes the cores.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np

from .fast import _MODES
from .wavefront import validate_lockstep_batch

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
    from numba import prange

    HAVE_NUMBA = True

    def _jit(func):
        """Disk-cached nopython jit; ``fastmath`` stays off — the contract
        is bit-identity, and reassociation would break the exact integer
        cross-multiplications' float height divisions."""
        return _numba.njit(cache=True, fastmath=False)(func)

    def _jit_parallel(func):
        """Disk-cached nopython jit with ``prange`` threading over the
        replication axis; ``fastmath`` stays off for the same bit-identity
        reason as :func:`_jit` (rows never share state, so threading alone
        cannot reassociate anything either)."""
        return _numba.njit(cache=True, fastmath=False, parallel=True)(func)

except ImportError:  # pragma: no cover - the only path on numba-less CI
    HAVE_NUMBA = False

    #: Without numba the parallel kernel source runs serially — ``prange``
    #: degenerates to ``range``, so both kernel families are the identical
    #: plain-Python arithmetic and the thread knob cannot change a number.
    prange = range

    def _jit(func):
        """Numba absent: run the kernel bodies as plain Python (identical
        arithmetic — the fallback the equivalence suite pins)."""
        return func

    _jit_parallel = _jit


__all__ = [
    "HAVE_NUMBA",
    "BACKEND_MODES",
    "BACKEND_ENV_VAR",
    "THREADS_ENV_VAR",
    "PARALLEL_MIN_WORK",
    "get_backend",
    "set_backend",
    "forced_backend",
    "use_compiled",
    "get_threads",
    "set_threads",
    "forced_threads",
    "resolve_threads",
    "worker_thread_budget",
    "cpu_budget",
    "warmup",
    "run_batch_compiled",
]

#: Recognised backend modes.
BACKEND_MODES = ("auto", "numpy", "compiled")

#: Environment knob, mirroring ``REPRO_WAVEFRONT``.
BACKEND_ENV_VAR = "REPRO_BACKEND"

_backend_override: str | None = None


def get_backend() -> str:
    """Current backend mode: the :func:`set_backend` override if set, else
    ``$REPRO_BACKEND``, else ``"auto"``."""
    if _backend_override is not None:
        return _backend_override
    mode = os.environ.get(BACKEND_ENV_VAR, "auto")
    return mode if mode in BACKEND_MODES else "auto"


def set_backend(mode: str | None) -> None:
    """Set (or with ``None`` clear) the process-wide backend override."""
    global _backend_override
    if mode is not None and mode not in BACKEND_MODES:
        raise ValueError(
            f"unknown backend {mode!r}; expected one of {BACKEND_MODES}"
        )
    _backend_override = mode


@contextmanager
def forced_backend(mode: str):
    """Pin the backend for a block (used by the equivalence suite to run
    identical workloads on the compiled and the NumPy tier)."""
    previous = _backend_override
    set_backend(mode)
    try:
        yield
    finally:
        set_backend(previous)


def use_compiled(mode: str | None = None) -> bool:
    """Backend dispatch predicate for the engine drivers.

    ``"compiled"`` forces these kernels (jitted when Numba is present,
    plain Python otherwise — correctness never depends on the jit);
    ``"numpy"`` forces the NumPy tier; ``"auto"`` selects the compiled
    tier exactly when Numba is importable.  No size heuristic is needed:
    with compilation disk-cached, the compiled loop wins from the first
    chunk at every scale the engines run.
    """
    mode = get_backend() if mode is None else mode
    if mode == "compiled":
        return True
    if mode == "numpy":
        return False
    return HAVE_NUMBA


# --------------------------------------------------------------------------
# Thread budget.  Mirrors the backend knob exactly: env var, module
# override, context manager — resolved once per run by the drivers, never
# inside the chunk loop.
# --------------------------------------------------------------------------

#: Environment knob for the per-process thread budget, mirroring
#: ``REPRO_BACKEND``.
THREADS_ENV_VAR = "REPRO_THREADS"

#: ``"auto"`` work-size floor, in total batch elements (``R * k``): below
#: this the thread-pool fork/join overhead exceeds the loop itself, so
#: tiny batches stay on the serial kernels.  Explicit budgets bypass it.
PARALLEL_MIN_WORK = 1 << 16

_threads_override: str | int | None = None


def _parse_threads(value, source: str):
    """Normalise a threads setting to ``"auto"`` or a positive int."""
    if value == "auto":
        return "auto"
    try:
        n = int(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"invalid thread budget {value!r} from {source}; "
            f"expected 'auto' or a positive integer"
        ) from None
    if n < 1:
        raise ValueError(
            f"invalid thread budget {value!r} from {source}; "
            f"expected 'auto' or a positive integer"
        )
    return n


def get_threads() -> str | int:
    """Current thread budget: the :func:`set_threads` override if set, else
    ``$REPRO_THREADS``, else ``"auto"``.  Returns ``"auto"`` or a positive
    int; an unparseable environment value falls back to ``"auto"`` (the
    knob degrades, it never crashes a run)."""
    if _threads_override is not None:
        return _threads_override
    raw = os.environ.get(THREADS_ENV_VAR)
    if raw is None:
        return "auto"
    try:
        return _parse_threads(raw, THREADS_ENV_VAR)
    except ValueError:
        return "auto"


def set_threads(value: str | int | None) -> None:
    """Set (or with ``None`` clear) the process-wide thread-budget override.

    Accepts ``"auto"`` or a positive integer (``1`` pins the serial
    kernels at every scale).
    """
    global _threads_override
    if value is not None:
        value = _parse_threads(value, "set_threads")
    _threads_override = value


@contextmanager
def forced_threads(value: str | int):
    """Pin the thread budget for a block (used by the equivalence suite to
    run identical workloads under 1 vs 2 vs 7 threads)."""
    previous = _threads_override
    set_threads(value)
    try:
        yield
    finally:
        set_threads(previous)


def cpu_budget() -> int:
    """Core count the ``"auto"`` budget is allowed to fill (monkeypatched
    by tests that simulate multi-core boxes on single-core CI)."""
    return os.cpu_count() or 1


def resolve_threads(repetitions: int, work: int | None = None) -> int:
    """Resolve the knob to a concrete per-run thread count.

    An explicit budget is returned unchanged (clamping to the machine
    happens at kernel-entry via ``numba.set_num_threads``; ``prange``
    handles ``threads > R`` natively by leaving threads idle).  ``"auto"``
    resolves to ``min(cpu_budget(), repetitions)``, except that batches
    below :data:`PARALLEL_MIN_WORK` total elements (*work*, typically
    ``R * k``) stay serial — the fork/join overhead would dominate.
    """
    setting = get_threads()
    if setting != "auto":
        return setting
    if work is not None and work < PARALLEL_MIN_WORK:
        return 1
    return max(1, min(cpu_budget(), repetitions))


def worker_thread_budget() -> str:
    """Thread budget (as an env-var string) for a child worker process.

    ``"1"`` under ``"auto"`` — a pool/fabric parent already parallelises
    across workers, so letting each child auto-expand would oversubscribe
    ``workers × cores`` — and the explicit value when the caller forced
    one (the overridable escape hatch for few-worker/many-core fleets).
    """
    setting = get_threads()
    return "1" if setting == "auto" else str(setting)


@contextmanager
def _thread_count(n: int):
    """Scope numba's thread pool to *n* for one kernel call, clamped to
    the layer's hard cap, restoring the previous setting after.  A no-op
    without numba (``prange`` is ``range``) or for the serial path."""
    if not HAVE_NUMBA or n <= 1:
        yield
        return
    previous = _numba.get_num_threads()
    _numba.set_num_threads(max(1, min(n, _numba.config.NUMBA_NUM_THREADS)))
    try:
        yield
    finally:
        _numba.set_num_threads(previous)


# --------------------------------------------------------------------------
# Kernels.  Plain loops in numba-compatible form; ``_jit`` is the identity
# without numba.  All arithmetic mirrors repro.core.fast exactly: int64
# loads, exact cross-multiplication, tie coin ``tie_u < 0.5``, heights as
# the int64/int64 -> float64 division of the post-commit count — the same
# IEEE operations the NumPy kernels perform, hence bit-identical.
# --------------------------------------------------------------------------


def _kernel_d2_uniform(counts, cha, chb, tie_u, heights, record, capacity):
    """d=2, equal capacities: the pure count comparison (fig01–05 shape).

    Every tie-break mode degenerates to the fair coin when the candidate
    capacities are equal, so the mode does not enter.
    """
    R, k = cha.shape
    for r in range(R):
        row = counts[r]
        for j in range(k):
            a = cha[r, j]
            b = chb[r, j]
            na = row[a]
            nb = row[b]
            if nb < na:
                chosen = b
            elif na < nb:
                chosen = a
            else:
                chosen = a if tie_u[r, j] < 0.5 else b
            row[chosen] += 1
            if record:
                heights[r, j] = row[chosen] / capacity
    return counts


def _kernel_d2_general(counts, caps2, cha, chb, tie_u, mode, heights, record):
    """d=2, heterogeneous capacities (shared ``(1, n)`` or per-replication
    ``(R, n)`` rows), mirroring ``fast._run_batch_d2`` branch for branch."""
    R, k = cha.shape
    crows = caps2.shape[0]
    for r in range(R):
        row = counts[r]
        crow = caps2[r % crows]
        for j in range(k):
            a = cha[r, j]
            b = chb[r, j]
            if a == b:
                chosen = a
            else:
                ca = crow[a]
                cb = crow[b]
                la = (row[a] + 1) * cb
                lb = (row[b] + 1) * ca
                if la < lb:
                    chosen = a
                elif lb < la:
                    chosen = b
                elif mode == 0:  # prefer larger capacity
                    if ca > cb:
                        chosen = a
                    elif cb > ca:
                        chosen = b
                    else:
                        chosen = a if tie_u[r, j] < 0.5 else b
                elif mode == 2:  # prefer smaller capacity (ablation)
                    if ca < cb:
                        chosen = a
                    elif cb < ca:
                        chosen = b
                    else:
                        chosen = a if tie_u[r, j] < 0.5 else b
                else:  # uniform among the tied pair
                    chosen = a if tie_u[r, j] < 0.5 else b
            row[chosen] += 1
            if record:
                heights[r, j] = row[chosen] / crow[chosen]
    return counts


def _kernel_general(counts, caps2, choices, tie_u, mode, heights, record):
    """General ``d`` (and ``d = 1``): the tournament + first-occurrence tie
    set of ``fast._run_batch_general``, on a fixed-size scratch array."""
    R = counts.shape[0]
    k = choices.shape[1]
    d = choices.shape[2]
    crows = caps2.shape[0]
    best = np.empty(d, np.int64)
    for r in range(R):
        row = counts[r]
        crow = caps2[r % crows]
        for j in range(k):
            first = choices[r, j, 0]
            best[0] = first
            nb = 1
            best_num = row[first] + 1
            best_den = crow[first]
            for i in range(1, d):
                c = choices[r, j, i]
                num = row[c] + 1
                den = crow[c]
                lhs = num * best_den
                rhs = best_num * den
                if lhs < rhs:
                    best[0] = c
                    nb = 1
                    best_num = num
                    best_den = den
                elif lhs == rhs:
                    dup = False
                    for t in range(nb):
                        if best[t] == c:
                            dup = True
                            break
                    if not dup:
                        best[nb] = c
                        nb += 1
            if nb > 1:
                if mode == 0:
                    cbest = crow[best[0]]
                    for t in range(1, nb):
                        if crow[best[t]] > cbest:
                            cbest = crow[best[t]]
                    w = 0
                    for t in range(nb):
                        if crow[best[t]] == cbest:
                            best[w] = best[t]
                            w += 1
                    nb = w
                elif mode == 2:
                    cbest = crow[best[0]]
                    for t in range(1, nb):
                        if crow[best[t]] < cbest:
                            cbest = crow[best[t]]
                    w = 0
                    for t in range(nb):
                        if crow[best[t]] == cbest:
                            best[w] = best[t]
                            w += 1
                    nb = w
            if nb == 1:
                chosen = best[0]
            else:
                chosen = best[int(tie_u[r, j] * nb)]
            row[chosen] += 1
            if record:
                heights[r, j] = row[chosen] / crow[chosen]
    return counts


# --------------------------------------------------------------------------
# Replication-parallel variants.  Byte-for-byte the serial loop bodies with
# ``prange`` over the R axis — every thread owns whole rows of counts and
# heights, reads only its own ``caps2`` row, and never touches another
# row's state, so the commit sequence *within* each replication (the only
# ordering the contract defines) is untouched and no thread count can
# change a number.  The one structural difference: ``_kernel_general_par``
# allocates its tie-set scratch inside the r-loop so each thread gets a
# private copy (numba privatises prange-body allocations; the serial
# kernel hoists it purely as an allocation saving).
# --------------------------------------------------------------------------


def _kernel_d2_uniform_par(counts, cha, chb, tie_u, heights, record, capacity):
    """Parallel twin of :func:`_kernel_d2_uniform` (rows over ``prange``)."""
    R, k = cha.shape
    for r in prange(R):
        row = counts[r]
        for j in range(k):
            a = cha[r, j]
            b = chb[r, j]
            na = row[a]
            nb = row[b]
            if nb < na:
                chosen = b
            elif na < nb:
                chosen = a
            else:
                chosen = a if tie_u[r, j] < 0.5 else b
            row[chosen] += 1
            if record:
                heights[r, j] = row[chosen] / capacity
    return counts


def _kernel_d2_general_par(counts, caps2, cha, chb, tie_u, mode, heights,
                           record):
    """Parallel twin of :func:`_kernel_d2_general` (rows over ``prange``)."""
    R, k = cha.shape
    crows = caps2.shape[0]
    for r in prange(R):
        row = counts[r]
        crow = caps2[r % crows]
        for j in range(k):
            a = cha[r, j]
            b = chb[r, j]
            if a == b:
                chosen = a
            else:
                ca = crow[a]
                cb = crow[b]
                la = (row[a] + 1) * cb
                lb = (row[b] + 1) * ca
                if la < lb:
                    chosen = a
                elif lb < la:
                    chosen = b
                elif mode == 0:  # prefer larger capacity
                    if ca > cb:
                        chosen = a
                    elif cb > ca:
                        chosen = b
                    else:
                        chosen = a if tie_u[r, j] < 0.5 else b
                elif mode == 2:  # prefer smaller capacity (ablation)
                    if ca < cb:
                        chosen = a
                    elif cb < ca:
                        chosen = b
                    else:
                        chosen = a if tie_u[r, j] < 0.5 else b
                else:  # uniform among the tied pair
                    chosen = a if tie_u[r, j] < 0.5 else b
            row[chosen] += 1
            if record:
                heights[r, j] = row[chosen] / crow[chosen]
    return counts


def _kernel_general_par(counts, caps2, choices, tie_u, mode, heights, record):
    """Parallel twin of :func:`_kernel_general`; the tie-set scratch is
    per-row so threads never share it."""
    R = counts.shape[0]
    k = choices.shape[1]
    d = choices.shape[2]
    crows = caps2.shape[0]
    for r in prange(R):
        best = np.empty(d, np.int64)
        row = counts[r]
        crow = caps2[r % crows]
        for j in range(k):
            first = choices[r, j, 0]
            best[0] = first
            nb = 1
            best_num = row[first] + 1
            best_den = crow[first]
            for i in range(1, d):
                c = choices[r, j, i]
                num = row[c] + 1
                den = crow[c]
                lhs = num * best_den
                rhs = best_num * den
                if lhs < rhs:
                    best[0] = c
                    nb = 1
                    best_num = num
                    best_den = den
                elif lhs == rhs:
                    dup = False
                    for t in range(nb):
                        if best[t] == c:
                            dup = True
                            break
                    if not dup:
                        best[nb] = c
                        nb += 1
            if nb > 1:
                if mode == 0:
                    cbest = crow[best[0]]
                    for t in range(1, nb):
                        if crow[best[t]] > cbest:
                            cbest = crow[best[t]]
                    w = 0
                    for t in range(nb):
                        if crow[best[t]] == cbest:
                            best[w] = best[t]
                            w += 1
                    nb = w
                elif mode == 2:
                    cbest = crow[best[0]]
                    for t in range(1, nb):
                        if crow[best[t]] < cbest:
                            cbest = crow[best[t]]
                    w = 0
                    for t in range(nb):
                        if crow[best[t]] == cbest:
                            best[w] = best[t]
                            w += 1
                    nb = w
            if nb == 1:
                chosen = best[0]
            else:
                chosen = best[int(tie_u[r, j] * nb)]
            row[chosen] += 1
            if record:
                heights[r, j] = row[chosen] / crow[chosen]
    return counts


_kernel_d2_uniform = _jit(_kernel_d2_uniform)
_kernel_d2_general = _jit(_kernel_d2_general)
_kernel_general = _jit(_kernel_general)
_kernel_d2_uniform_par = _jit_parallel(_kernel_d2_uniform_par)
_kernel_d2_general_par = _jit_parallel(_kernel_d2_general_par)
_kernel_general_par = _jit_parallel(_kernel_general_par)

#: Height placeholder handed to the kernels when no recording was asked
#: for; keeps every call signature identical so numba compiles each kernel
#: once per dtype layout instead of once per record flag.
_NO_HEIGHTS = np.empty((0, 0), dtype=np.float64)


def warmup(d_values=(1, 2, 3)) -> bool:
    """Force-compile (or cache-load) every kernel at toy scale.

    Benchmarks and CI call this outside their timed sections so the jit
    cost (first machine: ~seconds; cached: ~milliseconds) never pollutes a
    floor measurement.  Covers both kernel families — ``threads=2`` also
    spins up numba's thread pool, whose first-use cost would otherwise
    land in the first timed parallel section.  Returns :data:`HAVE_NUMBA`
    — without numba this is a cheap no-op pass through the Python
    fallbacks.
    """
    for d in d_values:
        for caps in (np.ones(4, dtype=np.int64), np.arange(1, 5, dtype=np.int64)):
            for threads in (1, 2):
                counts = np.zeros((2, 4), dtype=np.int64)
                choices = np.tile(np.arange(d, dtype=np.int64) % 4, (2, 3, 1))
                tie_u = np.full((2, 3), 0.25)
                heights = np.empty((2, 3), dtype=np.float64)
                run_batch_compiled(counts, caps, choices, tie_u,
                                   heights=heights, threads=threads)
                run_batch_compiled(counts, caps, choices, tie_u,
                                   threads=threads)
    return HAVE_NUMBA


def run_batch_compiled(
    counts: np.ndarray,
    capacities,
    choices: np.ndarray,
    tie_uniforms: np.ndarray,
    *,
    tie_break: str = "max_capacity",
    heights: np.ndarray | None = None,
    workspace=None,
    threads: int | None = None,
) -> np.ndarray:
    """Allocate one batch of balls with the compiled tier.

    Drop-in replacement for
    :func:`repro.core.ensemble.run_batch_ensemble` /
    :func:`repro.core.wavefront.run_batch_wavefront` — same parameters,
    same validation (shared via
    :func:`repro.core.wavefront.validate_lockstep_batch`), ``counts`` is
    the ``(R, n)`` int64 state mutated in place — dispatching to one of
    the three compiled specialisations (d=2 uniform, d=2 general incl.
    ``(R, n)`` capacity matrices, general d).  Bit-identical to the NumPy
    kernels for every replication, heights included; *workspace* is
    accepted for driver-call symmetry and ignored (the compiled loops
    need no temporaries).

    *threads* picks the kernel family: ``> 1`` runs the ``prange``
    variants under a thread budget scoped to this call, ``1`` (or
    ``None``-resolved-to-1) the serial kernels.  ``None`` resolves the
    ``REPRO_THREADS`` knob per batch via :func:`resolve_threads`; the
    drivers resolve once per run and pass the result explicitly.  Either
    family, any budget: bit-identical.
    """
    del workspace
    mode, counts, caps, tie_uniforms = validate_lockstep_batch(
        counts, capacities, choices, tie_uniforms, tie_break, heights
    )
    R, n = counts.shape
    _, k, d = choices.shape
    if k == 0:
        return counts
    if choices.dtype != np.int64:
        choices = choices.astype(np.int64)
    if tie_uniforms.dtype != np.float64:
        tie_uniforms = tie_uniforms.astype(np.float64)
    if threads is None:
        threads = resolve_threads(R, R * k)
    parallel = threads > 1
    caps2 = caps if caps.ndim == 2 else caps[None, :]
    record = heights is not None
    h = heights if record else _NO_HEIGHTS
    with _thread_count(threads):
        if d == 2:
            cha = np.ascontiguousarray(choices[:, :, 0])
            chb = np.ascontiguousarray(choices[:, :, 1])
            if caps.ndim == 1 and bool((caps == caps[0]).all()):
                kern = _kernel_d2_uniform_par if parallel else _kernel_d2_uniform
                kern(counts, cha, chb, tie_uniforms, h, record, int(caps[0]))
            else:
                kern = _kernel_d2_general_par if parallel else _kernel_d2_general
                kern(counts, caps2, cha, chb, tie_uniforms, np.int64(mode),
                     h, record)
            return counts
        kern = _kernel_general_par if parallel else _kernel_general
        kern(counts, caps2, choices, tie_uniforms, np.int64(mode), h, record)
    return counts


# _MODES is imported for documentation symmetry with the sibling kernels
# (validate_lockstep_batch resolves tie modes through it); keep the name
# referenced so linters see the contract.
assert set(_MODES) == {"max_capacity", "uniform", "min_capacity"}
