"""Insertions *and* deletions — the dynamic balls-into-bins game.

Real systems delete data: requests finish, files are removed.  The classic
dynamic extension of the multiple-choice game interleaves insertions
(greedy d-choice, as in Algorithm 1) with deletions of random *balls*.
This module simulates that process on heterogeneous bins so users can check
that the paper's balance survives churn in the ball population (an
extension beyond the paper's static analysis, flagged in DESIGN.md).

Deletion model: ``delete`` removes a ball chosen uniformly at random among
the balls currently in the system (oldest-first and random-ball behave
identically for the load vector since balls are exchangeable within a bin).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bins.arrays import BinArray
from ..sampling.distributions import probability_model
from ..sampling.rngutils import make_rng

__all__ = ["DynamicsResult", "simulate_insert_delete"]


@dataclass
class DynamicsResult:
    """Trajectory of a dynamic insert/delete run."""

    bins: BinArray
    counts: np.ndarray
    operations: int
    inserts: int
    deletes: int
    max_load_trajectory: np.ndarray = field(repr=False)
    balls_trajectory: np.ndarray = field(repr=False)

    @property
    def loads(self) -> np.ndarray:
        """Final per-bin loads."""
        return self.counts / self.bins.capacities

    @property
    def max_load(self) -> float:
        """Final maximum load."""
        return float(self.loads.max())

    @property
    def peak_max_load(self) -> float:
        """Highest max load observed anywhere in the trajectory."""
        return float(self.max_load_trajectory.max()) if self.max_load_trajectory.size else 0.0


def simulate_insert_delete(
    bins: BinArray,
    operations: int,
    *,
    d: int = 2,
    insert_probability: float = 0.5,
    warmup_inserts: int = 0,
    probabilities="proportional",
    record_every: int = 1,
    seed=None,
) -> DynamicsResult:
    """Run a random insert/delete workload.

    Parameters
    ----------
    bins:
        The bin array.
    operations:
        Number of operations after warm-up.  Each is an insert with
        probability *insert_probability*, else a delete (no-op when the
        system is empty).
    warmup_inserts:
        Pure insertions executed first (to reach a steady population).
    record_every:
        Trajectory sampling stride (1 = record after every operation).
    """
    if not isinstance(bins, BinArray):
        bins = BinArray(bins)
    if operations < 0:
        raise ValueError(f"operations must be non-negative, got {operations}")
    if not 0.0 <= insert_probability <= 1.0:
        raise ValueError(f"insert_probability must be in [0, 1], got {insert_probability}")
    if warmup_inserts < 0:
        raise ValueError(f"warmup_inserts must be non-negative, got {warmup_inserts}")
    if record_every < 1:
        raise ValueError(f"record_every must be >= 1, got {record_every}")
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")

    rng = make_rng(seed)
    model = probability_model(probabilities)
    sampler = model.sampler(bins.capacities)
    caps = bins.capacities.tolist()
    caps_arr = bins.capacities
    counts = [0] * bins.n
    total_balls = 0
    inserts = deletes = 0

    def insert_one() -> None:
        nonlocal total_balls, inserts
        row = sampler.sample(d, rng).tolist()
        best = [row[0]]
        best_num = counts[row[0]] + 1
        best_den = caps[row[0]]
        for b in row[1:]:
            num = counts[b] + 1
            den = caps[b]
            lhs = num * best_den
            rhs = best_num * den
            if lhs < rhs:
                best = [b]
                best_num = num
                best_den = den
            elif lhs == rhs and b not in best:
                best.append(b)
        if len(best) > 1:
            cmax = max(caps[b] for b in best)
            best = [b for b in best if caps[b] == cmax]
        chosen = best[0] if len(best) == 1 else best[int(rng.random() * len(best))]
        counts[chosen] += 1
        total_balls += 1
        inserts += 1

    def delete_one() -> None:
        nonlocal total_balls, deletes
        if total_balls == 0:
            return
        # pick a uniform ball: bin b with probability counts[b]/total
        target = int(rng.integers(0, total_balls))
        acc = 0
        for b, c in enumerate(counts):
            acc += c
            if target < acc:
                counts[b] -= 1
                total_balls -= 1
                deletes += 1
                return

    for _ in range(warmup_inserts):
        insert_one()

    traj_max: list[float] = []
    traj_balls: list[int] = []
    ops = rng.random(operations) < insert_probability
    for i, is_insert in enumerate(ops):
        if is_insert:
            insert_one()
        else:
            delete_one()
        if (i + 1) % record_every == 0:
            arr = np.asarray(counts, dtype=np.int64)
            traj_max.append(float((arr / caps_arr).max()))
            traj_balls.append(total_balls)

    return DynamicsResult(
        bins=bins,
        counts=np.asarray(counts, dtype=np.int64),
        operations=operations,
        inserts=inserts,
        deletes=deletes,
        max_load_trajectory=np.asarray(traj_max),
        balls_trajectory=np.asarray(traj_balls, dtype=np.int64),
    )
