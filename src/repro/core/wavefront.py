"""Conflict-free wavefront kernels: commit independent balls in batches.

The greedy protocol is sequential only *through the bins a ball probes*:
ball ``j``'s decision reads nothing but the current counts of its own ``d``
candidate bins, so it depends on balls ``1..j-1`` solely via shared
candidate bins.  Within a window of consecutive balls whose candidate
multisets are pairwise disjoint, every ball observes exactly the counts
from before the window — sequential execution and a single vectorised
"resolve all, then commit all" step are indistinguishable.  This module
exploits that to replace the per-ball loops of :mod:`repro.core.fast` and
:mod:`repro.core.ensemble` with batched commits, bit-identically.

Execution model
---------------
A pre-drawn chunk of ``k`` balls is processed in *tiles* of ``W``
consecutive balls.  Per replication (the engine is *ragged*: every
replication carries its own conflict structure, so lockstep width never
shortens the windows):

1. **Detection** — for every tile, find the balls that share a candidate
   bin with any earlier ball of the same tile and replication.  These are
   the *deferred* balls; the rest are *free*.  Detection is vectorised
   over the whole chunk at once: candidates are packed into
   ``(bin << b) | ball`` sort keys, one in-place row sort per
   ``(replication, tile)`` groups same-bin candidates next to each other,
   and one adjacent-xor pass flags every ball that repeats an earlier
   ball's bin.
2. **Wave commit** — per tile, resolve *all* balls from the pre-tile
   counts in one vectorised comparison, redirect the deferred balls'
   updates to a scratch column (so the single scatter commits only the
   free balls), and commit.  The deferred balls are resolved in further
   *waves*: wave membership is a pure function of the choice matrix (not
   of the counts), so the conflicts among the deferred set are detected
   once, ahead of time, for the whole chunk, and each wave is itself one
   small vectorised commit.

Why this is bit-identical to sequential execution
-------------------------------------------------
Let ``F`` be a tile's free set and ``D_1, D_2, ..`` its deferred waves.

* Every ball in ``F`` shares no bin with *any* earlier ball of the tile,
  so its candidate counts equal the pre-tile counts regardless of what
  the other tile balls do: resolving ``F`` against the pre-tile snapshot
  reproduces the sequential decisions.  Two free balls never share a bin
  (if ``j < j'`` did, ``j'`` would repeat an earlier ball's bin and be
  deferred), so the combined scatter touches each bin at most once per
  replication and equals committing the balls one by one; each free
  ball's height is its pre-tile count plus one.
* A deferred ball shares bins only with other tile balls, and every later
  ball that shares a bin with anything earlier is itself deferred into a
  later wave.  Inductively, when wave ``D_i`` resolves, all earlier balls
  of the tile (free or in earlier waves) have committed and no later ball
  has, so ``D_i``'s candidate reads are again exactly sequential; within
  a wave the same pairwise-disjointness argument applies.
* Ball ``j`` still resolves a surviving tie with ``tie_uniforms[r, j]``
  (position-aligned), so the tie-uniform streams never shift.

The deferred fraction of a tile of width ``W`` is roughly
``d^2 * W * sum(p_i^2) / 2`` per replication (the birthday rate of the
selection distribution ``p``), which is why the tile width is chosen
``~ sqrt(n_eff / R) / d`` and why the scheme only pays off when
``n_eff / (R * d * d)`` is large — see :func:`expected_free_fraction` and
:func:`use_wavefront`, the dispatch key used by the engine drivers.

Dispatch knob
-------------
``REPRO_WAVEFRONT`` (environment) or :func:`set_mode` / :func:`forced`
select ``"auto"`` (default: drivers dispatch on the heuristic plus a
realised-free-fraction runtime guard), ``"on"`` (always) or ``"off"``
(never).  The equivalence suite runs every experiment under
``forced("on")`` and ``forced("off")`` and asserts bit-identity.

These kernels are the top of the *NumPy* tier only: when the compiled
backend (:mod:`repro.core.compiled`, ``REPRO_BACKEND``) is in force the
drivers bypass the wavefront dispatch entirely — a compiled loop has no
per-ball call overhead to amortise, so the conflict-free tiling
degenerates to the plain sequential commit order there.  Dispatch order
is compiled > wavefront > per-ball, every tier bit-identical.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from .fast import _MODES

__all__ = [
    "WAVEFRONT_MODES",
    "get_mode",
    "set_mode",
    "forced",
    "effective_bins",
    "expected_free_fraction",
    "tile_width",
    "use_wavefront",
    "WavefrontStats",
    "WavefrontWorkspace",
    "validate_lockstep_batch",
    "d2_tie_pref",
    "run_batch_wavefront",
]

#: Recognised dispatch modes.
WAVEFRONT_MODES = ("auto", "on", "off")

_mode_override: str | None = None

#: ``use_wavefront("auto")`` requires at least this expected free fraction
#: at the heuristic tile width; below it, deferred waves dominate and the
#: per-ball kernels win.
MIN_FREE_FRACTION = 0.5

#: ...and at least this ``n_eff / (R * d * d)`` ratio (the issue's
#: dispatch key).  The free fraction is per replication — it cannot see
#: the lockstep width — but the per-ball kernels amortise their fixed
#: call overhead over ``R`` lanes, so wide ensembles shrink the
#: wavefront's edge; measured on the fig01-scaled configuration the
#: crossover sits near ``n_eff / (R * d^2) ~ 20``.
MIN_BINS_PER_LANE = 25.0

#: Runtime guard threshold: a driver that observes a realised free
#: fraction below this after a chunk falls back to the per-ball kernels
#: for the rest of the run (auto mode only — forcing "on" stays on).
RUNTIME_MIN_FREE_FRACTION = 0.4

#: Tile-width scale: ``W ~ TILE_SCALE * sqrt(n_eff / R) / d`` balances
#: per-tile call overhead (pushes W up) against the deferred fraction
#: ``~ d^2 * W / (2 * n_eff)`` (pushes W down).  Calibrated on the
#: fig01-scaled benchmark configuration.
TILE_SCALE = 16.0

_MIN_TILE = 16
_MAX_TILE = 4096

#: Wave-splitting budget: conflict chains deeper than this (only seen on
#: degenerate instances with very few effective bins, i.e. with the
#: dispatch forced on) stop being split into vectorised waves and commit
#: ball-by-ball instead, bounding the worst case at per-ball-kernel cost.
_MAX_EVENT_ROUNDS = 8


def get_mode() -> str:
    """Current dispatch mode: the :func:`set_mode` override if set, else
    ``$REPRO_WAVEFRONT``, else ``"auto"``."""
    if _mode_override is not None:
        return _mode_override
    mode = os.environ.get("REPRO_WAVEFRONT", "auto")
    return mode if mode in WAVEFRONT_MODES else "auto"


def set_mode(mode: str | None) -> None:
    """Set (or with ``None`` clear) the process-wide dispatch override."""
    global _mode_override
    if mode is not None and mode not in WAVEFRONT_MODES:
        raise ValueError(
            f"unknown wavefront mode {mode!r}; expected one of {WAVEFRONT_MODES}"
        )
    _mode_override = mode


@contextmanager
def forced(mode: str):
    """Pin the dispatch mode for a block (used by the equivalence suite to
    run identical workloads with the wavefront forced on and off)."""
    previous = _mode_override
    set_mode(mode)
    try:
        yield
    finally:
        set_mode(previous)


def effective_bins(probabilities) -> float:
    """``1 / sum(p_i^2)`` — bin count of the collision-equivalent uniform
    distribution.  Two independent draws from ``p`` land in the same bin
    with probability ``sum(p_i^2)``; the dispatch heuristic and tile width
    use this instead of the raw ``n`` so skewed selection distributions
    (power-``t``, threshold) are costed correctly."""
    p = np.asarray(probabilities, dtype=np.float64)
    s = float((p * p).sum())
    return 1.0 / s if s > 0.0 else float(p.size)


def expected_free_fraction(
    n_eff: float, repetitions: int, d: int, width: int
) -> float:
    """Expected fraction of a tile's balls that commit in the first wave.

    Ball ``j`` of a tile is deferred when one of its ``d`` candidates
    repeats one of the ``j * d`` candidates drawn earlier in the tile
    (same replication), each pair colliding with probability
    ``1 / n_eff``; averaging the linearised ``1 - j * d^2 / n_eff`` over
    ``j < width`` gives the estimate below.  The engine is ragged (per
    replication), so ``repetitions`` does not enter the fraction — it is
    accepted for signature symmetry with :func:`use_wavefront`.
    """
    del repetitions
    return max(0.0, 1.0 - d * d * width / (2.0 * n_eff))


def tile_width(n_eff: float, repetitions: int, d: int) -> int:
    """Tile width ``~ TILE_SCALE * sqrt(n_eff / R) / d``, clamped to
    ``[16, 4096]`` and rounded down to a power of two (detection keys
    reserve ``log2(W)`` bits for the ball index)."""
    w = TILE_SCALE * (n_eff / max(1, repetitions)) ** 0.5 / max(1, d)
    w = min(_MAX_TILE, max(_MIN_TILE, int(w)))
    return 1 << (w.bit_length() - 1)


def use_wavefront(
    n_eff: float, repetitions: int, d: int, *, mode: str | None = None
) -> bool:
    """Dispatch predicate for the engine drivers.

    ``"on"``/``"off"`` force the decision; ``"auto"`` requires both a
    high expected free fraction at the heuristic tile width (most balls
    must commit in the first wave) and the ``n_eff / (R * d * d)`` ratio
    above :data:`MIN_BINS_PER_LANE` (wide ensembles already amortise the
    per-ball kernels' call overhead over their ``R`` lanes).
    """
    mode = get_mode() if mode is None else mode
    if mode == "on":
        return True
    if mode == "off":
        return False
    if n_eff / (max(1, repetitions) * d * d) < MIN_BINS_PER_LANE:
        return False
    width = tile_width(n_eff, repetitions, d)
    return (
        expected_free_fraction(n_eff, repetitions, d, width)
        >= MIN_FREE_FRACTION
    )


@dataclass
class WavefrontStats:
    """Realised wavefront behaviour, for the drivers' runtime guard.

    ``balls`` counts committed ball-slots (``R * k`` per chunk),
    ``deferred`` the ball-slots that missed the first wave, ``waves`` the
    deepest *vectorised* wave count seen (1 = everything committed in the
    first wave; capped at the ``_MAX_EVENT_ROUNDS`` budget — chains deeper
    than that commit ball-by-ball and are counted in ``tail_balls``).
    """

    balls: int = 0
    deferred: int = 0
    waves: int = 1
    tail_balls: int = 0
    chunks: int = 0

    @property
    def free_fraction(self) -> float:
        """Realised analogue of :func:`expected_free_fraction`."""
        if self.balls == 0:
            return 1.0
        return 1.0 - self.deferred / self.balls

    def merge_chunk(self, balls: int, deferred: int, waves: int,
                    tail_balls: int = 0) -> None:
        self.balls += balls
        self.deferred += deferred
        self.waves = max(self.waves, waves)
        self.tail_balls += tail_balls
        self.chunks += 1


@dataclass
class WavefrontWorkspace:
    """Per-run reusable temporaries, hoisted out of the kernel hot loops.

    One instance per driver run keeps the ``(R, n + 1)`` scratch counts,
    the row index/offset vectors, and the per-tile buffers alive across
    chunks instead of reallocating them on every kernel call.  The
    per-ball kernels in :mod:`repro.core.ensemble` share the same object
    (their ``np.arange(R)`` and chunk offsets come from :meth:`rbase` and
    :meth:`row_offsets`), so either engine path reuses one allocation per
    drive.
    """

    R: int = 0
    n: int = 0
    rrow: np.ndarray | None = None
    offsets: np.ndarray | None = None
    scratch: np.ndarray | None = None
    bufs: dict = field(default_factory=dict)

    def prepare(self, R: int, n: int) -> None:
        if self.R != R or self.n != n:
            self.R, self.n = R, n
            self.rrow = np.arange(R, dtype=np.int64)[:, None]
            self.offsets = self.rrow * (n + 1)
            self.scratch = np.empty((R, n + 1), dtype=np.int64)
            self.bufs.clear()

    def rbase(self, R: int) -> np.ndarray:
        """Cached ``np.arange(R)`` (the per-ball kernels' row index)."""
        b = self.bufs.get("rbase")
        if b is None or b.size != R:
            b = np.arange(R)
            self.bufs["rbase"] = b
        return b

    def row_offsets(self, R: int, stride: int) -> np.ndarray:
        """Cached ``(R, 1)`` flat row offsets ``r * stride``."""
        key = ("row_offsets", stride)
        b = self.bufs.get(key)
        if b is None or b.shape[0] != R:
            b = (np.arange(R, dtype=np.int64) * stride)[:, None]
            self.bufs[key] = b
        return b

    def buf(self, name: str, shape, dtype) -> np.ndarray:
        b = self.bufs.get(name)
        if b is None or b.shape != shape or b.dtype != dtype:
            b = np.empty(shape, dtype=dtype)
            self.bufs[name] = b
        return b


def validate_lockstep_batch(counts, capacities, choices, tie_uniforms, tie_break, heights):
    """Shared input validation for the lockstep kernels
    (:func:`run_batch_wavefront` and
    :func:`repro.core.ensemble.run_batch_ensemble`).

    Returns ``(mode, counts, caps, tie_uniforms)`` with *counts* as the
    validated ``(R, n)`` int64 array, *caps* as int64 of shape ``(n,)``
    or ``(R, n)``, and *tie_uniforms* converted to an ndarray.
    """
    try:
        mode = _MODES[tie_break]
    except KeyError:
        raise ValueError(
            f"unknown tie_break {tie_break!r}; expected one of {tuple(_MODES)}"
        ) from None
    counts = np.asarray(counts)
    if counts.ndim != 2:
        raise ValueError(f"counts must have shape (R, n), got {counts.shape}")
    if not counts.flags.c_contiguous:
        # A silent ascontiguousarray copy would break the in-place mutation
        # contract for callers that discard the return value.
        raise ValueError("counts must be C-contiguous (it is mutated in place)")
    if choices.ndim != 3:
        raise ValueError(f"choices must have shape (R, k, d), got {choices.shape}")
    R, n = counts.shape
    if choices.shape[0] != R:
        raise ValueError(
            f"choices first axis {choices.shape[0]} != {R} replications"
        )
    _, k, d = choices.shape
    if d < 1:
        raise ValueError("choices must have at least one candidate per ball")
    tie_uniforms = np.asarray(tie_uniforms)
    if tie_uniforms.shape != (R, k):
        raise ValueError(
            f"tie_uniforms must have shape ({R}, {k}), got {tie_uniforms.shape}"
        )
    if heights is not None and heights.shape != (R, k):
        raise ValueError(
            f"heights must have shape ({R}, {k}), got {heights.shape}"
        )
    caps = np.asarray(capacities, dtype=np.int64)
    return mode, counts, caps, tie_uniforms


def d2_tie_pref(mode: int, cap_a, cap_b, tie_uniforms) -> np.ndarray:
    """Per-ball preference for candidate ``b`` on a surviving d=2 load tie.

    Mirrors the scalar rule exactly: ``max_capacity`` (mode 0) prefers the
    larger capacity, ``min_capacity`` (mode 2) the smaller, and an exact
    capacity tie (or ``uniform`` mode) falls to the fair coin
    ``tie_uniforms >= 0.5``.  Shared by both lockstep kernels so the rule
    lives in one place.
    """
    u = tie_uniforms >= 0.5
    if mode == 0:
        return (cap_b > cap_a) | ((cap_b == cap_a) & u)
    if mode == 2:
        return (cap_b < cap_a) | ((cap_b == cap_a) & u)
    return u


def _detect_tiles(choices: np.ndarray, n: int, width: int, ws: WavefrontWorkspace):
    """Round-1 detection: the deferred balls of every (replication, tile).

    Returns ``(e_r, e_b, nt)`` — replication index and *absolute* ball
    index of every deferred ball, ordered by ``(ball, replication)`` —
    plus the tile count.  A ball is deferred when one of its candidates
    already occurred among an earlier same-tile, same-replication ball's
    candidates.  (A ball whose own candidates repeat — ``a == b`` — may
    also be flagged; the wave commits handle it exactly either way, it
    merely rides a later wave.)
    """
    R, k, d = choices.shape
    nt = (k + width - 1) // width
    ballb = (width - 1).bit_length()
    max_bin = n - 1  # bins are bounded by the counts width
    if (max_bin + 2) << ballb <= np.iinfo(np.int32).max:
        kdtype, udtype = np.int32, np.uint32
    else:
        kdtype, udtype = np.int64, np.uint64
    keys = ws.buf("det_keys", (R, nt, width, d), kdtype)
    full = (nt - 1) * width
    shift = kdtype(1 << ballb)
    np.multiply(
        choices[:, :full].reshape(R, nt - 1, width, d), shift,
        out=keys[:, : nt - 1], casting="unsafe",
    )
    # The tail tile is padded with the dtype maximum: pads sort above every
    # real key (the (max_bin + 2) << ballb headroom keeps even the xor
    # against the largest real key outside the same-bin band) and pad-pad
    # pairs xor to zero, so padding never produces an event.
    keys[:, -1] = np.iinfo(kdtype).max
    np.multiply(
        choices[:, full:], shift, out=keys[:, -1, : k - full], casting="unsafe"
    )
    keys |= np.arange(width, dtype=kdtype)[None, None, :, None]
    keys = keys.reshape(R, nt, width * d)
    keys.sort(axis=-1)
    # Adjacent keys share a bin iff their xor stays below the ball-bit
    # budget; xor 0 (identical keys: the pad run, or a ball repeating its
    # own bin twice at the same slot) wraps to the unsigned maximum.
    x = ws.buf("det_x", (R, nt, width * d - 1), kdtype)
    np.bitwise_xor(keys[..., 1:], keys[..., :-1], out=x)
    x -= kdtype(1)
    conf = ws.buf("det_conf", x.shape, bool)
    np.less(x.view(udtype), udtype((1 << ballb) - 1), out=conf)
    ci = np.flatnonzero(conf.reshape(-1))
    row_len = width * d - 1
    row = ci // row_len
    balls = keys.reshape(R * nt, width * d)[row, ci % row_len + 1]
    balls = balls.astype(np.int64)
    balls &= (1 << ballb) - 1
    t_i = row % nt
    r_i = row // nt
    # Dedupe (a ball may repeat several bins) and order by absolute ball.
    ev = np.unique((t_i * width + balls) * R + r_i)
    return ev % R, ev // R, nt


def _detect_event_rounds(choices, n: int, e_r, e_b, nt: int, width: int):
    """Split the deferred balls into commit waves, ahead of any commit.

    Wave membership depends only on the choice matrix: wave ``i+1`` holds
    the deferred balls that share a bin with an earlier deferred ball of
    the same replication still waiting in wave ``i``.  Returns
    ``(rounds, tail)``: *rounds* is a list of ``(e_r, e_b, tile_bounds)``
    holding the balls *committed* in that round, pre-sliced per tile so
    the commit loop only takes views; *tail* (usually ``None``) carries
    whatever exceeded the :data:`_MAX_EVENT_ROUNDS` chain budget, to be
    committed ball-by-ball.  Conflicts are only meaningful within one
    tile, but a cross-tile flag merely rides one extra round — still
    correct — so the keys omit the tile index.
    """
    rounds = []
    tiles = np.arange(nt + 1, dtype=np.int64) * width
    while e_r.size:
        if len(rounds) >= _MAX_EVENT_ROUNDS:
            return rounds, (e_r, e_b, np.searchsorted(e_b, tiles))
        q = e_r.size
        posb = max(1, (q - 1).bit_length())
        base = (e_r * n)[:, None] + choices[e_r, e_b, :]
        k2 = (base << np.int64(posb)) | np.arange(q, dtype=np.int64)[:, None]
        k2 = k2.reshape(-1)
        k2.sort()
        x = (k2[1:] ^ k2[:-1]) - 1
        c2 = x.view(np.uint64) < np.uint64((1 << posb) - 1)
        if not c2.any():
            rounds.append((e_r, e_b, np.searchsorted(e_b, tiles)))
            break
        defer = np.zeros(q, dtype=bool)
        defer[k2[1:][c2] & np.int64((1 << posb) - 1)] = True
        com = ~defer
        cr, cb = e_r[com], e_b[com]
        rounds.append((cr, cb, np.searchsorted(cb, tiles)))
        e_r, e_b = e_r[defer], e_b[defer]
    return rounds, None


class _D2Committer:
    """Wave commits for d=2 (uniform- and general-capacity variants)."""

    def __init__(self, ws, flat, choices, tie_uniforms, caps, mode, heights, k, width):
        R, n = ws.R, ws.n
        self.ws, self.flat, self.heights = ws, flat, heights
        self.n = n
        self.single = R == 1  # R = 1: row offsets vanish, skip index math
        self.cha = choices[:, :, 0]
        self.chb = choices[:, :, 1]
        self.uniform = caps.ndim == 1 and bool((caps == caps[0]).all())
        pref = ws.buf("pref", (R, k), np.int64)
        if self.uniform:
            self.capacity = float(caps[0])
            np.copyto(pref, tie_uniforms >= 0.5, casting="unsafe")
            self.cap_a = self.cap_b = self.cross_a = self.cross_b = None
        else:
            if caps.ndim == 1:
                cap_a = caps[self.cha]
                cap_b = caps[self.chb]
            else:
                caps_flat = caps.reshape(-1)
                off = ws.rrow * n
                cap_a = caps_flat[self.cha + off]
                cap_b = caps_flat[self.chb + off]
            np.copyto(pref, d2_tie_pref(mode, cap_a, cap_b, tie_uniforms),
                      casting="unsafe")
            self.cap_a, self.cap_b = cap_a, cap_b
            # Doubled cross factors: the integer tie bias subtracted below
            # can never collide with a genuine strict inequality.
            self.cross_a = cap_a * 2
            self.cross_b = cap_b * 2
            self.la = ws.buf("la", (R, width), np.int64)
            self.lb = ws.buf("lb", (R, width), np.int64)
        self.pref = pref
        self.na = ws.buf("na", (R, width), np.int64)
        self.nb = ws.buf("nb", (R, width), np.int64)
        self.ix = ws.buf("ix", (R, width), np.int64)
        self.ch = ws.buf("ch", (R, width), np.int64)
        self.pick = ws.buf("pick", (R, width), bool)

    def tile(self, lo: int, hi: int, dr, db) -> None:
        """First wave: resolve all tile balls from the pre-tile counts and
        commit the free ones (deferred targets go to the scratch column)."""
        ws, flat, n = self.ws, self.flat, self.n
        w = hi - lo
        ca = self.cha[:, lo:hi]
        cb = self.chb[:, lo:hi]
        na = self.na[:, :w]
        nb = self.nb[:, :w]
        ch = self.ch[:, :w]
        pick = self.pick[:, :w]
        if self.single:
            flat.take(ca, out=na, mode="clip")
            flat.take(cb, out=nb, mode="clip")
        else:
            ix = self.ix[:, :w]
            np.add(ca, ws.offsets, out=ix)
            flat.take(ix, out=na, mode="clip")
            np.add(cb, ws.offsets, out=ix)
            flat.take(ix, out=nb, mode="clip")
        if self.uniform:
            # Equal capacities: pick b iff n_b < n_a + pref, i.e. the
            # count difference stays below the tie preference.
            np.subtract(nb, na, out=nb)
            np.less(nb, self.pref[:, lo:hi], out=pick)
            if self.heights is not None:
                # Chosen pre-count + 1 without re-gathering: nb holds the
                # difference, zeroed where a wins.
                np.multiply(nb, pick, out=nb)
                np.add(na, nb, out=na)
                na += 1
                self.heights[:, lo:hi] = na
        else:
            na += 1
            nb += 1
            la = self.la[:, :w]
            lb = self.lb[:, :w]
            np.multiply(na, self.cross_b[:, lo:hi], out=la)
            np.multiply(nb, self.cross_a[:, lo:hi], out=lb)
            lb -= self.pref[:, lo:hi]
            np.less(lb, la, out=pick)
            if self.heights is not None:
                np.multiply(nb, pick, out=lb)
                np.multiply(na, ~pick, out=la)
                la += lb  # chosen post-commit count
                np.multiply(self.cap_b[:, lo:hi], pick, out=lb)
                np.multiply(self.cap_a[:, lo:hi], ~pick, out=nb)
                lb += nb  # chosen capacity
                np.divide(la, lb, out=self.heights[:, lo:hi])
        np.copyto(ch, ca)
        np.copyto(ch, cb, where=pick)
        if dr.size:
            ch[dr, db - lo] = n  # deferred: redirect to the scratch column
        # Free targets are pairwise distinct per replication; the scratch
        # column absorbs every deferred (possibly colliding) update.
        if self.single:
            flat[ch] += 1
        else:
            ix = self.ix[:, :w]
            np.add(ch, ws.offsets, out=ix)
            flat[ix] += 1

    def events(self, rr, bb) -> None:
        """Commit one deferred wave: the (replication, ball) event list is
        pairwise bin-disjoint per replication by construction."""
        flat = self.flat
        a = self.cha[rr, bb]
        b = self.chb[rr, bb]
        if self.single:
            na = flat[a]
            nb = flat[b]
        else:
            off = rr * (self.n + 1)
            a = a + off
            b = b + off
            na = flat[a]
            nb = flat[b]
        if self.uniform:
            pick = (nb - na) < self.pref[rr, bb]
            chosen = np.where(pick, b, a)
            if self.heights is not None:
                self.heights[rr, bb] = np.where(pick, nb, na) + 1
        else:
            na += 1
            nb += 1
            la = na * self.cross_b[rr, bb]
            lb = nb * self.cross_a[rr, bb] - self.pref[rr, bb]
            pick = lb < la
            chosen = np.where(pick, b, a)
            if self.heights is not None:
                self.heights[rr, bb] = (
                    np.where(pick, nb, na)
                    / np.where(pick, self.cap_b[rr, bb], self.cap_a[rr, bb])
                )
        flat[chosen] += 1

    def finish(self) -> None:
        if self.uniform and self.heights is not None:
            self.heights /= self.capacity


class _GeneralCommitter:
    """Wave commits for arbitrary d (and d=1), mirroring the per-ball
    ``_ensemble_general`` arithmetic on whole tiles at once."""

    def __init__(self, ws, flat, choices, tie_uniforms, caps, mode, heights, k, width):
        R, n = ws.R, ws.n
        self.ws, self.flat, self.heights = ws, flat, heights
        self.n = n
        self.choices = choices
        self.tie_u = tie_uniforms
        self.mode = mode
        if caps.ndim == 1:
            self.dens = caps[choices]
        else:
            self.dens = caps.reshape(-1)[choices + (ws.rrow * n)[:, :, None]]

    def _resolve(self, idx, den, num, tie_u):
        """Exact argmin + tie selection on ``(.., d)`` stacks; returns the
        chosen column index along the last axis."""
        d = idx.shape[-1]
        mode = self.mode
        best_num = num[..., 0].copy()
        best_den = den[..., 0].copy()
        for i in range(1, d):
            better = num[..., i] * best_den < best_num * den[..., i]
            np.copyto(best_num, num[..., i], where=better)
            np.copyto(best_den, den[..., i], where=better)
        # Membership: exactly the candidates achieving the minimum...
        mask = num * best_den[..., None] == best_num[..., None] * den
        # ...keeping only each bin's first occurrence (duplicates in the
        # multiset must not inflate the tie set, matching `b not in best`).
        for i in range(1, d):
            dup = idx[..., i] == idx[..., 0]
            for i2 in range(1, i):
                dup |= idx[..., i] == idx[..., i2]
            mask[..., i] &= ~dup
        if mode == 0:
            cmax = np.where(mask, den, -1).max(axis=-1)
            mask &= den == cmax[..., None]
        elif mode == 2:
            cmin = np.where(mask, den, np.iinfo(np.int64).max).min(axis=-1)
            mask &= den == cmin[..., None]
        tied = mask.sum(axis=-1)
        sel = (tie_u * tied).astype(np.int64)
        hit = (mask.cumsum(axis=-1) == (sel + 1)[..., None]) & mask
        return hit.argmax(axis=-1)

    def tile(self, lo: int, hi: int, dr, db) -> None:
        ws, flat, n = self.ws, self.flat, self.n
        idx = self.choices[:, lo:hi, :]
        den = self.dens[:, lo:hi, :]
        num = flat.take(idx + ws.offsets[:, :, None])
        num += 1
        pos = self._resolve(idx, den, num, self.tie_u[:, lo:hi])
        sel = pos[..., None]
        chosen = np.take_along_axis(idx, sel, axis=-1)[..., 0]
        if self.heights is not None:
            np.divide(
                np.take_along_axis(num, sel, axis=-1)[..., 0],
                np.take_along_axis(den, sel, axis=-1)[..., 0],
                out=self.heights[:, lo:hi],
            )
        if dr.size:
            chosen[dr, db - lo] = n
        flat[chosen + ws.offsets] += 1

    def events(self, rr, bb) -> None:
        if rr.size == 0:
            return
        flat = self.flat
        off = rr * (self.n + 1)
        idx = self.choices[rr, bb, :]
        den = self.dens[rr, bb, :]
        num = flat[idx + off[:, None]]
        num += 1
        pos = self._resolve(idx, den, num, self.tie_u[rr, bb])
        ar = np.arange(rr.size)
        chosen = idx[ar, pos]
        if self.heights is not None:
            self.heights[rr, bb] = num[ar, pos] / den[ar, pos]
        flat[chosen + off] += 1

    def finish(self) -> None:
        pass


def run_batch_wavefront(
    counts: np.ndarray,
    capacities,
    choices: np.ndarray,
    tie_uniforms: np.ndarray,
    *,
    tie_break: str = "max_capacity",
    heights: np.ndarray | None = None,
    tile: int | None = None,
    n_eff: float | None = None,
    workspace: WavefrontWorkspace | None = None,
    stats: WavefrontStats | None = None,
) -> np.ndarray:
    """Allocate one batch of balls with the wavefront kernels.

    Drop-in replacement for
    :func:`repro.core.ensemble.run_batch_ensemble` — same parameters,
    same validation, ``counts`` is the ``(R, n)`` int64 state mutated in
    place — that commits conflict-free balls in vectorised waves instead
    of looping ball by ball.  Bit-identical to the per-ball kernels for
    every replication, heights included; see the module docstring for the
    argument and :mod:`repro.core.equivalence` for the enforcement.

    Extra knobs: *tile* overrides the detection window width (tests
    exercise degenerate widths); *n_eff* is the collision-equivalent bin
    count of the selection distribution the width heuristic should use
    (defaults to the raw ``n`` — the drivers pass their ``1 / sum(p^2)``);
    *workspace* reuses per-run buffers across chunks; *stats* accumulates
    realised free fractions for the drivers' runtime guard.
    """
    mode, counts, caps, tie_uniforms = validate_lockstep_batch(
        counts, capacities, choices, tie_uniforms, tie_break, heights
    )
    R, n = counts.shape
    _, k, d = choices.shape
    if k == 0:
        return counts
    if tile is None:
        width = tile_width(n if n_eff is None else n_eff, R, d)
    else:
        width = int(tile)
    width = max(1, min(width, k))

    ws = workspace if workspace is not None else WavefrontWorkspace()
    ws.prepare(R, n)
    # Scratch counts with one extra column per replication absorbing the
    # deferred balls' first-wave scatter targets.
    work = ws.scratch
    work[:, :n] = counts
    flat = work.reshape(-1)

    e_r, e_b, nt = _detect_tiles(choices, n, width, ws)
    defer_bounds = np.searchsorted(
        e_b, np.arange(nt + 1, dtype=np.int64) * width
    )
    rounds, tail = _detect_event_rounds(choices, n, e_r, e_b, nt, width)

    cls = _D2Committer if d == 2 else _GeneralCommitter
    committer = cls(ws, flat, choices, tie_uniforms, caps, mode, heights, k, width)

    for t in range(nt):
        lo = t * width
        hi = min(k, lo + width)
        d0, d1 = defer_bounds[t], defer_bounds[t + 1]
        committer.tile(lo, hi, e_r[d0:d1], e_b[d0:d1])
        for cr, cb, cbounds in rounds:
            j0, j1 = cbounds[t], cbounds[t + 1]
            if j0 < j1:
                committer.events(cr[j0:j1], cb[j0:j1])
        if tail is not None:
            tr, tb, tbounds = tail
            j0, j1 = int(tbounds[t]), int(tbounds[t + 1])
            # Chain-budget overflow: commit strictly in ball order, one
            # ball (all its replications) per step — sequential semantics
            # by construction, per-ball-kernel cost in the worst case.
            start = j0
            while start < j1:
                stop = start + 1
                while stop < j1 and tb[stop] == tb[start]:
                    stop += 1
                committer.events(tr[start:stop], tb[start:stop])
                start = stop
    committer.finish()

    counts[:, :] = work[:, :n]
    if stats is not None:
        stats.merge_chunk(
            R * k, int(e_r.size), len(rounds) + 1,
            tail_balls=0 if tail is None else int(tail[0].size),
        )
    return counts
