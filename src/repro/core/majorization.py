"""Majorisation (Definition 1) and empirical domination experiments (Lemma 1).

Lemma 1 states that the non-uniform d-choice process ``P`` on bins of total
capacity ``C`` is stochastically dominated — as a normalised slot load
vector, hence also in maximum load — by the standard d-choice process ``Q``
on ``C`` unit bins.  The proof couples the two processes through uniform
slot choices.  :func:`coupled_domination_run` realises exactly that coupling
so tests can observe the domination, and
:func:`empirical_max_load_domination` checks first-order stochastic
dominance between two samples of maximum loads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bins.arrays import BinArray
from ..sampling.rngutils import make_rng
from .fast import run_batch
from .loadvectors import normalized_slot_load_vector

__all__ = [
    "majorizes",
    "coupled_domination_run",
    "CoupledRunResult",
    "empirical_max_load_domination",
]


def majorizes(u, v, *, atol: float = 1e-9) -> bool:
    """True when ``u ⪰ v`` per Definition 1.

    Both vectors are normalised (sorted non-increasingly) internally; ``u``
    majorises ``v`` iff every prefix sum of the normalised ``u`` is at least
    the corresponding prefix sum of the normalised ``v``.  Vectors must have
    equal length (Definition 1 compares equal-length vectors; pad with
    zeros beforehand if needed).
    """
    a = np.sort(np.asarray(u, dtype=np.float64))[::-1]
    b = np.sort(np.asarray(v, dtype=np.float64))[::-1]
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError(
            f"majorisation compares equal-length 1-D vectors, got {a.shape} and {b.shape}"
        )
    return bool(np.all(np.cumsum(a) >= np.cumsum(b) - atol))


@dataclass(frozen=True)
class CoupledRunResult:
    """Outcome of one coupled run of processes P (non-uniform) and Q (unit).

    ``p_slot_vector`` / ``q_slot_vector`` are normalised slot load vectors
    (equal length ``C``), ``p_max_load`` / ``q_max_load`` the bin-level
    maximum loads.
    """

    p_slot_vector: np.ndarray
    q_slot_vector: np.ndarray
    p_max_load: float
    q_max_load: float

    @property
    def q_dominates_slots(self) -> bool:
        """Whether Q's slot vector majorises P's in this run."""
        return majorizes(self.q_slot_vector, self.p_slot_vector)

    @property
    def q_dominates_max(self) -> bool:
        """Whether Q's max load is at least P's in this run."""
        return self.q_max_load >= self.p_max_load - 1e-12


def coupled_domination_run(
    bins: BinArray,
    m: int | None = None,
    d: int = 2,
    *,
    seed=None,
) -> CoupledRunResult:
    """Run P and Q on the *same* uniform slot choices (Lemma 1's coupling).

    Every ball draws ``d`` slot indices uniformly from ``{0, .., C-1}``.
    Process Q treats the slots as ``C`` unit bins and runs standard greedy;
    process P maps each slot to its owning bin (selection probability is then
    automatically proportional to capacity) and runs Algorithm 1.
    """
    if not isinstance(bins, BinArray):
        bins = BinArray(bins)
    if m is None:
        m = bins.total_capacity
    rng = make_rng(seed)
    C = bins.total_capacity
    slot_owner = bins.slot_owner()

    slot_choices = rng.integers(0, C, size=(m, d), dtype=np.int64)
    tie_u = rng.random(m)

    q_counts: list[int] = [0] * C
    run_batch(q_counts, [1] * C, slot_choices, tie_u, tie_break="max_capacity")

    p_choices = slot_owner[slot_choices]
    p_counts: list[int] = [0] * bins.n
    run_batch(p_counts, bins.capacities.tolist(), p_choices, tie_u, tie_break="max_capacity")

    p_arr = np.asarray(p_counts, dtype=np.int64)
    q_arr = np.asarray(q_counts, dtype=np.int64)
    return CoupledRunResult(
        p_slot_vector=normalized_slot_load_vector(p_arr, bins.capacities),
        q_slot_vector=np.sort(q_arr)[::-1],
        p_max_load=float((p_arr / bins.capacities).max()),
        q_max_load=float(q_arr.max()),
    )


def empirical_max_load_domination(samples_p, samples_q) -> float:
    """Margin by which ``samples_q`` first-order dominates ``samples_p``.

    Returns ``min_x ( F_P(x) − F_Q(x) )`` over the pooled sample points,
    where ``F`` are empirical CDFs.  Both CDFs equal 1 at the pooled
    maximum, so the return value is at most 0: exactly 0 means Q's maximum
    load is stochastically at least P's everywhere in the sample (the
    Lemma 1 claim); negative values quantify the worst violation.
    """
    p = np.sort(np.asarray(samples_p, dtype=np.float64))
    q = np.sort(np.asarray(samples_q, dtype=np.float64))
    if p.size == 0 or q.size == 0:
        raise ValueError("both samples must be non-empty")
    grid = np.union1d(p, q)
    f_p = np.searchsorted(p, grid, side="right") / p.size
    f_q = np.searchsorted(q, grid, side="right") / q.size
    return float(np.min(f_p - f_q))
