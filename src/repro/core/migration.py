"""Incremental reallocation when the system grows (Section 4.3 remark).

The paper's growth experiments restart the allocation from scratch at every
expansion step, noting that "a number of algorithms have been proposed ...
which are able to perform a reorganization with minimum overhead" (citing
SHARE, RUSH and Ceph's CRUSH).  This module supplies the two reference
points those algorithms are measured against:

* :func:`rebalance_waterfill` — the *minimum-migration* rebalance: move just
  enough balls from over-target bins to under-target bins so that every bin
  lands within one ball of its capacity-proportional target.  The number of
  moved balls is the information-theoretic floor for any reorganisation that
  reaches the balanced state.
* :func:`migration_cost_from_scratch` — the volume a from-scratch
  re-allocation would move (counting a ball as moved if its bin assignment
  is redrawn, the pessimistic convention).

Comparing the two quantifies what an incremental placement scheme can save;
``examples/heterogeneous_storage.py`` and the growth benches use it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bins.arrays import BinArray

__all__ = [
    "MigrationPlan",
    "rebalance_waterfill",
    "migration_cost_from_scratch",
    "expected_displaced_from_scratch",
]


@dataclass(frozen=True)
class MigrationPlan:
    """Result of a minimum-migration rebalance.

    ``moves[(i, j)]`` is the number of balls moved from bin ``i`` to bin
    ``j``; ``new_counts`` is the post-migration allocation.
    """

    new_counts: np.ndarray
    moves: dict[tuple[int, int], int]

    @property
    def balls_moved(self) -> int:
        """Total migration volume."""
        return sum(self.moves.values())


def _targets(total_balls: int, bins: BinArray) -> np.ndarray:
    """Capacity-proportional integer targets summing to *total_balls*.

    Largest-remainder rounding of ``m * c_i / C`` — every bin ends within
    one ball of its exact proportional share.
    """
    caps = bins.capacities
    exact = total_balls * caps / bins.total_capacity
    floors = np.floor(exact).astype(np.int64)
    deficit = total_balls - int(floors.sum())
    if deficit:
        remainders = exact - floors
        # ties broken toward larger capacity, then lower index (stable)
        order = np.lexsort((np.arange(caps.size), -caps, -remainders))
        floors[order[:deficit]] += 1
    return floors


def rebalance_waterfill(counts, bins: BinArray) -> MigrationPlan:
    """Minimum-migration plan moving *counts* to capacity-proportional targets.

    Any plan reaching the target allocation must move at least
    ``Σ max(0, counts_i − target_i)`` balls; this plan moves exactly that
    many (greedy pairing of surpluses with deficits).
    """
    if not isinstance(bins, BinArray):
        bins = BinArray(bins)
    cnt = np.asarray(counts, dtype=np.int64)
    if cnt.shape != (bins.n,):
        raise ValueError(
            f"counts has shape {cnt.shape}, expected ({bins.n},)"
        )
    if np.any(cnt < 0):
        raise ValueError("counts must be non-negative")
    target = _targets(int(cnt.sum()), bins)
    surplus = [(i, int(c)) for i, c in enumerate(cnt - target) if c > 0]
    deficit = [(i, int(-c)) for i, c in enumerate(cnt - target) if c < 0]
    moves: dict[tuple[int, int], int] = {}
    si = di = 0
    while si < len(surplus) and di < len(deficit):
        s_bin, s_amt = surplus[si]
        d_bin, d_amt = deficit[di]
        step = min(s_amt, d_amt)
        moves[(s_bin, d_bin)] = step
        s_amt -= step
        d_amt -= step
        surplus[si] = (s_bin, s_amt)
        deficit[di] = (d_bin, d_amt)
        if s_amt == 0:
            si += 1
        if d_amt == 0:
            di += 1
    return MigrationPlan(new_counts=target, moves=moves)


def migration_cost_from_scratch(old_counts, new_counts) -> int:
    """Balls moved by a from-scratch re-allocation.

    Counts a conservative lower bound on the redraw cost: the L1 distance
    between the allocations divided by two (balls that happen to land in
    their old bin are not charged).  With independent redraws the true cost
    is higher; this is the fairest comparison *against* incremental schemes.
    """
    old = np.asarray(old_counts, dtype=np.int64)
    new = np.asarray(new_counts, dtype=np.int64)
    if old.size > new.size:
        raise ValueError("the new system cannot have fewer bins")
    padded = np.zeros(new.size, dtype=np.int64)
    padded[: old.size] = old
    if padded.sum() != new.sum():
        raise ValueError(
            f"ball counts differ: old={padded.sum()}, new={new.sum()}"
        )
    return int(np.abs(padded - new).sum() // 2)


def expected_displaced_from_scratch(old_counts, new_counts) -> float:
    """Expected number of balls a from-scratch redraw actually relocates.

    :func:`migration_cost_from_scratch` charges only the *count* imbalance —
    a weak lower bound, since an independent redraw reassigns ball
    identities wholesale.  Treating the new allocation as independent of the
    old one, a ball of old bin ``i`` stays put with probability
    ``new_i / m``, so the expected displaced volume is
    ``m − Σ_i old_i · new_i / m``.  This is the number an incremental
    placement scheme (SHARE / RUSH / CRUSH, cited by the paper) is designed
    to beat.
    """
    old = np.asarray(old_counts, dtype=np.float64)
    new = np.asarray(new_counts, dtype=np.float64)
    if old.size > new.size:
        raise ValueError("the new system cannot have fewer bins")
    padded = np.zeros(new.size)
    padded[: old.size] = old
    m = padded.sum()
    if m != new.sum():
        raise ValueError(f"ball counts differ: old={m}, new={new.sum()}")
    if m == 0:
        return 0.0
    return float(m - (padded * new).sum() / m)
