"""Batched arrivals with stale load information.

In distributed deployments the greedy protocol rarely sees perfectly fresh
loads: requests arriving within the same scheduling round observe the loads
*as of the round start*.  This module implements that batched variant —
every ball in a batch of size ``b`` compares candidates using the counts
frozen at the batch boundary (ties, including the all-equal stale view,
are broken uniformly among max-capacity candidates) — so the library can
quantify how staleness degrades the lnln(n) guarantee.  ``b = 1`` recovers
the sequential protocol exactly; ``b = m`` degenerates to one-choice-like
behaviour (every decision uses the empty-system view).

This is an extension beyond the paper's model (flagged in DESIGN.md); the
batched two-choice literature predicts the max load grows smoothly with the
batch size, which the accompanying tests check qualitatively.
"""

from __future__ import annotations

import numpy as np

from ..bins.arrays import BinArray
from ..sampling.distributions import probability_model
from ..sampling.rngutils import make_rng
from .simulation import SimulationResult

__all__ = ["simulate_batched"]


def simulate_batched(
    bins: BinArray,
    m: int | None = None,
    d: int = 2,
    *,
    batch_size: int = 1,
    probabilities="proportional",
    seed=None,
) -> SimulationResult:
    """Run the greedy d-choice game with per-batch stale loads.

    Parameters match :func:`repro.core.simulation.simulate` plus
    ``batch_size`` — the number of balls that share one frozen view of the
    loads.  Within a batch, each ball still commits (the counts advance),
    but *decisions* use the frozen counts.
    """
    if not isinstance(bins, BinArray):
        bins = BinArray(bins)
    if m is None:
        m = bins.total_capacity
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")

    model = probability_model(probabilities)
    sampler = model.sampler(bins.capacities)
    rng = make_rng(seed)

    caps = bins.capacities.tolist()
    counts = [0] * bins.n
    thrown = 0
    while thrown < m:
        k = min(batch_size, m - thrown)
        choices = sampler.sample((k, d), rng).tolist()
        tie_u = rng.random(k).tolist()
        frozen = counts.copy()
        for j in range(k):
            row = choices[j]
            best = [row[0]]
            best_num = frozen[row[0]] + 1
            best_den = caps[row[0]]
            for b in row[1:]:
                num = frozen[b] + 1
                den = caps[b]
                lhs = num * best_den
                rhs = best_num * den
                if lhs < rhs:
                    best = [b]
                    best_num = num
                    best_den = den
                elif lhs == rhs and b not in best:
                    best.append(b)
            if len(best) > 1:
                cmax = max(caps[b] for b in best)
                best = [b for b in best if caps[b] == cmax]
            chosen = best[0] if len(best) == 1 else best[int(tie_u[j] * len(best))]
            counts[chosen] += 1
        thrown += k

    return SimulationResult(
        bins=bins,
        counts=np.asarray(counts, dtype=np.int64),
        m=m,
        d=d,
        probability=model.name,
        tie_break="max_capacity",
    )
